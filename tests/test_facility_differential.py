"""Differential tests: the sharded facility path against the scalar oracle.

The determinism contract of :mod:`repro.sweep.backends`: the same seeded
scenario matrix produces an **identical** ``SweepOutcome`` sequence and
**identical** canonical metric exports on the serial, thread and process
backends (exports modulo the ``sweep_backend_*`` marker counters, which
exist precisely to record which backend ran). On top of that, a facility
run with an unconstrained plant must equal the **sum of isolated rack
runs** — the shared loop adds nothing when it isn't a bottleneck. The
pinned byte-for-byte goldens (``tests/goldens/facility_sweep.json``,
``facility_metrics.json``) tie all of it to the CI smoke job, which
regenerates the same bytes via ``scripts/run_facility.py``.
"""

import json
from pathlib import Path

import pytest

from repro.control.supervisor import Supervisor
from repro.core.racksim import RackSimulator
from repro.facility.simulator import FacilitySimulator
from repro.facility.sweep import (
    build_facility,
    evaluate_facility_case,
    facility_rack,
    smoke_cases,
)
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.sweep import available_backends, run_sweep

GOLDEN_DIR = Path(__file__).parent / "goldens"
BACKENDS = ("serial", "thread", "process")

#: The matrix every backend must reproduce identically: every named
#: facility scenario on a 3-rack room of 2-CM racks.
MATRIX = smoke_cases(racks=3, modules=2, duration_s=300.0, dt_s=20.0)


def run_matrix(backend, max_workers=2):
    """The matrix's outcomes plus the canonical metric export."""
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep(
            evaluate_facility_case,
            MATRIX,
            backend=backend,
            max_workers=max_workers,
        )
        export = to_json(obs, exclude=("sweep_backend_",))
    return outcomes, export


@pytest.fixture(scope="module")
def oracle():
    return run_matrix("serial")


def test_all_backends_registered():
    assert sorted(BACKENDS) == available_backends()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_outcome_sequences_identical(backend, oracle):
    serial_outcomes, _ = oracle
    outcomes, _ = run_matrix(backend)
    assert outcomes == serial_outcomes


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_metric_exports_identical(backend, oracle):
    _, serial_export = oracle
    _, export = run_matrix(backend)
    assert export == serial_export


def test_worker_count_does_not_change_results(oracle):
    serial_outcomes, serial_export = oracle
    for workers in (1, 3):
        outcomes, export = run_matrix("process", max_workers=workers)
        assert outcomes == serial_outcomes
        assert export == serial_export


def test_unconstrained_facility_equals_sum_of_isolated_racks():
    """With the shared loop unconstrained, composition adds nothing.

    Every rack's allocation equals its own chiller capacity and no
    facility events fire, so each rack's in-facility run must be
    *identical* (not just close) to an isolated RackSimulator run, and
    the facility totals must be exact sums.
    """
    n_racks = 3
    facility = FacilitySimulator(
        n_racks=n_racks, rack_factory=lambda: facility_rack(2)
    )
    result = facility.run(duration_s=300.0, dt_s=20.0)
    assert result.allocated_capacity_w == tuple(
        facility_rack(2).chiller.capacity_w for _ in range(n_racks)
    )
    isolated = []
    for _ in range(n_racks):
        simulator = RackSimulator(rack=facility_rack(2), supervisor=Supervisor())
        isolated.append(simulator.run(duration_s=300.0, dt_s=20.0))
    for in_facility, alone in zip(result.rack_results, isolated):
        assert in_facility.max_fpga_c == alone.max_fpga_c
        assert in_facility.max_water_c == alone.max_water_c
        assert in_facility.heat_rejected_j == alone.heat_rejected_j
        assert in_facility.final_state == alone.final_state
        assert in_facility.recovery_actions == alone.recovery_actions
    assert result.heat_rejected_j == sum(r.heat_rejected_j for r in isolated)
    assert result.max_fpga_c == max(r.max_fpga_c for r in isolated)
    assert result.max_water_c == max(r.max_water_c for r in isolated)


def test_error_capture_identical_up_to_executor_frames():
    """A failing case captures identically on every backend.

    ``error_traceback`` legitimately differs in executor frames, so the
    comparison covers everything else.
    """
    cases = smoke_cases(racks=2, modules=2, duration_s=100.0, dt_s=20.0)
    bad = cases[0].params.copy()
    bad["scenario"] = "does_not_exist"
    from repro.sweep import SweepCase

    mixed = [SweepCase(name="bad", params=bad)] + cases[1:3]
    records = {}
    for backend in BACKENDS:
        outcomes = run_sweep(
            evaluate_facility_case, mixed, backend=backend, on_error="capture"
        )
        records[backend] = [
            (o.case, o.index, o.value, o.ok, o.error) for o in outcomes
        ]
    assert records["thread"] == records["serial"]
    assert records["process"] == records["serial"]
    assert records["serial"][0][3] is False  # the bad case captured


class TestPinnedGoldens:
    """All three backends must reproduce the committed bytes."""

    @pytest.fixture(scope="class")
    def golden_payload(self):
        return (GOLDEN_DIR / "facility_sweep.json").read_text()

    @pytest.fixture(scope="class")
    def golden_metrics(self):
        return (GOLDEN_DIR / "facility_metrics.json").read_text()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_reproduces_goldens(
        self, backend, golden_payload, golden_metrics
    ):
        cases = smoke_cases()  # the script's defaults: 4 racks, 2 CMs
        with use_registry(MetricsRegistry()) as obs:
            outcomes = run_sweep(evaluate_facility_case, cases, backend=backend)
            metrics = to_json(obs, exclude=("sweep_backend_",))
        payload = json.dumps(
            [outcome.value for outcome in outcomes],
            sort_keys=True,
            separators=(",", ":"),
        )
        assert payload + "\n" == golden_payload, (
            "facility sweep payload drifted from tests/goldens/"
            "facility_sweep.json — regenerate with scripts/run_facility.py "
            "--out and review the diff"
        )
        assert metrics + "\n" == golden_metrics, (
            "facility metrics drifted from tests/goldens/"
            "facility_metrics.json — regenerate with scripts/run_facility.py "
            "--metrics-out and review the diff"
        )


def test_facility_case_values_are_canonical():
    """Sweep values are plain data already rounded for byte-stable JSON."""
    case = smoke_cases(racks=2, modules=2, duration_s=100.0, dt_s=20.0)[1]
    value = evaluate_facility_case(case)
    assert json.loads(json.dumps(value)) == value


def test_build_facility_fresh_state_per_case():
    """Two evaluations of one case share nothing and agree exactly."""
    case = smoke_cases(racks=2, modules=2, duration_s=100.0, dt_s=20.0)[0]
    assert evaluate_facility_case(case) == evaluate_facility_case(case)
    facility_a = build_facility(case.params)
    facility_b = build_facility(case.params)
    assert facility_a.loop is not facility_b.loop
