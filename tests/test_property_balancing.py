"""Hypothesis property tests for the hydraulic-balancing system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancing import ManifoldLayout, RackManifoldSystem


@given(n_loops=st.integers(min_value=2, max_value=10))
@settings(max_examples=9, deadline=None)
def test_reverse_return_symmetric_for_any_size(n_loops):
    flows = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.REVERSE_RETURN
    ).solve().loop_flows_m3_s
    for i in range(n_loops // 2):
        assert flows[i] == pytest.approx(flows[-1 - i], rel=1e-3)


@given(n_loops=st.integers(min_value=3, max_value=8))
@settings(max_examples=6, deadline=None)
def test_reverse_never_worse_than_direct(n_loops):
    reverse = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.REVERSE_RETURN
    ).solve()
    direct = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.DIRECT_RETURN
    ).solve()
    assert reverse.coefficient_of_variation <= direct.coefficient_of_variation + 1e-9


@given(
    n_loops=st.integers(min_value=3, max_value=7),
    failed=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_failure_conserves_mass_and_boosts_survivors(n_loops, failed):
    if failed >= n_loops:
        failed = n_loops - 1
    system = RackManifoldSystem(n_loops=n_loops)
    before = system.solve()
    system.fail_loop(failed)
    after = system.solve()
    assert after.loop_flows_m3_s[failed] == 0.0
    # Every survivor gains flow; the pump total falls (steeper system curve).
    for i in range(n_loops):
        if i == failed:
            continue
        assert after.loop_flows_m3_s[i] > before.loop_flows_m3_s[i]
    assert after.total_flow_m3_s < before.total_flow_m3_s
