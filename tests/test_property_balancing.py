"""Hypothesis property tests for the hydraulic-balancing system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancing import ManifoldLayout, RackManifoldSystem
from repro.facility.network import FacilityLoopSystem


@given(n_loops=st.integers(min_value=2, max_value=10))
@settings(max_examples=9, deadline=None)
def test_reverse_return_symmetric_for_any_size(n_loops):
    flows = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.REVERSE_RETURN
    ).solve().loop_flows_m3_s
    for i in range(n_loops // 2):
        assert flows[i] == pytest.approx(flows[-1 - i], rel=1e-3)


@given(n_loops=st.integers(min_value=3, max_value=8))
@settings(max_examples=6, deadline=None)
def test_reverse_never_worse_than_direct(n_loops):
    reverse = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.REVERSE_RETURN
    ).solve()
    direct = RackManifoldSystem(
        n_loops=n_loops, layout=ManifoldLayout.DIRECT_RETURN
    ).solve()
    assert reverse.coefficient_of_variation <= direct.coefficient_of_variation + 1e-9


@given(
    n_loops=st.integers(min_value=3, max_value=7),
    failed=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_failure_conserves_mass_and_boosts_survivors(n_loops, failed):
    if failed >= n_loops:
        failed = n_loops - 1
    system = RackManifoldSystem(n_loops=n_loops)
    before = system.solve()
    system.fail_loop(failed)
    after = system.solve()
    assert after.loop_flows_m3_s[failed] == 0.0
    # Every survivor gains flow; the pump total falls (steeper system curve).
    for i in range(n_loops):
        if i == failed:
            continue
        assert after.loop_flows_m3_s[i] > before.loop_flows_m3_s[i]
    assert after.total_flow_m3_s < before.total_flow_m3_s


# -- facility secondary loop (same hydraulic discipline, one scale up) -----


@given(n_racks=st.integers(min_value=2, max_value=8))
@settings(max_examples=7, deadline=None)
def test_facility_reverse_return_symmetric_branch_flows(n_racks):
    """Symmetric racks on a reverse-return header draw mirror-equal flows."""
    flows = FacilityLoopSystem(n_racks=n_racks).solve().loop_flows_m3_s
    assert all(f > 0.0 for f in flows)
    for i in range(n_racks // 2):
        assert flows[i] == pytest.approx(flows[-1 - i], rel=1e-3)


@given(n_racks=st.integers(min_value=2, max_value=8))
@settings(max_examples=7, deadline=None)
def test_facility_branch_flows_equal_within_header_imbalance(n_racks):
    """With identical racks every branch is within the layout's tight CV."""
    report = FacilityLoopSystem(n_racks=n_racks).solve()
    assert report.coefficient_of_variation < 0.10
    mean = report.total_flow_m3_s / n_racks
    for flow in report.loop_flows_m3_s:
        assert flow == pytest.approx(mean, rel=0.15)


@given(n_racks=st.integers(min_value=3, max_value=8))
@settings(max_examples=5, deadline=None)
def test_facility_reverse_never_worse_than_direct(n_racks):
    reverse = FacilityLoopSystem(
        n_racks=n_racks, layout=ManifoldLayout.REVERSE_RETURN
    ).solve()
    direct = FacilityLoopSystem(
        n_racks=n_racks, layout=ManifoldLayout.DIRECT_RETURN
    ).solve()
    assert reverse.coefficient_of_variation <= direct.coefficient_of_variation + 1e-9


@given(
    n_racks=st.integers(min_value=3, max_value=7),
    failed=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=8, deadline=None)
def test_facility_rack_failure_conserves_mass_and_boosts_survivors(
    n_racks, failed
):
    if failed >= n_racks:
        failed = n_racks - 1
    system = FacilityLoopSystem(n_racks=n_racks)
    before = system.solve()
    system.fail_rack(failed)
    after = system.solve()
    assert after.loop_flows_m3_s[failed] == 0.0
    for i in range(n_racks):
        if i == failed:
            continue
        assert after.loop_flows_m3_s[i] > before.loop_flows_m3_s[i]
    assert after.total_flow_m3_s < before.total_flow_m3_s
