"""Tests for the convection correlations."""

import math

import pytest

from repro.fluids.library import AIR, MINERAL_OIL_MD45, WATER
from repro.thermal import convection as cv


class TestReynolds:
    def test_definition(self):
        re = cv.reynolds(1.0, 0.01, WATER, 25.0)
        assert re == pytest.approx(0.01 / WATER.kinematic_viscosity(25.0))

    def test_rejects_negative_velocity(self):
        with pytest.raises(ValueError):
            cv.reynolds(-1.0, 0.01, WATER, 25.0)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            cv.reynolds(1.0, 0.0, WATER, 25.0)


class TestFlatPlate:
    def test_zero_reynolds_gives_zero(self):
        assert cv.nusselt_flat_plate(0.0, 0.7) == 0.0

    def test_laminar_value(self):
        # Nu = 0.664 sqrt(Re) Pr^(1/3)
        assert cv.nusselt_flat_plate(10000.0, 1.0) == pytest.approx(66.4)

    def test_scaling_with_sqrt_re_laminar(self):
        nu1 = cv.nusselt_flat_plate(1.0e4, 0.7)
        nu2 = cv.nusselt_flat_plate(4.0e4, 0.7)
        assert nu2 / nu1 == pytest.approx(2.0, rel=1e-6)

    def test_turbulent_beats_laminar_extrapolation(self):
        re = 1.0e6
        turbulent = cv.nusselt_flat_plate(re, 0.7)
        laminar_extrapolated = 0.664 * math.sqrt(re) * 0.7 ** (1 / 3)
        assert turbulent > laminar_extrapolated

    def test_rejects_bad_prandtl(self):
        with pytest.raises(ValueError):
            cv.nusselt_flat_plate(1000.0, 0.0)


class TestDuct:
    def test_laminar_constant(self):
        assert cv.nusselt_duct(1000.0, 5.0) == pytest.approx(3.66)

    def test_dittus_boelter_value(self):
        # Nu = 0.023 Re^0.8 Pr^0.4
        nu = cv.nusselt_dittus_boelter(1.0e4, 1.0)
        assert nu == pytest.approx(0.023 * 1.0e4 ** 0.8)

    def test_dittus_boelter_heating_vs_cooling(self):
        heating = cv.nusselt_dittus_boelter(1.0e4, 5.0, heating=True)
        cooling = cv.nusselt_dittus_boelter(1.0e4, 5.0, heating=False)
        assert heating > cooling

    def test_dittus_boelter_rejects_laminar(self):
        with pytest.raises(ValueError):
            cv.nusselt_dittus_boelter(1000.0, 5.0)

    def test_sieder_tate_viscosity_correction(self):
        base = cv.nusselt_sieder_tate(1.0e4, 5.0, 1.0)
        hot_wall = cv.nusselt_sieder_tate(1.0e4, 5.0, 2.0)
        assert hot_wall > base

    def test_duct_blend_is_continuous(self):
        # No jump across the transition band edges.
        lo = cv.nusselt_duct(2300.0, 5.0)
        just_above = cv.nusselt_duct(2301.0, 5.0)
        assert just_above == pytest.approx(lo, rel=0.01)
        hi = cv.nusselt_duct(4000.0, 5.0)
        just_below = cv.nusselt_duct(3999.0, 5.0)
        assert just_below == pytest.approx(hi, rel=0.01)


class TestPinBank:
    def test_monotone_in_reynolds(self):
        values = [cv.nusselt_pin_bank(re, 5.0) for re in (10.0, 40.0, 400.0, 4000.0)]
        assert values == sorted(values)

    def test_continuity_at_regime_boundaries(self):
        for boundary in (40.0, 1000.0):
            below = cv.nusselt_pin_bank(boundary * 0.999, 5.0)
            above = cv.nusselt_pin_bank(boundary * 1.001, 5.0)
            assert above == pytest.approx(below, rel=0.05)

    def test_turbulence_factor_scales_result(self):
        plain = cv.nusselt_pin_bank(100.0, 5.0, 1.0)
        solder = cv.nusselt_pin_bank(100.0, 5.0, 1.25)
        assert solder == pytest.approx(1.25 * plain)

    def test_zero_flow(self):
        assert cv.nusselt_pin_bank(0.0, 5.0) == 0.0


class TestNaturalConvection:
    def test_churchill_chu_still_air_plate(self):
        # 0.3 m plate, 30 K over ambient air: h ~ 4-6 W/m^2 K.
        film = cv.natural_vertical_film(30.0, 0.3, AIR, 25.0)
        assert 3.0 < film.h_w_m2k < 8.0

    def test_oil_natural_convection_much_stronger_than_air(self):
        oil = cv.natural_vertical_film(25.0, 0.06, MINERAL_OIL_MD45, 30.0)
        air = cv.natural_vertical_film(25.0, 0.06, AIR, 30.0)
        assert oil.h_w_m2k > 10.0 * air.h_w_m2k

    def test_rayleigh_positive_and_scales_with_cube_of_length(self):
        ra1 = cv.rayleigh(10.0, 0.1, AIR, 25.0)
        ra2 = cv.rayleigh(10.0, 0.2, AIR, 25.0)
        assert ra2 / ra1 == pytest.approx(8.0, rel=1e-6)

    def test_expansion_coefficient_air_matches_ideal_gas(self):
        beta = cv.expansion_coefficient(AIR, 25.0)
        assert beta == pytest.approx(1.0 / 298.15, rel=0.01)

    def test_expansion_coefficient_oil_positive(self):
        assert cv.expansion_coefficient(MINERAL_OIL_MD45, 30.0) > 0


class TestFins:
    def test_pin_fin_efficiency_bounds(self):
        eta = cv.pin_fin_efficiency(2000.0, 0.002, 0.008, 390.0)
        assert 0.0 < eta < 1.0

    def test_pin_fin_short_fin_near_unity(self):
        eta = cv.pin_fin_efficiency(10.0, 0.002, 0.0001, 390.0)
        assert eta == pytest.approx(1.0, abs=1e-3)

    def test_pin_fin_efficiency_falls_with_height(self):
        short = cv.pin_fin_efficiency(2000.0, 0.002, 0.004, 390.0)
        tall = cv.pin_fin_efficiency(2000.0, 0.002, 0.016, 390.0)
        assert tall < short

    def test_straight_fin_efficiency_bounds(self):
        eta = cv.straight_fin_efficiency(30.0, 0.001, 0.03, 200.0)
        assert 0.0 < eta <= 1.0

    def test_better_conductor_better_fin(self):
        aluminum = cv.pin_fin_efficiency(2000.0, 0.002, 0.008, 200.0)
        copper = cv.pin_fin_efficiency(2000.0, 0.002, 0.008, 390.0)
        assert copper > aluminum


class TestFilmResult:
    def test_resistance(self):
        film = cv.flat_plate_film(2.0, 0.05, AIR, 25.0)
        r = film.resistance(0.01)
        assert r == pytest.approx(1.0 / (film.h_w_m2k * 0.01))

    def test_resistance_rejects_bad_area(self):
        film = cv.flat_plate_film(2.0, 0.05, AIR, 25.0)
        with pytest.raises(ValueError):
            film.resistance(0.0)

    def test_paper_70x_heat_flow_claim(self):
        """Section 2: heat flow ~70x more intensive for liquid cooling at
        conventional agent velocities (air ~3 m/s, water ~0.5 m/s)."""
        air = cv.flat_plate_film(3.0, 0.04, AIR, 25.0)
        water = cv.flat_plate_film(0.5, 0.04, WATER, 25.0)
        ratio = water.h_w_m2k / air.h_w_m2k
        assert 40.0 < ratio < 120.0
