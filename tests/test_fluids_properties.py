"""Unit tests for the fluid property models."""

import math

import pytest

from repro.fluids.properties import (
    Andrade,
    CELSIUS_TO_KELVIN,
    Constant,
    Fluid,
    IdealGasDensity,
    Polynomial,
    Sutherland,
)


class TestPropertyModels:
    def test_constant_returns_value_at_any_temperature(self):
        model = Constant(42.0)
        assert model(0.0) == 42.0
        assert model(-10.0) == 42.0
        assert model(99.0) == 42.0

    def test_polynomial_constant_term(self):
        model = Polynomial((5.0,))
        assert model(30.0) == 5.0

    def test_polynomial_linear(self):
        model = Polynomial((1.0, 2.0))
        assert model(3.0) == pytest.approx(7.0)

    def test_polynomial_quadratic(self):
        model = Polynomial((1.0, 0.0, 2.0))
        assert model(3.0) == pytest.approx(19.0)

    def test_andrade_decreases_with_temperature(self):
        model = Andrade(a=1.0e-5, b=1000.0)
        assert model(20.0) > model(60.0) > model(90.0)

    def test_andrade_vogel_offset(self):
        plain = Andrade(a=1.0e-5, b=1000.0, c=0.0)
        vogel = Andrade(a=1.0e-5, b=1000.0, c=150.0)
        # The offset steepens the temperature dependence.
        ratio_plain = plain(20.0) / plain(60.0)
        ratio_vogel = vogel(20.0) / vogel(60.0)
        assert ratio_vogel > ratio_plain

    def test_sutherland_increases_with_temperature(self):
        model = Sutherland(mu_ref=1.716e-5, t_ref_k=273.15, s=110.4)
        # Gas viscosity rises with temperature, unlike liquids.
        assert model(80.0) > model(20.0) > model(-20.0)

    def test_sutherland_reference_point(self):
        model = Sutherland(mu_ref=1.716e-5, t_ref_k=273.15, s=110.4)
        assert model(0.0) == pytest.approx(1.716e-5, rel=1e-12)

    def test_ideal_gas_density_at_standard_conditions(self):
        model = IdealGasDensity()
        # Dry air at 15 C, 1 atm: 1.225 kg/m^3.
        assert model(15.0) == pytest.approx(1.225, rel=0.01)

    def test_ideal_gas_density_falls_with_temperature(self):
        model = IdealGasDensity()
        assert model(50.0) < model(0.0)


def _simple_fluid(**overrides):
    defaults = dict(
        name="testfluid",
        density_model=Constant(1000.0),
        specific_heat_model=Constant(4000.0),
        conductivity_model=Constant(0.6),
        viscosity_model=Constant(1.0e-3),
        dielectric=False,
        t_min_c=0.0,
        t_max_c=100.0,
    )
    defaults.update(overrides)
    return Fluid(**defaults)


class TestFluid:
    def test_property_accessors(self):
        fluid = _simple_fluid()
        assert fluid.density(50.0) == 1000.0
        assert fluid.specific_heat(50.0) == 4000.0
        assert fluid.conductivity(50.0) == 0.6
        assert fluid.viscosity(50.0) == 1.0e-3

    def test_kinematic_viscosity(self):
        fluid = _simple_fluid()
        assert fluid.kinematic_viscosity(50.0) == pytest.approx(1.0e-6)

    def test_prandtl(self):
        fluid = _simple_fluid()
        assert fluid.prandtl(50.0) == pytest.approx(1.0e-3 * 4000.0 / 0.6)

    def test_volumetric_heat_capacity(self):
        fluid = _simple_fluid()
        assert fluid.volumetric_heat_capacity(50.0) == pytest.approx(4.0e6)

    def test_thermal_diffusivity(self):
        fluid = _simple_fluid()
        assert fluid.thermal_diffusivity(50.0) == pytest.approx(0.6 / 4.0e6)

    def test_out_of_range_raises(self):
        fluid = _simple_fluid()
        with pytest.raises(ValueError, match="validity range"):
            fluid.density(150.0)
        with pytest.raises(ValueError, match="validity range"):
            fluid.viscosity(-5.0)

    def test_volume_flow_for_heat(self):
        fluid = _simple_fluid()
        # 4 kW with a 1 K rise needs 1 L/s at rho*cp = 4e6.
        flow = fluid.volume_flow_for_heat(4000.0, 1.0, 50.0)
        assert flow == pytest.approx(1.0e-3)

    def test_volume_flow_rejects_bad_inputs(self):
        fluid = _simple_fluid()
        with pytest.raises(ValueError):
            fluid.volume_flow_for_heat(-1.0, 1.0, 50.0)
        with pytest.raises(ValueError):
            fluid.volume_flow_for_heat(100.0, 0.0, 50.0)

    def test_heat_capacity_rate(self):
        fluid = _simple_fluid()
        assert fluid.heat_capacity_rate(1.0e-3, 50.0) == pytest.approx(4000.0)

    def test_celsius_kelvin_constant(self):
        assert CELSIUS_TO_KELVIN == pytest.approx(273.15)

    def test_flash_point_defaults_to_nonflammable(self):
        fluid = _simple_fluid()
        assert math.isinf(fluid.flash_point_c)
