"""Tests for the closed-loop cold-plate contrast case."""

import pytest

from repro.core.coldplate import ColdPlateModule, PlateStyle, dew_point_c
from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.devices.fpga import Fpga


def module(**overrides):
    return ColdPlateModule(ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095)), **overrides)


class TestDewPoint:
    def test_known_value(self):
        # 25 C at 55 % RH: dew point ~15.5 C.
        assert dew_point_c(25.0, 0.55) == pytest.approx(15.5, abs=0.7)

    def test_dry_air_lower_dew_point(self):
        assert dew_point_c(25.0, 0.3) < dew_point_c(25.0, 0.7)

    def test_rejects_bad_humidity(self):
        with pytest.raises(ValueError):
            dew_point_c(25.0, 0.0)


class TestThermal:
    def test_water_cooling_is_thermally_excellent(self):
        """Cold plates cool well — that was never the problem."""
        report = module().solve()
        assert report.max_junction_c < 60.0

    def test_per_chip_beats_per_board(self):
        per_chip = module(style=PlateStyle.PER_CHIP).solve()
        per_board = module(style=PlateStyle.PER_BOARD).solve()
        assert per_chip.n_pressure_tight_connections > per_board.n_pressure_tight_connections


class TestRiskLedger:
    def test_connection_count_large(self):
        """Section 2: 'a rather complex piping system and a large number of
        pressure-tight connections'."""
        report = module(style=PlateStyle.PER_CHIP).solve()
        # 12 boards x 9 plates x 2 + manifolds: hundreds.
        assert report.n_pressure_tight_connections > 200

    def test_leak_sensors_required(self):
        """'The control and monitoring systems of such computers always
        contain many internal humidity and leak sensors.'"""
        report = module().solve()
        assert report.n_leak_sensors >= 13

    def test_condensation_risk_with_cold_water_humid_room(self):
        risky = module(supply_water_c=12.0, room_relative_humidity=0.7).solve()
        assert risky.condensation_risk

    def test_no_condensation_with_warm_water(self):
        safe = module(supply_water_c=20.0, room_relative_humidity=0.5).solve()
        assert not safe.condensation_risk

    def test_pump_pressure_positive(self):
        assert module().solve().pump_pressure_pa > 0.0


class TestValidation:
    def test_rejects_bad_velocity(self):
        with pytest.raises(ValueError):
            module(water_velocity_m_s=0.0)
