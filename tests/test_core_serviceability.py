"""Tests for the serviceability model."""

import pytest

from repro.core.serviceability import (
    Architecture,
    SERVICE_CATALOG,
    ServiceOperation,
    annual_service_score,
    render_runbook,
    service_comparison,
)


class TestCatalog:
    def test_every_architecture_has_three_operations(self):
        for architecture in Architecture:
            assert len(SERVICE_CATALOG[architecture]) == 3

    def test_operations_have_steps(self):
        for catalog in SERVICE_CATALOG.values():
            for op in catalog:
                assert len(op.steps) >= 1

    def test_coldplate_board_swap_needs_dry_out(self):
        """Section 2: after a closed-loop intervention 'the power supply
        system must be tested and dried up' — downtime far exceeds
        hands-on time."""
        board_op = SERVICE_CATALOG[Architecture.COLD_PLATE][0]
        assert board_op.module_downtime_h > 2.0 * board_op.duration_h

    def test_immersion_board_swap_fast(self):
        """The paper's design goal: board maintenance 'without any
        significant demounting'."""
        immersion = SERVICE_CATALOG[Architecture.IMMERSION][0]
        coldplate = SERVICE_CATALOG[Architecture.COLD_PLATE][0]
        assert immersion.module_downtime_h < 0.25 * coldplate.module_downtime_h

    def test_immersion_never_stops_the_rack(self):
        """Fig. 5: valving one CM off redistributes flow evenly; the other
        CMs keep running."""
        for op in SERVICE_CATALOG[Architecture.IMMERSION]:
            assert op.rack_downtime_h == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceOperation("bad", 2.0, 1.0, 0.0, ("step",))
        with pytest.raises(ValueError):
            ServiceOperation("bad", -1.0, 1.0, 0.0, ("step",))


class TestScores:
    def test_ordering_air_immersion_coldplate(self):
        """Air is trivially serviceable; immersion close behind;
        cold plates far worst — the paper's Section 2 ranking."""
        scores = service_comparison()
        air = scores[Architecture.AIR].annual_module_downtime_h
        immersion = scores[Architecture.IMMERSION].annual_module_downtime_h
        coldplate = scores[Architecture.COLD_PLATE].annual_module_downtime_h
        assert air < immersion < coldplate
        assert coldplate > 4.0 * immersion

    def test_rates_scale_scores(self):
        quiet = annual_service_score(Architecture.IMMERSION, 0.0, 0.0)
        busy = annual_service_score(Architecture.IMMERSION, 6.0, 2.0)
        assert busy.annual_module_downtime_h > quiet.annual_module_downtime_h

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            annual_service_score(Architecture.AIR, -1.0)


class TestRunbook:
    def test_render_contains_steps(self):
        text = render_runbook(Architecture.IMMERSION)
        assert "Fig. 5" in text
        assert "1." in text
