"""Tests for the heatsink designs."""

import pytest

from repro.core.heatsink import (
    BarePlate,
    PinFinHeatSink,
    SOLDER_PIN_TURBULENCE_FACTOR,
    StraightFinAirSink,
)
from repro.fluids.library import AIR, MINERAL_OIL_MD45


class TestPinFinGeometry:
    def test_pin_count(self):
        sink = PinFinHeatSink(
            base_width_m=0.060, base_depth_m=0.060, pin_pitch_m=0.004
        )
        assert sink.pins_across == 15
        assert sink.pin_rows == 15
        assert sink.n_pins == 225

    def test_wetted_area_exceeds_base(self):
        sink = PinFinHeatSink()
        assert sink.wetted_area_m2 > 2.5 * sink.base_area_m2

    def test_low_height(self):
        """The 'low-height heatsink' of the SKAT CCB."""
        sink = PinFinHeatSink()
        assert sink.height_m <= 0.015

    def test_interpin_velocity_amplification(self):
        sink = PinFinHeatSink(pin_diameter_m=0.002, pin_pitch_m=0.004)
        assert sink.max_interpin_velocity(0.2) == pytest.approx(0.4)

    def test_rejects_pitch_below_diameter(self):
        with pytest.raises(ValueError):
            PinFinHeatSink(pin_diameter_m=0.004, pin_pitch_m=0.003)

    def test_rejects_source_bigger_than_base(self):
        with pytest.raises(ValueError):
            PinFinHeatSink(base_width_m=0.02, base_depth_m=0.02, source_area_m2=0.01)


class TestPinFinPerformance:
    def test_skat_class_resistance(self):
        """The calibrated SKAT design point: ~0.1-0.2 K/W from sink base to
        oil at the CM's board velocity."""
        sink = PinFinHeatSink()
        perf = sink.performance(0.18, MINERAL_OIL_MD45, 29.0)
        assert 0.05 < perf.total_resistance_k_w < 0.25

    def test_more_flow_less_resistance(self):
        sink = PinFinHeatSink()
        slow = sink.performance(0.05, MINERAL_OIL_MD45, 30.0)
        fast = sink.performance(0.4, MINERAL_OIL_MD45, 30.0)
        assert fast.total_resistance_k_w < slow.total_resistance_k_w

    def test_more_flow_more_pressure_drop(self):
        sink = PinFinHeatSink()
        slow = sink.performance(0.05, MINERAL_OIL_MD45, 30.0)
        fast = sink.performance(0.4, MINERAL_OIL_MD45, 30.0)
        assert fast.pressure_drop_pa > slow.pressure_drop_pa

    def test_solder_pins_beat_plain_pins(self):
        """The paper's 'original solder pins' enhancement must show up as a
        lower thermal resistance at equal geometry and flow."""
        plain = PinFinHeatSink(turbulence_factor=1.0)
        solder = PinFinHeatSink(turbulence_factor=SOLDER_PIN_TURBULENCE_FACTOR)
        v = 0.18
        assert (
            solder.performance(v, MINERAL_OIL_MD45, 30.0).total_resistance_k_w
            < plain.performance(v, MINERAL_OIL_MD45, 30.0).total_resistance_k_w
        )

    def test_zero_flow_stagnant(self):
        sink = PinFinHeatSink()
        perf = sink.performance(0.0, MINERAL_OIL_MD45, 30.0)
        assert perf.pressure_drop_pa == 0.0
        assert perf.effective_conductance_w_k == 0.0

    def test_fin_efficiency_in_bounds(self):
        perf = PinFinHeatSink().performance(0.18, MINERAL_OIL_MD45, 30.0)
        assert 0.3 < perf.fin_efficiency <= 1.0


class TestBarePlate:
    def test_far_worse_than_pin_sink(self):
        """Why a bare package cannot shed 100 W in oil — the failure of the
        naive immersion products the paper criticises."""
        bare = BarePlate()
        sink = PinFinHeatSink()
        v = 0.18
        r_bare = bare.performance(v, MINERAL_OIL_MD45, 30.0).total_resistance_k_w
        r_sink = sink.performance(v, MINERAL_OIL_MD45, 30.0).total_resistance_k_w
        assert r_bare > 3.0 * r_sink

    def test_wetted_area_is_package_top(self):
        bare = BarePlate(width_m=0.0425, depth_m=0.0425)
        assert bare.wetted_area_m2 == pytest.approx(0.0425 ** 2)


class TestStraightFinAirSink:
    def test_fin_count(self):
        sink = StraightFinAirSink(
            base_width_m=0.060, fin_thickness_m=0.001, fin_gap_m=0.003
        )
        assert sink.n_fins == 15

    def test_air_resistance_realistic(self):
        """A 60 mm air sink at a few m/s: 0.5-1.0 K/W class."""
        sink = StraightFinAirSink()
        perf = sink.performance(4.0, AIR, 25.0)
        assert 0.3 < perf.total_resistance_k_w < 1.2

    def test_oil_pin_sink_beats_air_sink_by_order_of_magnitude(self):
        air = StraightFinAirSink().performance(4.0, AIR, 25.0)
        oil = PinFinHeatSink().performance(0.18, MINERAL_OIL_MD45, 30.0)
        assert air.total_resistance_k_w > 3.0 * oil.total_resistance_k_w

    def test_zero_velocity_stagnant(self):
        perf = StraightFinAirSink().performance(0.0, AIR, 25.0)
        assert perf.effective_conductance_w_k == 0.0
