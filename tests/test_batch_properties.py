"""Property tests: lane independence of the batched engines.

The structure-of-arrays engines advance every scenario lane with
elementwise arithmetic and per-lane masks, so three exact (bitwise)
equivariances must hold for any inputs:

- **duplicates** — a batch of N identical scenarios returns N identical
  rows;
- **permutation** — permuting the scenario lanes permutes the result rows
  and changes nothing else;
- **slicing** — solving a contiguous slice of the batch inputs equals the
  same slice of the full batch solve.

Hypothesis drives the scenario generator with random seeds; the checks
compare float arrays with ``==``, not a tolerance — lane coupling of any
magnitude is a bug, because it would break the batched==serial
differential contract for *some* batch composition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.manifold import solve_manifold_batch
from repro.batch.steady import solve_module_steady_batch
from repro.batch.transient import run_module_transient_batch
from repro.core.balancing import RackManifoldSystem
from repro.core.skat import skat

#: Shared templates: the engines read them, never mutate them.
MODULE = skat()
TEMPLATE = RackManifoldSystem()

COMMON = dict(deadline=None, max_examples=8)

seeds = st.integers(0, 2**32 - 1)
widths = st.integers(2, 6)


# -- scenario generators ----------------------------------------------------


def _steady_inputs(rng, n):
    return (
        rng.uniform(15.0, 26.0, size=n),
        rng.uniform(5.0e-4, 1.2e-3, size=n),
        rng.uniform(0.6, 1.0, size=n),
    )


def _steady_rows(batch):
    assert batch.ok.all()
    return np.column_stack(
        [
            batch.oil_cold_c,
            batch.oil_hot_c,
            batch.oil_flow_m3_s,
            batch.pump_electrical_w,
            batch.hx.q_w,
            batch.immersion.max_junction_c,
        ]
    )


def _manifold_inputs(rng, n):
    return (
        rng.uniform(0.3, 1.0, size=(n, TEMPLATE.n_loops)),
        rng.uniform(0.7, 1.0, size=n),
        rng.uniform(15.0, 35.0, size=n),
    )


def _manifold_rows(batch):
    assert batch.ok.all()
    return np.column_stack(
        [batch.loop_flows_m3_s, batch.pressures_pa, batch.pump_flow_m3_s]
    )


def _transient_rows(batch):
    assert batch.ok.all()
    return np.concatenate(
        [batch.channels[name] for name in sorted(batch.channels)]
        + [batch.max_junction_c[None, :], batch.max_oil_c[None, :]]
    ).T


def _run_transient(water_in):
    n = water_in.shape[0]
    return run_module_transient_batch(
        MODULE, 300.0, [[] for _ in range(n)], dt_s=30.0, water_in_c=water_in
    )


# -- duplicates -------------------------------------------------------------


@settings(**COMMON)
@given(seeds, widths)
def test_steady_duplicates_identical(seed, n):
    rng = np.random.default_rng(seed)
    water_in, water_flow, util = _steady_inputs(rng, 1)
    batch = solve_module_steady_batch(
        MODULE,
        np.full(n, water_in[0]),
        np.full(n, water_flow[0]),
        utilization=np.full(n, util[0]),
    )
    rows = _steady_rows(batch)
    assert (rows == rows[0]).all()


@settings(**COMMON)
@given(seeds, widths)
def test_manifold_duplicates_identical(seed, n):
    rng = np.random.default_rng(seed)
    openings, speeds, temps = _manifold_inputs(rng, 1)
    batch = solve_manifold_batch(
        TEMPLATE,
        np.tile(openings, (n, 1)),
        pump_speed_fraction=np.full(n, speeds[0]),
        temperature_c=np.full(n, temps[0]),
    )
    rows = _manifold_rows(batch)
    assert (rows == rows[0]).all()


@settings(**COMMON)
@given(seeds, widths)
def test_transient_duplicates_identical(seed, n):
    rng = np.random.default_rng(seed)
    water_in = float(rng.uniform(16.0, 26.0))
    rows = _transient_rows(_run_transient(np.full(n, water_in)))
    assert (rows == rows[0]).all()


# -- permutation invariance -------------------------------------------------


@settings(**COMMON)
@given(seeds, widths)
def test_steady_permutation_invariant(seed, n):
    rng = np.random.default_rng(seed)
    water_in, water_flow, util = _steady_inputs(rng, n)
    perm = rng.permutation(n)
    base = solve_module_steady_batch(
        MODULE, water_in, water_flow, utilization=util
    )
    shuffled = solve_module_steady_batch(
        MODULE, water_in[perm], water_flow[perm], utilization=util[perm]
    )
    assert (_steady_rows(shuffled) == _steady_rows(base)[perm]).all()


@settings(**COMMON)
@given(seeds, widths)
def test_manifold_permutation_invariant(seed, n):
    rng = np.random.default_rng(seed)
    openings, speeds, temps = _manifold_inputs(rng, n)
    perm = rng.permutation(n)
    base = solve_manifold_batch(
        TEMPLATE, openings, pump_speed_fraction=speeds, temperature_c=temps
    )
    shuffled = solve_manifold_batch(
        TEMPLATE,
        openings[perm],
        pump_speed_fraction=speeds[perm],
        temperature_c=temps[perm],
    )
    assert (_manifold_rows(shuffled) == _manifold_rows(base)[perm]).all()


@settings(**COMMON)
@given(seeds, widths)
def test_transient_permutation_invariant(seed, n):
    rng = np.random.default_rng(seed)
    water_in = rng.uniform(16.0, 26.0, size=n)
    perm = rng.permutation(n)
    base = _transient_rows(_run_transient(water_in))
    shuffled = _transient_rows(_run_transient(water_in[perm]))
    assert (shuffled == base[perm]).all()


# -- slicing ----------------------------------------------------------------


@st.composite
def slices(draw):
    n = draw(st.integers(3, 7))
    lo = draw(st.integers(0, n - 2))
    hi = draw(st.integers(lo + 1, n - 1))
    return n, lo, hi


@settings(**COMMON)
@given(seeds, slices())
def test_steady_slice_equals_solved_slice(seed, spec):
    n, lo, hi = spec
    rng = np.random.default_rng(seed)
    water_in, water_flow, util = _steady_inputs(rng, n)
    full = solve_module_steady_batch(MODULE, water_in, water_flow, utilization=util)
    part = solve_module_steady_batch(
        MODULE, water_in[lo:hi], water_flow[lo:hi], utilization=util[lo:hi]
    )
    assert (_steady_rows(part) == _steady_rows(full)[lo:hi]).all()


@settings(**COMMON)
@given(seeds, slices())
def test_manifold_slice_equals_solved_slice(seed, spec):
    n, lo, hi = spec
    rng = np.random.default_rng(seed)
    openings, speeds, temps = _manifold_inputs(rng, n)
    full = solve_manifold_batch(
        TEMPLATE, openings, pump_speed_fraction=speeds, temperature_c=temps
    )
    part = solve_manifold_batch(
        TEMPLATE,
        openings[lo:hi],
        pump_speed_fraction=speeds[lo:hi],
        temperature_c=temps[lo:hi],
    )
    assert (_manifold_rows(part) == _manifold_rows(full)[lo:hi]).all()


@settings(**COMMON)
@given(seeds, slices())
def test_transient_slice_equals_solved_slice(seed, spec):
    n, lo, hi = spec
    rng = np.random.default_rng(seed)
    water_in = rng.uniform(16.0, 26.0, size=n)
    full = _transient_rows(_run_transient(water_in))
    part = _transient_rows(_run_transient(water_in[lo:hi]))
    assert (part == full[lo:hi]).all()
