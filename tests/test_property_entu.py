"""Hypothesis property tests for the effectiveness-NTU relations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heatexchange.entu import (
    FlowArrangement,
    effectiveness,
    effectiveness_counterflow,
    effectiveness_parallel,
    ntu_counterflow_from_effectiveness,
)

NTU = st.floats(min_value=0.0, max_value=50.0)
CR = st.floats(min_value=0.0, max_value=1.0)


@given(ntu=NTU, c_r=CR)
def test_effectiveness_bounded(ntu, c_r):
    for arrangement in FlowArrangement:
        eps = effectiveness(ntu, c_r, arrangement)
        assert 0.0 <= eps <= 1.0


@given(ntu_low=NTU, ntu_high=NTU, c_r=CR)
def test_counterflow_monotone_in_ntu(ntu_low, ntu_high, c_r):
    if ntu_low > ntu_high:
        ntu_low, ntu_high = ntu_high, ntu_low
    assert effectiveness_counterflow(ntu_low, c_r) <= effectiveness_counterflow(
        ntu_high, c_r
    ) + 1e-12


@given(ntu=NTU, cr_low=CR, cr_high=CR)
def test_counterflow_monotone_decreasing_in_cr(ntu, cr_low, cr_high):
    """More capacity imbalance (lower Cr) always helps effectiveness."""
    if cr_low > cr_high:
        cr_low, cr_high = cr_high, cr_low
    assert effectiveness_counterflow(ntu, cr_high) <= effectiveness_counterflow(
        ntu, cr_low
    ) + 1e-12


@given(ntu=NTU, c_r=CR)
def test_counterflow_dominates_parallel(ntu, c_r):
    assert effectiveness_counterflow(ntu, c_r) >= effectiveness_parallel(ntu, c_r) - 1e-12


@given(ntu=st.floats(min_value=1e-3, max_value=20.0), c_r=CR)
def test_inverse_roundtrip(ntu, c_r):
    eps = effectiveness_counterflow(ntu, c_r)
    if eps < 1.0 - 1e-12:
        recovered = ntu_counterflow_from_effectiveness(eps, c_r)
        assert recovered == pytest.approx(ntu, rel=1e-6, abs=1e-9)
