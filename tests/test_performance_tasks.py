"""Tests for the information-graph workload model."""

import pytest

from repro.devices.families import KINTEX_ULTRASCALE_KU095, VIRTEX6_LX240T
from repro.performance.tasks import (
    InformationGraph,
    MappingError,
    Operation,
    map_graph_to_field,
)


def fir_tap_graph(taps=4):
    """A small FIR-filter-like information graph: taps multiplies feeding
    an adder chain."""
    graph = InformationGraph("fir")
    for i in range(taps):
        graph.add(Operation(f"mul{i}", "mul"))
    previous = "mul0"
    for i in range(1, taps):
        graph.add(Operation(f"add{i}", "add", inputs=(previous, f"mul{i}")))
        previous = f"add{i}"
    return graph


class TestGraphConstruction:
    def test_size_and_cost(self):
        graph = fir_tap_graph(4)
        assert len(graph) == 7
        assert graph.total_cost_cells == 4 * 700 + 3 * 550

    def test_depth(self):
        graph = fir_tap_graph(4)
        # mul (1) -> add1 (2) -> add2 (3) -> add3 (4).
        assert graph.depth() == 4

    def test_duplicate_rejected(self):
        graph = fir_tap_graph()
        with pytest.raises(MappingError, match="duplicate"):
            graph.add(Operation("mul0", "mul"))

    def test_unknown_dependency_rejected(self):
        graph = InformationGraph("g")
        with pytest.raises(MappingError, match="unknown"):
            graph.add(Operation("a", "add", inputs=("ghost",)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(MappingError, match="unknown operation kind"):
            Operation("a", "transmogrify")

    def test_add_chain(self):
        graph = InformationGraph("chain")
        last = graph.add_chain("stage", ["mul", "add", "add"])
        assert last == "stage_2"
        assert len(graph) == 3
        assert graph.depth() == 3


class TestMapping:
    def test_replication_fills_field(self):
        graph = fir_tap_graph(8)
        mapping = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=8)
        assert mapping.replicas >= 1
        assert mapping.utilization <= 0.9
        # Near the target: adding one more replica would overflow.
        per_replica = graph.total_cost_cells
        budget = KINTEX_ULTRASCALE_KU095.logic_cells * 8 * 0.9
        assert (mapping.replicas + 1) * per_replica > budget

    def test_throughput_formula(self):
        graph = fir_tap_graph(8)
        mapping = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=8)
        expected = mapping.replicas * len(graph) * mapping.clock_mhz * 1.0e6 / 1.0e9
        assert mapping.throughput_gflops == pytest.approx(expected)

    def test_bigger_family_more_throughput(self):
        graph = fir_tap_graph(8)
        old = map_graph_to_field(graph, VIRTEX6_LX240T, n_fpgas=8)
        new = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=8)
        assert new.throughput_gflops > 3.0 * old.throughput_gflops

    def test_latency(self):
        graph = fir_tap_graph(4)
        mapping = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=1)
        assert mapping.latency_us == pytest.approx(graph.depth() / mapping.clock_mhz)

    def test_too_big_graph_rejected(self):
        graph = InformationGraph("huge")
        for i in range(200):
            graph.add(Operation(f"div{i}", "div"))
        with pytest.raises(MappingError, match="cells"):
            map_graph_to_field(graph, VIRTEX6_LX240T, n_fpgas=1, target_utilization=0.9)

    def test_empty_graph_rejected(self):
        with pytest.raises(MappingError, match="empty"):
            map_graph_to_field(InformationGraph("e"), VIRTEX6_LX240T, 1)

    def test_clock_derate(self):
        graph = fir_tap_graph(4)
        full = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, 1, clock_derate=1.0)
        derated = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, 1, clock_derate=0.8)
        assert derated.clock_mhz == pytest.approx(0.8 * full.clock_mhz)
