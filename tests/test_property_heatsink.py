"""Hypothesis property tests for the heatsink models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heatsink import PinFinHeatSink, StraightFinAirSink
from repro.fluids.library import AIR, MINERAL_OIL_MD45

VELOCITY = st.floats(min_value=0.02, max_value=1.0)
OIL_TEMP = st.floats(min_value=15.0, max_value=60.0)


@st.composite
def pin_sinks(draw):
    pitch = draw(st.floats(min_value=0.003, max_value=0.006))
    diameter = draw(st.floats(min_value=0.0015, max_value=pitch * 0.7))
    height = draw(st.floats(min_value=0.004, max_value=0.012))
    return PinFinHeatSink(
        pin_pitch_m=pitch, pin_diameter_m=diameter, pin_height_m=height
    )


@given(sink=pin_sinks(), v1=VELOCITY, v2=VELOCITY, temp=OIL_TEMP)
@settings(max_examples=60)
def test_resistance_monotone_in_velocity(sink, v1, v2, temp):
    if v1 > v2:
        v1, v2 = v2, v1
    r1 = sink.performance(v1, MINERAL_OIL_MD45, temp).total_resistance_k_w
    r2 = sink.performance(v2, MINERAL_OIL_MD45, temp).total_resistance_k_w
    assert r2 <= r1 * (1.0 + 1e-9)


@given(sink=pin_sinks(), v1=VELOCITY, v2=VELOCITY, temp=OIL_TEMP)
@settings(max_examples=60)
def test_pressure_drop_monotone_in_velocity(sink, v1, v2, temp):
    if v1 > v2:
        v1, v2 = v2, v1
    dp1 = sink.performance(v1, MINERAL_OIL_MD45, temp).pressure_drop_pa
    dp2 = sink.performance(v2, MINERAL_OIL_MD45, temp).pressure_drop_pa
    assert dp2 >= dp1


@given(sink=pin_sinks(), velocity=VELOCITY, temp=OIL_TEMP)
@settings(max_examples=60)
def test_performance_quantities_physical(sink, velocity, temp):
    perf = sink.performance(velocity, MINERAL_OIL_MD45, temp)
    assert 0.0 < perf.fin_efficiency <= 1.0
    assert perf.effective_conductance_w_k > 0.0
    assert perf.spreading_resistance_k_w >= 0.0
    assert perf.wetted_area_m2 > sink.base_area_m2


@given(sink=pin_sinks(), velocity=VELOCITY, temp=OIL_TEMP)
@settings(max_examples=40)
def test_turbulence_factor_always_helps(sink, velocity, temp):
    from dataclasses import replace

    plain = replace(sink, turbulence_factor=1.0)
    enhanced = replace(sink, turbulence_factor=1.25)
    r_plain = plain.performance(velocity, MINERAL_OIL_MD45, temp).total_resistance_k_w
    r_enhanced = enhanced.performance(
        velocity, MINERAL_OIL_MD45, temp
    ).total_resistance_k_w
    assert r_enhanced < r_plain


@given(
    velocity=st.floats(min_value=1.0, max_value=10.0),
    temp=st.floats(min_value=15.0, max_value=45.0),
)
@settings(max_examples=40)
def test_air_sink_far_weaker_than_oil_sink(velocity, temp):
    air = StraightFinAirSink().performance(velocity, AIR, temp)
    oil = PinFinHeatSink().performance(0.18, MINERAL_OIL_MD45, 30.0)
    assert air.total_resistance_k_w > oil.total_resistance_k_w
