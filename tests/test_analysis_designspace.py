"""Tests for the design-space explorer."""

import pytest

from repro.analysis.designspace import (
    DesignPoint,
    evaluate_point,
    pareto_frontier,
    sweep,
)


@pytest.fixture(scope="module")
def small_sweep():
    return sweep(
        n_boards_options=(12, 14),
        pin_heights_m=(0.005, 0.007),
        pin_pitches_m=(0.004,),
        pump_shutoffs_pa=(35.0e3, 55.0e3),
    )


class TestEvaluate:
    def test_skat_point_feasible(self):
        point = evaluate_point(12, 0.007, 0.004, 45.0e3)
        assert point.feasible
        assert point.max_fpga_c == pytest.approx(55.0, abs=2.0)

    def test_label(self):
        point = evaluate_point(12, 0.007, 0.004, 45.0e3)
        assert point.label == "12b/pin7mm/pitch4.0mm/45kPa"

    def test_more_boards_run_hotter(self):
        twelve = evaluate_point(12, 0.007, 0.004, 45.0e3)
        sixteen = evaluate_point(16, 0.007, 0.004, 45.0e3)
        assert sixteen.max_fpga_c > twelve.max_fpga_c
        assert sixteen.peak_gflops_total > twelve.peak_gflops_total


class TestSweep:
    def test_full_factorial_count(self, small_sweep):
        assert len(small_sweep) == 2 * 2 * 1 * 2

    def test_limit(self):
        points = sweep(limit=5)
        assert len(points) == 5

    def test_the_paper_chose_12_boards_for_a_reason(self, small_sweep):
        """At the SKAT envelope, every 12-board variant that cools well is
        feasible while 14-board variants start failing — the design point
        emerges from the sweep."""
        twelve = [p for p in small_sweep if p.n_boards == 12]
        fourteen = [p for p in small_sweep if p.n_boards == 14]
        assert any(p.feasible for p in twelve)
        assert sum(p.feasible for p in twelve) >= sum(p.feasible for p in fourteen)


class TestPareto:
    def test_frontier_subset_of_feasible(self, small_sweep):
        frontier = pareto_frontier(small_sweep)
        assert frontier
        assert all(p.feasible for p in frontier)

    def test_no_frontier_point_dominated(self, small_sweep):
        frontier = pareto_frontier(small_sweep)
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    b.max_fpga_c <= a.max_fpga_c
                    and b.pump_power_w <= a.pump_power_w
                    and (b.max_fpga_c < a.max_fpga_c or b.pump_power_w < a.pump_power_w)
                )
                assert not dominates

    def test_frontier_sorted_by_junction(self, small_sweep):
        frontier = pareto_frontier(small_sweep)
        temps = [p.max_fpga_c for p in frontier]
        assert temps == sorted(temps)

    def test_frontier_trades_heat_for_pump_power(self, small_sweep):
        frontier = pareto_frontier(small_sweep)
        if len(frontier) >= 2:
            # Cooler points must pay more pump power along the frontier.
            powers = [p.pump_power_w for p in frontier]
            assert powers == sorted(powers, reverse=True)

    def test_infeasible_point_excluded(self):
        bad = DesignPoint(
            n_boards=16,
            pin_height_m=0.005,
            pin_pitch_m=0.004,
            pump_shutoff_pa=35.0e3,
            max_fpga_c=70.0,
            bath_mean_c=33.0,
            pump_power_w=100.0,
            peak_gflops_total=1.0,
            feasible=False,
        )
        assert pareto_frontier([bad]) == []
