"""Tests for the heat-exchanger fouling model."""

import math

import pytest

from repro.heatexchange.fouling import FoulingModel, fouled_exchanger_effect
from repro.heatexchange.plate import PlateHeatExchanger


class TestKernSeaton:
    def test_clean_at_zero_hours(self):
        model = FoulingModel()
        assert model.resistance_m2k_w(0.0) == 0.0

    def test_monotone_growth(self):
        model = FoulingModel()
        values = [model.resistance_m2k_w(h) for h in (0.0, 5000.0, 20000.0, 80000.0)]
        assert values == sorted(values)

    def test_saturates_at_asymptote(self):
        model = FoulingModel(asymptotic_resistance_m2k_w=3.0e-4, timescale_h=1000.0)
        assert model.resistance_m2k_w(1.0e6) == pytest.approx(3.0e-4, rel=1e-3)

    def test_one_timescale_is_63_percent(self):
        model = FoulingModel(asymptotic_resistance_m2k_w=3.0e-4, timescale_h=15000.0)
        assert model.resistance_m2k_w(15000.0) == pytest.approx(
            3.0e-4 * (1.0 - math.exp(-1.0))
        )

    def test_rejects_negative_service(self):
        with pytest.raises(ValueError):
            FoulingModel().resistance_m2k_w(-1.0)


class TestFouledU:
    def test_fouling_reduces_u(self):
        model = FoulingModel()
        assert model.fouled_u(800.0, 20000.0) < 800.0

    def test_degradation_fraction_bounds(self):
        model = FoulingModel()
        for hours in (0.0, 10000.0, 100000.0):
            loss = model.ua_degradation_fraction(800.0, hours)
            assert 0.0 <= loss < 1.0

    def test_weak_u_less_sensitive(self):
        """A film-limited exchanger (low clean U) loses less fractionally
        to the same fouling layer."""
        model = FoulingModel()
        weak = model.ua_degradation_fraction(200.0, 30000.0)
        strong = model.ua_degradation_fraction(2000.0, 30000.0)
        assert weak < strong


class TestServiceInterval:
    def test_interval_roundtrip(self):
        model = FoulingModel(asymptotic_resistance_m2k_w=5.0e-4, timescale_h=10000.0)
        hours = model.hours_to_degradation(800.0, 0.15)
        assert model.ua_degradation_fraction(800.0, hours) == pytest.approx(0.15, rel=1e-6)

    def test_oversized_exchanger_never_due(self):
        model = FoulingModel(asymptotic_resistance_m2k_w=1.0e-5)
        assert math.isinf(model.hours_to_degradation(800.0, 0.5))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            FoulingModel().hours_to_degradation(800.0, 1.5)


class TestExchangerEffect:
    def test_summary_keys_and_margin(self):
        hx = PlateHeatExchanger(n_plates=28, plate_width_m=0.1, plate_height_m=0.3)
        effect = fouled_exchanger_effect(hx, FoulingModel(), hours=20000.0, clean_u_w_m2k=800.0)
        assert set(effect) == {
            "clean_u",
            "fouled_u",
            "ua_loss_fraction",
            "equivalent_extra_plates",
        }
        assert effect["fouled_u"] < effect["clean_u"]
        assert effect["equivalent_extra_plates"] >= 1
