"""The GPU-class device catalog and its training-workload traces.

The catalog models AI-factory accelerators (H100/H200/B200-style SXM
parts) inside the existing :class:`~repro.devices.fpga.FpgaFamily`
grammar, and :func:`~repro.devices.gpu.training_power_events` expands a
:class:`~repro.devices.gpu.TrainingTraceSpec` into the ``power_step``
event grammar every simulator already speaks. The contract under test:
traces are deterministic pure functions of their spec, stay inside the
[0, 1] workload-fraction band, and a full-power step is an exact no-op
on the serial module simulator.
"""

import pytest

from repro.core.gpumodule import GPU_WATER_FLOW_M3_S, gpu_module, gpu_rack
from repro.core.simulation import ModuleSimulator
from repro.devices import (
    B200_SXM,
    H100_SXM,
    H200_SXM,
    TrainingTraceSpec,
    gpu_catalog,
    training_power_events,
)
from repro.reliability.failures import power_step_event


class TestCatalog:
    def test_catalog_lists_all_three_parts(self):
        parts = gpu_catalog()
        assert [p.part for p in parts] == [
            H100_SXM.part,
            H200_SXM.part,
            B200_SXM.part,
        ]

    def test_generations_escalate_power_and_density(self):
        assert H100_SXM.year < H200_SXM.year < B200_SXM.year
        assert B200_SXM.max_power_w > H100_SXM.max_power_w
        assert B200_SXM.logic_cells > H100_SXM.logic_cells

    def test_thermal_envelope_is_gpu_class(self):
        for part in gpu_catalog():
            assert part.operating_power_w >= 600.0
            assert part.t_junction_max_c == 90.0
            assert part.theta_jc_k_w < 0.05  # vapor-chamber-class package


class TestTrainingTrace:
    def test_trace_is_deterministic(self):
        spec = TrainingTraceSpec(seed=42)
        first = training_power_events(spec, 600.0, 10.0)
        second = training_power_events(spec, 600.0, 10.0)
        assert first == second

    def test_different_seeds_differ(self):
        a = training_power_events(TrainingTraceSpec(seed=1), 600.0, 10.0)
        b = training_power_events(TrainingTraceSpec(seed=2), 600.0, 10.0)
        assert a != b

    def test_events_are_sorted_bounded_power_steps(self):
        duration = 480.0
        events = training_power_events(TrainingTraceSpec(), duration, 20.0)
        assert events, "a training trace is never empty"
        times = [e.time_s for e in events]
        assert times == sorted(times)
        for event in events:
            assert event.kind == "power_step"
            assert event.target == "compute"
            assert 0.0 <= event.time_s <= duration
            assert 0.0 <= event.magnitude <= 1.0

    def test_warmup_starts_below_steady_state(self):
        spec = TrainingTraceSpec(warmup_fraction=0.35)
        events = training_power_events(spec, 400.0, 20.0)
        assert events[0].time_s == 0.0
        assert events[0].magnitude == pytest.approx(0.35)

    def test_custom_target_is_honored(self):
        events = training_power_events(
            TrainingTraceSpec(), 200.0, 20.0, target="rack_1"
        )
        assert {e.target for e in events} == {"rack_1"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup_s": -1.0},
            {"warmup_fraction": 1.5},
            {"step_period_s": 0.0},
            {"dip_fraction": -0.1},
            {"peak_fraction": 0.5, "dip_fraction": 0.9},
            {"jitter": 2.0},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingTraceSpec(**kwargs)


class TestPowerStepEvent:
    def test_helper_builds_the_grammar(self):
        event = power_step_event(120.0, 0.75)
        assert event.kind == "power_step"
        assert event.target == "compute"
        assert event.magnitude == 0.75

    def test_out_of_band_fraction_is_rejected(self):
        with pytest.raises(ValueError):
            power_step_event(120.0, 1.5)


class TestGpuModule:
    def test_steady_state_stays_under_the_sustained_band(self):
        report = gpu_module().solve_steady(
            water_in_c=20.0, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        )
        assert report.max_fpga_c < 83.0

    def test_rack_scales_with_module_count(self):
        small = gpu_rack(n_modules=2)
        large = gpu_rack(n_modules=4)
        assert large.n_modules == 2 * small.n_modules
        assert small.chiller.setpoint_c == large.chiller.setpoint_c

    def test_full_power_step_is_an_exact_noop(self):
        """magnitude 1.0 multiplies utilization by exactly 1 — the run is
        bitwise identical to a run with no events at all."""
        module = gpu_module()
        base = ModuleSimulator(
            module, water_in_c=20.0, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(300.0, dt_s=10.0)
        stepped = ModuleSimulator(
            module, water_in_c=20.0, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(300.0, events=[power_step_event(100.0, 1.0)], dt_s=10.0)
        for channel in base.telemetry.channels:
            _, expected = base.telemetry.series(channel)
            _, measured = stepped.telemetry.series(channel)
            assert list(measured) == list(expected), channel

    def test_reduced_workload_cools_the_die(self):
        module = gpu_module()
        base = ModuleSimulator(
            module, water_in_c=20.0, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(300.0, dt_s=10.0)
        halved = ModuleSimulator(
            module, water_in_c=20.0, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(300.0, events=[power_step_event(0.0, 0.5)], dt_s=10.0)
        assert halved.max_junction_c < base.max_junction_c
