"""Determinism of the fuzzer's GPU workload families, end to end.

Two contracts:

- **The default stream is frozen.** Adding the workload families
  (``gpu_module``, ``gpu_facility``, ``hot_water_facility``) must not
  move a single byte of the pre-existing default stream — the pinned
  SHA-256 digests below were captured before the families landed, and
  any drift invalidates every committed fuzz artifact at once.
- **The workload stream is deterministic.** Workload scenarios are as
  reproducible as the classic ones: seeded streams digest identically
  across runs and backends, prefixes are extension-stable, every run
  passes the conservation checkers, and the committed workload goldens
  (``tests/goldens/workloads_*.json``) come back byte-identical from the
  serial, thread and process backends. Regenerate after an intentional
  physics change with::

      PYTHONPATH=src python scripts/run_workloads.py --backend serial \\
          --out tests/goldens/workloads_sweep.json \\
          --fuzz-out tests/goldens/workloads_fuzz.json
"""

import json
from pathlib import Path

import pytest

from repro.facility.sweep import run_workload_sweep, workload_cases
from repro.verify import (
    WORKLOAD_LEVELS,
    generate_scenarios,
    run_fuzz,
    scenario_stream_digest,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"

SEED = 2124

#: Digests of the default (pre-workload) scenario stream, captured
#: before the workload families existed. generate_scenarios' default
#: ``levels`` must keep reproducing these bytes forever.
FROZEN_DEFAULT_DIGESTS = {
    (0, 12): "2aeef003886d676a276a1f47f0e9d669f5533805a861f8ec7c80f35cbc748927",
    (7, 30): "023e839f8b6f5133255aa508660a34836b7e3d0ed8d7c7f4e3ec9812a149ec19",
    (123, 9): "d667316cab069f47f2534a73c2eae1cf6b56b01f5feaaf7fae49e90d269b4a83",
}


class TestDefaultStreamFrozen:
    @pytest.mark.parametrize("seed_n", sorted(FROZEN_DEFAULT_DIGESTS))
    def test_default_stream_digest_is_unchanged(self, seed_n):
        seed, n = seed_n
        assert (
            scenario_stream_digest(generate_scenarios(seed, n))
            == FROZEN_DEFAULT_DIGESTS[seed_n]
        ), (
            "the default fuzz stream moved — the workload families must "
            "stay opt-in (separate WORKLOAD_LEVELS tuple, separate rng "
            "draws) so committed fuzz artifacts remain replayable"
        )

    def test_workload_levels_are_not_in_the_default_stream(self):
        levels = {s.level for s in generate_scenarios(0, 30)}
        assert levels.isdisjoint(WORKLOAD_LEVELS)


class TestWorkloadStreamDeterminism:
    def test_same_seed_yields_a_byte_identical_stream(self):
        first = generate_scenarios(SEED, 9, levels=WORKLOAD_LEVELS)
        second = generate_scenarios(SEED, 9, levels=WORKLOAD_LEVELS)
        assert [s.to_json() for s in first] == [s.to_json() for s in second]

    def test_prefix_stability(self):
        short = generate_scenarios(SEED, 6, levels=WORKLOAD_LEVELS)
        long = generate_scenarios(SEED, 12, levels=WORKLOAD_LEVELS)
        assert [s.to_json() for s in long[:6]] == [s.to_json() for s in short]

    def test_stream_covers_every_workload_family(self):
        levels = {s.level for s in generate_scenarios(SEED, 9, levels=WORKLOAD_LEVELS)}
        assert levels == set(WORKLOAD_LEVELS)

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz level"):
            generate_scenarios(SEED, 3, levels=("gpu_rack",))

    def test_workload_scenarios_carry_training_traces(self):
        for scenario in generate_scenarios(SEED, 6, levels=WORKLOAD_LEVELS):
            steps = [e for e in scenario.events if e.kind == "power_step"]
            assert steps, f"{scenario.name} has no training trace"
            assert all(e.target == "compute" for e in steps)
            assert all(0.0 <= e.magnitude <= 1.0 for e in steps)


class TestWorkloadBackendParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_agree_with_serial(self, backend):
        serial = run_fuzz(SEED, 6, backend="serial", levels=WORKLOAD_LEVELS)
        other = run_fuzz(
            SEED, 6, backend=backend, max_workers=2, levels=WORKLOAD_LEVELS
        )
        assert serial.ok and other.ok
        assert other.scenario_digest == serial.scenario_digest
        assert other.results == serial.results
        assert other.checks_run == serial.checks_run

    def test_batched_report_matches_per_object(self):
        never = run_fuzz(SEED, 9, levels=WORKLOAD_LEVELS, batch="never")
        auto = run_fuzz(SEED, 9, levels=WORKLOAD_LEVELS, batch="auto")
        assert auto.to_json() == never.to_json()

    def test_facility_records_expose_the_energy_ledger(self):
        report = run_fuzz(SEED, 6, levels=WORKLOAD_LEVELS)
        facility_records = [
            r for r in report.results if r["level"].endswith("facility")
        ]
        assert facility_records
        for record in facility_records:
            assert record["summary"]["ppue"] >= 1.0
            assert record["summary"]["recovered_heat_j"] >= 0.0


class TestPinnedWorkloadGoldens:
    """All three backends must reproduce the committed workload bytes."""

    @pytest.fixture(scope="class")
    def golden_sweep(self):
        return (GOLDEN_DIR / "workloads_sweep.json").read_text()

    @pytest.fixture(scope="class")
    def golden_fuzz(self):
        return (GOLDEN_DIR / "workloads_fuzz.json").read_text()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_reproduces_sweep_golden(self, backend, golden_sweep):
        outcomes = run_workload_sweep(
            workload_cases(), backend=backend, max_workers=2
        )
        payload = json.dumps(
            [o.value for o in outcomes], sort_keys=True, separators=(",", ":")
        )
        assert payload + "\n" == golden_sweep, (
            "workload sweep payload drifted from tests/goldens/"
            "workloads_sweep.json — regenerate with "
            "scripts/run_workloads.py (see module docstring) and review "
            "the diff"
        )

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_reproduces_fuzz_golden(self, backend, golden_fuzz):
        report = run_fuzz(
            11, 6, backend=backend, max_workers=2, levels=WORKLOAD_LEVELS
        )
        payload = {
            key: value
            for key, value in json.loads(report.to_json()).items()
            if key != "backend"
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert text + "\n" == golden_fuzz, (
            "workload fuzz report drifted from tests/goldens/"
            "workloads_fuzz.json — regenerate with scripts/run_workloads.py"
        )
