"""Tests for the loop hydraulic transients."""

import numpy as np
import pytest

from repro.fluids.library import MINERAL_OIL_MD45
from repro.hydraulics.transient import (
    coast_down,
    loop_inertance,
    simulate_loop_flow,
    spin_up,
)

#: A SKAT-like oil loop: ~3 m of path at ~12 cm^2 mean section.
INERTANCE = loop_inertance(MINERAL_OIL_MD45, 30.0, length_m=3.0, area_m2=1.2e-3)
#: Quadratic loop resistance tuned so 2.7 L/s drops ~32 kPa.
R_QUAD = 32.0e3 / (2.7e-3) ** 2


def drop(q: float) -> float:
    return R_QUAD * q * q


class TestInertance:
    def test_value(self):
        rho = MINERAL_OIL_MD45.density(30.0)
        assert INERTANCE == pytest.approx(rho * 3.0 / 1.2e-3)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            loop_inertance(MINERAL_OIL_MD45, 30.0, 0.0, 1e-3)


class TestCoastDown:
    def test_flow_decays_monotonically(self):
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=5.0)
        flows = transient.flows_m3_s
        assert flows[0] == 2.7e-3
        assert np.all(np.diff(flows) <= 1e-15)

    def test_coast_time_scale_seconds(self):
        """The oil column coasts on the order of a second — the chips lose
        their film quickly but not instantly after a pump trip."""
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=10.0)
        t_half = transient.time_to_fraction(0.5)
        assert 0.05 < t_half < 5.0

    def test_heavier_column_coasts_longer(self):
        light = coast_down(drop, INERTANCE, 2.7e-3, duration_s=10.0)
        heavy = coast_down(drop, 5.0 * INERTANCE, 2.7e-3, duration_s=10.0)
        assert heavy.time_to_fraction(0.5) > light.time_to_fraction(0.5)

    def test_never_reverses(self):
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=20.0)
        assert np.all(transient.flows_m3_s >= 0.0)


class TestSpinUp:
    def _head(self, q: float) -> float:
        # The SKAT pump curve.
        return 45.0e3 * (1.0 - (q / 5.0e-3) ** 2)

    def test_reaches_operating_point(self):
        transient = spin_up(self._head, drop, INERTANCE, duration_s=10.0)
        q_final = transient.final_flow_m3_s
        # At equilibrium head == drop.
        assert self._head(q_final) == pytest.approx(drop(q_final), rel=1e-3)

    def test_rise_is_monotone(self):
        transient = spin_up(self._head, drop, INERTANCE, duration_s=10.0)
        assert np.all(np.diff(transient.flows_m3_s) >= -1e-15)

    def test_spin_up_faster_than_coast_down_measurably(self):
        up = spin_up(self._head, drop, INERTANCE, duration_s=10.0)
        q_op = up.final_flow_m3_s
        t_up = up.time_to_fraction(0.9)
        down = coast_down(drop, INERTANCE, q_op, duration_s=10.0)
        t_down = down.time_to_fraction(0.1)
        assert t_up > 0.0 and t_down > 0.0


class TestValidation:
    def test_rejects_bad_inertance(self):
        with pytest.raises(ValueError):
            simulate_loop_flow(lambda q, t: 0.0, drop, 0.0, 1e-3, 1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            simulate_loop_flow(lambda q, t: 0.0, drop, INERTANCE, 1e-3, 0.0)

    def test_time_to_fraction_validates(self):
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=1.0)
        with pytest.raises(ValueError):
            transient.time_to_fraction(0.0)


class TestEarlySettle:
    def test_default_integrates_full_duration(self):
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=5.0, dt_s=0.01)
        assert not transient.settled
        assert transient.times_s[-1] == pytest.approx(5.0 + 0.01)

    def test_settle_truncates_a_finished_coast_down(self):
        full = coast_down(drop, INERTANCE, 2.7e-3, duration_s=30.0, dt_s=0.01)
        early = coast_down(
            drop,
            INERTANCE,
            2.7e-3,
            duration_s=30.0,
            dt_s=0.01,
            settle_atol_m3_s2=1e-5,
        )
        assert early.settled
        assert early.steps < full.steps

    def test_truncated_history_matches_full_prefix(self):
        full = coast_down(drop, INERTANCE, 2.7e-3, duration_s=30.0, dt_s=0.01)
        early = coast_down(
            drop,
            INERTANCE,
            2.7e-3,
            duration_s=30.0,
            dt_s=0.01,
            settle_atol_m3_s2=1e-5,
        )
        n = early.steps + 1
        assert np.array_equal(early.times_s, full.times_s[:n])
        assert np.array_equal(early.flows_m3_s, full.flows_m3_s[:n])

    def test_spin_up_settles_at_operating_point(self):
        def head(q: float) -> float:
            return max(0.0, 40.0e3 * (1.0 - q / 8.0e-3))

        settled = spin_up(
            head, drop, INERTANCE, duration_s=60.0, dt_s=0.01,
            settle_atol_m3_s2=1e-8,
        )
        assert settled.settled
        # dQ/dt ~ 0: the pump head balances the loop drop.
        q = settled.final_flow_m3_s
        assert head(q) == pytest.approx(drop(q), abs=1.0)

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError):
            coast_down(
                drop, INERTANCE, 2.7e-3, duration_s=1.0, settle_atol_m3_s2=0.0
            )

    def test_steps_property(self):
        transient = coast_down(drop, INERTANCE, 2.7e-3, duration_s=1.0, dt_s=0.1)
        assert transient.steps == len(transient.times_s) - 1
