"""Tests for the Fig. 5 hydraulic-balancing system."""

import pytest

from repro.core.balancing import (
    ManifoldLayout,
    RackManifoldSystem,
    redistribution_evenness,
)


def system(layout=ManifoldLayout.REVERSE_RETURN, n_loops=6):
    return RackManifoldSystem(n_loops=n_loops, layout=layout)


class TestBalance:
    def test_reverse_return_flows_symmetric(self):
        """The equal-path-length property makes the flow profile symmetric
        about the middle of the rack."""
        flows = system(ManifoldLayout.REVERSE_RETURN).solve().loop_flows_m3_s
        for i in range(len(flows) // 2):
            assert flows[i] == pytest.approx(flows[-1 - i], rel=1e-3)

    def test_direct_return_monotone_starvation(self):
        """Direct return short-circuits loop 0 and starves the far loop."""
        flows = system(ManifoldLayout.DIRECT_RETURN).solve().loop_flows_m3_s
        assert flows == sorted(flows, reverse=True)

    def test_reverse_beats_direct(self):
        """The paper's claim: no balancing-valve system is needed with the
        reverse-return layout."""
        reverse = system(ManifoldLayout.REVERSE_RETURN).solve()
        direct = system(ManifoldLayout.DIRECT_RETURN).solve()
        assert reverse.imbalance_ratio < direct.imbalance_ratio
        assert reverse.coefficient_of_variation < 0.5 * direct.coefficient_of_variation

    def test_reverse_return_near_balanced(self):
        report = system(ManifoldLayout.REVERSE_RETURN).solve()
        assert report.imbalance_ratio < 1.12

    def test_all_flows_positive(self):
        for layout in ManifoldLayout:
            flows = system(layout).solve().loop_flows_m3_s
            assert all(q > 0 for q in flows)


class TestFailure:
    def test_failed_loop_carries_nothing(self):
        s = system()
        s.fail_loop(2)
        report = s.solve()
        assert report.loop_flows_m3_s[2] == 0.0
        assert report.failed_loops == [2]

    def test_survivors_gain_flow(self):
        s = system()
        result = s.failure_redistribution(2)
        before, after = result["before"], result["after"]
        for i in range(6):
            if i == 2:
                continue
            assert after.loop_flows_m3_s[i] > before.loop_flows_m3_s[i]

    def test_redistribution_is_even_for_reverse_return(self):
        """Paper: 'the heat-transfer agent flow is evenly changed in the
        rest of modules'."""
        s = system(ManifoldLayout.REVERSE_RETURN)
        result = s.failure_redistribution(2)
        evenness = redistribution_evenness(result["before"], result["after"])
        assert evenness < 0.25

    def test_restore_recovers_original_flows(self):
        s = system()
        before = s.solve().loop_flows_m3_s
        s.fail_loop(3)
        s.restore_loop(3)
        after = s.solve().loop_flows_m3_s
        for a, b in zip(before, after):
            assert a == pytest.approx(b, rel=1e-6)

    def test_failure_index_validated(self):
        with pytest.raises(ValueError):
            system().fail_loop(10)


class TestBalancingValves:
    def test_trim_valves_throttle(self):
        trimmed = RackManifoldSystem(
            n_loops=6,
            layout=ManifoldLayout.DIRECT_RETURN,
            balancing_valves=[0.5, 0.7, 0.9, 1.0, 1.0, 1.0],
        ).solve()
        untrimmed = system(ManifoldLayout.DIRECT_RETURN).solve()
        # Trimming the over-fed near loops improves the balance.
        assert trimmed.imbalance_ratio < untrimmed.imbalance_ratio

    def test_valve_count_must_match(self):
        with pytest.raises(ValueError):
            RackManifoldSystem(n_loops=6, balancing_valves=[1.0, 1.0])


class TestReportMetrics:
    def test_total_flow_is_sum(self):
        report = system().solve()
        assert report.total_flow_m3_s == pytest.approx(sum(report.loop_flows_m3_s))

    def test_active_flows_excludes_failed(self):
        s = system()
        s.fail_loop(0)
        report = s.solve()
        assert len(report.active_flows) == 5

    def test_needs_two_loops(self):
        with pytest.raises(ValueError):
            RackManifoldSystem(n_loops=1)
