"""Tests for the computational module (bath + heat-exchange section)."""

import pytest

from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    skat_plus,
)


class TestSkatSteadyState:
    def test_paper_anchors(self):
        """Section 3's measured numbers: oil <= 30 C (bath sensor), max
        FPGA <= 55 C, ~91 W per chip."""
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert report.oil_below_30c
        assert report.max_fpga_c == pytest.approx(55.0, abs=2.0)
        assert report.immersion.chips_per_board[-1].power_w == pytest.approx(91.0, rel=0.08)

    def test_energy_balance_closes(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        # Heat into water equals bath heat (external pump adds nothing).
        assert report.total_heat_to_water_w == pytest.approx(
            report.immersion.total_heat_w, rel=1e-3
        )

    def test_oil_loop_flow_positive(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert 1.0e-3 < report.oil_flow_m3_s < 6.0e-3

    def test_hot_oil_above_cold_oil_above_water(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert report.oil_hot_c > report.oil_cold_c > report.water_in_c

    def test_warmer_water_warmer_chips(self):
        cold = skat().solve_steady(18.0, SKAT_WATER_FLOW_M3_S)
        warm = skat().solve_steady(24.0, SKAT_WATER_FLOW_M3_S)
        assert warm.max_fpga_c > cold.max_fpga_c

    def test_module_electrical_power_scale(self):
        """~9.5 kW electronics + PSU losses + (external) pump."""
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert 9000.0 < report.module_electrical_w < 11000.0

    def test_rejects_zero_water_flow(self):
        with pytest.raises(ValueError):
            skat().solve_steady(SKAT_WATER_SUPPLY_C, 0.0)


class TestSkatPlus:
    def test_modified_cooling_beats_unmodified(self):
        """Section 4: the redesign (surface, pump, immersed pumps) must buy
        thermal margin for the hotter UltraScale+ parts."""
        modified = skat_plus(modified_cooling=True).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        unmodified = skat_plus(modified_cooling=False).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        assert modified.max_fpga_c < unmodified.max_fpga_c

    def test_immersed_pump_heat_enters_bath(self):
        report = skat_plus(modified_cooling=True).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        # Heat to water now includes the immersed pump's losses.
        assert report.total_heat_to_water_w == pytest.approx(
            report.immersion.total_heat_w + report.pump_electrical_w, rel=1e-3
        )

    def test_power_reserve_for_ultrascale_plus(self):
        """Conclusions: the cooling reserve covers UltraScale+ — junctions
        stay under the reliability ceiling."""
        report = skat_plus(modified_cooling=True).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        family = skat_plus().section.ccb.fpga.family
        assert report.max_fpga_c <= family.t_reliable_max_c


class TestGeometry:
    def test_3u_height(self):
        module = skat()
        assert module.height_u == 3.0
        assert module.height_mm == pytest.approx(133.35)

    def test_volume_litres(self):
        assert 40.0 < skat().volume_litre() < 70.0
