"""Statistical ground truths for the Monte Carlo estimator layer.

The Sobol estimators are checked against analytic closed forms — the
Ishigami function (the standard nonlinear/non-monotonic benchmark) and a
linear-additive model where every index is exact — at N=4096, the scale
the acceptance criterion pins (within 0.05 absolute). The quantile
reducer's structural properties (monotone band, permutation invariance,
bounds) are pinned with Hypothesis.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.estimators import (
    exceedance_probability,
    quantile_bands,
    sobol_indices,
)
from repro.analysis.sampling import (
    ToleranceDistribution,
    normal_offset,
    normal_scale,
    saltelli_design,
    uniform_offset,
    uniform_scale,
)

N_BASE = 4096
TOL = 0.05


def _evaluate(design, fn):
    return (
        fn(design.a),
        fn(design.b),
        [fn(matrix) for matrix in design.ab],
    )


class TestIshigami:
    """f = sin(x1) + 7 sin^2(x2) + 0.1 x3^4 sin(x1), x ~ U(-pi, pi)."""

    A = 7.0
    B = 0.1

    @classmethod
    def _f(cls, x):
        return (
            np.sin(x[:, 0])
            + cls.A * np.sin(x[:, 1]) ** 2
            + cls.B * x[:, 2] ** 4 * np.sin(x[:, 0])
        )

    @classmethod
    def _closed_form(cls):
        a, b = cls.A, cls.B
        pi = math.pi
        variance = a**2 / 8 + b * pi**4 / 5 + b**2 * pi**8 / 18 + 0.5
        s1 = 0.5 * (1 + b * pi**4 / 5) ** 2 / variance
        s2 = (a**2 / 8) / variance
        s3 = 0.0
        interaction_13 = 8 * b**2 * pi**8 / 225 / variance
        return {
            "x1": {"first_order": s1, "total": s1 + interaction_13},
            "x2": {"first_order": s2, "total": s2},
            "x3": {"first_order": s3, "total": interaction_13},
        }

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_indices_within_tolerance_of_closed_form(self, seed):
        knobs = [
            ToleranceDistribution(f"x{i}", "uniform", "offset", math.pi)
            for i in (1, 2, 3)
        ]
        design = saltelli_design(knobs, N_BASE, seed)
        f_a, f_b, f_ab = _evaluate(design, self._f)
        estimated = sobol_indices(f_a, f_b, f_ab, [k.name for k in knobs])
        expected = self._closed_form()
        for name, truth in expected.items():
            for kind in ("first_order", "total"):
                assert estimated[name][kind] == pytest.approx(
                    truth[kind], abs=TOL
                ), f"{name}.{kind} off by more than {TOL}"

    def test_estimate_is_deterministic_per_seed(self):
        knobs = [
            ToleranceDistribution(f"x{i}", "uniform", "offset", math.pi)
            for i in (1, 2, 3)
        ]
        runs = []
        for _ in range(2):
            design = saltelli_design(knobs, 512, 7)
            f_a, f_b, f_ab = _evaluate(design, self._f)
            runs.append(sobol_indices(f_a, f_b, f_ab, [k.name for k in knobs]))
        assert runs[0] == runs[1]


class TestLinearAdditive:
    """f = sum a_i x_i with x_i ~ U(0, 1) iid: S_i = ST_i = a_i^2 / sum a_j^2."""

    COEFFS = (4.0, 2.0, 1.0)

    @classmethod
    def _f(cls, x):
        return x @ np.asarray(cls.COEFFS)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_indices_match_variance_shares(self, seed):
        # x ~ U(0, 1): offset knobs centre on 0 with half-width 0.5, so f
        # shifts by +0.5 — the mean offset that makes this model a probe
        # of the estimator's pooled-mean centering (uncentered, seed 7
        # lands outside the 0.05 band at this N).
        knobs = [
            ToleranceDistribution(f"x{i}", "uniform", "offset", 0.5, -0.5, 1.5)
            for i in range(len(self.COEFFS))
        ]
        design = saltelli_design(knobs, N_BASE, seed)
        f_a, f_b, f_ab = _evaluate(design, lambda x: self._f(x + 0.5))
        estimated = sobol_indices(f_a, f_b, f_ab, [k.name for k in knobs])
        total_var = sum(c**2 for c in self.COEFFS)
        for i, coeff in enumerate(self.COEFFS):
            share = coeff**2 / total_var
            assert estimated[f"x{i}"]["first_order"] == pytest.approx(share, abs=TOL)
            assert estimated[f"x{i}"]["total"] == pytest.approx(share, abs=TOL)

    def test_constant_output_attributes_nothing(self):
        knobs = [uniform_offset("x0", 1.0), uniform_offset("x1", 1.0)]
        design = saltelli_design(knobs, 64, 0)
        ones = np.ones(64)
        indices = sobol_indices(ones, ones, [ones, ones], ["x0", "x1"])
        for name in ("x0", "x1"):
            assert indices[name] == {"first_order": 0.0, "total": 0.0}

    def test_failed_rows_are_masked_consistently(self):
        knobs = [uniform_offset("x0", 1.0)]
        design = saltelli_design(knobs, 256, 3)
        f_a, f_b, f_ab = _evaluate(design, lambda x: x[:, 0])
        clean = sobol_indices(f_a, f_b, f_ab, ["x0"])
        poisoned_a = f_a.copy()
        poisoned_a[10] = np.nan
        poisoned = sobol_indices(poisoned_a, f_b, f_ab, ["x0"])
        # one masked row out of 256 barely moves a deterministic estimate
        assert poisoned["x0"]["first_order"] == pytest.approx(
            clean["x0"]["first_order"], abs=0.02
        )

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            sobol_indices(np.ones(8), np.ones(8), [np.ones(7)], ["x0"])
        with pytest.raises(ValueError):
            sobol_indices(np.ones(8), np.ones(8), [np.ones(8)], ["x0", "x1"])


finite_samples = st.lists(
    st.floats(
        min_value=-1.0e6, max_value=1.0e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=64,
)


class TestQuantileBands:
    @given(values=finite_samples)
    @settings(max_examples=200, deadline=None)
    def test_band_is_monotone_and_bounded(self, values):
        bands = quantile_bands(np.asarray(values))
        assert bands["min"] <= bands["p05"] <= bands["p50"]
        assert bands["p50"] <= bands["p95"] <= bands["max"]
        assert bands["min"] <= bands["mean"] <= bands["max"]
        assert bands["std"] >= 0.0

    @given(values=finite_samples, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_permutation_invariance(self, values, seed):
        arr = np.asarray(values)
        shuffled = arr.copy()
        np.random.default_rng(seed).shuffle(shuffled)
        assert quantile_bands(shuffled) == quantile_bands(arr)

    @given(values=finite_samples, threshold=st.floats(-1.0e6, 1.0e6))
    @settings(max_examples=200, deadline=None)
    def test_exceedance_is_a_probability_and_complements(self, values, threshold):
        arr = np.asarray(values)
        below = exceedance_probability(arr, threshold, "below")
        above = exceedance_probability(arr, threshold, "above")
        assert 0.0 <= below <= 1.0
        assert 0.0 <= above <= 1.0
        # strictly-below + strictly-above + exactly-at == 1
        at = np.count_nonzero(arr == threshold) / arr.size
        assert below + above + at == pytest.approx(1.0, abs=1e-9)

    def test_non_finite_samples_are_dropped(self):
        values = np.array([1.0, np.nan, 3.0, np.inf, 2.0])
        bands = quantile_bands(values)
        assert bands["min"] == 1.0
        assert bands["max"] == 3.0

    def test_all_non_finite_raises(self):
        with pytest.raises(ValueError):
            quantile_bands(np.array([np.nan, np.inf]))
        with pytest.raises(ValueError):
            exceedance_probability(np.array([np.nan]), 0.0)


class TestSamplingDesign:
    def test_design_is_deterministic_and_seed_sensitive(self):
        knobs = [normal_scale("a", 0.1), normal_offset("b", 1.0)]
        first = saltelli_design(knobs, 128, 11)
        second = saltelli_design(knobs, 128, 11)
        other = saltelli_design(knobs, 128, 12)
        assert np.array_equal(first.a, second.a)
        assert np.array_equal(first.b, second.b)
        assert not np.array_equal(first.a, other.a)

    def test_ab_matrices_mix_exactly_one_column(self):
        knobs = [uniform_scale("a", 0.2), uniform_scale("b", 0.2)]
        design = saltelli_design(knobs, 64, 5)
        for i, mixed in enumerate(design.ab):
            for j in range(len(knobs)):
                source = design.b if j == i else design.a
                assert np.array_equal(mixed[:, j], source[:, j])

    def test_rows_enumerates_the_canonical_order(self):
        knobs = [uniform_scale("a", 0.2), uniform_scale("b", 0.2)]
        design = saltelli_design(knobs, 4, 5)
        tags = [tag for tag, _, _ in design.rows()]
        assert tags == ["a"] * 4 + ["b"] * 4 + ["ab0"] * 4 + ["ab1"] * 4
        assert design.n_evaluations == len(tags)

    def test_clipping_truncates_normal_tails(self):
        knob = normal_scale("a", 0.1, n_sigma=2.0)
        design = saltelli_design([knob], 4096, 0)
        assert design.a.min() >= 1.0 - 0.2 - 1e-12
        assert design.a.max() <= 1.0 + 0.2 + 1e-12

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            saltelli_design([uniform_scale("a", 0.1), uniform_scale("a", 0.2)], 8, 0)

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            ToleranceDistribution("x", "triangular", "scale", 0.1)
        with pytest.raises(ValueError):
            ToleranceDistribution("x", "normal", "ratio", 0.1)
        with pytest.raises(ValueError):
            ToleranceDistribution("x", "normal", "scale", -0.1)
        with pytest.raises(ValueError):
            ToleranceDistribution("", "normal", "scale", 0.1)

    def test_round_trip_through_dict(self):
        for knob in (
            normal_scale("a", 0.07),
            normal_offset("b", 0.5),
            uniform_scale("c", 0.2),
            uniform_offset("d", 1.5),
        ):
            assert ToleranceDistribution.from_dict(knob.to_dict()) == knob
