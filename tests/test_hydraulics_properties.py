"""Property-based tests locking in the solver fast path.

Three families of invariants over randomized manifold-style networks:

- **agreement** — the fast path (analytic inverses, vectorized residuals)
  and the robust path (bracketed Brent inversion) solve to the same flows;
- **conservation** — junction mass balance closes at every junction, and
  element characteristics reproduce the solved pressure drops;
- **statefulness is invisible** — warm-started re-solves and cache
  replays return the cold-solve answer.

Comparisons use a combined absolute + relative tolerance: branches that
are hydraulically dead (behind a closed valve) carry flows at the 1e-14
level where a pure relative comparison is meaningless noise.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluids.library import WATER
from repro.hydraulics.cache import SolverCounters
from repro.hydraulics.elements import (
    CheckValve,
    HeatExchangerPassage,
    MinorLoss,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)
from repro.hydraulics.network import HydraulicNetwork
from repro.hydraulics.solver import (
    NetworkSolver,
    solve_network,
    solve_network_robust,
)

#: Absolute flow floor for comparisons, m^3/s. Flows on hydraulically
#: dead stubs (behind a closed valve) are pinned only by the junction
#: residuals, which each path drives below 1e-9 m^3/s independently — so
#: a stub chain can legitimately differ by a few times that between
#: formulations. 1e-8 absolute is still five orders below any live flow.
FLOW_ATOL = 1.0e-8
FLOW_RTOL = 1.0e-6


def _assert_flows_close(result_a, result_b, network):
    for branch in network.branches:
        qa = result_a.flow(branch.name)
        qb = result_b.flow(branch.name)
        assert qa == pytest.approx(qb, rel=FLOW_RTOL, abs=FLOW_ATOL), branch.name


@st.composite
def manifold_networks(draw):
    """A pump feeding 2-6 valved loops through manifold pipe segments.

    Mirrors the Fig. 5 rack loop: supply segments, a trim valve plus a
    heat-exchanger passage per loop, return segments, a riser with minor
    losses. Valve openings are drawn per loop, and at most one loop may be
    valved fully closed (the paper's servicing scenario).
    """
    n = draw(st.integers(min_value=2, max_value=6))
    openings = draw(
        st.lists(
            st.floats(min_value=0.3, max_value=1.0), min_size=n, max_size=n
        )
    )
    r_linear = draw(st.floats(min_value=1.0e5, max_value=5.0e6))
    r_quadratic = draw(st.floats(min_value=1.0e9, max_value=1.0e11))
    shutoff = draw(st.floats(min_value=4.0e4, max_value=3.0e5))
    closed_loop = draw(st.integers(min_value=-1, max_value=n - 1))

    net = HydraulicNetwork()
    net.add_junction("pump_in")
    net.add_junction("pump_out")
    net.set_reference("pump_in")
    net.add_branch(
        "pump", "pump_in", "pump_out", Pump(PumpCurve(shutoff, 2.0e-2))
    )
    segment = lambda: Pipe(length_m=0.2, diameter_m=0.04, minor_loss_k=0.3)
    for i in range(n):
        net.add_junction(f"s{i}")
        net.add_junction(f"m{i}")
        net.add_junction(f"r{i}")
    net.add_branch("supply_in", "pump_out", "s0", segment())
    for i in range(n - 1):
        net.add_branch(f"supply_{i}", f"s{i}", f"s{i + 1}", segment())
        net.add_branch(f"return_{i}", f"r{i}", f"r{i + 1}", segment())
    for i in range(n):
        opening = 0.0 if i == closed_loop else openings[i]
        net.add_branch(
            f"valve_{i}",
            f"s{i}",
            f"m{i}",
            Valve(k_open=2.0, diameter_m=0.025, opening=opening),
        )
        net.add_branch(
            f"loop_{i}", f"m{i}", f"r{i}", HeatExchangerPassage(r_linear, r_quadratic)
        )
    net.add_branch(
        "riser",
        f"r{n - 1}",
        "pump_in",
        Pipe(length_m=6.0, diameter_m=0.05, minor_loss_k=10.0),
    )
    return net


@given(net=manifold_networks())
@settings(max_examples=25, deadline=None)
def test_fast_path_matches_robust_path(net):
    """The vectorized/analytic solve agrees with the bracketed reference."""
    fast = solve_network(net, WATER, 20.0)
    robust = solve_network_robust(net, WATER, 20.0)
    _assert_flows_close(fast, robust, net)


@given(net=manifold_networks(), temperature=st.floats(min_value=5.0, max_value=60.0))
@settings(max_examples=25, deadline=None)
def test_junction_mass_balance_closes(net, temperature):
    """Net volumetric flow at every junction is zero to solver tolerance."""
    result = solve_network(net, WATER, temperature)
    imbalance = {name: 0.0 for name in net.junction_names}
    for branch in net.branches:
        q = result.flow(branch.name)
        imbalance[branch.node_a] -= q
        imbalance[branch.node_b] += q
    for name, net_flow in imbalance.items():
        assert abs(net_flow) < 1.0e-8, name


@given(net=manifold_networks())
@settings(max_examples=20, deadline=None)
def test_element_curves_reproduce_solution(net):
    """Each open branch's characteristic holds at the solved flow/drop."""
    result = solve_network(net, WATER, 20.0)
    for branch in net.open_branches():
        q = result.flow(branch.name)
        dp_element = branch.element.pressure_change_pa(q, WATER, 20.0)
        dp_nodes = (
            result.pressures_pa[branch.node_b] - result.pressures_pa[branch.node_a]
        )
        assert dp_element == pytest.approx(dp_nodes, rel=1e-6, abs=1.0)


@given(net=manifold_networks())
@settings(max_examples=15, deadline=None)
def test_warm_start_matches_cold_solve(net):
    """Warm-started re-solves equal a stateless cold solve."""
    warm_solver = NetworkSolver(use_cache=False, warm_start=True)
    first = warm_solver.solve(net, WATER, 20.0)
    again = warm_solver.solve(net, WATER, 20.0)  # warm-started from `first`
    cold = solve_network(net, WATER, 20.0)
    assert warm_solver.counters.warm_starts >= 1
    _assert_flows_close(first, cold, net)
    _assert_flows_close(again, cold, net)


@given(net=manifold_networks())
@settings(max_examples=15, deadline=None)
def test_cache_replay_is_exact(net):
    """A cache hit replays the first solution bit-for-bit."""
    solver = NetworkSolver(use_cache=True, warm_start=True)
    first = solver.solve(net, WATER, 20.0)
    replay = solver.solve(net, WATER, 20.0)
    assert solver.counters.cache_hits == 1
    assert replay.flows_m3_s == first.flows_m3_s
    assert replay.pressures_pa == first.pressures_pa


@given(
    net=manifold_networks(),
    t_a=st.floats(min_value=18.0, max_value=22.0),
)
@settings(max_examples=10, deadline=None)
def test_temperature_bucketing_respects_bucket_edges(net, t_a):
    """Solves in different temperature buckets never share a cache entry."""
    solver = NetworkSolver(use_cache=True, temperature_bucket_c=0.25)
    solver.solve(net, WATER, t_a)
    solver.solve(net, WATER, t_a + 1.0)  # four buckets away
    assert solver.counters.cache_hits == 0
    assert solver.counters.cache_misses == 2


@given(
    dp=st.floats(min_value=-8.0e4, max_value=8.0e4),
    opening=st.floats(min_value=0.2, max_value=1.0),
)
@settings(max_examples=60)
def test_analytic_inverses_roundtrip(dp, opening):
    """flow_at_pressure_change_pa inverts pressure_change_pa exactly
    (to fixed-point/rounding precision) for every element family."""
    elements = [
        Pipe(length_m=2.0, diameter_m=0.03, minor_loss_k=0.5),
        MinorLoss(k=3.0, diameter_m=0.03),
        Valve(k_open=2.0, diameter_m=0.025, opening=opening),
        HeatExchangerPassage(2.0e6, 2.0e10),
        CheckValve(k_forward=2.0, diameter_m=0.03),
        Pump(PumpCurve(1.2e5, 2.0e-2)),
    ]
    for element in elements:
        q = element.flow_at_pressure_change_pa(dp, WATER, 25.0)
        if q is None:
            continue
        dp_back = element.pressure_change_pa(q, WATER, 25.0)
        assert dp_back == pytest.approx(dp, rel=1e-7, abs=1e-4), type(element).__name__


def test_counters_accumulate_and_reset():
    counters = SolverCounters()
    counters.solves += 3
    counters.cache_hits += 2
    counters.cache_misses += 1
    assert counters.hit_rate == pytest.approx(2.0 / 3.0)
    as_dict = counters.as_dict()
    assert as_dict["solves"] == 3
    counters.reset()
    assert counters.solves == 0
    assert counters.hit_rate == 0.0
