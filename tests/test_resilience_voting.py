"""Tests for redundant-sensor voting and bounded retry."""

import math

import pytest

from repro.resilience.retry import RetryOutcome, retry_with_backoff
from repro.resilience.voting import VoteResult, median_vote


class TestMedianVote:
    def test_healthy_bank_votes_median(self):
        vote = median_vote([30.0, 30.2, 29.8])
        assert vote.value == pytest.approx(30.0)
        assert vote.valid_count == 3
        assert vote.healthy
        assert not vote.degraded and not vote.failed

    def test_none_reading_rejected(self):
        vote = median_vote([30.0, None, 30.4])
        assert vote.value == pytest.approx(30.2)
        assert vote.rejected == (1,)
        assert vote.degraded

    def test_nan_and_inf_rejected(self):
        vote = median_vote([float("nan"), 31.0, float("inf")])
        assert vote.value == pytest.approx(31.0)
        assert vote.rejected == (0, 2)

    def test_implausible_reading_rejected(self):
        vote = median_vote([30.0, -40.0, 30.4], lo=-10.0, hi=150.0)
        assert vote.rejected == (1,)
        assert vote.value == pytest.approx(30.2)

    def test_single_liar_outvoted(self):
        vote = median_vote([30.0, 55.0, 30.4], deviation_limit=3.0)
        assert vote.value == pytest.approx(30.4)
        assert vote.suspects == (1,)
        assert vote.degraded

    def test_all_rejected_is_blind(self):
        vote = median_vote([None, float("nan"), 999.0], lo=-10.0, hi=150.0)
        assert vote.failed
        assert vote.value is None
        assert vote.valid_count == 0
        assert vote.rejected == (0, 1, 2)

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            median_vote([])

    def test_inverted_band_rejected(self):
        with pytest.raises(ValueError):
            median_vote([30.0], lo=10.0, hi=0.0)

    def test_negative_deviation_limit_rejected(self):
        with pytest.raises(ValueError):
            median_vote([30.0, 30.1], deviation_limit=-1.0)

    def test_infinite_band_accepts_extremes(self):
        vote = median_vote([1.0e6, -1.0e6, 0.0])
        assert vote.value == pytest.approx(0.0)
        assert vote.healthy


class TestRetryWithBackoff:
    def test_first_try_success(self):
        outcome = retry_with_backoff(lambda i: i + 10)
        assert outcome.ok and outcome.value == 10
        assert outcome.attempts == 1
        assert not outcome.retried
        assert outcome.errors == ()

    def test_succeeds_on_relaxed_attempt(self):
        def flaky(attempt):
            if attempt < 2:
                raise ValueError(f"attempt {attempt} too tight")
            return "converged"

        outcome = retry_with_backoff(flaky, attempts=3, retry_on=(ValueError,))
        assert outcome.ok and outcome.value == "converged"
        assert outcome.attempts == 3
        assert outcome.retried
        assert len(outcome.errors) == 2

    def test_exhaustion_never_raises(self):
        def always_fails(attempt):
            raise ValueError("no")

        outcome = retry_with_backoff(always_fails, attempts=2, retry_on=(ValueError,))
        assert not outcome.ok
        assert outcome.value is None
        assert outcome.attempts == 2
        assert len(outcome.errors) == 2

    def test_unlisted_exception_propagates(self):
        def wrong_kind(attempt):
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_with_backoff(wrong_kind, attempts=3, retry_on=(ValueError,))

    def test_attempt_indices_passed_in_order(self):
        seen = []

        def record(attempt):
            seen.append(attempt)
            raise ValueError("again")

        retry_with_backoff(record, attempts=3, retry_on=(ValueError,))
        assert seen == [0, 1, 2]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry_with_backoff(lambda i: i, attempts=0)

    def test_deterministic_schedule(self):
        tolerances = []

        def relax(attempt):
            tolerance = 1.0e-9 * 10.0**attempt
            tolerances.append(tolerance)
            if tolerance < 1.0e-8:
                raise ValueError("too tight")
            return tolerance

        outcome = retry_with_backoff(relax, attempts=3, retry_on=(ValueError,))
        assert outcome.ok
        assert tolerances == [1.0e-9, 1.0e-8]

    def test_error_types_recorded_qualified(self):
        def mixed(attempt):
            if attempt == 0:
                raise ValueError("first kind")
            raise KeyError("second kind")

        outcome = retry_with_backoff(
            mixed, attempts=2, retry_on=(ValueError, KeyError)
        )
        assert not outcome.ok
        assert outcome.error_types == (
            "builtins.ValueError",
            "builtins.KeyError",
        )
        assert len(outcome.error_types) == len(outcome.errors)

    def test_error_types_on_eventual_success(self):
        def flaky(attempt):
            if attempt < 1:
                raise ValueError("tight")
            return "ok"

        outcome = retry_with_backoff(flaky, attempts=3, retry_on=(ValueError,))
        assert outcome.ok
        assert outcome.error_types == ("builtins.ValueError",)

    def test_error_types_default_keeps_old_constructions_valid(self):
        # Backward compatibility: pre-existing four-field constructions
        # still work and default to no recorded types.
        outcome = RetryOutcome(ok=True, value=1, attempts=1)
        assert outcome.error_types == ()
