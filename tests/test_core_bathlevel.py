"""Tests for the bath inventory and level-sensor physics."""

import pytest

from repro.core.bathlevel import BathGeometry, BathInventory


class TestGeometry:
    def test_volumes(self):
        geometry = BathGeometry(length_m=0.7, width_m=0.44, depth_m=0.11)
        assert geometry.surface_area_m2 == pytest.approx(0.308)
        assert geometry.gross_volume_m3 == pytest.approx(0.03388)
        assert geometry.oil_capacity_m3 < geometry.gross_volume_m3

    def test_rejects_internals_displacing_everything(self):
        with pytest.raises(ValueError):
            BathGeometry(displaced_volume_m3=1.0)


class TestInventory:
    def test_skat_scale_oil_mass(self):
        """A 3U bath holds roughly 15-25 kg of oil."""
        inventory = BathInventory()
        assert 12.0 < inventory.oil_mass_kg < 30.0

    def test_level_rises_with_temperature(self):
        """Thermal expansion: the warm bath reads higher on the level
        sensor — NOT a fill event."""
        inventory = BathInventory(fill_temperature_c=20.0, fill_fraction=0.9)
        cold = inventory.level_fraction(20.0)
        warm = inventory.level_fraction(50.0)
        assert warm > cold
        assert cold == pytest.approx(0.9, abs=1e-9)

    def test_expansion_magnitude_realistic(self):
        """Mineral oil expands ~0.07 %/K: +30 K is roughly +2 % level."""
        inventory = BathInventory(fill_fraction=0.9)
        rise = inventory.level_fraction(50.0) - inventory.level_fraction(20.0)
        assert 0.01 < rise < 0.04

    def test_leak_lowers_level(self):
        inventory = BathInventory()
        intact = inventory.level_fraction(30.0)
        leaked = inventory.level_fraction(30.0, leaked_kg=2.0)
        assert leaked < intact

    def test_level_clips_at_full(self):
        inventory = BathInventory(fill_fraction=1.0)
        assert inventory.level_fraction(60.0) == 1.0

    def test_thermal_mass_scale(self):
        """~20 kg x ~2 kJ/kgK: a few tens of kJ/K per bath."""
        inventory = BathInventory()
        assert 2.0e4 < inventory.thermal_mass_j_k(30.0) < 8.0e4


class TestAlarms:
    def test_headroom_positive_for_design_fill(self):
        inventory = BathInventory(fill_fraction=0.95)
        assert inventory.expansion_headroom_fraction(45.0) > 0.0

    def test_overfill_detected(self):
        inventory = BathInventory(fill_fraction=1.0)
        assert inventory.expansion_headroom_fraction(60.0) == 0.0

    def test_alarm_threshold_below_cold_level(self):
        inventory = BathInventory(fill_fraction=0.95)
        threshold = inventory.leak_alarm_threshold(min_operating_c=20.0)
        assert threshold < inventory.level_fraction(20.0)

    def test_warm_bath_never_false_alarms(self):
        """Normal operation at any temperature stays above the alarm."""
        inventory = BathInventory(fill_fraction=0.95)
        threshold = inventory.leak_alarm_threshold(min_operating_c=20.0)
        for t in (20.0, 30.0, 40.0, 50.0):
            assert inventory.level_fraction(t) > threshold

    def test_detectable_leak_small(self):
        """The alarm catches sub-kilogram losses at operating temperature
        margins used here."""
        inventory = BathInventory(fill_fraction=0.95)
        detectable = inventory.detectable_leak_kg(30.0)
        assert 0.0 < detectable < 3.0

    def test_bigger_margin_bigger_blind_spot(self):
        inventory = BathInventory(fill_fraction=0.95)
        tight = inventory.detectable_leak_kg(30.0, margin_fraction=0.005)
        loose = inventory.detectable_leak_kg(30.0, margin_fraction=0.03)
        assert loose > tight


class TestValidation:
    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            BathInventory(fill_fraction=0.05)

    def test_rejects_negative_leak(self):
        with pytest.raises(ValueError):
            BathInventory().oil_volume_m3(30.0, leaked_kg=-1.0)
