"""Property tests: physical invariants of the AI-factory workload layer.

Hypothesis drives the training-trace generator and the workload facility
with random specs and setpoints; four families of invariants must hold
for *any* draw:

- **trace sanity** — every expanded trace is a sorted ``power_step``
  script inside the [0, 1] workload-fraction band, and the module energy
  balance closes under it (the checker suite audits conservation);
- **pPUE floor** — partial PUE is structurally >= 1: the facility cannot
  spend negative overhead energy;
- **recovery bound** — a heat-recovery sink never recovers more energy
  than the facility rejected;
- **setpoint monotonicity** — warming the plant supply setpoint never
  cools the reuse return water (the heat-recovery feed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpumodule import GPU_WATER_FLOW_M3_S, gpu_module
from repro.core.simulation import ModuleSimulator
from repro.devices import TrainingTraceSpec, training_power_events
from repro.facility import (
    ChillerPlant,
    FacilityLoopSystem,
    FacilitySimulator,
    GPU_JUNCTION_LIMIT_C,
    HeatRecovery,
    HOT_WATER_SETPOINT_C,
)
from repro.facility.sweep import gpu_facility_rack, hot_water_gpu_rack
from repro.verify import CheckSuite

from functools import partial

#: Facility transients dominate the runtime; a handful of random draws
#: per property is the budget (the differential and golden suites pin
#: the exact numbers — these pin the *shape* of the physics).
COMMON = dict(deadline=None, max_examples=6)

specs = st.builds(
    TrainingTraceSpec,
    warmup_s=st.floats(0.0, 120.0),
    warmup_fraction=st.floats(0.1, 0.9),
    step_period_s=st.sampled_from([30.0, 45.0, 60.0, 90.0]),
    dip_fraction=st.floats(0.5, 0.95),
    jitter=st.floats(0.0, 0.1),
    seed=st.integers(0, 2**16 - 1),
)


def _workload_facility(hot, effectiveness, setpoint_c=None):
    setpoint = setpoint_c if setpoint_c is not None else (
        HOT_WATER_SETPOINT_C if hot else 20.0
    )
    return FacilitySimulator(
        n_racks=2,
        rack_factory=partial(
            hot_water_gpu_rack if hot else gpu_facility_rack, 2
        ),
        plant=ChillerPlant(setpoint_c=setpoint),
        loop=FacilityLoopSystem(n_racks=2, temperature_c=setpoint),
        junction_limit_c=GPU_JUNCTION_LIMIT_C,
        heat_recovery=(
            HeatRecovery(
                effectiveness=effectiveness,
                minimum_return_c=HOT_WATER_SETPOINT_C if hot else 0.0,
            )
            if effectiveness is not None
            else None
        ),
    )


class TestTraceInvariants:
    @given(spec=specs, duration_s=st.floats(200.0, 900.0))
    @settings(**COMMON)
    def test_trace_is_a_bounded_sorted_power_script(self, spec, duration_s):
        events = training_power_events(spec, duration_s, 10.0)
        assert events
        assert [e.time_s for e in events] == sorted(e.time_s for e in events)
        for event in events:
            assert event.kind == "power_step"
            assert 0.0 <= event.magnitude <= 1.0

    @given(spec=specs)
    @settings(**COMMON)
    def test_module_energy_balance_closes_under_any_trace(self, spec):
        """The conservation-law suite audits every step of a module run
        driven by an arbitrary training trace — energy in the oil, bath
        and water ledgers must still reconcile."""
        suite = CheckSuite(strict=True)
        simulator = ModuleSimulator(
            gpu_module(),
            water_flow_m3_s=GPU_WATER_FLOW_M3_S,
            checks=suite,
        )
        simulator.run(
            300.0,
            events=list(training_power_events(spec, 300.0, 10.0)),
            dt_s=10.0,
        )
        assert suite.violations == []


class TestFacilityEnergyLedger:
    @given(
        seed=st.integers(0, 2**16 - 1),
        hot=st.booleans(),
        effectiveness=st.one_of(st.none(), st.floats(0.0, 1.0)),
    )
    @settings(**COMMON)
    def test_ppue_floor_and_recovery_bound(self, seed, hot, effectiveness):
        facility = _workload_facility(hot, effectiveness)
        events = training_power_events(
            TrainingTraceSpec(seed=seed), 400.0, 20.0, target="compute"
        )
        result = facility.run(400.0, events=list(events), dt_s=20.0)
        assert result.ppue >= 1.0
        assert result.recovered_heat_j <= result.heat_rejected_j * (
            1.0 + 1.0e-9
        )
        assert result.recovered_heat_j >= 0.0
        overhead = result.pump_energy_j + result.chiller_energy_j
        assert result.ppue * result.it_energy_j == (
            result.it_energy_j + overhead
        ) or abs(
            result.ppue * result.it_energy_j - (result.it_energy_j + overhead)
        ) <= 1.0e-6 * (result.it_energy_j + overhead)

    @given(
        low=st.floats(16.0, 30.0),
        lift=st.floats(2.0, 12.0),
        seed=st.integers(0, 2**12 - 1),
    )
    @settings(**COMMON)
    def test_warmer_setpoint_never_cools_the_reuse_return(
        self, low, lift, seed
    ):
        events = list(
            training_power_events(
                TrainingTraceSpec(seed=seed), 400.0, 20.0, target="compute"
            )
        )
        cold = _workload_facility(False, None, setpoint_c=low).run(
            400.0, events=list(events), dt_s=20.0
        )
        warm = _workload_facility(False, None, setpoint_c=low + lift).run(
            400.0, events=list(events), dt_s=20.0
        )
        assert warm.reuse_return_water_c >= cold.reuse_return_water_c - 1.0e-9
