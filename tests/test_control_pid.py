"""Tests for the PID regulator."""

import pytest

from repro.control.pid import PidController, bath_temperature_pid, chiller_setpoint_pid


class TestMechanics:
    def test_output_clamped(self):
        pid = PidController(kp=100.0, ki=0.0, kd=0.0, setpoint=50.0)
        assert pid.update(0.0, 1.0) == 1.0  # saturates high
        assert pid.update(100.0, 1.0) == 0.0  # saturates low

    def test_proportional_direction(self):
        pid = PidController(kp=0.1, ki=0.0, kd=0.0, setpoint=50.0)
        below = pid.update(45.0, 1.0)
        above = pid.update(55.0, 1.0)
        assert below > above

    def test_reverse_acting_flips_direction(self):
        direct = PidController(kp=0.1, ki=0.0, kd=0.0, setpoint=50.0)
        reverse = PidController(kp=0.1, ki=0.0, kd=0.0, setpoint=50.0, reverse_acting=True)
        assert direct.update(45.0, 1.0) > 0.5
        assert reverse.update(45.0, 1.0) < 0.5

    def test_integral_accumulates(self):
        pid = PidController(kp=0.0, ki=0.01, kd=0.0, setpoint=50.0)
        first = pid.update(45.0, 1.0)
        second = pid.update(45.0, 1.0)
        assert second > first

    def test_integral_antiwindup(self):
        pid = PidController(kp=0.0, ki=10.0, kd=0.0, setpoint=50.0)
        for _ in range(100):
            pid.update(0.0, 1.0)  # huge persistent error
        # After the error clears, the output must come off the rail quickly.
        recovered = pid.update(50.0 + 1.0, 1.0)
        assert recovered < 1.0

    def test_derivative_opposes_rapid_change(self):
        pid = PidController(kp=0.0, ki=0.0, kd=1.0, setpoint=50.0)
        pid.update(50.0, 1.0)
        rising_fast = pid.update(45.0, 1.0)  # error jumped up
        assert rising_fast > 0.5

    def test_reset(self):
        pid = PidController(kp=0.0, ki=0.01, kd=0.0, setpoint=50.0)
        pid.update(40.0, 1.0)
        pid.reset()
        assert pid.update(50.0, 1.0) == pytest.approx(0.5)

    def test_rejects_bad_dt(self):
        pid = PidController(kp=1.0, ki=0.0, kd=0.0, setpoint=0.0)
        with pytest.raises(ValueError):
            pid.update(0.0, 0.0)

    def test_rejects_negative_gains(self):
        with pytest.raises(ValueError):
            PidController(kp=-1.0, ki=0.0, kd=0.0, setpoint=0.0)

    def test_rejects_inverted_limits(self):
        with pytest.raises(ValueError):
            PidController(kp=1.0, ki=0.0, kd=0.0, setpoint=0.0, output_min=1.0, output_max=0.0)


class TestClosedLoop:
    def _plant_step(self, bath_c, pump_speed, dt):
        """A toy bath: heat in constant, rejection proportional to speed."""
        heat = 9500.0
        rejection = 12000.0 * pump_speed * max(bath_c - 20.0, 0.0) / 9.0
        return bath_c + (heat - rejection) * dt / 1.0e5

    def test_bath_pid_converges_to_setpoint(self):
        pid = bath_temperature_pid(setpoint_c=29.0)
        bath = 24.0
        for _ in range(3000):
            speed = pid.update(bath, 5.0)
            bath = self._plant_step(bath, speed, 5.0)
        assert bath == pytest.approx(29.0, abs=1.0)

    def test_bath_pid_never_stops_circulation(self):
        pid = bath_temperature_pid()
        # Even with a freezing-cold bath the pump keeps its minimum speed.
        assert pid.update(5.0, 5.0) >= 0.3

    def test_chiller_pid_limits(self):
        pid = chiller_setpoint_pid(setpoint_c=29.0)
        # A very hot bath can only drive the setpoint to its floor.
        for _ in range(200):
            command = pid.update(45.0, 5.0)
        assert command == pytest.approx(12.0)
