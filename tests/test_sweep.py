"""Tests for the deterministic parallel sweep runner."""

import threading
import time

import pytest

from repro.sweep import (
    SweepCase,
    SweepOutcome,
    run_sweep,
    summarize_failures,
    sweep_cases,
    sweep_simulations,
    sweep_values,
)


class TestSweepCases:
    def test_cartesian_product_row_major(self):
        cases = sweep_cases(a=[1, 2], b=["x", "y"])
        assert [c.name for c in cases] == [
            "a=1,b=x",
            "a=1,b=y",
            "a=2,b=x",
            "a=2,b=y",
        ]
        assert cases[0].params == {"a": 1, "b": "x"}

    def test_single_axis(self):
        cases = sweep_cases(n=[4, 6, 8])
        assert [c.params["n"] for c in cases] == [4, 6, 8]

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep_cases()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SweepCase(name="")


class TestRunSweep:
    def test_results_in_case_order(self):
        cases = [SweepCase(name=f"c{i}", params={"i": i}) for i in range(20)]

        def slow_for_early_cases(case):
            # Early cases sleep longer, so completion order is reversed
            # from case order — results must still come back in case order.
            time.sleep((20 - case.params["i"]) * 1e-3)
            return case.params["i"] * 10

        outcomes = run_sweep(slow_for_early_cases, cases, max_workers=4)
        assert [o.index for o in outcomes] == list(range(20))
        assert [o.value for o in outcomes] == [i * 10 for i in range(20)]

    def test_parallel_matches_serial(self):
        cases = [SweepCase(name=f"c{i}", params={"i": i}) for i in range(13)]
        fn = lambda case: case.params["i"] ** 2
        serial = [o.value for o in run_sweep(fn, cases, max_workers=1)]
        parallel = [o.value for o in run_sweep(fn, cases, max_workers=4, chunk_size=2)]
        assert serial == parallel

    def test_actually_runs_concurrently(self):
        cases = [SweepCase(name=f"c{i}") for i in range(4)]
        active = []
        peak = []
        lock = threading.Lock()

        def track(case):
            with lock:
                active.append(case.name)
                peak.append(len(active))
            time.sleep(0.05)
            with lock:
                active.remove(case.name)
            return None

        run_sweep(track, cases, max_workers=4, chunk_size=1)
        assert max(peak) >= 2

    def test_empty_cases(self):
        assert run_sweep(lambda c: 1, []) == []

    def test_error_raise_mode(self):
        cases = [SweepCase(name="ok"), SweepCase(name="boom")]

        def maybe_fail(case):
            if case.name == "boom":
                raise RuntimeError("sweep case failed")
            return 1

        with pytest.raises(RuntimeError, match="sweep case failed"):
            run_sweep(maybe_fail, cases, max_workers=1)

    def test_error_capture_mode(self):
        cases = [SweepCase(name="ok"), SweepCase(name="boom"), SweepCase(name="ok2")]

        def maybe_fail(case):
            if case.name == "boom":
                raise RuntimeError("nope")
            return case.name

        outcomes = run_sweep(maybe_fail, cases, max_workers=2, on_error="capture")
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error is not None and "nope" in outcomes[1].error
        assert outcomes[2].value == "ok2"

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            run_sweep(lambda c: 1, [SweepCase(name="a")], on_error="ignore")

    def test_invalid_workers_and_chunks(self):
        cases = [SweepCase(name="a"), SweepCase(name="b")]
        with pytest.raises(ValueError):
            run_sweep(lambda c: 1, cases, max_workers=0)
        with pytest.raises(ValueError):
            run_sweep(lambda c: 1, cases, max_workers=2, chunk_size=0)

    def test_sweep_values(self):
        cases = sweep_cases(i=[1, 2, 3])
        assert sweep_values(lambda c: c.params["i"] + 1, cases) == [2, 3, 4]

    def test_outcome_ok_property(self):
        good = SweepOutcome(case=SweepCase(name="a"), index=0, value=1)
        bad = SweepOutcome(case=SweepCase(name="a"), index=0, error="E")
        assert good.ok and not bad.ok


class TestSweepSimulations:
    def test_scenarios_isolated_and_ordered(self):
        from repro.core.simulation import ModuleSimulator
        from repro.core.skat import skat
        from repro.control.controller import CoolingController
        from repro.reliability.failures import pump_stop_event

        module = skat()

        def factory():
            return ModuleSimulator(module, controller=CoolingController())

        scenarios = {
            "pump_trip": [pump_stop_event(120.0, "oil_pump")],
            "nominal": None,
        }
        results = sweep_simulations(
            factory, scenarios, duration_s=600.0, dt_s=30.0, max_workers=2
        )
        assert list(results) == ["pump_trip", "nominal"]
        # The trip scenario must not contaminate the nominal one.
        assert results["pump_trip"].shutdown_time_s is not None
        assert results["nominal"].shutdown_time_s is None

        reference = factory().run(duration_s=600.0, dt_s=30.0)
        assert results["nominal"].max_junction_c == pytest.approx(
            reference.max_junction_c, rel=1e-12
        )


class TestFailureSummaries:
    def _failing_sweep(self):
        cases = [
            SweepCase(name="ok", params={"x": 1}),
            SweepCase(name="bad_value", params={"x": -1}),
            SweepCase(name="bad_key", params={"x": None}),
        ]

        def evaluate(case):
            if case.params["x"] is None:
                raise KeyError("missing axis")
            if case.params["x"] < 0:
                raise ValueError("x must be non-negative")
            return case.params["x"]

        return run_sweep(evaluate, cases, max_workers=1, on_error="capture")

    def test_traceback_captured_on_failure(self):
        outcomes = self._failing_sweep()
        assert outcomes[0].error_traceback is None
        assert outcomes[1].error_traceback is not None
        assert "ValueError" in outcomes[1].error_traceback
        assert 'File "' in outcomes[1].error_traceback

    def test_summary_one_record_per_failure(self):
        records = summarize_failures(self._failing_sweep())
        assert [r["case"] for r in records] == ["bad_value", "bad_key"]
        assert [r["kind"] for r in records] == ["ValueError", "KeyError"]
        assert records[0]["params"] == {"x": -1}
        assert "x must be non-negative" in records[0]["error"]

    def test_summary_points_at_the_raise_site(self):
        records = summarize_failures(self._failing_sweep())
        # The innermost frame is the evaluate() body, not executor plumbing.
        assert "evaluate" in records[0]["where"]
        assert records[0]["where"].startswith('File "')

    def test_all_ok_sweep_summarizes_empty(self):
        outcomes = run_sweep(
            lambda c: 1, [SweepCase(name="a")], max_workers=1, on_error="capture"
        )
        assert summarize_failures(outcomes) == []
