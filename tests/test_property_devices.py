"""Hypothesis property tests for the device power models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    VIRTEX6_LX240T,
    VIRTEX7_X485T,
    family_roadmap,
)
from repro.devices.power import FpgaPowerModel, ThermalRunawayError

FAMILIES = st.sampled_from(family_roadmap())
UTILIZATION = st.floats(min_value=0.0, max_value=1.0)
JUNCTION = st.floats(min_value=-10.0, max_value=120.0)


@given(family=FAMILIES, utilization=UTILIZATION, junction=JUNCTION)
def test_power_always_positive(family, utilization, junction):
    model = FpgaPowerModel(family)
    power = model.total_power_w(utilization, family.nominal_clock_mhz, junction)
    assert power > 0.0  # leakage never vanishes


@given(family=FAMILIES, u1=UTILIZATION, u2=UTILIZATION, junction=JUNCTION)
def test_power_monotone_in_utilization(family, u1, u2, junction):
    if u1 > u2:
        u1, u2 = u2, u1
    model = FpgaPowerModel(family)
    clock = family.nominal_clock_mhz
    assert model.total_power_w(u1, clock, junction) <= model.total_power_w(
        u2, clock, junction
    )


@given(family=FAMILIES, t1=JUNCTION, t2=JUNCTION)
def test_power_monotone_in_temperature(family, t1, t2):
    if t1 > t2:
        t1, t2 = t2, t1
    model = FpgaPowerModel(family)
    clock = family.nominal_clock_mhz
    assert model.total_power_w(0.9, clock, t1) <= model.total_power_w(0.9, clock, t2)


@given(
    family=st.sampled_from([VIRTEX6_LX240T, VIRTEX7_X485T, KINTEX_ULTRASCALE_KU095]),
    resistance=st.floats(min_value=0.05, max_value=0.8),
    coolant=st.floats(min_value=10.0, max_value=45.0),
)
@settings(max_examples=60)
def test_junction_solve_is_self_consistent_or_runaway(family, resistance, coolant):
    model = FpgaPowerModel(family)
    try:
        junction = model.solve_junction(resistance, coolant)
    except ThermalRunawayError:
        return  # acceptable outcome for weak cooling
    power = model.total_power_w(0.9, family.nominal_clock_mhz, junction)
    assert junction == pytest.approx(coolant + resistance * power, abs=1e-5)
    assert junction > coolant


@given(
    resistance=st.floats(min_value=0.05, max_value=0.4),
    c1=st.floats(min_value=10.0, max_value=40.0),
    c2=st.floats(min_value=10.0, max_value=40.0),
)
@settings(max_examples=40)
def test_junction_monotone_in_coolant(resistance, c1, c2):
    if c1 > c2:
        c1, c2 = c2, c1
    model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
    try:
        j1 = model.solve_junction(resistance, c1)
        j2 = model.solve_junction(resistance, c2)
    except ThermalRunawayError:
        return
    assert j1 <= j2 + 1e-9
