"""Tests for Arrhenius temperature acceleration."""

import pytest

from repro.reliability.arrhenius import (
    acceleration_factor,
    arrhenius_failure_rate,
    mtbf_hours,
    mtbf_ratio,
)


class TestAccelerationFactor:
    def test_identity_at_equal_temperatures(self):
        assert acceleration_factor(55.0, 55.0) == pytest.approx(1.0)

    def test_hotter_stress_accelerates(self):
        assert acceleration_factor(55.0, 73.0) > 1.0

    def test_colder_stress_decelerates(self):
        assert acceleration_factor(73.0, 55.0) < 1.0

    def test_skat_vs_taygeta_life_multiple(self):
        """55 C (SKAT) vs 72.9 C (Taygeta): a 3-4x life advantage at
        0.7 eV — the quantified reliability claim."""
        factor = acceleration_factor(55.0, 72.9)
        assert 2.5 < factor < 5.0

    def test_reciprocity(self):
        forward = acceleration_factor(50.0, 80.0)
        backward = acceleration_factor(80.0, 50.0)
        assert forward * backward == pytest.approx(1.0)

    def test_higher_activation_energy_steeper(self):
        mild = acceleration_factor(55.0, 85.0, activation_energy_ev=0.4)
        steep = acceleration_factor(55.0, 85.0, activation_energy_ev=0.9)
        assert steep > mild

    def test_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            acceleration_factor(55.0, 85.0, activation_energy_ev=0.0)


class TestFailureRate:
    def test_scales_base_rate(self):
        base = 1.0e-7  # 100 FIT
        rate = arrhenius_failure_rate(base, 55.0, 85.0)
        assert rate > base

    def test_at_base_temperature_unchanged(self):
        base = 1.0e-7
        assert arrhenius_failure_rate(base, 55.0, 55.0) == pytest.approx(base)

    def test_mtbf_inverse(self):
        assert mtbf_hours(1.0e-5) == pytest.approx(1.0e5)

    def test_mtbf_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            mtbf_hours(0.0)

    def test_mtbf_ratio_matches_acceleration(self):
        assert mtbf_ratio(55.0, 72.9) == pytest.approx(acceleration_factor(55.0, 72.9))
