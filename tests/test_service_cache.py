"""Cache-correctness battery: digest identity and LRU bounds.

The digest is the cache key, so its stability *is* cache correctness:
two payloads must digest identically exactly when they describe the same
physics (key order, numeric spelling, kW vs W, defaulted vs explicit
fields must not matter), and distinct scenarios must never collide.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.service.cache import ResultCache
from repro.service.requests import (
    LEVEL_DEFAULTS,
    ServiceRequestError,
    normalize_request,
    request_digest,
)
from repro.verify.fuzz import canonical_json, generate_scenarios


def digest_of(payload):
    return request_digest(normalize_request(payload))


# -- digest stability --------------------------------------------------


def test_digest_ignores_key_order():
    a = {"level": "rack", "duration_s": 200.0, "n_modules": 3, "dt_s": 20.0}
    b = {"dt_s": 20.0, "n_modules": 3, "duration_s": 200.0, "level": "rack"}
    assert digest_of(a) == digest_of(b)


def test_digest_numeric_coercion_int_vs_float():
    assert digest_of({"level": "module", "duration_s": 120}) == digest_of(
        {"level": "module", "duration_s": 120.0}
    )
    assert digest_of({"level": "rack", "dt_s": 20}) == digest_of(
        {"level": "rack", "dt_s": 20.0}
    )


def test_digest_defaults_spelled_out_or_omitted():
    for level, defaults in LEVEL_DEFAULTS.items():
        explicit = {
            "level": level,
            "duration_s": defaults["duration_s"],
            "dt_s": defaults["dt_s"],
            "n_modules": int(defaults["n_modules"]),
            "n_racks": int(defaults["n_racks"]),
            "supervised": False,
            "events": [],
        }
        assert digest_of(explicit) == digest_of({"level": level})


def test_digest_event_order_insensitive():
    e1 = {"kind": "heat_spike", "time_s": 60.0, "target": "m0", "magnitude": 2.0}
    e2 = {"kind": "pump_degrade", "time_s": 30.0, "target": "m0", "magnitude": 0.5}
    assert digest_of({"level": "module", "events": [e1, e2]}) == digest_of(
        {"level": "module", "events": [e2, e1]}
    )


def test_digest_kw_and_watt_plants_identical():
    watts = {
        "level": "facility",
        "plant": {"primary_capacity_w": 700000.0, "standby_capacity_w": 350000.0},
    }
    kilowatts = {
        "level": "facility",
        "plant": {"primary_capacity_kw": 700, "standby_capacity_kw": 350},
    }
    assert digest_of(watts) == digest_of(kilowatts)


def test_digest_distinct_plants_differ():
    base = {"level": "facility", "plant": {"primary_capacity_kw": 700}}
    other = {"level": "facility", "plant": {"primary_capacity_kw": 500}}
    assert digest_of(base) != digest_of(other)
    assert digest_of(base) != digest_of({"level": "facility"})


def test_digest_collision_smoke_over_fuzzer_stream():
    """Across the fuzz stream: digests collide iff payloads normalize equal."""
    scenarios = generate_scenarios(2024, 60, ("module", "rack", "facility"))
    normalized = [
        normalize_request(
            {k: v for k, v in s.to_dict().items() if k != "index"}
        )
        for s in scenarios
    ]
    keys = [canonical_json(n) for n in normalized]
    digests = [request_digest(n) for n in normalized]
    assert len(set(digests)) == len(set(keys))
    by_digest = {}
    for key, digest in zip(keys, digests):
        assert by_digest.setdefault(digest, key) == key


def test_digest_sensitive_to_every_scalar_field():
    base = {"level": "facility", "n_racks": 3, "n_modules": 2}
    assert digest_of(base) != digest_of({**base, "n_racks": 4})
    assert digest_of(base) != digest_of({**base, "n_modules": 3})
    assert digest_of(base) != digest_of({**base, "supervised": True})
    assert digest_of(base) != digest_of({**base, "duration_s": 400.0})
    assert digest_of(base) != digest_of(
        {**base, "tolerances": {"temp_abs_c": 0.5}}
    )


# -- schema rejection --------------------------------------------------


@pytest.mark.parametrize(
    "payload",
    [
        "not an object",
        {"level": "campus"},
        {},
        {"level": "module", "typo_key": 1},
        {"level": "module", "duration_s": -1.0},
        {"level": "module", "duration_s": float("nan")},
        {"level": "module", "duration_s": 1e9},
        {"level": "module", "duration_s": 1000.0, "dt_s": 0.001},
        {"level": "module", "n_modules": 2},
        {"level": "rack", "n_racks": 2},
        {"level": "rack", "n_modules": 0},
        {"level": "facility", "n_racks": 1},
        {"level": "facility", "n_racks": 99},
        {"level": "module", "supervised": "yes"},
        {"level": "module", "n_modules": True},
        {"level": "module", "events": "boom"},
        {"level": "module", "events": [{"kind": "x"}]},
        {"level": "module", "events": [{"kind": "x", "time_s": 9e9,
                                        "target": "m0", "magnitude": 1.0}]},
        {"level": "module", "events": [{"kind": "x", "time_s": 1.0,
                                        "target": "m0", "magnitude": 1.0,
                                        "extra": 1}]},
        {"level": "module", "tolerances": {"bogus": 1.0}},
        {"level": "module", "tolerances": 3},
        {"level": "module", "plant": {"cop": 4.5}},
        {"level": "facility", "plant": "big"},
        {"level": "facility", "plant": {"primary_capacity_w": 1.0,
                                        "primary_capacity_kw": 1.0}},
        {"level": "facility", "plant": {"primary_capacity_w": 0.0}},
        {"level": "facility", "plant": {"standby_capacity_w": -1.0}},
        {"level": "facility", "plant": {"cop": 0.0}},
        {"level": "facility", "plant": {"chiller_count": 2}},
    ],
)
def test_malformed_payloads_rejected(payload):
    with pytest.raises(ServiceRequestError):
        normalize_request(payload)


def test_event_budget_enforced():
    event = {"kind": "heat_spike", "time_s": 1.0, "target": "m0", "magnitude": 1.0}
    with pytest.raises(ServiceRequestError, match="at most"):
        normalize_request({"level": "module", "events": [event] * 33})


# -- LRU behaviour -----------------------------------------------------


def test_lru_eviction_order_and_recency_refresh():
    registry = MetricsRegistry()
    cache = ResultCache(max_entries=3, registry=registry)
    for key in ("a", "b", "c"):
        cache.put(key, {"v": key})
    assert cache.get("a") == {"v": "a"}  # refresh 'a'; 'b' is now LRU
    cache.put("d", {"v": "d"})
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert len(cache) == 3
    assert registry.as_dict()["counters"]["service_cache_evictions_total"] == 1.0


def test_lru_bound_holds_under_churn():
    registry = MetricsRegistry()
    cache = ResultCache(max_entries=8, registry=registry)
    for i in range(100):
        cache.put(f"k{i:03d}", {"v": i})
        assert len(cache) <= 8
    assert len(cache) == 8
    snapshot = registry.as_dict()
    assert snapshot["counters"]["service_cache_evictions_total"] == 92.0
    assert snapshot["gauges"]["service_cache_size"] == 8.0
    # The survivors are exactly the 8 most recent inserts.
    assert all(cache.get(f"k{i:03d}") is not None for i in range(92, 100))


def test_disabled_cache_stores_nothing():
    cache = ResultCache(max_entries=0)
    assert not cache.enabled
    cache.put("a", {"v": 1})
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.stats() == {"entries": 0, "max_entries": 0}


def test_none_values_never_stored():
    cache = ResultCache(max_entries=4)
    cache.put("a", None)
    assert len(cache) == 0


def test_clear_and_stats():
    registry = MetricsRegistry()
    cache = ResultCache(max_entries=4, registry=registry)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.stats() == {"entries": 2, "max_entries": 4}
    cache.clear()
    assert len(cache) == 0
    assert registry.as_dict()["gauges"]["service_cache_size"] == 0.0


def test_negative_bound_rejected():
    with pytest.raises(ValueError):
        ResultCache(max_entries=-1)
