"""Tests for the supervisory cooling controller."""

import pytest

from repro.control.controller import (
    AlarmSeverity,
    CoolingController,
    Thresholds,
)


def nominal_reading(controller, coolant=28.0, fpga=55.0, flow=2.5e-3, level=0.98):
    return controller.evaluate(
        coolant_c=coolant,
        component_temps_c={"fpga": fpga},
        flow_m3_s=flow,
        level_fraction=level,
    )


class TestNormalOperation:
    def test_no_alarms_in_skat_envelope(self):
        controller = CoolingController()
        action = nominal_reading(controller)
        assert action.alarms == []
        assert not action.shutdown
        assert action.pump_speed_fraction == 1.0

    def test_nominal_setpoint_passthrough(self):
        controller = CoolingController(nominal_setpoint_c=20.0)
        action = nominal_reading(controller)
        assert action.chiller_setpoint_c == 20.0


class TestWarnings:
    def test_coolant_warning(self):
        controller = CoolingController()
        action = nominal_reading(controller, coolant=36.0)
        assert any(a.severity is AlarmSeverity.WARNING for a in action.alarms)
        assert not action.shutdown

    def test_component_warning(self):
        controller = CoolingController()
        action = nominal_reading(controller, fpga=72.0)
        assert any(a.source == "fpga" for a in action.alarms)

    def test_pump_trims_up_near_warning(self):
        controller = CoolingController(nominal_pump_speed=0.8)
        action = nominal_reading(controller, coolant=33.0)  # 2 K of margin
        assert action.pump_speed_fraction > 0.8


class TestTrips:
    def test_coolant_trip_latches_shutdown(self):
        controller = CoolingController()
        action = nominal_reading(controller, coolant=46.0)
        assert action.shutdown
        assert action.pump_speed_fraction == 0.0
        # Latched: a later normal reading still commands shutdown.
        action2 = nominal_reading(controller)
        assert action2.shutdown

    def test_component_trip(self):
        controller = CoolingController()
        action = nominal_reading(controller, fpga=90.0)
        assert action.has_critical
        assert action.shutdown

    def test_low_flow_trip(self):
        controller = CoolingController()
        action = nominal_reading(controller, flow=1.0e-4)
        assert action.shutdown

    def test_low_level_trip(self):
        controller = CoolingController()
        action = nominal_reading(controller, level=0.5)
        assert action.shutdown

    def test_reset_clears_latch(self):
        controller = CoolingController()
        nominal_reading(controller, coolant=46.0)
        controller.reset()
        action = nominal_reading(controller)
        assert not action.shutdown


class TestThresholds:
    def test_defaults_encode_skat_envelope(self):
        t = Thresholds()
        assert t.coolant_warn_c > 30.0  # normal SKAT oil never alarms
        assert t.component_warn_c >= 70.0  # the reliability ceiling

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            Thresholds(coolant_warn_c=50.0, coolant_trip_c=45.0)
        with pytest.raises(ValueError):
            Thresholds(component_warn_c=90.0, component_trip_c=85.0)
