"""Tests for the TCO model."""

import pytest

from repro.analysis.tco import (
    CoolingTco,
    CostAssumptions,
    coolant_inventory_cost,
    cooling_tco,
    rack_tco_comparison,
    render_tco,
)
from repro.fluids.library import MINERAL_OIL_MD45, SYNTHETIC_ESTER


class TestComponents:
    def test_coolant_inventory_cost(self):
        assert coolant_inventory_cost(MINERAL_OIL_MD45, 100.0) == pytest.approx(800.0)

    def test_ester_fill_costs_about_3x_oil(self):
        oil = coolant_inventory_cost(MINERAL_OIL_MD45, 360.0)
        ester = coolant_inventory_cost(SYNTHETIC_ESTER, 360.0)
        assert ester / oil == pytest.approx(25.0 / 8.0, rel=1e-9)

    def test_total_is_sum_of_breakdown(self):
        tco = cooling_tco(
            "x",
            cooling_power_kw=10.0,
            hardware_capex_usd=1000.0,
            coolant=MINERAL_OIL_MD45,
            coolant_volume_litre=100.0,
            downtime_hours_per_year=2.0,
        )
        assert tco.total_usd == pytest.approx(sum(tco.breakdown().values()))

    def test_energy_term(self):
        assumptions = CostAssumptions(electricity_usd_kwh=0.1, service_years=1.0)
        tco = cooling_tco("x", 10.0, 0.0, assumptions=assumptions)
        assert tco.opex_energy_usd == pytest.approx(10.0 * 8760.0 * 0.1)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            cooling_tco("x", -1.0, 0.0)
        with pytest.raises(ValueError):
            CostAssumptions(electricity_usd_kwh=0.0)


class TestRackComparison:
    @pytest.fixture(scope="class")
    def tcos(self):
        return rack_tco_comparison()

    def test_four_options(self, tcos):
        assert set(tcos) == {"air", "coldplate", "immersion_oil", "immersion_ester"}

    def test_ester_variant_costs_more_than_oil(self, tcos):
        """The paper's IMMERS criticism: 'high cost of the cooling liquid,
        produced by only one manufacturer'."""
        assert tcos["immersion_ester"].total_usd > tcos["immersion_oil"].total_usd
        assert (
            tcos["immersion_ester"].capex_coolant_usd
            > 3.0 * tcos["immersion_oil"].capex_coolant_usd
        )

    def test_coldplate_downtime_dominates_its_tco(self, tcos):
        coldplate = tcos["coldplate"]
        assert coldplate.downtime_usd > coldplate.capex_hardware_usd

    def test_immersion_beats_coldplate_total(self, tcos):
        assert tcos["immersion_oil"].total_usd < tcos["coldplate"].total_usd

    def test_render(self, tcos):
        text = render_tco(tcos)
        assert "TOTAL" in text
        assert "mineral oil" in text
