"""Tests for the executable design rules."""

import pytest

from repro.core.designrules import (
    coolant_rules,
    format_report,
    heatsink_rules,
    module_rules,
    pump_rules,
    review,
)
from repro.core.skat import skat, skat_heatsink, skat_pump
from repro.fluids.library import MINERAL_OIL_MD45, SYNTHETIC_ESTER, WATER


class TestCoolantRules:
    def test_md45_passes_all(self):
        """The paper's chosen agent satisfies its own criteria."""
        assert review(coolant_rules(MINERAL_OIL_MD45))

    def test_water_fails_dielectric(self):
        checks = coolant_rules(WATER)
        failed = [c.rule for c in checks if not c.passed]
        assert any("dielectric" in rule for rule in failed)

    def test_ester_fails_cost(self):
        """The single-vendor coolant the paper criticises fails the
        'reasonable cost' criterion."""
        checks = coolant_rules(SYNTHETIC_ESTER)
        failed = [c.rule for c in checks if not c.passed]
        assert "reasonable cost" in failed


class TestHeatsinkRules:
    def test_skat_sink_passes(self):
        checks = heatsink_rules(skat_heatsink(), MINERAL_OIL_MD45, 0.18)
        assert review(checks)

    def test_stagnant_sink_fails_turbulence(self):
        checks = heatsink_rules(skat_heatsink(), MINERAL_OIL_MD45, 0.001)
        failed = [c.rule for c in checks if not c.passed]
        assert "local turbulence" in failed


class TestPumpRules:
    def test_skat_pump_passes_at_duty(self):
        checks = pump_rules(skat_pump(), 2.7e-3, 25.0e3, MINERAL_OIL_MD45)
        assert review(checks)

    def test_undersized_pump_fails_duty(self):
        checks = pump_rules(skat_pump(), 4.9e-3, 40.0e3, MINERAL_OIL_MD45)
        failed = [c.rule for c in checks if not c.passed]
        assert "performance at duty point" in failed


class TestModuleRules:
    def test_skat_passes_all(self):
        assert review(module_rules(skat()))

    def test_rule_report_format(self):
        text = format_report(module_rules(skat()))
        assert "[PASS]" in text
        assert "3U module height" in text


class TestReview:
    def test_empty_checks_rejected(self):
        with pytest.raises(ValueError):
            review([])
