"""Differential parity: every gateway path is byte-identical to serial.

The acceptance bar from the ISSUE: a gateway response's ``result`` —
whether it came from a cache hit, a coalesced join, a batched lane or a
direct serial solve — must be byte-identical canonical JSON to an
in-process serial ``run`` for module, rack and facility requests. The
serial oracle is :func:`repro.verify.fuzz.run_scenario` (already pinned
lane-for-lane against ``ModuleSimulator.run``/``run_many`` by the
differential fuzz suite), so equality here chains the whole service
stack back to the simulators.
"""

import asyncio

from repro.obs import MetricsRegistry
from repro.service import ManualTimer, SimulationGateway
from repro.service.requests import (
    evaluate_request,
    normalize_request,
    request_scenario,
)
from repro.verify.fuzz import canonical_json, generate_scenarios, run_scenario

SEED = 1337


def level_payloads(level, count):
    """Distinct fuzz-stream payloads of one level (duplicates dropped)."""
    payloads, seen = [], set()
    for scenario in generate_scenarios(SEED, 6 * count, levels=(level,)):
        payload = {k: v for k, v in scenario.to_dict().items() if k != "index"}
        key = canonical_json(normalize_request(payload))
        if key not in seen:
            seen.add(key)
            payloads.append(payload)
        if len(payloads) == count:
            break
    assert len(payloads) == count
    return payloads


def oracle_bytes(payload):
    """Canonical JSON of the serial in-process run for ``payload``."""
    normalized = normalize_request(payload)
    record = run_scenario(request_scenario(normalized))
    return canonical_json(record)


def test_oracle_helper_matches_run_scenario():
    """evaluate_request without a plant IS run_scenario, byte for byte."""
    for level in ("module", "rack", "facility"):
        payload = level_payloads(level, 1)[0]
        normalized = normalize_request(payload)
        assert canonical_json(evaluate_request(normalized)) == oracle_bytes(
            payload
        )


def test_direct_and_cached_paths_match_serial_all_levels():
    payloads = (
        level_payloads("module", 3)
        + level_payloads("rack", 2)
        + level_payloads("facility", 2)
    )

    async def go():
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        solved = [await gateway.simulate(p) for p in payloads]
        cached = [await gateway.simulate(p) for p in payloads]
        await gateway.close()
        return solved, cached

    solved, cached = asyncio.run(go())
    for payload, miss, hit in zip(payloads, solved, cached):
        expected = oracle_bytes(payload)
        assert canonical_json(miss["result"]) == expected
        assert canonical_json(hit["result"]) == expected
        assert miss["cached"] is False and hit["cached"] is True


def test_coalesced_joiners_match_serial():
    payload = level_payloads("rack", 1)[0]

    async def go():
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        envelopes = await asyncio.gather(
            *(gateway.simulate(payload) for _ in range(6))
        )
        await gateway.close()
        return envelopes

    envelopes = asyncio.run(go())
    expected = oracle_bytes(payload)
    assert all(canonical_json(e["result"]) == expected for e in envelopes)


def test_one_wide_batch_window_matches_serial_lane_for_lane():
    """Distinct requests coalesced into ONE dispatch == serial runs.

    This drives the ``service_batch`` -> ``fuzz_module_batch`` ->
    ``ModuleSimulator.run_many`` lane: module-level open-loop scenarios
    share a structure-of-arrays solve while supervised/rack/facility
    lanes fall back to serial inside the same window.
    """
    payloads = (
        level_payloads("module", 4)
        + level_payloads("rack", 1)
        + level_payloads("facility", 1)
    )
    registry = MetricsRegistry()

    async def go():
        timer = ManualTimer()
        gateway = SimulationGateway(
            registry=registry, timer=timer, max_batch_size=64
        )
        tasks = [
            asyncio.create_task(gateway.simulate(p)) for p in payloads
        ]
        for _ in range(500):
            if (
                gateway.batcher.queue_depth == len(payloads)
                and timer.pending == 1
            ):
                break
            await asyncio.sleep(0)
        assert gateway.batcher.queue_depth == len(payloads)
        assert timer.fire()
        envelopes = await asyncio.gather(*tasks)
        await gateway.close()
        return envelopes

    envelopes = asyncio.run(go())
    assert registry.as_dict()["counters"]["service_batches_total"] == 1.0
    for payload, envelope in zip(payloads, envelopes):
        assert canonical_json(envelope["result"]) == oracle_bytes(payload)


def test_sweep_results_match_serial():
    payloads = level_payloads("module", 3)

    async def go():
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        envelope = await gateway.sweep({"scenarios": payloads})
        await gateway.close()
        return envelope

    envelope = asyncio.run(go())
    for payload, entry in zip(payloads, envelope["results"]):
        assert canonical_json(entry["result"]) == oracle_bytes(payload)


def test_default_plant_override_matches_plantless_oracle():
    """A plant block spelling out the defaults changes the digest but
    must not change the physics: the plant-override evaluation branch is
    pinned byte-identical to the plantless ``run_scenario`` facility
    branch."""
    base = level_payloads("facility", 1)[0]
    with_plant = {
        **base,
        "plant": {
            "primary_capacity_kw": 700.0,
            "standby_capacity_kw": 350.0,
            "standby_start_delay_s": 120.0,
            "setpoint_c": 16.0,
            "cop": 4.5,
        },
    }
    plain = normalize_request(base)
    overridden = normalize_request(with_plant)
    assert canonical_json(plain) != canonical_json(overridden)
    assert canonical_json(evaluate_request(overridden)) == canonical_json(
        evaluate_request(plain)
    )


def test_plant_override_through_gateway_matches_oracle():
    base = level_payloads("facility", 1)[0]
    payload = {**base, "plant": {"primary_capacity_kw": 500.0, "cop": 5.0}}
    expected = canonical_json(evaluate_request(normalize_request(payload)))

    async def go():
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        miss = await gateway.simulate(payload)
        hit = await gateway.simulate(
            {**base, "plant": {"primary_capacity_w": 500000.0, "cop": 5.0}}
        )
        await gateway.close()
        return miss, hit

    miss, hit = asyncio.run(go())
    # The kW spelling and its watt twin are one cache entry...
    assert hit["cached"] is True and miss["digest"] == hit["digest"]
    # ...and both carry the serial oracle's bytes.
    assert canonical_json(miss["result"]) == expected
    assert canonical_json(hit["result"]) == expected
