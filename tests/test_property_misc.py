"""Hypothesis property tests across the smaller substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bathlevel import BathInventory
from repro.core.tim import CONVENTIONAL_PASTE
from repro.fluids.mixtures import MAX_GLYCOL_FRACTION, glycol_mixture
from repro.heatexchange.fouling import FoulingModel
from repro.reliability.arrhenius import acceleration_factor

FRACTION = st.floats(min_value=0.01, max_value=MAX_GLYCOL_FRACTION)
BLEND_TEMP = st.floats(min_value=5.0, max_value=90.0)


@given(fraction=FRACTION, temperature=BLEND_TEMP)
def test_mixture_properties_positive_and_ordered(fraction, temperature):
    blend = glycol_mixture(fraction)
    from repro.fluids.library import WATER

    assert blend.density(temperature) > 0
    assert blend.viscosity(temperature) >= WATER.viscosity(temperature)
    assert blend.specific_heat(temperature) <= WATER.specific_heat(temperature)
    assert blend.conductivity(temperature) <= WATER.conductivity(temperature)


@given(f1=FRACTION, f2=FRACTION, temperature=BLEND_TEMP)
@settings(max_examples=60)
def test_mixture_viscosity_monotone_in_fraction(f1, f2, temperature):
    if f1 > f2:
        f1, f2 = f2, f1
    assert glycol_mixture(f1).viscosity(temperature) <= glycol_mixture(f2).viscosity(
        temperature
    ) * (1.0 + 1e-12)


@given(
    fill=st.floats(min_value=0.5, max_value=0.98),
    t1=st.floats(min_value=15.0, max_value=60.0),
    t2=st.floats(min_value=15.0, max_value=60.0),
)
def test_bath_level_monotone_in_temperature(fill, t1, t2):
    if t1 > t2:
        t1, t2 = t2, t1
    inventory = BathInventory(fill_fraction=fill)
    assert inventory.level_fraction(t1) <= inventory.level_fraction(t2) + 1e-12


@given(
    fill=st.floats(min_value=0.5, max_value=0.98),
    temperature=st.floats(min_value=15.0, max_value=60.0),
    leak=st.floats(min_value=0.0, max_value=5.0),
)
def test_bath_mass_conservation(fill, temperature, leak):
    """Volume times density recovers the fill mass minus the leak."""
    inventory = BathInventory(fill_fraction=fill)
    volume = inventory.oil_volume_m3(temperature, leaked_kg=leak)
    recovered = volume * inventory.oil.density(temperature)
    assert recovered == pytest.approx(inventory.oil_mass_kg - leak, abs=1e-9)


@given(
    h1=st.floats(min_value=0.0, max_value=1.0e5),
    h2=st.floats(min_value=0.0, max_value=1.0e5),
)
def test_tim_washout_monotone(h1, h2):
    if h1 > h2:
        h1, h2 = h2, h1
    area = 26e-3 ** 2
    assert CONVENTIONAL_PASTE.resistance_k_w(area, h1) <= CONVENTIONAL_PASTE.resistance_k_w(
        area, h2
    ) + 1e-15


@given(
    u=st.floats(min_value=100.0, max_value=5000.0),
    t1=st.floats(min_value=0.0, max_value=1.0e5),
    t2=st.floats(min_value=0.0, max_value=1.0e5),
)
def test_fouling_u_monotone_decreasing(u, t1, t2):
    if t1 > t2:
        t1, t2 = t2, t1
    model = FoulingModel()
    assert model.fouled_u(u, t2) <= model.fouled_u(u, t1) + 1e-12


@given(
    t_a=st.floats(min_value=20.0, max_value=100.0),
    t_b=st.floats(min_value=20.0, max_value=100.0),
    t_c=st.floats(min_value=20.0, max_value=100.0),
)
def test_arrhenius_transitivity(t_a, t_b, t_c):
    """AF(a->b) * AF(b->c) == AF(a->c): the acceleration factor is a
    consistent relative scale."""
    combined = acceleration_factor(t_a, t_b) * acceleration_factor(t_b, t_c)
    direct = acceleration_factor(t_a, t_c)
    assert combined == pytest.approx(direct, rel=1e-9)
