"""Unit tests for the facility package: loop, plant, simulator, campaign."""

import math

import pytest

from repro.core.balancing import ManifoldLayout
from repro.core.rack import Rack
from repro.core.skat import skat
from repro.facility.campaign import (
    draw_facility_scenarios,
    facility_fault_scenarios,
    run_facility_campaign,
)
from repro.facility.network import FacilityLoopSystem
from repro.facility.simulator import (
    ChillerPlant,
    FacilitySimulator,
    MIN_CAPACITY_FRACTION,
)
from repro.facility.sweep import (
    SCENARIOS,
    build_facility,
    evaluate_facility_case,
    scenario_events,
    smoke_cases,
)
from repro.reliability.failures import FailureEvent


def tiny_rack():
    return Rack(module_factory=skat, n_modules=2)


def tiny_facility(n_racks=2, **kwargs):
    return FacilitySimulator(n_racks=n_racks, rack_factory=tiny_rack, **kwargs)


class TestFacilityLoop:
    def test_needs_two_racks(self):
        with pytest.raises(ValueError, match="at least 2"):
            FacilityLoopSystem(n_racks=1)

    def test_valve_count_must_match(self):
        with pytest.raises(ValueError, match="per rack"):
            FacilityLoopSystem(n_racks=3, balancing_valves=[1.0, 1.0])

    def test_reverse_return_flows_positive_and_symmetric(self):
        report = FacilityLoopSystem(n_racks=4).solve()
        flows = report.loop_flows_m3_s
        assert all(f > 0.0 for f in flows)
        assert flows[0] == pytest.approx(flows[3], rel=1e-3)
        assert flows[1] == pytest.approx(flows[2], rel=1e-3)

    def test_fail_and_restore_rack(self):
        system = FacilityLoopSystem(n_racks=4)
        nominal = system.solve()
        system.fail_rack(1)
        failed = system.solve()
        assert failed.loop_flows_m3_s[1] == 0.0
        assert failed.failed_loops == [1]
        # Survivors gain flow off the shared header.
        for i in (0, 2, 3):
            assert failed.loop_flows_m3_s[i] > nominal.loop_flows_m3_s[i]
        system.restore_rack(1)
        restored = system.solve()
        assert restored.loop_flows_m3_s == pytest.approx(
            nominal.loop_flows_m3_s, rel=1e-6
        )

    def test_fail_rack_bounds(self):
        system = FacilityLoopSystem(n_racks=2)
        with pytest.raises(ValueError, match="outside"):
            system.fail_rack(2)

    def test_direct_return_less_balanced(self):
        reverse = FacilityLoopSystem(
            n_racks=6, layout=ManifoldLayout.REVERSE_RETURN
        ).solve()
        direct = FacilityLoopSystem(
            n_racks=6, layout=ManifoldLayout.DIRECT_RETURN
        ).solve()
        assert (
            reverse.coefficient_of_variation
            <= direct.coefficient_of_variation + 1e-9
        )


class TestChillerPlant:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChillerPlant(primary_capacity_w=0.0)
        with pytest.raises(ValueError):
            ChillerPlant(standby_capacity_w=-1.0)
        with pytest.raises(ValueError):
            ChillerPlant(cop=0.0)

    def test_dispatch_standby_only_on_overload(self):
        plant = ChillerPlant(primary_capacity_w=100.0, standby_capacity_w=50.0)
        under = plant.dispatch(80.0)
        assert not under.standby_started
        assert under.capacity_w == 100.0
        assert under.headroom_w == pytest.approx(20.0)
        over = plant.dispatch(120.0)
        assert over.standby_started
        assert over.capacity_w == 150.0
        assert over.utilization == pytest.approx(0.8)

    def test_capacity_profile_trip_then_standby(self):
        plant = ChillerPlant(
            primary_capacity_w=100.0,
            standby_capacity_w=40.0,
            standby_start_delay_s=30.0,
        )
        trip = FailureEvent(
            kind="pump_stop", time_s=60.0, target="plant", magnitude=0.0
        )
        profile = plant.capacity_profile([trip], duration_s=300.0)
        assert profile == [(0.0, 100.0), (60.0, 0.0), (90.0, 40.0)]

    def test_capacity_profile_brownout_compounds(self):
        plant = ChillerPlant(
            primary_capacity_w=100.0, standby_capacity_w=0.0
        )
        events = [
            FailureEvent(kind="pump_stop", time_s=10.0, target="plant", magnitude=0.5),
            FailureEvent(kind="pump_stop", time_s=20.0, target="plant", magnitude=0.5),
        ]
        profile = plant.capacity_profile(events, duration_s=100.0)
        assert profile == [(0.0, 100.0), (10.0, 50.0), (20.0, 25.0)]

    def test_capacity_profile_nominal_is_flat(self):
        plant = ChillerPlant(primary_capacity_w=100.0)
        assert plant.capacity_profile([], 100.0) == [(0.0, 100.0)]


class TestFacilitySimulator:
    def test_needs_two_racks(self):
        with pytest.raises(ValueError, match="at least 2"):
            FacilitySimulator(n_racks=1, rack_factory=tiny_rack)

    def test_loop_size_must_match(self):
        with pytest.raises(ValueError, match="branches"):
            FacilitySimulator(
                n_racks=3,
                rack_factory=tiny_rack,
                loop=FacilityLoopSystem(n_racks=2),
            )

    def test_rejects_unknown_target(self):
        facility = tiny_facility()
        bad = FailureEvent(
            kind="pump_stop", time_s=10.0, target="chiller", magnitude=0.0
        )
        with pytest.raises(ValueError, match="not 'plant'"):
            facility.run(duration_s=100.0, events=[bad], dt_s=20.0)

    def test_rejects_out_of_range_rack(self):
        facility = tiny_facility()
        bad = FailureEvent(
            kind="loop_blockage", time_s=10.0, target="rack_7", magnitude=0.0
        )
        with pytest.raises(ValueError, match="facility has 2"):
            facility.run(duration_s=100.0, events=[bad], dt_s=20.0)

    def test_nominal_run_shape(self):
        facility = tiny_facility()
        result = facility.run(duration_s=200.0, dt_s=20.0)
        assert result.n_racks == 2
        assert len(result.rack_results) == 2
        assert result.final_state == "NORMAL"
        assert result.plant.load_w == pytest.approx(result.mean_rejected_w)
        assert not result.plant.standby_started
        assert result.heat_rejected_j == pytest.approx(
            sum(r.heat_rejected_j for r in result.rack_results)
        )
        assert result.reuse_return_water_c > facility.plant.setpoint_c
        assert result.survived(90.0)
        # Unconstrained plant: every rack gets its own chiller capacity.
        assert result.allocated_capacity_w == (150.0e3, 150.0e3)
        assert sum(result.flow_shares) == pytest.approx(1.0)

    def test_constrained_plant_caps_allocation(self):
        plant = ChillerPlant(
            primary_capacity_w=100.0e3, standby_capacity_w=0.0
        )
        facility = tiny_facility(plant=plant)
        result = facility.run(duration_s=100.0, dt_s=20.0)
        for alloc, share in zip(result.allocated_capacity_w, result.flow_shares):
            assert alloc == pytest.approx(100.0e3 * share, rel=1e-9)
            assert alloc < 150.0e3

    def test_plant_trip_heats_every_rack(self):
        facility = tiny_facility(
            plant=ChillerPlant(
                primary_capacity_w=700.0e3,
                standby_capacity_w=0.0,
            )
        )
        nominal = facility.run(duration_s=400.0, dt_s=20.0)
        trip = FailureEvent(
            kind="pump_stop", time_s=100.0, target="plant", magnitude=0.0
        )
        tripped = facility.run(duration_s=400.0, events=[trip], dt_s=20.0)
        assert tripped.max_water_c > nominal.max_water_c
        for before, after in zip(nominal.rack_results, tripped.rack_results):
            assert after.max_water_c > before.max_water_c

    def test_standby_skid_limits_excursion(self):
        trip = FailureEvent(
            kind="pump_stop", time_s=100.0, target="plant", magnitude=0.0
        )
        no_standby = tiny_facility(
            plant=ChillerPlant(standby_capacity_w=0.0)
        ).run(duration_s=600.0, events=[trip], dt_s=20.0)
        with_standby = tiny_facility(
            plant=ChillerPlant(
                standby_capacity_w=350.0e3, standby_start_delay_s=60.0
            )
        ).run(duration_s=600.0, events=[trip], dt_s=20.0)
        assert with_standby.max_water_c < no_standby.max_water_c

    def test_branch_isolation_starves_only_that_rack(self):
        facility = tiny_facility()
        isolate = FailureEvent(
            kind="loop_blockage", time_s=60.0, target="rack_1", magnitude=0.0
        )
        result = facility.run(duration_s=400.0, events=[isolate], dt_s=20.0)
        isolated, survivor = result.rack_results[1], result.rack_results[0]
        assert isolated.max_water_c > survivor.max_water_c

    def test_forwarded_event_reaches_inner_rack(self):
        facility = tiny_facility()
        inner = FailureEvent(
            kind="loop_blockage", time_s=60.0, target="rack_0/loop_1", magnitude=0.0
        )
        result = facility.run(duration_s=400.0, events=[inner], dt_s=20.0)
        affected, untouched = result.rack_results
        assert affected.max_fpga_c > untouched.max_fpga_c
        # The merged action log names the rack.
        assert result.recovery_actions
        assert all(a.detail.startswith("rack_") for a in result.recovery_actions)
        assert any(a.detail.startswith("rack_0:") for a in result.recovery_actions)

    def test_recovery_actions_time_ordered(self):
        facility = tiny_facility()
        events = [
            FailureEvent(
                kind="loop_blockage", time_s=60.0, target="rack_0/loop_0",
                magnitude=0.0,
            ),
            FailureEvent(
                kind="loop_blockage", time_s=120.0, target="rack_1/loop_1",
                magnitude=0.0,
            ),
        ]
        result = facility.run(duration_s=400.0, events=events, dt_s=20.0)
        times = [a.time_s for a in result.recovery_actions]
        assert times == sorted(times)

    def test_min_capacity_fraction_keeps_chiller_valid(self):
        # A rack isolated from t=0 still needs a constructible chiller.
        facility = tiny_facility()
        isolate = FailureEvent(
            kind="loop_blockage", time_s=0.0, target="rack_0", magnitude=0.0
        )
        result = facility.run(duration_s=100.0, events=[isolate], dt_s=20.0)
        assert result.allocated_capacity_w[0] == 0.0
        assert result.rack_results[0].max_water_c > 20.0
        assert MIN_CAPACITY_FRACTION > 0.0

    def test_to_dict_is_plain_json_data(self):
        import json

        result = tiny_facility().run(duration_s=100.0, dt_s=20.0)
        payload = result.to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload

    def test_invalid_durations(self):
        facility = tiny_facility()
        with pytest.raises(ValueError):
            facility.run(duration_s=0.0)
        with pytest.raises(ValueError):
            facility.run(duration_s=100.0, dt_s=-1.0)


class TestFacilitySweepCases:
    def test_scenario_registry_complete(self):
        assert set(SCENARIOS) == {
            "nominal",
            "plant_trip",
            "plant_brownout",
            "rack_isolated",
            "cm_blockage",
        }

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown facility scenario"):
            scenario_events("meltdown", 4, 100.0)

    def test_smoke_cases_cover_all_scenarios(self):
        cases = smoke_cases(racks=2)
        assert [c.name for c in cases] == sorted(SCENARIOS)
        for case in cases:
            assert case.params["racks"] == 2

    def test_evaluate_facility_case_returns_plain_dict(self):
        case = smoke_cases(
            racks=2, modules=2, duration_s=100.0, dt_s=20.0, fault_time_s=40.0
        )[0]
        value = evaluate_facility_case(case)
        assert value["case"] == case.name
        assert value["n_racks"] == 2
        assert isinstance(value["max_fpga_c"], float)

    def test_build_facility_honours_params(self):
        facility = build_facility({"racks": 3, "modules": 2})
        assert facility.n_racks == 3
        assert facility.rack_factory().n_modules == 2


class TestFacilityCampaign:
    def test_canonical_scenarios_shape(self):
        scenarios = facility_fault_scenarios(n_racks=3)
        names = [s.name for s in scenarios]
        assert "plant_trip" in names and "rack_branch_closed" in names
        for scenario in scenarios:
            assert scenario.events

    def test_draw_is_seeded_and_deterministic(self):
        a = draw_facility_scenarios(seed=7, n=6, n_racks=3)
        b = draw_facility_scenarios(seed=7, n=6, n_racks=3)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.events for s in a] == [s.events for s in b]
        c = draw_facility_scenarios(seed=8, n=6, n_racks=3)
        assert [s.events for s in a] != [s.events for s in c]

    def test_draw_validation(self):
        with pytest.raises(ValueError):
            draw_facility_scenarios(seed=1, n=0)
        with pytest.raises(ValueError):
            draw_facility_scenarios(seed=1, n=2, compound_fraction=2.0)

    def test_campaign_runs_and_stays_bounded(self):
        report = run_facility_campaign(
            lambda: tiny_facility(),
            facility_fault_scenarios(n_racks=2, fault_time_s=60.0),
            duration_s=300.0,
            dt_s=20.0,
            junction_limit_c=95.0,
        )
        assert not report.failures
        assert report.bounded_fraction == 1.0
        for scenario in report.scenarios:
            assert scenario.ok
            assert math.isfinite(scenario.peak_junction_c)
