"""Tests for the coupled transient simulator."""

import pytest

from repro.control.controller import CoolingController
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.reliability.failures import pump_stop_event, tim_washout_drift


@pytest.fixture(scope="module")
def module():
    return skat()


class TestNominalRun:
    def test_settles_near_design_point(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.shutdown_time_s is None
        # Oil converges to the high-20s and chips to the mid-50s.
        assert result.telemetry.latest("oil_c") == pytest.approx(29.0, abs=3.0)
        assert result.telemetry.latest("junction_c") == pytest.approx(55.0, abs=4.0)

    def test_survives_reliability_limit(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=1800.0, dt_s=10.0)
        assert result.survived(70.0)

    def test_telemetry_recorded(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=100.0, dt_s=10.0)
        assert len(result.telemetry) == 11
        assert set(result.telemetry.channels) >= {
            "oil_c",
            "junction_c",
            "oil_flow_m3_s",
        }


class TestPumpFailure:
    def test_junctions_spike_without_controller(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        assert result.max_junction_c > 90.0
        # Flow is zero after the event.
        times, flows = result.telemetry.series("oil_flow_m3_s")
        assert flows[-1] == 0.0

    def test_controller_trips_on_pump_failure(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        result = sim.run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        assert result.shutdown_time_s is not None
        assert result.shutdown_time_s >= 300.0
        assert result.alarms_raised > 0

    def test_degraded_pump_keeps_running(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        result = sim.run(
            duration_s=1200.0,
            events=[pump_stop_event(300.0, "oil_pump", remaining_speed=0.6)],
            dt_s=10.0,
        )
        # 60 % speed still cools the bath enough to avoid a trip.
        assert result.shutdown_time_s is None
        assert result.max_junction_c < 70.0


class TestTimWashout:
    def test_washout_raises_junctions(self, module):
        clean = ModuleSimulator(module).run(duration_s=600.0, dt_s=10.0)
        washed = ModuleSimulator(module).run(
            duration_s=600.0,
            events=[tim_washout_drift(0.0, "all", 3.0)],
            dt_s=10.0,
        )
        assert washed.max_junction_c > clean.max_junction_c + 3.0


class TestValidation:
    def test_rejects_bad_duration(self, module):
        with pytest.raises(ValueError):
            ModuleSimulator(module).run(duration_s=0.0)


class TestPidRegulation:
    def test_pid_holds_bath_near_setpoint(self, module):
        from repro.control.pid import bath_temperature_pid

        sim = ModuleSimulator(module, pid=bath_temperature_pid(setpoint_c=31.0))
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.telemetry.latest("oil_c") == pytest.approx(31.0, abs=1.5)

    def test_pid_throttles_pump_when_cold(self, module):
        from repro.control.pid import bath_temperature_pid

        # A high setpoint forces the PID to slow the pump below full speed.
        sim = ModuleSimulator(module, pid=bath_temperature_pid(setpoint_c=34.0))
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.telemetry.latest("pump_speed") < 1.0

    def test_pump_event_overrides_pid(self, module):
        from repro.control.pid import bath_temperature_pid

        sim = ModuleSimulator(module, pid=bath_temperature_pid())
        result = sim.run(
            duration_s=600.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        times, flows = result.telemetry.series("oil_flow_m3_s")
        assert flows[-1] == 0.0


class TestRunIsolation:
    """Back-to-back runs on one simulator must be order-independent."""

    SCENARIOS = {
        "nominal": None,
        "pump_trip": [pump_stop_event(300.0, "oil_pump")],
        "tim_washout": [tim_washout_drift(100.0, "fpga_hot", 2.0)],
    }

    @staticmethod
    def _signature(result):
        return (
            result.max_junction_c,
            result.max_oil_c,
            result.shutdown_time_s,
            result.alarms_raised,
            tuple(result.telemetry.series("oil_c")[1]),
            tuple(result.telemetry.series("oil_flow_m3_s")[1]),
        )

    def _run(self, sim, name):
        return sim.run(duration_s=900.0, events=self.SCENARIOS[name], dt_s=10.0)

    def test_scenarios_identical_in_both_orders(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        forward = {
            name: self._signature(self._run(sim, name)) for name in self.SCENARIOS
        }
        backward = {
            name: self._signature(self._run(sim, name))
            for name in reversed(list(self.SCENARIOS))
        }
        assert forward == backward

    def test_repeat_after_trip_matches_fresh_simulator(self, module):
        shared = ModuleSimulator(module, controller=CoolingController())
        self._run(shared, "pump_trip")  # latches the controller shutdown
        repeat = self._signature(self._run(shared, "nominal"))
        fresh = self._signature(
            self._run(ModuleSimulator(module, controller=CoolingController()), "nominal")
        )
        assert repeat == fresh

    def test_reset_clears_caches_and_latches(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        self._run(sim, "nominal")
        assert sim._flow_cache  # populated by the run
        sim.reset()
        assert not sim._flow_cache
        assert sim._flow_cache_hits == 0
        assert sim._tim_multiplier == 1.0


class TestRunCounters:
    def test_flow_cache_counters_reported(self, module):
        result = ModuleSimulator(module).run(duration_s=600.0, dt_s=10.0)
        counters = result.telemetry.counters
        assert counters["flow_cache_misses"] >= 1
        assert counters["flow_cache_hits"] + counters["flow_cache_misses"] == 61

    def test_alarm_episodes_counted_once_per_condition(self, module):
        result = ModuleSimulator(module, controller=CoolingController()).run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        # The raw per-cycle count inflates with every evaluation; the
        # deduplicated episode count stays small and matches the log.
        episodes = result.telemetry.counter("alarm_episodes")
        assert episodes == result.alarm_log.episodes
        assert 1 <= episodes <= result.alarms_raised
