"""Tests for the coupled transient simulator."""

import pytest

from repro.control.controller import CoolingController
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.reliability.failures import pump_stop_event, tim_washout_drift


@pytest.fixture(scope="module")
def module():
    return skat()


class TestNominalRun:
    def test_settles_near_design_point(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.shutdown_time_s is None
        # Oil converges to the high-20s and chips to the mid-50s.
        assert result.telemetry.latest("oil_c") == pytest.approx(29.0, abs=3.0)
        assert result.telemetry.latest("junction_c") == pytest.approx(55.0, abs=4.0)

    def test_survives_reliability_limit(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=1800.0, dt_s=10.0)
        assert result.survived(70.0)

    def test_telemetry_recorded(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(duration_s=100.0, dt_s=10.0)
        assert len(result.telemetry) == 11
        assert set(result.telemetry.channels) >= {
            "oil_c",
            "junction_c",
            "oil_flow_m3_s",
        }


class TestPumpFailure:
    def test_junctions_spike_without_controller(self, module):
        sim = ModuleSimulator(module)
        result = sim.run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        assert result.max_junction_c > 90.0
        # Flow is zero after the event.
        times, flows = result.telemetry.series("oil_flow_m3_s")
        assert flows[-1] == 0.0

    def test_controller_trips_on_pump_failure(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        result = sim.run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        assert result.shutdown_time_s is not None
        assert result.shutdown_time_s >= 300.0
        assert result.alarms_raised > 0

    def test_degraded_pump_keeps_running(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        result = sim.run(
            duration_s=1200.0,
            events=[pump_stop_event(300.0, "oil_pump", remaining_speed=0.6)],
            dt_s=10.0,
        )
        # 60 % speed still cools the bath enough to avoid a trip.
        assert result.shutdown_time_s is None
        assert result.max_junction_c < 70.0


class TestTimWashout:
    def test_washout_raises_junctions(self, module):
        clean = ModuleSimulator(module).run(duration_s=600.0, dt_s=10.0)
        washed = ModuleSimulator(module).run(
            duration_s=600.0,
            events=[tim_washout_drift(0.0, "all", 3.0)],
            dt_s=10.0,
        )
        assert washed.max_junction_c > clean.max_junction_c + 3.0


class TestValidation:
    def test_rejects_bad_duration(self, module):
        with pytest.raises(ValueError):
            ModuleSimulator(module).run(duration_s=0.0)


class TestPidRegulation:
    def test_pid_holds_bath_near_setpoint(self, module):
        from repro.control.pid import bath_temperature_pid

        sim = ModuleSimulator(module, pid=bath_temperature_pid(setpoint_c=31.0))
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.telemetry.latest("oil_c") == pytest.approx(31.0, abs=1.5)

    def test_pid_throttles_pump_when_cold(self, module):
        from repro.control.pid import bath_temperature_pid

        # A high setpoint forces the PID to slow the pump below full speed.
        sim = ModuleSimulator(module, pid=bath_temperature_pid(setpoint_c=34.0))
        result = sim.run(duration_s=3600.0, dt_s=10.0)
        assert result.telemetry.latest("pump_speed") < 1.0

    def test_pump_event_overrides_pid(self, module):
        from repro.control.pid import bath_temperature_pid

        sim = ModuleSimulator(module, pid=bath_temperature_pid())
        result = sim.run(
            duration_s=600.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        times, flows = result.telemetry.series("oil_flow_m3_s")
        assert flows[-1] == 0.0


class TestRunIsolation:
    """Back-to-back runs on one simulator must be order-independent."""

    SCENARIOS = {
        "nominal": None,
        "pump_trip": [pump_stop_event(300.0, "oil_pump")],
        "tim_washout": [tim_washout_drift(100.0, "fpga_hot", 2.0)],
    }

    @staticmethod
    def _signature(result):
        return (
            result.max_junction_c,
            result.max_oil_c,
            result.shutdown_time_s,
            result.alarms_raised,
            tuple(result.telemetry.series("oil_c")[1]),
            tuple(result.telemetry.series("oil_flow_m3_s")[1]),
        )

    def _run(self, sim, name):
        return sim.run(duration_s=900.0, events=self.SCENARIOS[name], dt_s=10.0)

    def test_scenarios_identical_in_both_orders(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        forward = {
            name: self._signature(self._run(sim, name)) for name in self.SCENARIOS
        }
        backward = {
            name: self._signature(self._run(sim, name))
            for name in reversed(list(self.SCENARIOS))
        }
        assert forward == backward

    def test_repeat_after_trip_matches_fresh_simulator(self, module):
        shared = ModuleSimulator(module, controller=CoolingController())
        self._run(shared, "pump_trip")  # latches the controller shutdown
        repeat = self._signature(self._run(shared, "nominal"))
        fresh = self._signature(
            self._run(ModuleSimulator(module, controller=CoolingController()), "nominal")
        )
        assert repeat == fresh

    def test_reset_clears_caches_and_latches(self, module):
        sim = ModuleSimulator(module, controller=CoolingController())
        self._run(sim, "nominal")
        assert sim._flow_cache  # populated by the run
        sim.reset()
        assert not sim._flow_cache
        assert sim._flow_cache_hits == 0
        assert sim._tim_multiplier == 1.0


class TestRunCounters:
    def test_flow_cache_counters_reported(self, module):
        result = ModuleSimulator(module).run(duration_s=600.0, dt_s=10.0)
        counters = result.telemetry.counters
        assert counters["flow_cache_misses"] >= 1
        assert counters["flow_cache_hits"] + counters["flow_cache_misses"] == 61

    def test_alarm_episodes_counted_once_per_condition(self, module):
        result = ModuleSimulator(module, controller=CoolingController()).run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        # The raw per-cycle count inflates with every evaluation; the
        # deduplicated episode count stays small and matches the log.
        episodes = result.telemetry.counter("alarm_episodes")
        assert episodes == result.alarm_log.episodes
        assert 1 <= episodes <= result.alarms_raised


class TestSupervisedModule:
    """Closed-loop supervision: failover, throttle, leak, sensor voting."""

    @staticmethod
    def _supervised():
        from repro.control.supervisor import Supervisor

        return ModuleSimulator(module=skat(), supervisor=Supervisor())

    def test_controller_and_supervisor_are_mutually_exclusive(self, module):
        from repro.control.supervisor import Supervisor

        with pytest.raises(ValueError):
            ModuleSimulator(
                module, controller=CoolingController(), supervisor=Supervisor()
            )

    def test_pump_stop_survived_where_controller_trips(self, module):
        events = [pump_stop_event(300.0, "oil_pump")]
        tripped = ModuleSimulator(module, controller=CoolingController()).run(
            duration_s=900.0, events=list(events), dt_s=10.0
        )
        assert tripped.shutdown_time_s is not None

        supervised = self._supervised().run(
            duration_s=900.0, events=list(events), dt_s=10.0
        )
        assert supervised.shutdown_time_s is None
        assert supervised.max_junction_c <= 85.0
        assert supervised.final_state == "DEGRADED"
        assert any(a.kind == "pump_failover" for a in supervised.recovery_actions)

    def test_standby_pump_restores_flow_within_the_step(self, module):
        result = self._supervised().run(
            duration_s=900.0,
            events=[pump_stop_event(300.0, "oil_pump")],
            dt_s=10.0,
        )
        times, flows = result.telemetry.series("oil_flow_m3_s")
        # The interlock switches pumps inside the faulted step, so flow
        # never reads zero anywhere in the telemetry.
        assert min(flows) > 0.0

    def test_leak_ends_in_safe_shutdown(self, module):
        from repro.reliability.failures import leak_event

        result = self._supervised().run(
            duration_s=1500.0,
            events=[leak_event(240.0, "bath", 2.0e-5)],
            dt_s=10.0,
        )
        assert result.final_state == "SAFE_SHUTDOWN"
        assert result.shutdown_time_s is not None
        assert result.shutdown_time_s > 240.0
        times, levels = result.telemetry.series("level_fraction")
        assert levels[-1] < 1.0
        assert any(a.kind == "safe_shutdown" for a in result.recovery_actions)

    def test_biased_sensor_outvoted_without_trip(self, module):
        from repro.reliability.failures import sensor_fault_event

        result = self._supervised().run(
            duration_s=900.0,
            events=[sensor_fault_event(240.0, "oil_temp_0", 25.0)],
            dt_s=10.0,
        )
        assert result.shutdown_time_s is None
        assert result.final_state == "DEGRADED"
        assert any(a.kind == "sensor_vote" for a in result.recovery_actions)

    def test_supervised_telemetry_channels(self, module):
        result = self._supervised().run(duration_s=200.0, dt_s=10.0)
        assert set(result.telemetry.channels) >= {
            "utilization",
            "supervisor_state",
            "level_fraction",
        }
        assert result.telemetry.maximum("supervisor_state") == 0.0
        assert result.telemetry.minimum("utilization") == pytest.approx(0.9)
        assert result.degraded_pflops is not None and result.degraded_pflops > 0.0

    def test_back_to_back_supervised_runs_order_independent(self, module):
        from repro.reliability.failures import leak_event

        scenarios = {
            "nominal": None,
            "pump_trip": [pump_stop_event(300.0, "oil_pump")],
            "leak": [leak_event(240.0, "bath", 2.0e-5)],
        }

        def signature(result):
            return (
                result.max_junction_c,
                result.shutdown_time_s,
                result.final_state,
                tuple(a.kind for a in result.recovery_actions),
                tuple(result.telemetry.series("oil_c")[1]),
            )

        sim = self._supervised()
        forward = {
            name: signature(
                sim.run(duration_s=900.0, events=scenarios[name], dt_s=10.0)
            )
            for name in scenarios
        }
        backward = {
            name: signature(
                sim.run(duration_s=900.0, events=scenarios[name], dt_s=10.0)
            )
            for name in reversed(list(scenarios))
        }
        assert forward == backward

    def test_unsupervised_result_has_empty_supervision_fields(self, module):
        result = ModuleSimulator(module).run(duration_s=100.0, dt_s=10.0)
        assert result.final_state is None
        assert result.recovery_actions == ()
        assert result.degraded_pflops is None
