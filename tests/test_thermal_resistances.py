"""Tests for the thermal-resistance element builders."""

import pytest

from repro.thermal import resistances as rs


class TestConduction:
    def test_slab_value(self):
        # 1 mm of copper over 1 cm^2: R = 1e-3 / (390 * 1e-4)
        assert rs.conduction_slab(1e-3, 390.0, 1e-4) == pytest.approx(0.02564, rel=1e-3)

    def test_slab_zero_thickness(self):
        assert rs.conduction_slab(0.0, 390.0, 1e-4) == 0.0

    def test_slab_rejects_bad_area(self):
        with pytest.raises(ValueError):
            rs.conduction_slab(1e-3, 390.0, 0.0)

    def test_cylinder_value_increases_with_radius_ratio(self):
        thin = rs.conduction_cylinder(0.01, 0.011, 50.0, 1.0)
        thick = rs.conduction_cylinder(0.01, 0.02, 50.0, 1.0)
        assert thick > thin

    def test_cylinder_rejects_inverted_radii(self):
        with pytest.raises(ValueError):
            rs.conduction_cylinder(0.02, 0.01, 50.0, 1.0)


class TestFilmAndInterface:
    def test_convection_film(self):
        assert rs.convection_film(100.0, 0.01) == pytest.approx(1.0)

    def test_convection_film_rejects_zero_h(self):
        with pytest.raises(ValueError):
            rs.convection_film(0.0, 0.01)

    def test_interface_contact_only(self):
        # 2e-5 m^2 K/W over 4 cm^2: 0.05 K/W.
        assert rs.interface(2e-5, 4e-4) == pytest.approx(0.05)

    def test_interface_with_bond_line(self):
        contact_only = rs.interface(2e-5, 4e-4)
        with_bond = rs.interface(2e-5, 4e-4, thickness_m=1e-4, conductivity_w_mk=3.0)
        assert with_bond > contact_only


class TestSpreading:
    def test_no_spreading_when_source_fills_plate(self):
        r = rs.spreading(1e-4, 1e-4, 0.003, 390.0, 2000.0)
        assert r == pytest.approx(0.0, abs=1e-9)

    def test_spreading_positive_for_small_source(self):
        r = rs.spreading(26e-3 ** 2, 60e-3 ** 2, 0.003, 390.0, 2000.0)
        assert r > 0.0

    def test_spreading_worse_for_smaller_source(self):
        small = rs.spreading(10e-3 ** 2, 60e-3 ** 2, 0.003, 390.0, 2000.0)
        large = rs.spreading(40e-3 ** 2, 60e-3 ** 2, 0.003, 390.0, 2000.0)
        assert small > large

    def test_spreading_improves_with_conductivity(self):
        aluminum = rs.spreading(26e-3 ** 2, 60e-3 ** 2, 0.003, 200.0, 2000.0)
        copper = rs.spreading(26e-3 ** 2, 60e-3 ** 2, 0.003, 390.0, 2000.0)
        assert copper < aluminum

    def test_spreading_rejects_source_bigger_than_plate(self):
        with pytest.raises(ValueError):
            rs.spreading(2e-3, 1e-3, 0.003, 390.0, 2000.0)

    def test_spreading_magnitude_realistic(self):
        # A 26 mm die into a 60 mm copper base with a strong film:
        # some tens of mK/W, not K/W.
        r = rs.spreading(26e-3 ** 2, 60e-3 ** 2, 0.003, 390.0, 6000.0)
        assert 0.01 < r < 0.3


class TestComposition:
    def test_series(self):
        assert rs.series(0.1, 0.2, 0.3) == pytest.approx(0.6)

    def test_series_empty_raises(self):
        with pytest.raises(ValueError):
            rs.series()

    def test_parallel_two_equal(self):
        assert rs.parallel(2.0, 2.0) == pytest.approx(1.0)

    def test_parallel_dominated_by_smallest(self):
        assert rs.parallel(0.1, 100.0) == pytest.approx(0.1, rel=0.01)

    def test_parallel_rejects_zero(self):
        with pytest.raises(ValueError):
            rs.parallel(0.0, 1.0)
