"""Tests for configuration serialization."""

import json

import pytest

from repro.configio import (
    dump_module,
    load_module,
    module_from_dict,
    module_to_dict,
    report_to_dict,
)
from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    skat_plus,
)


class TestRoundtrip:
    def test_skat_roundtrips_exactly(self):
        original = skat()
        rebuilt = module_from_dict(module_to_dict(original))
        r1 = original.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        r2 = rebuilt.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert r2.max_fpga_c == pytest.approx(r1.max_fpga_c, abs=1e-9)
        assert r2.oil_flow_m3_s == pytest.approx(r1.oil_flow_m3_s, abs=1e-12)

    def test_skat_plus_roundtrips(self):
        original = skat_plus()
        rebuilt = module_from_dict(module_to_dict(original))
        assert rebuilt.pump.immersed
        assert not rebuilt.section.ccb.separate_controller
        assert rebuilt.section.ccb.fpga.family.name == "Virtex UltraScale+"

    def test_dict_is_json_serializable(self):
        data = module_to_dict(skat())
        json.dumps(data)  # must not raise

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "skat.json")
        dump_module(skat(), path)
        rebuilt = load_module(path)
        assert rebuilt.name == "SKAT"
        assert rebuilt.section.n_boards == 12


class TestValidation:
    def test_unknown_schema_rejected(self):
        data = module_to_dict(skat())
        data["schema"] = "repro.module/99"
        with pytest.raises(ValueError, match="schema"):
            module_from_dict(data)

    def test_unknown_family_rejected(self):
        data = module_to_dict(skat())
        data["fpga"]["family"] = "Stratix-10"
        with pytest.raises(KeyError, match="family"):
            module_from_dict(data)

    def test_unknown_fluid_rejected(self):
        data = module_to_dict(skat())
        data["section"]["oil"] = "liquid_helium"
        with pytest.raises(KeyError, match="fluid"):
            module_from_dict(data)

    def test_unknown_tim_rejected(self):
        data = module_to_dict(skat())
        data["section"]["tim"] = "mystery goo"
        with pytest.raises(KeyError, match="interface"):
            module_from_dict(data)


class TestReportSerialization:
    def test_module_report_to_dict(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        data = report_to_dict(report)
        assert data["oil_cold_c"] == pytest.approx(report.oil_cold_c)
        json.dumps(data)

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            report_to_dict({"not": "a dataclass"})
