"""Thread-safety regression battery for the metrics registry (+ cache).

The gateway mutates one :class:`~repro.obs.registry.MetricsRegistry`
from the asyncio event loop *and* from solver threads simultaneously, so
lost updates would silently corrupt the deterministic counter exports
the CI smoke job byte-compares. These tests hammer every metric type
from many threads and assert **exact** totals — a single lost increment
fails them.
"""

import asyncio
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.service import SimulationGateway
from repro.service.cache import ResultCache

THREADS = 8
ROUNDS = 2000


def hammer(worker, n_threads=THREADS):
    """Run ``worker(thread_index)`` in ``n_threads`` threads, joined."""
    barrier = threading.Barrier(n_threads)

    def runner(index):
        barrier.wait()  # maximize contention: everyone starts together
        worker(index)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_counter_increments_are_never_lost():
    registry = MetricsRegistry()
    hammer(lambda i: [registry.inc("hot_total") for _ in range(ROUNDS)])
    assert registry.as_dict()["counters"]["hot_total"] == float(
        THREADS * ROUNDS
    )


def test_histogram_observations_are_never_lost():
    registry = MetricsRegistry()
    edges = (1.0, 2.0, 4.0)
    hammer(
        lambda i: [
            registry.observe("lat", float(i % 5), edges) for _ in range(ROUNDS)
        ]
    )
    hist = registry.as_dict()["histograms"]["lat"]
    assert hist["count"] == THREADS * ROUNDS
    assert sum(hist["counts"]) == THREADS * ROUNDS


def test_concurrent_first_use_yields_one_handle_per_name():
    registry = MetricsRegistry()
    handles = [None] * THREADS

    def worker(i):
        handles[i] = registry.counter("contended_total")
        handles[i].inc()

    hammer(worker)
    assert len({id(h) for h in handles}) == 1
    assert registry.as_dict()["counters"]["contended_total"] == float(THREADS)


def test_mixed_metric_types_under_thread_churn():
    registry = MetricsRegistry()

    def worker(i):
        for round_no in range(ROUNDS // 4):
            registry.inc(f"per_thread_{i}_total")
            registry.inc("shared_total", 2.0)
            registry.set_gauge(f"gauge_{i}", float(round_no))
            registry.observe("obs", 1.0, (1.0, 2.0))

    hammer(worker)
    snapshot = registry.as_dict()
    per_round = ROUNDS // 4
    assert snapshot["counters"]["shared_total"] == float(
        THREADS * per_round * 2
    )
    for i in range(THREADS):
        assert snapshot["counters"][f"per_thread_{i}_total"] == float(per_round)
        assert snapshot["gauges"][f"gauge_{i}"] == float(per_round - 1)
    assert snapshot["histograms"]["obs"]["count"] == THREADS * per_round


def test_metric_name_cannot_change_type_under_race():
    registry = MetricsRegistry()
    registry.inc("claimed")
    errors = []

    def worker(i):
        try:
            registry.gauge("claimed")
        except ValueError as exc:
            errors.append(str(exc))

    hammer(worker)
    assert len(errors) == THREADS
    assert all("already registered" in e for e in errors)


def test_merge_snapshot_from_worker_registries_is_exact():
    """The sweep-runner join: per-thread shards merged in shard order."""
    shards = [MetricsRegistry() for _ in range(THREADS)]

    def worker(i):
        for _ in range(ROUNDS):
            shards[i].inc("solves_total")
        shards[i].set_gauge("last_shard", float(i))
        shards[i].observe("widths", float(i), (2.0, 4.0, 6.0))

    hammer(worker)
    parent = MetricsRegistry()
    for shard in shards:
        parent.merge_snapshot(shard.as_dict())
    merged = parent.as_dict()
    assert merged["counters"]["solves_total"] == float(THREADS * ROUNDS)
    assert merged["gauges"]["last_shard"] == float(THREADS - 1)  # last wins
    hist = merged["histograms"]["widths"]
    assert hist["count"] == THREADS
    assert hist["sum"] == float(sum(range(THREADS)))


def test_merge_snapshot_rejects_mismatched_histogram_edges():
    parent = MetricsRegistry()
    parent.observe("h", 1.0, (1.0, 2.0))
    with pytest.raises(ValueError, match="edges"):
        parent.merge_snapshot(
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {
                        "edges": [1.0, 3.0],
                        "counts": [1, 0, 0],
                        "sum": 1.0,
                        "count": 1,
                    }
                },
            }
        )


def test_result_cache_bound_holds_under_thread_churn():
    registry = MetricsRegistry()
    cache = ResultCache(max_entries=16, registry=registry)

    def worker(i):
        for n in range(ROUNDS // 4):
            key = f"{i}:{n}"
            cache.put(key, {"v": key})
            cache.get(key)
            cache.get(f"{(i + 1) % THREADS}:{n}")  # cross-thread reads

    hammer(worker)
    assert len(cache) == 16
    total_puts = THREADS * (ROUNDS // 4)
    counters = registry.as_dict()["counters"]
    assert counters["service_cache_evictions_total"] == float(total_puts - 16)
    assert registry.as_dict()["gauges"]["service_cache_size"] == 16.0


def test_gateway_loop_and_thread_mutation_coexist():
    """Event-loop service traffic + thread-side increments: both exact."""
    registry = MetricsRegistry()
    done = threading.Event()

    def background():
        while not done.is_set():
            registry.inc("background_total")
        registry.inc("background_done_total")

    threads = [threading.Thread(target=background) for _ in range(4)]
    for thread in threads:
        thread.start()

    async def go():
        gateway = SimulationGateway(registry=registry, max_batch_size=1)
        payloads = [
            {"level": "module", "duration_s": 240.0 + 10.0 * i}
            for i in range(3)
        ]
        for payload in payloads * 2:  # second pass is all cache hits
            await gateway.simulate(payload)
        await gateway.close()

    try:
        asyncio.run(go())
    finally:
        done.set()
        for thread in threads:
            thread.join()

    counters = registry.as_dict()["counters"]
    assert counters["service_requests_total"] == 6.0
    assert counters["service_solves_total"] == 3.0
    assert counters["service_cache_hits_total"] == 3.0
    assert counters["background_done_total"] == 4.0
    assert counters["background_total"] >= 4.0
