"""Tests for the full-resolution module thermal network."""

import pytest

from repro.core.boardnetwork import (
    build_module_network,
    solve_module_network,
)
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat


@pytest.fixture(scope="module")
def design_point():
    module = skat()
    report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    chips = report.immersion.chips_per_board
    power = sum(c.power_w for c in chips) / len(chips)
    return module, report, power


class TestStructure:
    def test_node_count(self, design_point):
        module, report, power = design_point
        network = build_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        # 12 boards x 8 positions x (oil cell + junction) + 1 boundary.
        assert len(network.node_names) == 12 * 8 * 2 + 1

    def test_validates(self, design_point):
        module, report, power = design_point
        network = build_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        network.validate()

    def test_rejects_bad_flow(self, design_point):
        module, _, power = design_point
        with pytest.raises(ValueError):
            build_module_network(module.section, 28.0, 0.0, power)


class TestCrossValidation:
    def test_max_junction_matches_marching_solver(self, design_point):
        """The 96-chip network and the production marching solver must
        agree at the design point to within a fraction of a kelvin."""
        module, report, power = design_point
        solution = solve_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        assert solution.max_junction_c == pytest.approx(report.max_fpga_c, abs=0.5)

    def test_energy_conservation(self, design_point):
        module, report, power = design_point
        solution = solve_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        assert solution.total_heat_w == pytest.approx(96 * power, rel=1e-6)

    def test_gradient_flattened_by_board_conduction(self, design_point):
        """Board conduction can only reduce the in-board gradient relative
        to the marching model (which ignores it)."""
        module, report, power = design_point
        solution = solve_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        assert solution.board_gradient_k <= report.immersion.thermal_gradient_k + 0.01
        assert solution.board_gradient_k > 0.0

    def test_junctions_rise_along_the_oil_path(self, design_point):
        module, report, power = design_point
        solution = solve_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        junctions = [solution.junction_by_position[k] for k in sorted(solution.junction_by_position)]
        assert junctions == sorted(junctions)

    def test_boards_identical_by_symmetry(self, design_point):
        module, report, power = design_point
        solution = solve_module_network(
            module.section, report.oil_cold_c, report.oil_flow_m3_s, power
        )
        t = solution.temperatures_c
        for position in (0, 7):
            values = [t[f"b{b}_j{position}"] for b in range(12)]
            assert max(values) - min(values) < 1e-9
