"""Tests for the thermal-network container."""

import pytest

from repro.thermal.network import NetworkError, ThermalNetwork


def make_chip_network():
    net = ThermalNetwork()
    net.add_boundary("ambient", 25.0)
    net.add_node("junction", heat_w=50.0, capacitance_j_k=10.0)
    net.add_node("case")
    net.add_resistance("junction", "case", 0.1, label="theta_jc")
    net.add_resistance("case", "ambient", 0.5, label="sink")
    return net


class TestConstruction:
    def test_node_lists(self):
        net = make_chip_network()
        assert net.node_names == ["ambient", "junction", "case"]
        assert net.free_nodes == ["junction", "case"]
        assert net.boundary_nodes == ["ambient"]

    def test_duplicate_node_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError, match="duplicate"):
            net.add_node("junction")
        with pytest.raises(NetworkError, match="duplicate"):
            net.add_boundary("ambient", 20.0)

    def test_empty_name_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(NetworkError):
            net.add_node("")

    def test_resistance_to_unknown_node_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError, match="unknown"):
            net.add_resistance("junction", "nowhere", 1.0)

    def test_self_loop_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError, match="self-loop"):
            net.add_resistance("case", "case", 1.0)

    def test_nonpositive_resistance_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError, match="positive"):
            net.add_resistance("junction", "ambient", 0.0)

    def test_negative_capacitance_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(NetworkError):
            net.add_node("x", capacitance_j_k=-1.0)


class TestAccessors:
    def test_heat_and_capacitance(self):
        net = make_chip_network()
        assert net.heat("junction") == 50.0
        assert net.capacitance("junction") == 10.0
        assert net.heat("case") == 0.0

    def test_set_heat(self):
        net = make_chip_network()
        net.set_heat("junction", 91.0)
        assert net.heat("junction") == 91.0

    def test_set_heat_on_boundary_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError):
            net.set_heat("ambient", 10.0)

    def test_boundary_temperature(self):
        net = make_chip_network()
        assert net.boundary_temperature("ambient") == 25.0
        net.set_boundary_temperature("ambient", 30.0)
        assert net.boundary_temperature("ambient") == 30.0

    def test_boundary_temperature_of_free_node_rejected(self):
        net = make_chip_network()
        with pytest.raises(NetworkError):
            net.boundary_temperature("junction")

    def test_total_heat(self):
        net = make_chip_network()
        assert net.total_heat_w() == 50.0

    def test_neighbours(self):
        net = make_chip_network()
        neighbours = dict(net.neighbours("case"))
        assert neighbours == {"junction": 0.1, "ambient": 0.5}


class TestValidation:
    def test_valid_network_passes(self):
        make_chip_network().validate()

    def test_empty_network_fails(self):
        with pytest.raises(NetworkError, match="empty"):
            ThermalNetwork().validate()

    def test_no_boundary_fails(self):
        net = ThermalNetwork()
        net.add_node("a", heat_w=1.0)
        net.add_node("b")
        net.add_resistance("a", "b", 1.0)
        with pytest.raises(NetworkError, match="no boundary"):
            net.validate()

    def test_disconnected_node_fails(self):
        net = make_chip_network()
        net.add_node("orphan", heat_w=5.0)
        with pytest.raises(NetworkError, match="orphan"):
            net.validate()
