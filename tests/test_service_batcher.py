"""Deterministic micro-batching tests via the injected-timer seam.

Every batch-composition assertion here is exact, not timing-dependent:
the batcher's collection windows close only when the test fires the
:class:`~repro.service.batcher.ManualTimer` (see the seam documented in
``repro/service/batcher.py``). No ``pytest-asyncio`` in the toolchain,
so each test drives its own loop with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.obs import MetricsRegistry
from repro.service.batcher import ManualTimer, MicroBatcher


class Recorder:
    """A dispatch stub recording every batch it is handed."""

    def __init__(self, fail=None):
        self.batches = []
        self.fail = fail

    async def __call__(self, items):
        self.batches.append(list(items))
        if self.fail is not None:
            raise self.fail
        return [f"solved:{item}" for item in items]


async def settle(predicate, rounds=200):
    """Yield to the loop until ``predicate`` holds (bounded)."""
    for _ in range(rounds):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("loop never reached the expected state")


def test_window_closes_only_on_fire():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch_size=16, timer=timer)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(3)]
        await settle(lambda: timer.pending == 1)
        assert batcher.queue_depth == 3
        assert recorder.batches == []  # window open, nothing dispatched
        assert timer.fire()
        results = await asyncio.gather(*tasks)
        assert results == ["solved:0", "solved:1", "solved:2"]
        assert recorder.batches == [[0, 1, 2]]
        assert batcher.queue_depth == 0

    asyncio.run(go())


def test_full_window_dispatches_without_timer():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch_size=4, timer=timer)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(4)]
        results = await asyncio.gather(*tasks)
        assert results == [f"solved:{i}" for i in range(4)]
        assert recorder.batches == [[0, 1, 2, 3]]
        assert timer.pending == 0  # the pending window was cancelled

    asyncio.run(go())


def test_two_windows_two_batches():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch_size=16, timer=timer)
        first = [asyncio.create_task(batcher.submit(i)) for i in range(2)]
        await settle(lambda: timer.pending == 1)
        timer.fire()
        await asyncio.gather(*first)
        second = [asyncio.create_task(batcher.submit(i)) for i in (7, 8)]
        await settle(lambda: timer.pending == 1)
        timer.fire()
        await asyncio.gather(*second)
        assert recorder.batches == [[0, 1], [7, 8]]

    asyncio.run(go())


def test_cancelled_waiter_does_not_poison_or_leak():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch_size=16, timer=timer)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(3)]
        await settle(lambda: batcher.queue_depth == 3)
        tasks[1].cancel()
        await settle(lambda: tasks[1].cancelled() or tasks[1].done())
        timer.fire()
        survivors = await asyncio.gather(*tasks, return_exceptions=True)
        assert survivors[0] == "solved:0"
        assert isinstance(survivors[1], asyncio.CancelledError)
        assert survivors[2] == "solved:2"
        # The cancelled slot was dropped before dispatch — no leak, and
        # the neighbours' batch simply shrank.
        assert recorder.batches == [[0, 2]]
        assert batcher.queue_depth == 0

    asyncio.run(go())


def test_fully_cancelled_window_skips_dispatch():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        registry = MetricsRegistry()
        batcher = MicroBatcher(
            recorder, max_batch_size=16, timer=timer, registry=registry
        )
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(2)]
        await settle(lambda: batcher.queue_depth == 2)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        timer.fire()
        await batcher.flush()
        assert recorder.batches == []
        assert (
            registry.as_dict()["counters"].get("service_batches_total", 0.0)
            == 0.0
        )

    asyncio.run(go())


def test_dispatch_failure_rejects_only_its_batch():
    async def go():
        timer = ManualTimer()
        recorder = Recorder(fail=RuntimeError("solver exploded"))
        batcher = MicroBatcher(recorder, max_batch_size=2, timer=timer)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(2)]
        results = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, RuntimeError) for r in results)
        # The next window starts clean and succeeds.
        recorder.fail = None
        retry = asyncio.create_task(batcher.submit(9))
        await settle(lambda: timer.pending == 1)
        timer.fire()
        assert await retry == "solved:9"
        assert recorder.batches == [[0, 1], [9]]

    asyncio.run(go())


def test_dispatch_length_mismatch_is_an_error():
    async def go():
        async def bad_dispatch(items):
            return ["only one"]

        batcher = MicroBatcher(bad_dispatch, max_batch_size=2)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(2)]
        results = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("2 items" in str(r) for r in results)

    asyncio.run(go())


def test_flush_dispatches_pending_window():
    async def go():
        timer = ManualTimer()
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch_size=16, timer=timer)
        task = asyncio.create_task(batcher.submit("x"))
        await settle(lambda: batcher.queue_depth == 1)
        await batcher.flush()
        assert await task == "solved:x"
        assert recorder.batches == [["x"]]
        assert batcher.dispatches_in_flight == 0

    asyncio.run(go())


def test_batch_metrics_recorded():
    async def go():
        recorder = Recorder()
        registry = MetricsRegistry()
        batcher = MicroBatcher(recorder, max_batch_size=3, registry=registry)
        tasks = [asyncio.create_task(batcher.submit(i)) for i in range(3)]
        await asyncio.gather(*tasks)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["service_batches_total"] == 1.0
        hist = snapshot["histograms"]["service_batch_size"]
        assert hist["count"] == 1 and hist["sum"] == 3.0
        assert snapshot["histograms"]["service_wall_queue_s"]["count"] == 3

    asyncio.run(go())


def test_manual_timer_fire_with_no_window():
    timer = ManualTimer()
    assert timer.fire() is False
    assert timer.pending == 0


def test_constructor_validation():
    async def noop(items):
        return items

    with pytest.raises(ValueError):
        MicroBatcher(noop, max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(noop, max_wait_s=-1.0)
