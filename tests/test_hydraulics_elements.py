"""Tests for the hydraulic network elements."""

import math

import pytest

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.hydraulics.elements import (
    HeatExchangerPassage,
    MinorLoss,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)


class TestPipe:
    def test_geometry(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.04)
        assert pipe.area_m2 == pytest.approx(math.pi * 0.04 ** 2 / 4.0)
        assert pipe.velocity_m_s(pipe.area_m2 * 1.5) == pytest.approx(1.5)

    def test_zero_flow_zero_drop(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.04)
        assert pipe.pressure_change_pa(0.0, WATER, 25.0) == 0.0

    def test_loss_is_negative_along_flow(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.04)
        assert pipe.pressure_change_pa(1.0e-3, WATER, 25.0) < 0.0

    def test_odd_symmetry(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.04, minor_loss_k=3.0)
        forward = pipe.pressure_change_pa(1.0e-3, WATER, 25.0)
        backward = pipe.pressure_change_pa(-1.0e-3, WATER, 25.0)
        assert backward == pytest.approx(-forward)

    def test_loss_grows_superlinearly_turbulent(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.02)
        dp1 = -pipe.pressure_change_pa(1.0e-3, WATER, 25.0)
        dp2 = -pipe.pressure_change_pa(2.0e-3, WATER, 25.0)
        assert dp2 > 2.5 * dp1

    def test_oil_losses_exceed_water(self):
        pipe = Pipe(length_m=2.0, diameter_m=0.02)
        oil = -pipe.pressure_change_pa(5.0e-4, MINERAL_OIL_MD45, 30.0)
        water = -pipe.pressure_change_pa(5.0e-4, WATER, 30.0)
        assert oil > water

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Pipe(length_m=0.0, diameter_m=0.04)
        with pytest.raises(ValueError):
            Pipe(length_m=1.0, diameter_m=0.04, minor_loss_k=-1.0)


class TestMinorLoss:
    def test_quadratic_law(self):
        fitting = MinorLoss(k=2.0, diameter_m=0.02)
        dp1 = -fitting.pressure_change_pa(1.0e-3, WATER, 25.0)
        dp2 = -fitting.pressure_change_pa(2.0e-3, WATER, 25.0)
        assert dp2 == pytest.approx(4.0 * dp1)

    def test_hand_value(self):
        fitting = MinorLoss(k=1.0, diameter_m=0.0357)  # area ~1e-3 m^2
        q = 1.0e-3  # -> v ~ 1 m/s
        dp = -fitting.pressure_change_pa(q, WATER, 25.0)
        v = q / fitting.area_m2
        assert dp == pytest.approx(WATER.density(25.0) * v ** 2 / 2.0, rel=1e-9)


class TestValve:
    def test_fully_open(self):
        valve = Valve(k_open=2.0, diameter_m=0.025, opening=1.0)
        assert not valve.is_closed
        assert valve.effective_k == 2.0

    def test_throttling_raises_k(self):
        half = Valve(k_open=2.0, diameter_m=0.025, opening=0.5)
        assert half.effective_k == pytest.approx(8.0)

    def test_closed(self):
        closed = Valve(k_open=2.0, diameter_m=0.025, opening=0.0)
        assert closed.is_closed
        assert math.isinf(closed.effective_k)
        with pytest.raises(ValueError):
            closed.pressure_change_pa(1.0e-3, WATER, 25.0)

    def test_rejects_bad_opening(self):
        with pytest.raises(ValueError):
            Valve(k_open=2.0, diameter_m=0.025, opening=1.5)


class TestHeatExchangerPassage:
    def test_linear_plus_quadratic(self):
        passage = HeatExchangerPassage(
            r_linear_pa_per_m3_s=1.0e6, r_quadratic_pa_per_m3_s2=1.0e9
        )
        dp = -passage.pressure_change_pa(1.0e-3, WATER, 25.0)
        assert dp == pytest.approx(1.0e6 * 1e-3 + 1.0e9 * 1e-6)

    def test_odd_symmetry(self):
        passage = HeatExchangerPassage(1.0e6, 1.0e9)
        assert passage.pressure_change_pa(-1e-3, WATER, 25.0) == pytest.approx(
            -passage.pressure_change_pa(1e-3, WATER, 25.0)
        )

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            HeatExchangerPassage(0.0, 0.0)


class TestPumpCurve:
    def test_shutoff_and_runout(self):
        curve = PumpCurve(shutoff_pressure_pa=45.0e3, max_flow_m3_s=5.0e-3)
        assert curve.head_pa(0.0) == 45.0e3
        assert curve.head_pa(5.0e-3) == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        flows = [0.0, 1e-3, 2e-3, 4e-3, 6e-3]
        heads = [curve.head_pa(q) for q in flows]
        assert heads == sorted(heads, reverse=True)

    def test_inverse_roundtrip(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        for q in (0.0, 1.0e-3, 3.0e-3, 4.9e-3):
            assert curve.flow_at_head_pa(curve.head_pa(q)) == pytest.approx(q, abs=1e-12)

    def test_hydraulic_power(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        assert curve.hydraulic_power_w(0.0) == 0.0
        q = 2.5e-3
        assert curve.hydraulic_power_w(q) == pytest.approx(curve.head_pa(q) * q)


class TestPump:
    def test_affinity_scaling(self):
        pump = Pump(curve=PumpCurve(45.0e3, 5.0e-3), speed_fraction=0.5)
        # Shutoff head scales with speed^2.
        assert pump.head_pa(0.0) == pytest.approx(0.25 * 45.0e3)

    def test_stopped_pump_blocks_flow(self):
        pump = Pump(curve=PumpCurve(45.0e3, 5.0e-3), speed_fraction=0.0)
        assert not pump.running
        assert pump.head_pa(1.0e-3) < -1.0e3  # strong opposing resistance
        assert pump.electrical_power_w(1.0e-3) == 0.0

    def test_electrical_power_includes_efficiency(self):
        pump = Pump(curve=PumpCurve(45.0e3, 5.0e-3), efficiency=0.5)
        q = 2.0e-3
        hydraulic = pump.head_pa(q) * q
        assert pump.electrical_power_w(q) == pytest.approx(hydraulic / 0.5)

    def test_immersed_flag_defaults_false(self):
        assert not Pump(curve=PumpCurve(45.0e3, 5.0e-3)).immersed


class TestCheckValve:
    def test_forward_loss_small(self):
        from repro.hydraulics.elements import CheckValve

        valve = CheckValve()
        forward = -valve.pressure_change_pa(1.0e-3, WATER, 25.0)
        reverse = -valve.pressure_change_pa(-1.0e-3, WATER, 25.0)
        assert forward > 0.0
        assert abs(reverse) > 1.0e4 * forward

    def test_monotone_decreasing_characteristic(self):
        from repro.hydraulics.elements import CheckValve

        valve = CheckValve()
        flows = [-2e-3, -1e-3, 0.0, 1e-3, 2e-3]
        changes = [valve.pressure_change_pa(q, WATER, 25.0) for q in flows]
        assert changes == sorted(changes, reverse=True)

    def test_solver_accepts_check_valve(self):
        from repro.hydraulics.elements import CheckValve
        from repro.hydraulics.network import HydraulicNetwork
        from repro.hydraulics.solver import solve_network

        net = HydraulicNetwork()
        net.add_junction("a")
        net.add_junction("b")
        net.set_reference("a")
        net.add_branch("pump", "a", "b", Pump(PumpCurve(50.0e3, 0.01)))
        net.add_branch("check", "b", "a", CheckValve())
        result = solve_network(net, WATER, 25.0)
        assert result.flow("check") > 0.0

    def test_rejects_bad_parameters(self):
        from repro.hydraulics.elements import CheckValve

        with pytest.raises(ValueError):
            CheckValve(k_forward=0.0)
        with pytest.raises(ValueError):
            CheckValve(reverse_multiplier=0.5)
