"""OCP golden-spec compliance: the workload catalog clears its envelopes.

The acceptance bar from the ISSUE, verified end to end: a facility with
two GPU racks under a training trace — and its iDataCool-style hot-water
variant — passes the full OCP CheckSuite in **strict** mode (junction
ceiling, sustained-band exceedance, coolant supply class, interface
service life) alongside the conservation-law checkers. The negative
directions are covered too: washout-prone paste fails the service-life
bound, an out-of-class supply fails the coolant band, and a synthetic
hot die fails ceiling and exceedance.
"""

import pytest

from repro.core.gpumodule import GPU_WATER_FLOW_M3_S, gpu_module
from repro.core.simulation import ModuleSimulator
from repro.core.tim import (
    CONVENTIONAL_PASTE,
    LIQUID_METAL_INTERFACE,
    SRC_OIL_STABLE_INTERFACE,
)
from repro.devices import TrainingTraceSpec, training_power_events
from repro.facility.sweep import (
    HOT_WATER_SETPOINT_C,
    WORKLOAD_SCENARIOS,
    build_workload_facility,
    workload_events,
)
from repro.verify import (
    CheckSuite,
    InvariantViolationError,
    OCP_W32,
    OCP_W45,
    OcpSpec,
    check_ocp_facility,
    check_ocp_interface,
    check_ocp_module,
)

DURATION_S = 400.0
DT_S = 20.0


def _run_workload(name, *, strict):
    """One catalog scenario under the conservation checkers; returns
    (facility simulator, result, suite)."""
    suite = CheckSuite(strict=strict)
    params = {
        "scenario": name,
        "racks": 2,
        "modules": 2,
        "duration_s": DURATION_S,
        "dt_s": DT_S,
    }
    facility = build_workload_facility(params)
    facility.checks = suite
    events = workload_events(name, DURATION_S, DT_S)
    result = facility.run(duration_s=DURATION_S, events=events, dt_s=DT_S)
    return facility, result, suite


class TestSpecValidation:
    def test_presets_are_self_consistent(self):
        assert OCP_W32.coolant_supply_max_c == 32.0
        assert OCP_W45.coolant_supply_max_c == 45.0
        # Same silicon, same hard ceiling; W45 parts carry a higher
        # sustained-band qualification.
        assert OCP_W45.junction_max_c == OCP_W32.junction_max_c == 88.0
        assert OCP_W45.junction_sustained_c > OCP_W32.junction_sustained_c

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"junction_sustained_c": 95.0},
            {"max_exceedance_fraction": 1.5},
            {"coolant_supply_min_c": 40.0, "coolant_supply_max_c": 32.0},
            {"service_life_h": 0.0},
            {"max_interface_degradation": 0.9},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OcpSpec(name="bad", **kwargs)


class TestAcceptance:
    """Both catalog scenarios clear their OCP class in strict mode."""

    @pytest.mark.parametrize(
        "name,spec,supply_c",
        [
            ("gpu_training", OCP_W32, 20.0),
            ("gpu_training_hot_water", OCP_W45, HOT_WATER_SETPOINT_C),
        ],
    )
    def test_catalog_scenario_passes_strict_ocp_suite(
        self, name, spec, supply_c
    ):
        # strict=True: any conservation-law violation raises during the
        # run, and any OCP violation raises inside check_ocp_facility.
        _, result, suite = _run_workload(name, strict=True)
        found = check_ocp_facility(suite, spec, result, supply_c=supply_c)
        assert found == []
        assert suite.violations == []
        assert suite.checks_run > 0
        assert result.final_state is None  # no supervisor shutdown

    def test_hot_water_variant_actually_runs_hot(self):
        _, cold, _ = _run_workload("gpu_training", strict=False)
        _, hot, _ = _run_workload("gpu_training_hot_water", strict=False)
        assert hot.max_fpga_c > cold.max_fpga_c
        assert hot.max_fpga_c < 88.0
        assert hot.recovered_heat_j > 0.0
        assert cold.recovered_heat_j == 0.0
        # Heat recovery offsets the chiller: the hot hall's overhead
        # ratio beats the chilled hall's despite the warmer silicon.
        assert hot.ppue < cold.ppue

    def test_hot_water_fails_the_w32_class(self):
        """The same hot-water run is out of class against W32 — the spec
        preset choice is load-bearing, not decorative."""
        _, result, _ = _run_workload("gpu_training_hot_water", strict=False)
        audit = CheckSuite(strict=False)
        found = check_ocp_facility(
            audit, OCP_W32, result, supply_c=HOT_WATER_SETPOINT_C
        )
        assert any(v.invariant == "ocp_coolant_band" for v in found)

    def test_strict_mode_raises_on_violation(self):
        _, result, _ = _run_workload("gpu_training_hot_water", strict=False)
        strict = CheckSuite(strict=True)
        with pytest.raises(InvariantViolationError):
            check_ocp_facility(
                strict, OCP_W32, result, supply_c=HOT_WATER_SETPOINT_C
            )


class TestServiceLife:
    def test_paste_fails_the_five_year_bound(self):
        suite = CheckSuite(strict=False)
        found = check_ocp_interface(suite, OCP_W32, CONVENTIONAL_PASTE)
        assert [v.invariant for v in found] == ["ocp_service_life"]
        assert "conventional silicone paste" in found[0].detail

    @pytest.mark.parametrize(
        "tim", [LIQUID_METAL_INTERFACE, SRC_OIL_STABLE_INTERFACE]
    )
    def test_stable_interfaces_pass(self, tim):
        suite = CheckSuite(strict=False)
        assert check_ocp_interface(suite, OCP_W32, tim) == []


class TestModuleEnvelope:
    def test_cool_module_passes(self):
        result = ModuleSimulator(
            gpu_module(), water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(
            300.0,
            events=list(
                training_power_events(TrainingTraceSpec(), 300.0, 10.0)
            ),
            dt_s=10.0,
        )
        suite = CheckSuite(strict=False)
        assert check_ocp_module(suite, OCP_W32, result) == []

    def test_synthetic_hot_die_fails_ceiling_and_exceedance(self):
        result = ModuleSimulator(
            gpu_module(), water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(300.0, dt_s=10.0)
        tight = OcpSpec(
            name="tight",
            junction_max_c=50.0,
            junction_sustained_c=45.0,
            max_exceedance_fraction=0.0,
        )
        suite = CheckSuite(strict=False)
        found = check_ocp_module(suite, tight, result)
        assert {v.invariant for v in found} == {
            "ocp_junction",
            "ocp_exceedance",
        }


def test_catalog_and_presets_line_up():
    """Every catalog scenario has a spec whose class contains its plant
    setpoint — the pairing the acceptance tests above assert."""
    pairing = {
        "gpu_training": (OCP_W32, 20.0),
        "gpu_training_hot_water": (OCP_W45, HOT_WATER_SETPOINT_C),
    }
    assert set(pairing) == set(WORKLOAD_SCENARIOS)
    for name, (spec, supply) in pairing.items():
        assert (
            spec.coolant_supply_min_c <= supply <= spec.coolant_supply_max_c
        ), name
