"""Tests for the sensor models."""

import pytest

from repro.control.sensors import (
    FlowSensor,
    LevelSensor,
    Sensor,
    SensorError,
    TemperatureSensor,
)


class TestSensorBasics:
    def test_noiseless_sensor_reads_truth(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        assert sensor.read(42.0) == 42.0

    def test_readings_clip_to_range(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        assert sensor.read(150.0) == 100.0
        assert sensor.read(-20.0) == 0.0

    def test_quantization(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0, resolution=0.5)
        assert sensor.read(42.26) == pytest.approx(42.5)

    def test_noise_is_reproducible_by_seed(self):
        a = Sensor(name="t", lo=0.0, hi=100.0, noise_std=1.0, seed=7)
        b = Sensor(name="t", lo=0.0, hi=100.0, noise_std=1.0, seed=7)
        assert [a.read(50.0) for _ in range(5)] == [b.read(50.0) for _ in range(5)]

    def test_noise_statistics(self):
        sensor = Sensor(name="t", lo=-1000.0, hi=1000.0, noise_std=2.0, seed=3)
        readings = [sensor.read(0.0) for _ in range(2000)]
        mean = sum(readings) / len(readings)
        assert abs(mean) < 0.2

    def test_rejects_inverted_range(self):
        with pytest.raises(SensorError):
            Sensor(name="t", lo=10.0, hi=0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(SensorError):
            Sensor(name="", lo=0.0, hi=1.0)


class TestFaults:
    def test_bias(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        sensor.inject_bias(3.0)
        assert sensor.faulted
        assert sensor.read(40.0) == 43.0

    def test_stuck(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        sensor.stick_at(25.0)
        assert sensor.read(90.0) == 25.0

    def test_clear_faults(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        sensor.inject_bias(3.0)
        sensor.stick_at(25.0)
        sensor.clear_faults()
        assert not sensor.faulted
        assert sensor.read(40.0) == 40.0


class TestFactories:
    def test_temperature_sensor_resolution(self):
        sensor = TemperatureSensor("t_oil", noise_std=0.0)
        assert sensor.read(29.96) == pytest.approx(30.0)

    def test_flow_sensor_range(self):
        sensor = FlowSensor("f_oil", noise_std=0.0)
        assert sensor.read(0.05) == pytest.approx(0.02)  # rails at hi

    def test_level_sensor_fraction(self):
        sensor = LevelSensor("level", noise_std=0.0)
        assert 0.0 <= sensor.read(0.97) <= 1.0


class TestNonFiniteTruth:
    def test_nan_truth_raises_sensor_error(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        with pytest.raises(SensorError, match="non-finite"):
            sensor.read(float("nan"))

    def test_infinite_truth_raises_sensor_error(self):
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        with pytest.raises(SensorError):
            sensor.read(float("inf"))
        with pytest.raises(SensorError):
            sensor.read(float("-inf"))

    def test_stuck_sensor_ignores_nan_truth(self):
        # A failed transmitter never sees the truth; its frozen value
        # keeps coming back even when the plant model diverges.
        sensor = Sensor(name="t", lo=0.0, hi=100.0)
        sensor.stick_at(25.0)
        assert sensor.read(float("nan")) == 25.0
