"""Tests for the machine factories."""

import pytest

from repro.core.designrules import module_rules, review
from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    rigel2,
    skat,
    skat_2,
    skat_plus,
    taygeta,
)
from repro.devices.board import BoardLayoutError
from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_2_PROJECTED,
    ULTRASCALE_PLUS_VU9P,
    VIRTEX6_LX240T,
    VIRTEX7_X485T,
)


class TestLegacyMachines:
    def test_rigel2_uses_virtex6(self):
        assert rigel2().ccb.fpga.family is VIRTEX6_LX240T

    def test_taygeta_uses_virtex7(self):
        assert taygeta().ccb.fpga.family is VIRTEX7_X485T

    def test_four_boards_of_eight(self):
        machine = taygeta()
        assert machine.n_boards == 4
        assert machine.ccb.n_fpgas == 8


class TestSkat:
    def test_configuration_matches_paper(self):
        """Section 3: 12 CCBs x 8 XCKU095 + 3 PSUs, 3U."""
        machine = skat()
        assert machine.section.n_boards == 12
        assert machine.section.ccb.n_fpgas == 8
        assert machine.section.ccb.fpga.family is KINTEX_ULTRASCALE_KU095
        assert machine.section.n_psus == 3
        assert machine.height_u == 3.0
        assert machine.section.ccb.separate_controller

    def test_passes_design_review(self):
        assert review(module_rules(skat()))

    def test_external_pump(self):
        assert not skat().pump.immersed


class TestSkatPlus:
    def test_no_separate_controller(self):
        """Section 4: 'further implementation of the CCB controller as a
        separate FPGA is considered unnecessary'."""
        machine = skat_plus()
        assert not machine.section.ccb.separate_controller

    def test_immersed_pump_when_modified(self):
        assert skat_plus(modified_cooling=True).pump.immersed
        assert not skat_plus(modified_cooling=False).pump.immersed

    def test_bigger_sink_surface(self):
        """Design item 1: increase the effective heat-exchange surface."""
        assert (
            skat_plus().section.sink.wetted_area_m2
            > skat().section.sink.wetted_area_m2
        )

    def test_stronger_pump(self):
        """Design item 2: increase the pump performance."""
        assert (
            skat_plus().pump.curve.max_flow_m3_s > skat().pump.curve.max_flow_m3_s
        )

    def test_controller_board_would_not_fit(self):
        """The reason for the redesign, checked end to end."""
        from repro.devices.board import Ccb
        from repro.devices.fpga import Fpga

        with pytest.raises(BoardLayoutError):
            Ccb(Fpga(ULTRASCALE_PLUS_VU9P), separate_controller=True).require_fit()


class TestSkat2:
    def test_projected_family(self):
        assert skat_2().section.ccb.fpga.family is ULTRASCALE_2_PROJECTED

    def test_cooling_reserve_covers_ultrascale_2(self):
        """Conclusions: the reserve covers 'future FPGA families (Xilinx
        UltraScale+ and UltraScale 2)'."""
        report = skat_2().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert report.max_fpga_c <= ULTRASCALE_2_PROJECTED.t_reliable_max_c
        assert report.oil_hot_c < 35.0
