"""Tests for the transient thermal solver."""

import numpy as np
import pytest

from repro.thermal.network import NetworkError, ThermalNetwork
from repro.thermal.steady import solve_steady_state
from repro.thermal.transient import solve_transient


def single_rc(heat=50.0, r=0.5, c=100.0, ambient=25.0):
    net = ThermalNetwork()
    net.add_boundary("ambient", ambient)
    net.add_node("mass", heat_w=heat, capacitance_j_k=c)
    net.add_resistance("mass", "ambient", r)
    return net


class TestSingleRC:
    def test_final_matches_steady_state(self):
        net = single_rc()
        steady = solve_steady_state(net)["mass"]
        result = solve_transient(net, duration_s=500.0)  # 10 time constants
        assert result.final()["mass"] == pytest.approx(steady, rel=1e-3)

    def test_exponential_approach(self):
        net = single_rc(heat=50.0, r=0.5, c=100.0, ambient=25.0)
        tau = 0.5 * 100.0
        result = solve_transient(
            net, duration_s=tau, initial_temperatures_c={"mass": 25.0}, samples=101
        )
        # After one time constant the rise is ~63.2 % of the asymptote.
        rise = result.final()["mass"] - 25.0
        assert rise == pytest.approx(25.0 * (1 - np.exp(-1)), rel=0.02)

    def test_cooldown_from_hot_start(self):
        net = single_rc(heat=0.0)
        result = solve_transient(
            net, duration_s=500.0, initial_temperatures_c={"mass": 90.0}
        )
        assert result.final()["mass"] == pytest.approx(25.0, abs=0.1)
        # Monotone decay.
        trace = result.temperatures_c["mass"]
        assert all(np.diff(trace) <= 1e-9)

    def test_boundary_trace_is_constant(self):
        net = single_rc()
        result = solve_transient(net, duration_s=100.0)
        assert np.all(result.temperatures_c["ambient"] == 25.0)


class TestResultHelpers:
    def test_peak(self):
        net = single_rc()
        result = solve_transient(net, duration_s=500.0)
        assert result.peak("mass") == pytest.approx(result.final()["mass"], rel=1e-3)

    def test_time_to_exceed(self):
        net = single_rc()
        result = solve_transient(net, duration_s=500.0, samples=501)
        t40 = result.time_to_exceed("mass", 40.0)
        assert t40 is not None
        assert 0.0 < t40 < 500.0

    def test_time_to_exceed_never(self):
        net = single_rc()
        result = solve_transient(net, duration_s=500.0)
        assert result.time_to_exceed("mass", 1000.0) is None


class TestHeatSchedule:
    def test_step_load_increase(self):
        net = single_rc(heat=10.0)

        def schedule(t):
            return {"mass": 10.0 if t < 250.0 else 100.0}

        result = solve_transient(net, duration_s=2000.0, heat_schedule=schedule, samples=400)
        # Ends at the high-load steady state.
        assert result.final()["mass"] == pytest.approx(25.0 + 0.5 * 100.0, rel=0.01)
        # But passed through the low-load plateau first.
        mid_index = np.searchsorted(result.times_s, 240.0)
        assert result.temperatures_c["mass"][mid_index] < 35.0

    def test_pump_failure_shaped_event(self):
        """Load constant, resistance cannot change mid-run — model a pump
        stop as a load spike on the oil node instead."""
        net = ThermalNetwork()
        net.add_boundary("water", 20.0)
        net.add_node("oil", heat_w=9000.0, capacitance_j_k=1.0e5)
        net.add_resistance("oil", "water", 0.001)

        def schedule(t):
            # HX rejection lost at t=600: model as net heat staying in oil.
            return {"oil": 9000.0}

        result = solve_transient(net, duration_s=600.0, heat_schedule=schedule)
        assert result.final()["oil"] == pytest.approx(20.0 + 9.0, rel=0.05)


class TestStiffNetworks:
    def test_fast_die_slow_bath(self):
        """A 0.5 J/K die on a 1e5 J/K bath: stiff by 5 orders of magnitude;
        the BDF integrator must handle it."""
        net = ThermalNetwork()
        net.add_boundary("water", 20.0)
        net.add_node("bath", heat_w=0.0, capacitance_j_k=1.0e5)
        net.add_node("die", heat_w=91.0, capacitance_j_k=0.5)
        net.add_resistance("die", "bath", 0.27)
        net.add_resistance("bath", "water", 0.0008)
        result = solve_transient(net, duration_s=3600.0)
        steady = solve_steady_state(net)
        assert result.final()["die"] == pytest.approx(steady["die"], rel=0.01)
        assert result.final()["bath"] == pytest.approx(steady["bath"], rel=0.01)

    def test_quasi_static_node_follows(self):
        net = ThermalNetwork()
        net.add_boundary("ambient", 25.0)
        net.add_node("sink")  # zero capacitance -> quasi-static
        net.add_node("die", heat_w=40.0, capacitance_j_k=5.0)
        net.add_resistance("die", "sink", 0.2)
        net.add_resistance("sink", "ambient", 0.5)
        result = solve_transient(net, duration_s=100.0)
        steady = solve_steady_state(net)
        assert result.final()["sink"] == pytest.approx(steady["sink"], rel=0.01)


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(NetworkError):
            solve_transient(single_rc(), duration_s=0.0)

    def test_bad_samples(self):
        with pytest.raises(NetworkError):
            solve_transient(single_rc(), duration_s=10.0, samples=1)
