"""Tests for the FPGA family catalog."""

import pytest

from repro.devices.families import (
    FpgaFamily,
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_2_PROJECTED,
    ULTRASCALE_PLUS_VU9P,
    VIRTEX6_LX240T,
    VIRTEX7_X485T,
    family_roadmap,
)


class TestCatalog:
    def test_roadmap_chronological(self):
        years = [f.year for f in family_roadmap()]
        assert years == sorted(years)

    def test_logic_capacity_grows_monotonically(self):
        cells = [f.logic_cells for f in family_roadmap()]
        assert cells == sorted(cells)

    def test_paper_package_sizes(self):
        # Section 4: SKAT parts are 42.5 mm; UltraScale+ parts are 45 mm.
        assert KINTEX_ULTRASCALE_KU095.package_size_mm == 42.5
        assert ULTRASCALE_PLUS_VU9P.package_size_mm == 45.0

    def test_ultrascale_power_up_to_100w(self):
        # Section 1: "power consumption of up to 100 W for each chip".
        assert 90.0 <= KINTEX_ULTRASCALE_KU095.operating_power_w <= 100.0
        assert KINTEX_ULTRASCALE_KU095.max_power_w >= 100.0

    def test_reliability_ceiling_65_to_70(self):
        for family in family_roadmap():
            assert 65.0 <= family.t_reliable_max_c <= 70.0

    def test_process_nodes_shrink(self):
        nodes = [f.process_nm for f in family_roadmap()]
        assert nodes == sorted(nodes, reverse=True)

    def test_parts_named_as_in_paper(self):
        assert VIRTEX6_LX240T.part.startswith("XC6VLX240T")
        assert VIRTEX7_X485T.part.startswith("XC7VX485T")
        assert KINTEX_ULTRASCALE_KU095.part == "XCKU095"


class TestGeometry:
    def test_package_area(self):
        assert VIRTEX6_LX240T.package_area_m2 == pytest.approx((0.0425) ** 2)

    def test_die_smaller_than_package(self):
        for family in family_roadmap():
            assert family.die_area_m2 < family.package_area_m2


class TestValidation:
    def _family(self, **overrides):
        base = dict(
            name="x",
            part="y",
            process_nm=20.0,
            logic_cells=1000,
            dsp_slices=10,
            bram_mb=1.0,
            nominal_clock_mhz=100.0,
            operating_power_w=10.0,
            max_power_w=12.0,
            static_fraction=0.3,
            package_size_mm=40.0,
            die_size_mm=20.0,
            t_junction_max_c=100.0,
            t_reliable_max_c=70.0,
            theta_jc_k_w=0.1,
            year=2020,
        )
        base.update(overrides)
        return FpgaFamily(**base)

    def test_valid_family_ok(self):
        self._family()

    def test_rejects_operating_above_max(self):
        with pytest.raises(ValueError):
            self._family(operating_power_w=15.0, max_power_w=12.0)

    def test_rejects_die_bigger_than_package(self):
        with pytest.raises(ValueError):
            self._family(die_size_mm=50.0)

    def test_rejects_static_fraction_one(self):
        with pytest.raises(ValueError):
            self._family(static_fraction=1.0)
