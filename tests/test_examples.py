"""Smoke tests: every example script runs clean and prints its headline.

The examples are the public face of the library; a refactor that breaks
one must fail the suite, not a user.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script -> a string its output must contain.
EXPECTED = {
    "quickstart.py": "max FPGA junction",
    "air_vs_immersion.py": "MTBF multiple",
    "rack_balancing.py": "redistribution evenness",
    "family_roadmap.py": "rack-level performance",
    "custom_machine.py": "pump-failure stress test",
    "datacenter_energy.py": "architecture scorecard",
    "workload_study.py": "compute-to-heat coupling",
    "failure_drills.py": "takeaway",
    "paper_figures.py": "Figure E",
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_example_runs(name):
    output = run_example(name)
    assert EXPECTED[name] in output


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED), "example list out of sync with smoke tests"


def test_cli_module_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "summary"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "SKAT" in result.stdout
