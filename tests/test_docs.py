"""Documentation consistency tests.

Generated documents must match what the generators produce from the
current code — a physics or API change that forgets to regenerate them
fails here, not in a reader's hands.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load(script: str):
    path = ROOT / "scripts" / script
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExperimentsMd:
    def test_experiments_md_is_current(self, tmp_path, monkeypatch):
        """Regenerating EXPERIMENTS.md reproduces the committed file."""
        committed = (ROOT / "EXPERIMENTS.md").read_text()
        result = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "generate_experiments_md.py")],
            capture_output=True,
            text=True,
            cwd=str(ROOT),
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        regenerated = (ROOT / "EXPERIMENTS.md").read_text()
        assert regenerated == committed
        assert "all rows reproduce" in committed.lower() or "All rows reproduce." in committed

    def test_every_bench_in_experiments_md(self):
        content = (ROOT / "EXPERIMENTS.md").read_text()
        bench_files = sorted((ROOT / "benchmarks").glob("test_bench_*.py"))
        for path in bench_files:
            if path.stem in (
                "test_bench_solvers",
                "test_bench_b1_batched_throughput",
                "test_bench_m1_montecarlo",
                "test_bench_s1_service_throughput",
            ):
                continue  # library performance, not a paper experiment
            assert path.stem in content, f"{path.stem} missing from EXPERIMENTS.md"


class TestApiMd:
    def test_api_md_is_current(self):
        committed = (ROOT / "docs" / "API.md").read_text()
        result = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "generate_api_md.py")],
            capture_output=True,
            text=True,
            cwd=str(ROOT),
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert (ROOT / "docs" / "API.md").read_text() == committed

    def test_api_module_list_complete(self):
        """Every repro module with an __all__ appears in the generator."""
        generator = (ROOT / "scripts" / "generate_api_md.py").read_text()
        src = ROOT / "src" / "repro"
        for path in src.rglob("*.py"):
            if path.name in ("__init__.py", "__main__.py"):
                continue
            module_name = (
                "repro." + ".".join(path.relative_to(src).with_suffix("").parts)
            )
            if "__all__" in path.read_text():
                assert f'"{module_name}"' in generator, (
                    f"{module_name} missing from generate_api_md.py"
                )


class TestReadme:
    def test_readme_references_exist(self):
        readme = (ROOT / "README.md").read_text()
        for reference in ("DESIGN.md", "EXPERIMENTS.md", "docs/PHYSICS.md",
                          "docs/TUTORIAL.md", "docs/API.md"):
            assert reference in readme
            assert (ROOT / reference).exists()

    def test_license_exists_and_matches_pyproject(self):
        assert "MIT" in (ROOT / "LICENSE").read_text()
        assert 'license = { text = "MIT" }' in (ROOT / "pyproject.toml").read_text()
