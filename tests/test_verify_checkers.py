"""The invariant checkers: clean runs pass, tampered runs fail.

The contract under test is two-sided. Soundness: a nominal simulator run
at every level — module, rack, facility, supervised or not, with or
without injected failures — produces **zero** violations, because the
checkers replay the simulators' own update expressions on the recorded
telemetry. Sensitivity: perturbing any recorded energy term, breaking a
flow balance, or forging a supervisor transition is caught, reported
through the obs registry, and raised in strict mode.
"""

import dataclasses

import pytest

from repro.control.monitor import TelemetryLog
from repro.control.supervisor import Supervisor
from repro.core.balancing import RackManifoldSystem
from repro.core.racksim import RackSimulator
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.facility.simulator import FacilitySimulator
from repro.facility.sweep import facility_rack
from repro.hydraulics import HydraulicsError
from repro.obs import MetricsRegistry, use_registry
from repro.reliability.failures import (
    leak_event,
    loop_blockage_event,
    pump_stop_event,
    sensor_fault_event,
    tim_washout_drift,
)
from repro.verify import CheckSuite, InvariantViolationError, Tolerances, Violation

DT_MODULE = 5.0
DT_RACK = 20.0


def _retampered(telemetry: TelemetryLog, channel: str, step: int, factor: float,
                offset: float = 0.0) -> TelemetryLog:
    """A copy of ``telemetry`` with one sample of one channel perturbed."""
    times, _ = telemetry.series(next(iter(telemetry.channels)))
    rebuilt = TelemetryLog()
    for k in range(len(times)):
        row = {
            name: float(telemetry.series(name)[1][k]) for name in telemetry.channels
        }
        if k == step:
            row[channel] = row[channel] * factor + offset
        rebuilt.record(float(times[k]), row)
    return rebuilt


class TestModuleLevel:
    def test_nominal_run_is_clean(self):
        suite = CheckSuite(strict=True)
        ModuleSimulator(module=skat(), checks=suite).run(200.0, dt_s=DT_MODULE)
        assert suite.ok
        assert suite.checks_run == 1

    def test_faulted_supervised_run_is_clean(self):
        events = [
            pump_stop_event(30.0, "oil_pump", 0.0),
            tim_washout_drift(50.0, "fpga_0", 4.0),
            leak_event(70.0, "bath", 1.0e-4),
            sensor_fault_event(40.0, "oil_temp_1", 12.0),
            loop_blockage_event(90.0, "oil_loop", 0.3),
        ]
        suite = CheckSuite(strict=True)
        sim = ModuleSimulator(module=skat(), supervisor=Supervisor(), checks=suite)
        sim.run(400.0, events=events, dt_s=DT_MODULE)
        assert suite.ok

    def test_tampered_heat_term_violates_energy_balance(self):
        sim = ModuleSimulator(module=skat())
        result = sim.run(120.0, dt_s=DT_MODULE)
        bad = dataclasses.replace(
            result, telemetry=_retampered(result.telemetry, "bath_heat_w", 10, 1.05)
        )
        suite = CheckSuite()
        suite.check_module_run(
            sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
        )
        assert any(v.invariant == "energy_balance" for v in suite.violations)

    def test_tampered_oil_sample_breaks_the_replay_chain(self):
        sim = ModuleSimulator(module=skat())
        result = sim.run(120.0, dt_s=DT_MODULE)
        bad = dataclasses.replace(
            result, telemetry=_retampered(result.telemetry, "oil_c", 5, 1.0, 0.5)
        )
        suite = CheckSuite()
        suite.check_module_run(
            sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
        )
        assert any(v.invariant == "energy_balance" for v in suite.violations)

    def test_rising_level_violates_level_conservation(self):
        sim = ModuleSimulator(module=skat())
        result = sim.run(120.0, events=[leak_event(10.0, "bath", 1.0e-4)], dt_s=DT_MODULE)
        bad = dataclasses.replace(
            result,
            telemetry=_retampered(result.telemetry, "level_fraction", 15, 1.0, 0.2),
        )
        suite = CheckSuite()
        suite.check_module_run(
            sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
        )
        assert any(v.invariant == "level_conservation" for v in suite.violations)

    def test_forged_supervisor_deescalation_is_illegal(self):
        sim = ModuleSimulator(module=skat(), supervisor=Supervisor())
        result = sim.run(
            200.0, events=[pump_stop_event(30.0, "oil_pump", 0.0)], dt_s=DT_MODULE
        )
        _, states = result.telemetry.series("supervisor_state")
        assert max(states) > 0, "scenario must escalate for this test to bite"
        # Zeroing the *last* sample turns the tail into a de-escalation.
        bad = dataclasses.replace(
            result,
            telemetry=_retampered(
                result.telemetry, "supervisor_state", len(states) - 1, 0.0, 0.0
            ),
        )
        suite = CheckSuite()
        suite.check_module_run(
            sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
        )
        assert any(v.invariant == "supervisor_legality" for v in suite.violations)

    def test_wrong_result_maximum_is_inconsistent(self):
        sim = ModuleSimulator(module=skat())
        result = sim.run(120.0, dt_s=DT_MODULE)
        bad = dataclasses.replace(result, max_oil_c=result.max_oil_c + 1.0)
        suite = CheckSuite()
        suite.check_module_run(
            sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
        )
        assert any(v.invariant == "result_consistency" for v in suite.violations)

    def test_strict_mode_raises_with_the_violation_attached(self):
        sim = ModuleSimulator(module=skat())
        result = sim.run(120.0, dt_s=DT_MODULE)
        bad = dataclasses.replace(
            result, telemetry=_retampered(result.telemetry, "bath_heat_w", 3, 1.05)
        )
        suite = CheckSuite(strict=True)
        with pytest.raises(InvariantViolationError) as err:
            suite.check_module_run(
                sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
            )
        assert err.value.violations
        assert err.value.violations[0].invariant == "energy_balance"
        assert isinstance(err.value.violations[0], Violation)


class TestRackLevel:
    def test_nominal_and_faulted_runs_are_clean(self):
        for events in (
            [],
            [
                loop_blockage_event(60.0, "loop_1", 0.0),
                pump_stop_event(100.0, "chiller", 0.2),
            ],
        ):
            suite = CheckSuite(strict=True)
            RackSimulator(rack=facility_rack(3), checks=suite).run(
                400.0, events=events, dt_s=DT_RACK
            )
            assert suite.ok
            suite = CheckSuite(strict=True)
            RackSimulator(
                rack=facility_rack(3), supervisor=Supervisor(), checks=suite
            ).run(400.0, events=events, dt_s=DT_RACK)
            assert suite.ok

    def test_tampered_module_heat_violates_energy_balance(self):
        suite = CheckSuite()
        sim = RackSimulator(rack=facility_rack(2), checks=suite)
        result = sim.run(200.0, dt_s=DT_RACK)
        assert suite.ok
        bad = dataclasses.replace(
            result, telemetry=_retampered(result.telemetry, "heat_0", 4, 1.05)
        )
        audit = CheckSuite()
        audit.check_rack_run(sim, bad, dt_s=DT_RACK)
        assert any(v.invariant == "energy_balance" for v in audit.violations)

    def test_tampered_total_rejection_breaks_water_loop_balance(self):
        suite = CheckSuite()
        sim = RackSimulator(rack=facility_rack(2), checks=suite)
        result = sim.run(200.0, dt_s=DT_RACK)
        bad = dataclasses.replace(
            result, telemetry=_retampered(result.telemetry, "rejected_w", 6, 1.05)
        )
        audit = CheckSuite()
        audit.check_rack_run(sim, bad, dt_s=DT_RACK)
        assert any(v.invariant == "energy_balance" for v in audit.violations)

    def test_wrong_integrated_heat_is_caught(self):
        suite = CheckSuite()
        sim = RackSimulator(rack=facility_rack(2), checks=suite)
        result = sim.run(200.0, dt_s=DT_RACK)
        bad = dataclasses.replace(
            result, heat_rejected_j=result.heat_rejected_j * 1.05
        )
        audit = CheckSuite()
        audit.check_rack_run(sim, bad, dt_s=DT_RACK)
        assert any(
            v.invariant == "energy_balance" and v.where == "heat_rejected_j"
            for v in audit.violations
        )


class TestManifoldContinuity:
    def test_converged_solve_passes(self):
        system = RackManifoldSystem(n_loops=4)
        system.solve()
        suite = CheckSuite(strict=True)
        suite.check_manifold(system, level="rack", where="test")
        assert suite.ok

    def test_zero_tolerance_flags_solver_residual(self):
        system = RackManifoldSystem(n_loops=4)
        system.solve()
        suite = CheckSuite(tolerances=Tolerances(flow_abs_m3_s=0.0))
        found = suite.check_manifold(system, level="rack", where="test")
        assert found and all(v.invariant == "flow_continuity" for v in found)

    def test_unsolved_system_raises(self):
        system = RackManifoldSystem(n_loops=4)
        with pytest.raises(HydraulicsError):
            system.junction_residuals_m3_s()


class TestFacilityLevel:
    def test_nominal_facility_run_is_clean(self):
        suite = CheckSuite(strict=True)
        FacilitySimulator(
            n_racks=2,
            rack_factory=lambda: facility_rack(2),
            checks=suite,
        ).run(200.0, dt_s=DT_RACK)
        assert suite.ok
        # One manifold check, two rack audits, one facility audit at least.
        assert suite.checks_run >= 4

    def test_wrong_aggregate_heat_is_caught(self):
        sim = FacilitySimulator(n_racks=2, rack_factory=lambda: facility_rack(2))
        result = sim.run(200.0, dt_s=DT_RACK)
        bad = dataclasses.replace(
            result, heat_rejected_j=result.heat_rejected_j * 1.05
        )
        suite = CheckSuite()
        suite.check_facility_run(sim, bad)
        assert any(v.invariant == "energy_balance" for v in suite.violations)

    def test_wrong_facility_maximum_is_caught(self):
        sim = FacilitySimulator(n_racks=2, rack_factory=lambda: facility_rack(2))
        result = sim.run(200.0, dt_s=DT_RACK)
        bad = dataclasses.replace(result, max_fpga_c=result.max_fpga_c + 2.0)
        suite = CheckSuite()
        suite.check_facility_run(sim, bad)
        assert any(v.invariant == "result_consistency" for v in suite.violations)


class TestReporting:
    def test_violations_flow_into_the_obs_registry(self):
        obs = MetricsRegistry()
        with use_registry(obs):
            sim = ModuleSimulator(module=skat())
            result = sim.run(120.0, dt_s=DT_MODULE)
            bad = dataclasses.replace(
                result,
                telemetry=_retampered(result.telemetry, "bath_heat_w", 3, 1.05),
            )
            suite = CheckSuite()
            suite.check_module_run(
                sim, bad, dt_s=DT_MODULE, initial_oil_c=sim.water_in_c + 8.0
            )
        counters = obs.as_dict()["counters"]
        assert counters["verify_checks_total"] >= 1
        assert counters["verify_violations_total"] == len(suite.violations) >= 1

    def test_violation_dicts_are_plain_data(self):
        violation = Violation(
            invariant="energy_balance",
            level="module",
            where="bath t=5",
            detail="synthetic",
            magnitude=0.123456789123,
            tolerance=1e-9,
        )
        payload = violation.to_dict()
        assert payload["invariant"] == "energy_balance"
        assert payload["magnitude"] == pytest.approx(0.123456789, abs=1e-12)

    def test_checks_disabled_records_no_extra_channels(self):
        plain = RackSimulator(rack=facility_rack(2)).run(100.0, dt_s=DT_RACK)
        assert "heat_0" not in plain.telemetry.channels
        checked = RackSimulator(
            rack=facility_rack(2), checks=CheckSuite(strict=True)
        ).run(100.0, dt_s=DT_RACK)
        assert "heat_0" in checked.telemetry.channels
        # The shared channels stay bit-identical either way.
        for channel in ("water_c", "oil_0", "junction_1"):
            _, a = plain.telemetry.series(channel)
            _, b = checked.telemetry.series(channel)
            assert list(a) == list(b)
