"""Tests for the failure-injection event factories."""

import pytest

from repro.reliability.failures import (
    FailureEvent,
    leak_event,
    loop_blockage_event,
    pump_stop_event,
    sensor_fault_event,
    tim_washout_drift,
)


class TestFactories:
    def test_pump_stop(self):
        event = pump_stop_event(120.0, "oil_pump")
        assert event.kind == "pump_stop"
        assert event.time_s == 120.0
        assert event.target == "oil_pump"
        assert event.magnitude == 0.0

    def test_pump_degradation(self):
        event = pump_stop_event(60.0, "oil_pump", remaining_speed=0.5)
        assert event.magnitude == 0.5

    def test_pump_rejects_full_speed(self):
        with pytest.raises(ValueError):
            pump_stop_event(60.0, "oil_pump", remaining_speed=1.0)

    def test_loop_blockage(self):
        event = loop_blockage_event(0.0, "loop_3")
        assert event.kind == "loop_blockage"
        assert event.magnitude == 0.0

    def test_leak_requires_positive_rate(self):
        with pytest.raises(ValueError):
            leak_event(10.0, "manifold", 0.0)

    def test_leak_description_in_litres(self):
        event = leak_event(10.0, "manifold", 5.0e-4)
        assert "0.50 L/s" in event.description

    def test_tim_washout_only_degrades(self):
        with pytest.raises(ValueError):
            tim_washout_drift(0.0, "fpga_3", 0.5)
        event = tim_washout_drift(0.0, "fpga_3", 2.5)
        assert event.magnitude == 2.5

    def test_sensor_fault_custom_description(self):
        event = sensor_fault_event(5.0, "t_oil", -3.0, description="stuck cold")
        assert event.description == "stuck cold"


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="leak", time_s=-1.0, target="x", magnitude=1.0)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="", time_s=0.0, target="x", magnitude=1.0)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="leak", time_s=0.0, target="", magnitude=1.0)

    def test_infinite_magnitude_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="leak", time_s=0.0, target="x", magnitude=float("inf"))

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="leak", time_s=float("nan"), target="x", magnitude=1.0)


class TestMagnitudeRanges:
    def test_leak_rate_above_credible_maximum_rejected(self):
        with pytest.raises(ValueError, match="credible maximum"):
            leak_event(10.0, "manifold", 2.0e-2)

    def test_leak_rate_at_maximum_accepted(self):
        from repro.reliability.failures import MAX_LEAK_RATE_M3_S

        assert leak_event(10.0, "manifold", MAX_LEAK_RATE_M3_S).magnitude == 1.0e-2

    def test_nan_leak_rate_rejected(self):
        with pytest.raises(ValueError):
            leak_event(10.0, "manifold", float("nan"))

    def test_tim_multiplier_above_credible_maximum_rejected(self):
        with pytest.raises(ValueError, match="credible"):
            tim_washout_drift(0.0, "fpga_3", 150.0)

    def test_infinite_tim_multiplier_rejected(self):
        with pytest.raises(ValueError):
            tim_washout_drift(0.0, "fpga_3", float("inf"))

    def test_sensor_offset_beyond_rail_rejected(self):
        with pytest.raises(ValueError, match="credible"):
            sensor_fault_event(5.0, "t_oil", 250.0)
        with pytest.raises(ValueError, match="credible"):
            sensor_fault_event(5.0, "t_oil", -250.0)

    def test_nan_sensor_offset_rejected(self):
        with pytest.raises(ValueError):
            sensor_fault_event(5.0, "t_oil", float("nan"))
