"""Tests for the analysis harnesses."""

import pytest

from repro.analysis.compare import compare_architectures, render_scorecard
from repro.analysis.energy import (
    air_rack_report,
    annual_energy_report,
    immersion_rack_report,
    render_energy_report,
)
from repro.analysis.sensitivity import render_sensitivity, skat_sensitivity


class TestCompare:
    @pytest.fixture(scope="class")
    def scores(self):
        return compare_architectures()

    def test_three_architectures(self, scores):
        assert [s.name for s in scores] == [
            "forced air",
            "closed-loop cold plates",
            "open-loop immersion (SKAT)",
        ]

    def test_air_infeasible_for_ultrascale(self, scores):
        air = scores[0]
        assert not air.feasible

    def test_immersion_highest_density(self, scores):
        immersion = scores[2]
        assert immersion.fpgas_per_3u == max(s.fpgas_per_3u for s in scores)

    def test_coldplate_most_connections(self, scores):
        coldplate = scores[1]
        assert coldplate.pressure_tight_connections == max(
            s.pressure_tight_connections for s in scores
        )
        assert coldplate.leak_exposure

    def test_immersion_best_availability_of_liquids(self, scores):
        coldplate, immersion = scores[1], scores[2]
        assert immersion.availability > coldplate.availability

    def test_render(self, scores):
        text = render_scorecard(scores)
        assert "open-loop immersion" in text
        assert "runaway" in text or "C" in text


class TestEnergy:
    def test_immersion_lower_overhead(self):
        air = air_rack_report()
        immersion = immersion_rack_report()
        assert immersion.cooling_overhead_fraction < air.cooling_overhead_fraction
        assert immersion.pue < air.pue

    def test_annual_report_consistency(self):
        report = annual_energy_report(price_usd_kwh=0.10)
        assert report["overhead_ratio"] > 1.5
        assert report["cost_saving_usd_per_rack_year_at_equal_it"] > 0.0

    def test_price_scales_cost_linearly(self):
        cheap = immersion_rack_report(price_usd_kwh=0.05)
        dear = immersion_rack_report(price_usd_kwh=0.20)
        assert dear.annual_cooling_cost_usd == pytest.approx(
            4.0 * cheap.annual_cooling_cost_usd
        )

    def test_render(self):
        text = render_energy_report(immersion_rack_report())
        assert "PUE" in text
        assert "kW" in text


class TestSensitivity:
    @pytest.fixture(scope="class")
    def results(self):
        return skat_sensitivity()

    def test_six_parameters(self, results):
        assert len(results) == 6

    def test_interface_is_the_dominant_knob(self, results):
        """Doubling the interface resistivity dwarfs the other levers —
        the quantitative reason the SRC interface technology matters."""
        by_param = {r.parameter: r for r in results}
        tim = abs(by_param["interface resistivity"].delta_k)
        others = [abs(r.delta_k) for r in results if r.parameter != "interface resistivity"]
        assert tim > max(others)

    def test_improvements_and_degradations_signed_correctly(self, results):
        by_param = {r.parameter: r for r in results}
        assert by_param["pin height"].delta_k < 0.0  # more surface helps
        assert by_param["pump head"].delta_k < 0.0  # more flow helps
        assert by_param["chilled water"].delta_k > 0.0  # warmer water hurts
        assert by_param["solder-pin turbulence"].delta_k > 0.0  # removal hurts
        assert by_param["water flow"].delta_k > 0.0  # starved HX hurts

    def test_chilled_water_roughly_one_to_one(self, results):
        """+2 C of water should cost roughly +2 C of junction (the loop is
        nearly linear in the boundary temperature)."""
        by_param = {r.parameter: r for r in results}
        assert by_param["chilled water"].delta_k == pytest.approx(2.0, abs=0.8)

    def test_render(self, results):
        text = render_sensitivity(results)
        assert "base max FPGA" in text
        assert "#" in text


class TestCoolantSensitivity:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.analysis.sensitivity import coolant_sensitivity

        return coolant_sensitivity()

    def test_five_levers(self, results):
        assert len(results) == 5

    def test_every_paper_lever_helps(self, results):
        """Each of Section 2's improvement options lowers the junction."""
        for r in results:
            assert r.delta_k < 0.0, r.parameter

    def test_temperature_is_the_strongest_lever(self, results):
        """Decreasing the agent temperature dominates property tweaks —
        why the machines run on chilled water rather than exotic oils."""
        by_param = {r.parameter: r for r in results}
        temp = abs(by_param["coolant temperature"].delta_k)
        others = [
            abs(r.delta_k) for r in results if r.parameter != "coolant temperature"
        ]
        assert temp > max(others)
