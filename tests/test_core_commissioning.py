"""Tests for the commissioning procedure."""

import pytest

from repro.core.bathlevel import BathInventory
from repro.core.commissioning import (
    Envelope,
    fill_check,
    run_heat_experiment,
)
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat


class TestFillCheck:
    def test_design_fill_passes(self):
        passed, notes = fill_check(BathInventory(fill_fraction=0.95))
        assert passed
        assert "headroom" in notes

    def test_overfill_fails(self):
        passed, _ = fill_check(BathInventory(fill_fraction=1.0))
        assert not passed

    def test_underfill_fails(self):
        passed, _ = fill_check(BathInventory(fill_fraction=0.5))
        assert not passed


class TestHeatExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_heat_experiment(skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)

    def test_skat_clears_commissioning(self, report):
        assert report.passed
        assert report.final is not None

    def test_all_default_stages_run(self, report):
        assert [s.utilization for s in report.stages] == [0.25, 0.5, 0.75, 0.9, 0.95]

    def test_monotone_heating_with_utilization(self, report):
        junctions = [s.max_fpga_c for s in report.stages]
        assert junctions == sorted(junctions)

    def test_final_stage_is_the_measured_point(self, report):
        assert report.final.max_fpga_c == pytest.approx(
            report.stages[-1].max_fpga_c
        )

    def test_render_protocol(self, report):
        text = report.render()
        assert "CLEARED FOR SERVICE" in text
        assert "util 95%" in text

    def test_tight_envelope_stops_ramp(self):
        tight = Envelope(max_fpga_c=45.0)
        report = run_heat_experiment(
            skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S, envelope=tight
        )
        assert not report.passed
        assert not report.stages[-1].passed
        # The ramp stopped at the first violation.
        assert all(s.passed for s in report.stages[:-1])

    def test_rejects_bad_stage_list(self):
        with pytest.raises(ValueError):
            run_heat_experiment(
                skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S, stages=[]
            )
        with pytest.raises(ValueError):
            run_heat_experiment(
                skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S, stages=[1.5]
            )


class TestEnvelope:
    def test_violation_list(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        assert Envelope().check(report) == []
        assert Envelope(max_fpga_c=50.0).check(report) != []
