"""Tests for the Darcy friction-factor correlations."""

import pytest

from repro.hydraulics import friction as fr


class TestLaminar:
    def test_hagen_poiseuille(self):
        assert fr.laminar(1000.0) == pytest.approx(0.064)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            fr.laminar(0.0)


class TestSwameeJain:
    def test_smooth_pipe_value(self):
        # Smooth pipe at Re=1e5: f ~ 0.018.
        f = fr.swamee_jain(1.0e5, 0.0)
        assert f == pytest.approx(0.018, rel=0.05)

    def test_roughness_increases_friction(self):
        smooth = fr.swamee_jain(1.0e5, 0.0)
        rough = fr.swamee_jain(1.0e5, 1.0e-3)
        assert rough > smooth

    def test_rejects_laminar(self):
        with pytest.raises(ValueError):
            fr.swamee_jain(1000.0, 0.0)


class TestChurchill:
    def test_matches_laminar_at_low_re(self):
        for re in (100.0, 500.0, 1500.0):
            assert fr.churchill(re, 0.0) == pytest.approx(64.0 / re, rel=0.02)

    def test_matches_swamee_jain_turbulent(self):
        for re in (1.0e4, 1.0e5, 1.0e6):
            churchill = fr.churchill(re, 1.0e-4)
            sj = fr.swamee_jain(re, 1.0e-4)
            assert churchill == pytest.approx(sj, rel=0.1)

    def test_continuous_through_transition(self):
        values = [fr.churchill(re, 0.0) for re in (2000.0, 2300.0, 3000.0, 4000.0)]
        for a, b in zip(values, values[1:]):
            assert abs(a - b) / a < 1.0  # no orders-of-magnitude jumps


class TestDispatch:
    def test_zero_flow_returns_zero(self):
        assert fr.friction_factor(0.0) == 0.0

    def test_positive_flow_positive_friction(self):
        assert fr.friction_factor(5000.0, 1e-5) > 0.0
