"""Tests for the uncertainty quantification harness."""

import pytest

from repro.analysis.uncertainty import (
    DEFAULT_TOLERANCES,
    ParameterTolerance,
    UncertainValue,
    skat_uncertainty,
)


class TestUncertainValue:
    def test_interval_containment(self):
        value = UncertainValue("x", mean=55.0, std=2.0, p05=52.0, p95=58.0)
        assert value.contains(55.0)
        assert value.contains(52.0)
        assert not value.contains(60.0)

    def test_str(self):
        value = UncertainValue("junction", 55.0, 2.0, 52.0, 58.0)
        assert "junction" in str(value)
        assert "+/-" in str(value)


class TestTolerances:
    def test_default_set_covers_the_calibration_knobs(self):
        names = {t.name for t in DEFAULT_TOLERANCES}
        assert names == {
            "turbulence_factor",
            "tim_resistivity",
            "pin_height",
            "pump_shutoff",
            "chip_power",
            "hx_enhancement",
        }

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            ParameterTolerance("x", 0.0)
        with pytest.raises(ValueError):
            ParameterTolerance("x", 0.9)


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def results(self):
        return skat_uncertainty(n_samples=25, seed=3)

    def test_three_outputs(self, results):
        assert set(results) == {"max_fpga_c", "bath_mean_c", "chip_power_w"}

    def test_paper_values_inside_intervals(self, results):
        """The reproduction's honest claim: the paper's measurements fall
        inside the propagated 90 % intervals."""
        assert results["max_fpga_c"].contains(55.0)
        assert results["chip_power_w"].contains(91.0)
        assert results["bath_mean_c"].contains(29.8)

    def test_spreads_are_meaningful_but_bounded(self, results):
        assert 0.5 < results["max_fpga_c"].std < 6.0
        assert results["max_fpga_c"].p05 < results["max_fpga_c"].mean < results[
            "max_fpga_c"
        ].p95

    def test_reproducible_by_seed(self):
        a = skat_uncertainty(n_samples=10, seed=5)
        b = skat_uncertainty(n_samples=10, seed=5)
        assert a["max_fpga_c"].mean == b["max_fpga_c"].mean

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            skat_uncertainty(n_samples=2)
