"""Overhead budget of the disabled (no-op) observability layer.

The default process registry is the shared :class:`NullRegistry`; the
instrumentation left on the solver hot path is then exactly one
``get_registry()`` lookup plus an ``enabled`` check per solve. This suite
times an F5-style manifold solve loop and asserts that a *generous*
multiple of those no-op operations still costs less than 5% of the loop —
the budget every future instrumentation change has to live inside.
"""

import time

import pytest

from repro.core.balancing import RackManifoldSystem
from repro.obs import MetricsRegistry, NullRegistry, get_registry

#: Solves per timing sample (each cycle is a nominal + one-loop-out solve).
_CYCLES = 5
_SOLVES = 2 * _CYCLES

#: Safety factor: we charge this many times more no-op operations per
#: solve than the hot path actually performs (one lookup + one check).
_OPS_PER_SOLVE = 8

#: Fraction of the solve loop the no-op instrumentation may cost.
_BUDGET = 0.05


def _best_of(fn, repeats: int = 3) -> float:
    return min(fn() for _ in range(repeats))


def _time_solve_loop(system: RackManifoldSystem) -> float:
    t0 = time.perf_counter()
    for _ in range(_CYCLES):
        system.solve()
        system.fail_loop(1)
        system.solve()
        system.restore_loop(1)
    return time.perf_counter() - t0


def _time_noop_ops(n: int) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        obs = get_registry()
        if obs.enabled:  # pragma: no cover - null registry is disabled
            raise AssertionError("expected the no-op registry")
    return time.perf_counter() - t0


class TestNoOpOverheadBudget:
    def test_default_registry_is_the_noop(self):
        assert isinstance(get_registry(), NullRegistry)
        assert not get_registry().enabled

    def test_noop_overhead_under_budget_for_f5_solve_loop(self):
        """A generous multiple of the no-op ops stays under 5% of the loop."""
        system = RackManifoldSystem(n_loops=4)
        _time_solve_loop(system)  # warm: caches, numpy, scipy
        t_loop = _best_of(lambda: _time_solve_loop(system))
        n_ops = _SOLVES * _OPS_PER_SOLVE
        _time_noop_ops(n_ops)  # warm
        t_noop = _best_of(lambda: _time_noop_ops(n_ops))
        assert t_noop < _BUDGET * t_loop, (
            f"no-op instrumentation {t_noop * 1e6:.1f} us exceeds "
            f"{_BUDGET:.0%} of the {t_loop * 1e6:.1f} us solve loop"
        )

    def test_null_span_and_profile_are_allocation_free(self):
        """The null registry hands out the same shared objects every time."""
        obs = get_registry()
        assert obs.span("a") is obs.span("b")
        assert obs.counter("a") is obs.counter("b")
        assert obs.profile("a") is obs.profile("b")


class TestHistogramValidation:
    """Bucket-edge validation rides with the overhead budget (satellite)."""

    def test_monotone_edges_accepted(self):
        hist = MetricsRegistry().histogram("ok", buckets=(0.0, 1.0, 2.5, 10.0))
        assert hist.buckets == (0.0, 1.0, 2.5, 10.0)

    @pytest.mark.parametrize(
        "buckets",
        [(), (1.0, 1.0), (2.0, 1.0), (0.0, float("nan")), (float("inf"),)],
    )
    def test_bad_edges_rejected(self, buckets):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=buckets)
