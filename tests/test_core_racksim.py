"""Tests for the rack-level transient simulator."""

import pytest

from repro.core.rack import Rack
from repro.core.racksim import RackSimulator
from repro.core.skat import skat
from repro.reliability.failures import loop_blockage_event, pump_stop_event


def simulator(n_modules=4):
    """A small rack keeps the tests fast; the physics is per-CM anyway."""
    return RackSimulator(Rack(module_factory=skat, n_modules=n_modules))


class TestNominal:
    def test_settles_inside_envelope(self):
        result = simulator().run(duration_s=1800.0, dt_s=30.0)
        assert result.survived(67.0)
        assert result.modules_over_limit == []

    def test_water_holds_setpoint(self):
        result = simulator().run(duration_s=1800.0, dt_s=30.0)
        assert result.max_water_c == pytest.approx(20.0, abs=0.5)

    def test_telemetry_per_module(self):
        result = simulator(n_modules=3).run(duration_s=300.0, dt_s=30.0)
        channels = set(result.telemetry.channels)
        assert {"water_c", "oil_0", "oil_1", "oil_2", "junction_0"} <= channels


class TestChillerTrip:
    def test_common_mode_failure_takes_all_modules(self):
        result = simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.0)],
            dt_s=30.0,
        )
        assert not result.survived(67.0)
        assert result.modules_over_limit == [0, 1, 2, 3]
        assert result.max_water_c > 30.0

    def test_partial_chiller_degradation_survivable(self):
        """Losing one of two compressors (50 % capacity) must not cook the
        rack — the chiller is sized ~1.4x the load."""
        result = simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.7)],
            dt_s=30.0,
        )
        assert result.survived(67.0)


class TestLoopClosure:
    def test_only_the_closed_loop_suffers(self):
        result = simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        assert 2 in result.modules_over_limit
        assert all(i not in result.modules_over_limit for i in (0, 1, 3))

    def test_survivors_unharmed_by_redistribution(self):
        """The Fig. 5 layout means the surviving CMs see *more* water, not
        less — their junctions must not rise."""
        nominal = simulator().run(duration_s=1500.0, dt_s=30.0)
        failed = simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        for i in (0, 1, 3):
            assert failed.telemetry.latest(f"oil_{i}") <= (
                nominal.telemetry.latest(f"oil_{i}") + 0.5
            )


class TestValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            simulator().run(duration_s=0.0)


class TestRunIsolation:
    def test_loop_blockage_does_not_leak_into_next_run(self):
        """A failed loop from one run must not starve the following run."""
        sim = simulator()
        blocked = sim.run(
            duration_s=900.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        repeat = sim.run(duration_s=900.0, dt_s=30.0)
        fresh = simulator().run(duration_s=900.0, dt_s=30.0)
        assert repeat.max_fpga_c == pytest.approx(fresh.max_fpga_c, rel=1e-9)
        assert repeat.telemetry.latest("oil_2") == pytest.approx(
            fresh.telemetry.latest("oil_2"), rel=1e-9
        )

    def test_hydraulic_counters_reported(self):
        result = simulator().run(
            duration_s=900.0,
            events=[loop_blockage_event(300.0, "loop_1")],
            dt_s=30.0,
        )
        counters = result.telemetry.counters
        assert counters["hydraulic_solves"] >= 2  # nominal + post-blockage
        assert counters["hydraulic_scalar_fallbacks"] == 0


def supervised_simulator(n_modules=4):
    from repro.control.supervisor import Supervisor

    return RackSimulator(
        Rack(module_factory=skat, n_modules=n_modules), supervisor=Supervisor()
    )


class TestSupervisedRack:
    def test_nominal_supervised_run_stays_normal(self):
        result = supervised_simulator().run(duration_s=900.0, dt_s=30.0)
        assert result.final_state == "NORMAL"
        assert result.recovery_actions == ()
        assert result.modules_shutdown == ()
        assert result.survived(67.0)

    def test_blocked_loop_module_isolated_not_the_rack(self):
        result = supervised_simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        assert result.modules_shutdown == (2,)
        assert result.final_state != "SAFE_SHUTDOWN"
        # Survivors stay under the reliability ceiling throughout.
        for i in (0, 1, 3):
            assert result.telemetry.maximum(f"junction_{i}") <= 67.0
        # The blocked module is caught at the component trip, far below
        # the unsupervised runaway clamp.
        assert result.telemetry.maximum("junction_2") < 100.0
        assert any(a.kind == "module_shutdown" for a in result.recovery_actions)

    def test_chiller_trip_ends_in_safe_shutdown_not_runaway(self):
        result = supervised_simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.0)],
            dt_s=30.0,
        )
        assert result.final_state == "SAFE_SHUTDOWN"
        # The ladder fought first: throttle and/or chiller fallback came
        # before the controlled loss.
        kinds = [a.kind for a in result.recovery_actions]
        assert "safe_shutdown" in kinds
        assert any(k in kinds for k in ("throttle", "chiller_fallback"))
        # Junctions never ran away uncontrolled.
        assert result.max_fpga_c < 100.0

    def test_partial_chiller_loss_ridden_through(self):
        result = supervised_simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.7)],
            dt_s=30.0,
        )
        assert result.final_state != "SAFE_SHUTDOWN"
        assert result.survived(67.0)

    def test_degraded_pflops_reported(self):
        nominal = supervised_simulator().run(duration_s=600.0, dt_s=30.0)
        degraded = supervised_simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        assert nominal.degraded_pflops is not None
        assert degraded.degraded_pflops is not None
        # One CM dark (and possibly throttled survivors) costs performance.
        assert degraded.degraded_pflops < nominal.degraded_pflops

    def test_back_to_back_faulted_runs_order_independent(self):
        sim = supervised_simulator()
        blockage = [loop_blockage_event(300.0, "loop_2")]
        chiller = [pump_stop_event(600.0, "chiller", 0.0)]
        first_a = sim.run(duration_s=1500.0, events=list(blockage), dt_s=30.0)
        first_b = sim.run(duration_s=1500.0, events=list(chiller), dt_s=30.0)
        # Reverse order on the same simulator object.
        second_b = sim.run(duration_s=1500.0, events=list(chiller), dt_s=30.0)
        second_a = sim.run(duration_s=1500.0, events=list(blockage), dt_s=30.0)
        assert first_a.max_fpga_c == pytest.approx(second_a.max_fpga_c, rel=1e-12)
        assert first_b.max_fpga_c == pytest.approx(second_b.max_fpga_c, rel=1e-12)
        assert first_a.modules_shutdown == second_a.modules_shutdown
        assert first_b.final_state == second_b.final_state
        assert [a.kind for a in first_a.recovery_actions] == [
            a.kind for a in second_a.recovery_actions
        ]

    def test_supervised_telemetry_channels(self):
        result = supervised_simulator().run(duration_s=300.0, dt_s=30.0)
        channels = set(result.telemetry.channels)
        assert {"supervisor_state", "utilization"} <= channels
        assert "hydraulic_retry_attempts" in result.telemetry.counters

    def test_unsupervised_result_has_no_supervisor_fields(self):
        result = simulator().run(duration_s=300.0, dt_s=30.0)
        assert result.final_state is None
        assert result.recovery_actions == ()
        assert result.degraded_pflops is None
