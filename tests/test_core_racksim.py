"""Tests for the rack-level transient simulator."""

import pytest

from repro.core.rack import Rack
from repro.core.racksim import RackSimulator
from repro.core.skat import skat
from repro.reliability.failures import loop_blockage_event, pump_stop_event


def simulator(n_modules=4):
    """A small rack keeps the tests fast; the physics is per-CM anyway."""
    return RackSimulator(Rack(module_factory=skat, n_modules=n_modules))


class TestNominal:
    def test_settles_inside_envelope(self):
        result = simulator().run(duration_s=1800.0, dt_s=30.0)
        assert result.survived(67.0)
        assert result.modules_over_limit == []

    def test_water_holds_setpoint(self):
        result = simulator().run(duration_s=1800.0, dt_s=30.0)
        assert result.max_water_c == pytest.approx(20.0, abs=0.5)

    def test_telemetry_per_module(self):
        result = simulator(n_modules=3).run(duration_s=300.0, dt_s=30.0)
        channels = set(result.telemetry.channels)
        assert {"water_c", "oil_0", "oil_1", "oil_2", "junction_0"} <= channels


class TestChillerTrip:
    def test_common_mode_failure_takes_all_modules(self):
        result = simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.0)],
            dt_s=30.0,
        )
        assert not result.survived(67.0)
        assert result.modules_over_limit == [0, 1, 2, 3]
        assert result.max_water_c > 30.0

    def test_partial_chiller_degradation_survivable(self):
        """Losing one of two compressors (50 % capacity) must not cook the
        rack — the chiller is sized ~1.4x the load."""
        result = simulator().run(
            duration_s=3000.0,
            events=[pump_stop_event(600.0, "chiller", 0.7)],
            dt_s=30.0,
        )
        assert result.survived(67.0)


class TestLoopClosure:
    def test_only_the_closed_loop_suffers(self):
        result = simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        assert 2 in result.modules_over_limit
        assert all(i not in result.modules_over_limit for i in (0, 1, 3))

    def test_survivors_unharmed_by_redistribution(self):
        """The Fig. 5 layout means the surviving CMs see *more* water, not
        less — their junctions must not rise."""
        nominal = simulator().run(duration_s=1500.0, dt_s=30.0)
        failed = simulator().run(
            duration_s=1500.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        for i in (0, 1, 3):
            assert failed.telemetry.latest(f"oil_{i}") <= (
                nominal.telemetry.latest(f"oil_{i}") + 0.5
            )


class TestValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            simulator().run(duration_s=0.0)


class TestRunIsolation:
    def test_loop_blockage_does_not_leak_into_next_run(self):
        """A failed loop from one run must not starve the following run."""
        sim = simulator()
        blocked = sim.run(
            duration_s=900.0,
            events=[loop_blockage_event(300.0, "loop_2")],
            dt_s=30.0,
        )
        repeat = sim.run(duration_s=900.0, dt_s=30.0)
        fresh = simulator().run(duration_s=900.0, dt_s=30.0)
        assert repeat.max_fpga_c == pytest.approx(fresh.max_fpga_c, rel=1e-9)
        assert repeat.telemetry.latest("oil_2") == pytest.approx(
            fresh.telemetry.latest("oil_2"), rel=1e-9
        )

    def test_hydraulic_counters_reported(self):
        result = simulator().run(
            duration_s=900.0,
            events=[loop_blockage_event(300.0, "loop_1")],
            dt_s=30.0,
        )
        counters = result.telemetry.counters
        assert counters["hydraulic_solves"] >= 2  # nominal + post-blockage
        assert counters["hydraulic_scalar_fallbacks"] == 0
