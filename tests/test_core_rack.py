"""Tests for the 47U rack model."""

import pytest

from repro.core.rack import RACK_HEIGHT_U, Rack
from repro.core.skat import skat, skat_plus


class TestSkatRack:
    @pytest.fixture(scope="class")
    def report(self):
        return Rack(module_factory=skat, n_modules=12).solve()

    def test_above_one_pflops(self, report):
        """Conclusions: 12 CMs in a 47U rack exceed 1 PFlops."""
        assert report.above_one_pflops
        assert report.peak_pflops == pytest.approx(1.0, rel=0.10)

    def test_fpgas_stay_at_55c(self, report):
        assert report.max_fpga_c == pytest.approx(55.0, abs=3.0)

    def test_it_power_scale(self, report):
        """12 modules at ~10 kW each."""
        assert 110.0e3 < report.it_power_w < 135.0e3

    def test_chiller_not_overloaded(self, report):
        assert not report.chiller.overloaded

    def test_pue_modest(self, report):
        """Immersion + chilled water: rack-local PUE well under 1.3."""
        assert 1.0 < report.pue < 1.3

    def test_every_module_reported(self, report):
        assert len(report.module_reports) == 12
        assert len(report.water_flows_m3_s) == 12

    def test_water_flows_balanced(self, report):
        flows = report.water_flows_m3_s
        assert max(flows) / min(flows) < 1.15

    def test_efficiency_metric(self, report):
        assert report.gflops_per_watt > 5.0


class TestGeometryLimits:
    def test_12_modules_fit_47u(self):
        Rack(module_factory=skat, n_modules=12)  # 36U: fine

    def test_16_modules_do_not_fit(self):
        with pytest.raises(ValueError, match="exceed"):
            Rack(module_factory=skat, n_modules=16)

    def test_rack_height_constant(self):
        assert RACK_HEIGHT_U == 47.0


class TestSkatPlusRack:
    def test_skat_plus_rack_about_3x(self):
        """Section 4: UltraScale+ triples compute in the same volume."""
        skat_rack = Rack(module_factory=skat, n_modules=12).solve()
        plus_rack = Rack(module_factory=skat_plus, n_modules=12).solve()
        ratio = plus_rack.peak_pflops / skat_rack.peak_pflops
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_skat_plus_rack_thermally_sound(self):
        report = Rack(module_factory=skat_plus, n_modules=12).solve()
        assert report.max_fpga_c < 70.0
