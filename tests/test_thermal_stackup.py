"""Tests for the thermal-stack builder."""

import pytest

from repro.thermal.stackup import ThermalStack, air_chip_stack, skat_chip_stack


class TestStackMechanics:
    def test_total_is_sum(self):
        stack = ThermalStack("test").add("a", 0.1).add("b", 0.2).add("c", 0.3)
        assert stack.total_resistance_k_w == pytest.approx(0.6)

    def test_junction_arithmetic(self):
        stack = ThermalStack("test").add("a", 0.25)
        assert stack.junction_c(100.0, 30.0) == pytest.approx(55.0)

    def test_budget_fractions_sum_to_one(self):
        stack = ThermalStack("test").add("a", 0.1).add("b", 0.3)
        fractions = [f for _, _, f in stack.budget(50.0)]
        assert sum(fractions) == pytest.approx(1.0)

    def test_dominant_layer(self):
        stack = ThermalStack("test").add("small", 0.1).add("big", 0.5)
        assert stack.dominant_layer().name == "big"

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            ThermalStack("empty").total_resistance_k_w

    def test_chaining(self):
        stack = ThermalStack("chain").add("a", 0.1).add("b", 0.1)
        assert len(stack.layers) == 2

    def test_render(self):
        stack = ThermalStack("demo").add("layer", 0.2)
        text = stack.render(50.0, 25.0)
        assert "demo" in text
        assert "layer" in text


class TestSkatStack:
    def test_total_matches_module_resistance(self):
        """The stack rebuilt layer by layer must reproduce the module
        solver's chip resistance."""
        from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat

        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        velocity = skat().section.board_approach_velocity(report.oil_flow_m3_s)
        stack = skat_chip_stack(oil_velocity_m_s=velocity, oil_c=report.oil_cold_c)
        assert stack.total_resistance_k_w == pytest.approx(
            report.immersion.chip_resistance_k_w, rel=0.01
        )

    def test_four_layers(self):
        stack = skat_chip_stack()
        assert len(stack.layers) == 4

    def test_no_layer_dominates_excessively(self):
        """The SKAT stack is balanced: no single layer above 40 % — the
        signature of a well-optimized design."""
        stack = skat_chip_stack()
        fractions = [f for _, _, f in stack.budget(92.0)]
        assert max(fractions) < 0.40


class TestAirStack:
    def test_air_film_dominates(self):
        """In the legacy air cooler the fin film is the bottleneck — the
        physical reason no sink tweak could save air cooling."""
        stack = air_chip_stack()
        assert stack.dominant_layer().name == "fin film to air"

    def test_air_stack_much_larger_than_oil_stack(self):
        assert (
            air_chip_stack().total_resistance_k_w
            > 2.0 * skat_chip_stack().total_resistance_k_w
        )
