"""Tests for the heat-map renderer."""

import pytest

from repro.core.boardnetwork import solve_module_network
from repro.core.heatmap import RAMP, junction_grid, render_heatmap, render_profile
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat


@pytest.fixture(scope="module")
def solved():
    module = skat()
    report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    chips = report.immersion.chips_per_board
    power = sum(c.power_w for c in chips) / len(chips)
    solution = solve_module_network(
        module.section, report.oil_cold_c, report.oil_flow_m3_s, power
    )
    return module.section, solution


class TestGrid:
    def test_shape(self, solved):
        section, solution = solved
        grid = junction_grid(section, solution)
        assert len(grid) == 12
        assert all(len(row) == 8 for row in grid)

    def test_rows_monotone_along_oil_path(self, solved):
        section, solution = solved
        for row in junction_grid(section, solution):
            assert row == sorted(row)


class TestRendering:
    def test_heatmap_structure(self, solved):
        section, solution = solved
        text = render_heatmap(section, solution)
        lines = text.splitlines()
        assert "junction map" in lines[0]
        assert sum(1 for line in lines if line.startswith("board")) == 12

    def test_hot_end_uses_darker_shades(self, solved):
        section, solution = solved
        text = render_heatmap(section, solution)
        board_line = next(l for l in text.splitlines() if l.startswith("board 0"))
        # The hottest ramp character appears, the coolest appears too.
        assert RAMP[-1] in text
        assert board_line.index(RAMP[-1]) > board_line.index(board_line.strip()[0])

    def test_profile_contains_all_positions(self, solved):
        section, solution = solved
        text = render_profile(section, solution)
        for position in range(8):
            assert f"pos {position}" in text
