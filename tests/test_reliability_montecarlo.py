"""Tests for the Monte Carlo availability simulator."""

import pytest

from repro.reliability.availability import Component
from repro.reliability.montecarlo import (
    AvailabilitySimulator,
    McComponent,
    coldplate_cm_model,
    immersion_cm_model,
)


class TestMechanics:
    def test_reproducible_by_seed(self):
        a = AvailabilitySimulator([McComponent(Component("x", 1e-4, 8.0))], seed=1)
        b = AvailabilitySimulator([McComponent(Component("x", 1e-4, 8.0))], seed=1)
        assert a.run(5.0) == b.run(5.0)

    def test_different_seeds_differ(self):
        a = AvailabilitySimulator([McComponent(Component("x", 1e-4, 8.0))], seed=1)
        b = AvailabilitySimulator([McComponent(Component("x", 1e-4, 8.0))], seed=2)
        assert a.run(5.0).failures != b.run(5.0).failures

    def test_perfect_component_never_fails(self):
        sim = AvailabilitySimulator([McComponent(Component("ideal", 0.0, 1.0))])
        result = sim.run(10.0)
        assert result.failures == 0
        assert result.availability == 1.0
        assert result.mtbf_hours is None

    def test_availability_within_bounds(self):
        result = immersion_cm_model().run(10.0)
        assert 0.0 <= result.availability <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AvailabilitySimulator([])

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            immersion_cm_model().run(0.0)


class TestAgainstAnalytic:
    def test_single_component_matches_formula(self):
        """MC availability converges to MTBF/(MTBF+MTTR) for one part."""
        comp = Component("pump", 1.0e-4, 20.0)  # MTBF 1e4 h, A ~ 0.998
        sim = AvailabilitySimulator([McComponent(comp)], seed=7)
        result = sim.run(years=300.0)  # long horizon for tight statistics
        assert result.availability == pytest.approx(comp.availability, abs=0.002)

    def test_failure_count_matches_rate(self):
        comp = Component("pump", 1.0e-4, 20.0)
        sim = AvailabilitySimulator([McComponent(comp)], seed=7)
        years = 300.0
        result = sim.run(years=years)
        expected = 1.0e-4 * years * 8760.0
        assert result.failures == pytest.approx(expected, rel=0.15)


class TestArchitectureComparison:
    def test_immersion_beats_coldplate(self):
        """The Section 2 argument, by direct simulation: hundreds of
        pressure-tight connections plus dry-out stoppages cost the
        closed-loop machine real availability."""
        immersion = immersion_cm_model().run(years=50.0)
        coldplate = coldplate_cm_model().run(years=50.0)
        assert immersion.availability > coldplate.availability
        assert immersion.failures < coldplate.failures
        assert (
            immersion.downtime_hours_per_year < coldplate.downtime_hours_per_year
        )

    def test_stoppage_charge_dominates_coldplate_downtime(self):
        """Removing the dry-out stoppage recovers most of the gap —
        i.e. the stoppages, not the raw hose failures, are the story."""
        base = coldplate_cm_model().run(years=50.0)
        no_stoppage = AvailabilitySimulator(
            components=[
                McComponent(Component("pump", 2.0e-5, 8.0)),
                McComponent(Component("plate HX", 1.0e-6, 24.0)),
                McComponent(Component("hose connection", 5.0e-7, 4.0, count=242)),
                McComponent(Component("leak/humidity sensors", 2.0e-6, 2.0, count=13)),
            ],
            seed=42,
        ).run(years=50.0)
        assert no_stoppage.downtime_hours < 0.5 * base.downtime_hours
