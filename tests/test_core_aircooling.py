"""Tests for the air-cooled CM model against the Section 1 anchors."""

import pytest

from repro.core.skat import rigel2, taygeta, ultrascale_in_air
from repro.devices.power import ThermalRunawayError


class TestRigel2:
    def test_overheat_near_paper(self):
        """Paper: 33.1 C overheat over a 25 C room."""
        report = rigel2().solve(25.0)
        assert report.max_overheat_k == pytest.approx(33.1, rel=0.15)

    def test_module_power_near_paper(self):
        """Paper: 1255 W module power."""
        report = rigel2().solve(25.0)
        assert report.module_power_w == pytest.approx(1255.0, rel=0.10)

    def test_within_reliability_limit(self):
        """Rigel-2 was fine: ~58 C is under the 65-70 C ceiling."""
        report = rigel2().solve(25.0)
        assert report.within_reliability_limit


class TestTaygeta:
    def test_overheat_near_paper(self):
        """Paper: 47.9 C overheat over a 25 C room -> 72.9 C."""
        report = taygeta().solve(25.0)
        assert report.max_overheat_k == pytest.approx(47.9, rel=0.15)

    def test_module_power_near_paper(self):
        """Paper: 1661 W module power."""
        report = taygeta().solve(25.0)
        assert report.module_power_w == pytest.approx(1661.0, rel=0.10)

    def test_exceeds_reliability_limit(self):
        """The paper's point: Taygeta needs a colder room."""
        report = taygeta().solve(25.0)
        assert not report.within_reliability_limit

    def test_colder_room_rescues_taygeta(self):
        """'The CM Taygeta maintenance requires a decrease in environment
        temperature.'"""
        report = taygeta().solve(15.0)
        assert report.max_junction_c < taygeta().solve(25.0).max_junction_c


class TestFamilyTransition:
    def test_v6_to_v7_adds_11_to_15_degrees(self):
        """Paper: 'conversion from ... Virtex-6 to ... Virtex-7 leads to an
        increase of the FPGA maximum temperature by 11...15 C'."""
        delta = taygeta().solve(25.0).max_junction_c - rigel2().solve(25.0).max_junction_c
        assert 10.0 <= delta <= 16.0

    def test_ultrascale_in_air_hits_operating_limit(self):
        """Paper: UltraScale under (even improved) air cooling lands in the
        80...85 C limit range — past the reliability ceiling."""
        report = ultrascale_in_air().solve(25.0)
        assert report.max_junction_c >= 75.0
        assert not report.within_reliability_limit


class TestStructure:
    def test_thermal_gradient_along_airflow(self):
        report = taygeta().solve(25.0)
        assert report.thermal_gradient_k > 0.0
        junctions = [c.junction_c for c in report.chips]
        assert junctions == sorted(junctions)

    def test_eight_chips_reported(self):
        assert len(rigel2().solve(25.0).chips) == 8

    def test_fan_power_positive(self):
        assert rigel2().solve(25.0).fan_power_w > 0.0

    def test_higher_utilization_runs_hotter(self):
        low = rigel2(utilization=0.85).solve(25.0)
        high = rigel2(utilization=0.95).solve(25.0)
        assert high.max_junction_c > low.max_junction_c
