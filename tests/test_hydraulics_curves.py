"""Tests for the pump-curve tooling."""

import pytest

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.hydraulics.curves import (
    DEFAULT_CATALOG,
    CatalogPump,
    fit_pump_curve,
    npsh_available_m,
    select_pump,
    speed_for_duty,
)
from repro.hydraulics.elements import PumpCurve


class TestFit:
    def test_exact_quadratic_recovered(self):
        truth = PumpCurve(shutoff_pressure_pa=45.0e3, max_flow_m3_s=5.0e-3)
        points = [(q, truth.head_pa(q)) for q in (0.0, 1e-3, 2e-3, 3e-3, 4e-3)]
        fit = fit_pump_curve(points)
        assert fit.shutoff_pressure_pa == pytest.approx(45.0e3, rel=1e-6)
        assert fit.max_flow_m3_s == pytest.approx(5.0e-3, rel=1e-6)

    def test_noisy_data_reasonable(self):
        truth = PumpCurve(60.0e3, 6.0e-3)
        points = [
            (q, truth.head_pa(q) * f)
            for q, f in [(0.0, 1.01), (2e-3, 0.99), (4e-3, 1.02), (5e-3, 0.98)]
        ]
        fit = fit_pump_curve(points)
        assert fit.shutoff_pressure_pa == pytest.approx(60.0e3, rel=0.05)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_pump_curve([(1e-3, 1e4)])

    def test_rejects_rising_curve(self):
        with pytest.raises(ValueError):
            fit_pump_curve([(0.0, 1.0e3), (1e-3, 5.0e3), (2e-3, 9.0e3)])


class TestSpeedForDuty:
    def test_duty_on_full_speed_curve(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        q = 2.0e-3
        assert speed_for_duty(curve, q, curve.head_pa(q)) == pytest.approx(1.0)

    def test_partial_duty_partial_speed(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        speed = speed_for_duty(curve, 1.0e-3, 10.0e3)
        assert 0.0 < speed < 1.0
        # Verify against the affinity laws directly.
        head = speed ** 2 * curve.head_pa(1.0e-3 / speed)
        assert head == pytest.approx(10.0e3, rel=1e-9)

    def test_impossible_duty_rejected(self):
        curve = PumpCurve(45.0e3, 5.0e-3)
        with pytest.raises(ValueError, match="rated speed"):
            speed_for_duty(curve, 4.0e-3, 50.0e3)


class TestNpsh:
    def test_flooded_suction_oil_generous(self):
        npsh = npsh_available_m(MINERAL_OIL_MD45, 30.0, static_head_m=0.3, suction_loss_pa=2.0e3)
        assert npsh > 10.0

    def test_hot_water_reduces_margin(self):
        cold = npsh_available_m(WATER, 20.0, 0.5, 2.0e3)
        hot = npsh_available_m(WATER, 90.0, 0.5, 2.0e3)
        assert hot < cold

    def test_suction_losses_reduce_margin(self):
        low = npsh_available_m(MINERAL_OIL_MD45, 30.0, 0.3, 1.0e3)
        high = npsh_available_m(MINERAL_OIL_MD45, 30.0, 0.3, 20.0e3)
        assert high < low


class TestSelection:
    def test_selects_cheapest_qualifying(self):
        pump = select_pump(DEFAULT_CATALOG, 2.0e-3, 20.0e3, npsh_available_m_value=5.0)
        assert pump.model == "G-40"

    def test_oil_rating_filter(self):
        # The cheap water pump qualifies hydraulically but not chemically.
        water_ok = select_pump(
            DEFAULT_CATALOG, 2.0e-3, 20.0e3, 5.0, require_oil_rating=False
        )
        oil_ok = select_pump(
            DEFAULT_CATALOG, 2.0e-3, 20.0e3, 5.0, require_oil_rating=True
        )
        assert water_ok.model == "W-50 (water only)"
        assert oil_ok.oil_rated

    def test_npsh_filter(self):
        # With almost no suction head only the immersed pump qualifies.
        pump = select_pump(DEFAULT_CATALOG, 2.0e-3, 20.0e3, npsh_available_m_value=1.5)
        assert pump.model == "G-60i"

    def test_no_qualifying_pump(self):
        with pytest.raises(ValueError, match="no catalog pump"):
            select_pump(DEFAULT_CATALOG, 6.0e-3, 80.0e3, 5.0)

    def test_empty_catalog(self):
        with pytest.raises(ValueError, match="empty"):
            select_pump([], 1e-3, 1e4, 5.0)
