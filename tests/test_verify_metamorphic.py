"""Metamorphic relations between pairs of facility runs.

No hand-computed expected values anywhere: each relation derives run B
from run A (relabel racks, scale load and plant together, round-trip
units) and checks that the outputs transform the way physics says they
must. Violations mean either a simulator bug or a broken symmetry.
"""

import pytest

from repro.reliability.failures import loop_blockage_event, pump_stop_event
from repro.verify import (
    kilowatts_from_watts,
    relation_load_scaling,
    relation_rack_permutation,
    relation_unit_round_trip,
    watts_from_kilowatts,
)


class TestUnitRoundTrip:
    def test_exact_for_integral_watt_values(self):
        values = [0.0, 150.0, 1.0e3, 7.25e5, 1.8e6]
        assert relation_unit_round_trip(values) == []

    def test_detects_a_value_that_does_not_round_trip(self):
        # 157 * 0.1 is not representable: W -> kW -> W lands one ulp off.
        value = 15.700000000000001
        assert watts_from_kilowatts(kilowatts_from_watts(value)) != value
        violations = relation_unit_round_trip([value])
        assert len(violations) == 1
        assert violations[0].invariant == "unit_round_trip"

    def test_conversions_are_inverse_scalings(self):
        assert watts_from_kilowatts(2.5) == 2500.0
        assert kilowatts_from_watts(2500.0) == 2.5


class TestRackPermutation:
    def test_identity_permutation_holds(self):
        assert relation_rack_permutation([0, 1]) == []

    def test_swap_holds_with_forwarded_events(self):
        events = [
            pump_stop_event(60.0, "rack_0/chiller", 0.2),
            loop_blockage_event(100.0, "rack_1/loop_0", 0.0),
        ]
        assert relation_rack_permutation([1, 0], events=events) == []

    def test_three_cycle_holds_unsupervised(self):
        assert relation_rack_permutation([2, 0, 1], supervised=False) == []

    def test_invalid_permutation_is_rejected(self):
        with pytest.raises(ValueError):
            relation_rack_permutation([0, 0])

    def test_non_forwarded_event_targets_are_rejected(self):
        with pytest.raises(ValueError):
            relation_rack_permutation(
                [1, 0], events=[pump_stop_event(60.0, "plant", 0.2)]
            )


class TestLoadScaling:
    def test_doubling_racks_and_plant_preserves_per_rack_physics(self):
        assert relation_load_scaling(2) == []

    def test_scaling_holds_with_forwarded_events(self):
        events = [pump_stop_event(80.0, "rack_0/chiller", 0.3)]
        assert relation_load_scaling(2, events=events) == []

    def test_tripling_holds_unsupervised(self):
        assert relation_load_scaling(3, supervised=False) == []

    def test_scale_below_two_is_rejected(self):
        with pytest.raises(ValueError):
            relation_load_scaling(1)
