"""Statistical-regression goldens for the Monte Carlo layer.

Unlike the value-tolerance goldens of ``test_goldens.py``, these pin
**bytes**: a seeded Monte Carlo report is a deterministic function of its
spec, so the committed export must match byte-for-byte — on every
backend. Two committed files own this contract:

- ``goldens/montecarlo_module.json`` — module-level spec
- ``goldens/montecarlo_facility.json`` — facility-level spec

A second layer checks *statistical* robustness in the ``test_goldens.py``
value-tolerance style: re-sampling with a different seed (a fresh sample
matrix over the same distributions) must reproduce the golden's central
quantiles within 5 % — the report's value is its statistics, not the
luck of one matrix.

Regenerate after an *intentional* physics or estimator change with::

    PYTHONPATH=src python tests/test_montecarlo_goldens.py --regen

and review the JSON diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.montecarlo import McSpec, make_spec, run_montecarlo

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Small-but-real specs: enough samples for stable medians, small enough
#: that three-backend byte comparisons stay test-suite fast.
GOLDEN_SPECS = {
    "montecarlo_module": lambda: make_spec("module", samples=300, seed=7),
    "montecarlo_facility": lambda: make_spec("facility", samples=90, seed=7),
}

#: Quantile keys that must survive a re-seeded sample matrix within 5 %.
RESEED_RTOL = 0.05


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _run(spec: McSpec, backend: str = "serial") -> str:
    return run_montecarlo(spec, backend=backend, batch_size=8).to_json()


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_golden_bytes(name):
    path = _golden_path(name)
    assert path.exists(), (
        f"golden {path} missing — regenerate with "
        "`PYTHONPATH=src python tests/test_montecarlo_goldens.py --regen`"
    )
    assert _run(GOLDEN_SPECS[name]()) + "\n" == path.read_text()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_module_golden_byte_identical_on_every_backend(backend):
    golden = _golden_path("montecarlo_module").read_text()
    assert _run(GOLDEN_SPECS["montecarlo_module"](), backend) + "\n" == golden


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_facility_golden_byte_identical_on_every_backend(backend):
    golden = _golden_path("montecarlo_facility").read_text()
    assert _run(GOLDEN_SPECS["montecarlo_facility"](), backend) + "\n" == golden


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_reseeded_quantiles_within_five_percent(name):
    """A fresh sample matrix (seed + 1) over the same tolerance
    distributions reproduces the golden's central quantiles within 5 %:
    the committed statistics describe the model, not one lucky matrix."""
    golden = json.loads(_golden_path(name).read_text())
    base = GOLDEN_SPECS[name]()
    reseeded = McSpec(
        level=base.level,
        n_base=base.n_base,
        seed=base.seed + 1,
        knobs=base.knobs,
        config=base.config,
    )
    report = run_montecarlo(reseeded, batch_size=8).to_dict()
    assert report["spec_digest"] != golden["spec_digest"]
    for output, bands in golden["quantiles"].items():
        if output.startswith("overheat_margin"):
            # a difference-to-limit: its small magnitude inflates relative
            # drift; its information content is already covered by the
            # absolute temperature output it derives from
            continue
        for key in ("p50", "mean"):
            assert report["quantiles"][output][key] == pytest.approx(
                bands[key], rel=RESEED_RTOL
            ), f"{name}.{output}.{key} drifted more than 5% under reseeding"


def test_spec_digest_sensitive_to_every_field():
    base = GOLDEN_SPECS["montecarlo_module"]()
    digests = {base.digest()}
    for variant in (
        McSpec(base.level, base.n_base + 1, base.seed, base.knobs, base.config),
        McSpec(base.level, base.n_base, base.seed + 1, base.knobs, base.config),
        McSpec(base.level, base.n_base, base.seed, base.knobs[:-1], base.config),
        McSpec(
            "rack",
            base.n_base,
            base.seed,
            make_spec("rack").knobs,
            make_spec("rack").config,
        ),
    ):
        digests.add(variant.digest())
    assert len(digests) == 5, "spec digest must separate every spec field"


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, build in sorted(GOLDEN_SPECS.items()):
        path = _golden_path(name)
        path.write_text(_run(build()) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
