"""Tests for the workload-kernel library."""

import pytest

from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.performance.kernels import (
    fft_butterfly_stage,
    fir_filter,
    kernel_suite,
    matrix_tile,
    md_force_pipeline,
    spin_glass_update,
)
from repro.performance.tasks import map_graph_to_field


class TestFir:
    def test_structure(self):
        graph = fir_filter(taps=8)
        # 8 multipliers + 7 adders in a balanced tree.
        assert len(graph) == 15
        assert graph.depth() == 1 + 3  # mul + log2(8) adder levels

    def test_unbalanced_tap_count(self):
        graph = fir_filter(taps=5)
        assert len(graph) == 9  # 5 muls + 4 adds

    def test_rejects_single_tap(self):
        with pytest.raises(ValueError):
            fir_filter(taps=1)


class TestOtherKernels:
    def test_fft_stage_size(self):
        graph = fft_butterfly_stage(butterflies=4)
        # 10 operations per butterfly.
        assert len(graph) == 40

    def test_matrix_tile_size(self):
        graph = matrix_tile(size=3)
        assert len(graph) == 27  # size^3 MACs
        assert graph.depth() == 3  # the dot-product chain

    def test_md_pipeline_has_division(self):
        graph = md_force_pipeline(pairs=2)
        kinds = {op.kind for op in graph.operations}
        assert "div" in kinds
        assert len(graph) == 2 * 11

    def test_spin_glass_is_mac_and_compare(self):
        graph = spin_glass_update(spins=4)
        kinds = {op.kind for op in graph.operations}
        assert kinds == {"mac", "cmp"}
        assert graph.depth() == 7  # 6 couplings + compare


class TestSuite:
    def test_all_kernels_present(self):
        suite = kernel_suite()
        assert set(suite) == {
            "fir16",
            "fft_stage8",
            "gemm4x4",
            "md_forces4",
            "spin_glass8",
        }

    def test_every_kernel_maps_to_skat_board(self):
        for graph in kernel_suite().values():
            mapping = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=8)
            assert mapping.replicas >= 1
            assert mapping.throughput_gflops > 100.0

    def test_throughput_ranking_follows_cost(self):
        """Cheaper ops per graph -> more replicas -> throughput ordering
        is cost-per-op ordering."""
        suite = kernel_suite()
        fir = map_graph_to_field(suite["fir16"], KINTEX_ULTRASCALE_KU095, 8)
        md = map_graph_to_field(suite["md_forces4"], KINTEX_ULTRASCALE_KU095, 8)
        fir_cost = suite["fir16"].total_cost_cells / len(suite["fir16"])
        md_cost = suite["md_forces4"].total_cost_cells / len(suite["md_forces4"])
        assert fir_cost < md_cost
        assert fir.throughput_gflops > md.throughput_gflops
