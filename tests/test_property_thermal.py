"""Hypothesis property tests for the thermal substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.network import ThermalNetwork
from repro.thermal.steady import boundary_heat_flows, solve_steady_state


@st.composite
def star_networks(draw):
    """A boundary node with N heated nodes hanging off it through random
    resistances — the simplest nontrivial topology class."""
    n = draw(st.integers(min_value=1, max_value=8))
    heats = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0), min_size=n, max_size=n
        )
    )
    resistances = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=5.0), min_size=n, max_size=n
        )
    )
    ambient = draw(st.floats(min_value=-10.0, max_value=50.0))
    net = ThermalNetwork()
    net.add_boundary("ambient", ambient)
    for i, (q, r) in enumerate(zip(heats, resistances)):
        net.add_node(f"n{i}", heat_w=q)
        net.add_resistance(f"n{i}", "ambient", r)
    return net, ambient


@given(data=star_networks())
def test_energy_conservation(data):
    net, _ = data
    temps = solve_steady_state(net)
    flows = boundary_heat_flows(net, temps)
    assert abs(sum(flows.values()) - net.total_heat_w()) <= 1e-6 * max(
        net.total_heat_w(), 1.0
    )


@given(data=star_networks())
def test_heated_nodes_never_below_ambient(data):
    net, ambient = data
    temps = solve_steady_state(net)
    for name in net.free_nodes:
        assert temps[name] >= ambient - 1e-9


@given(data=star_networks())
def test_superposition_of_heat(data):
    """Doubling every heat input doubles every temperature rise (the
    network is linear)."""
    net, ambient = data
    base = solve_steady_state(net)
    for name in net.free_nodes:
        net.set_heat(name, 2.0 * net.heat(name))
    doubled = solve_steady_state(net)
    for name in net.free_nodes:
        rise = base[name] - ambient
        rise2 = doubled[name] - ambient
        assert abs(rise2 - 2.0 * rise) <= 1e-6 * max(abs(rise), 1.0)


@given(
    chain_length=st.integers(min_value=1, max_value=10),
    heat=st.floats(min_value=1.0, max_value=150.0),
    resistance=st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=50)
def test_series_chain_total_rise(chain_length, heat, resistance):
    """A series chain's source temperature equals ambient plus heat times
    the summed resistance, regardless of length."""
    net = ThermalNetwork()
    net.add_boundary("ambient", 20.0)
    previous = "ambient"
    for i in range(chain_length):
        net.add_node(f"n{i}")
        net.add_resistance(f"n{i}", previous, resistance)
        previous = f"n{i}"
    net.set_heat(previous, heat)
    temps = solve_steady_state(net)
    expected = 20.0 + heat * resistance * chain_length
    assert abs(temps[previous] - expected) <= 1e-6 * expected
