"""Tests for the hydraulic network solver."""

import pytest

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.hydraulics.elements import (
    HeatExchangerPassage,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError
from repro.hydraulics.solver import operating_point, solve_network


def pump_loop(pipe=None, pump=None):
    net = HydraulicNetwork()
    net.add_junction("suction")
    net.add_junction("discharge")
    net.set_reference("suction")
    net.add_branch("pump", "suction", "discharge", pump or Pump(PumpCurve(50.0e3, 0.01)))
    net.add_branch("pipe", "discharge", "suction", pipe or Pipe(5.0, 0.025))
    return net


class TestSingleLoop:
    def test_mass_conservation(self):
        result = solve_network(pump_loop(), WATER, 25.0)
        assert result.flow("pump") == pytest.approx(result.flow("pipe"), rel=1e-9)
        assert result.residual_m3_s < 1e-9

    def test_operating_point_on_pump_curve(self):
        net = pump_loop()
        result = solve_network(net, WATER, 25.0)
        q = result.flow("pump")
        pump = net.branch("pump").element
        head = pump.head_pa(q)
        dp = result.pressure_drop_pa("discharge", "suction")
        assert head == pytest.approx(dp, rel=1e-6)

    def test_flow_positive_in_pump_direction(self):
        result = solve_network(pump_loop(), WATER, 25.0)
        assert result.flow("pump") > 0

    def test_more_resistance_less_flow(self):
        open_pipe = solve_network(pump_loop(Pipe(5.0, 0.025)), WATER, 25.0)
        narrow = solve_network(pump_loop(Pipe(5.0, 0.012)), WATER, 25.0)
        assert narrow.flow("pump") < open_pipe.flow("pump")

    def test_viscous_oil_reduces_flow(self):
        water = solve_network(pump_loop(Pipe(5.0, 0.012)), WATER, 25.0)
        oil = solve_network(pump_loop(Pipe(5.0, 0.012)), MINERAL_OIL_MD45, 25.0)
        assert oil.flow("pump") < water.flow("pump")


class TestParallelBranches:
    def test_equal_branches_split_evenly(self):
        net = HydraulicNetwork()
        for j in ("in", "out"):
            net.add_junction(j)
        net.set_reference("in")
        net.add_branch("pump", "in", "out", Pump(PumpCurve(50.0e3, 0.02)))
        net.add_branch("loop_a", "out", "in", HeatExchangerPassage(0.0, 1.0e10))
        net.add_branch("loop_b", "out", "in", HeatExchangerPassage(0.0, 1.0e10))
        result = solve_network(net, WATER, 25.0)
        assert result.flow("loop_a") == pytest.approx(result.flow("loop_b"), rel=1e-6)
        assert result.flow("pump") == pytest.approx(
            result.flow("loop_a") + result.flow("loop_b"), rel=1e-9
        )

    def test_unequal_branches_favor_lower_resistance(self):
        net = HydraulicNetwork()
        for j in ("in", "out"):
            net.add_junction(j)
        net.set_reference("in")
        net.add_branch("pump", "in", "out", Pump(PumpCurve(50.0e3, 0.02)))
        net.add_branch("easy", "out", "in", HeatExchangerPassage(0.0, 1.0e9))
        net.add_branch("hard", "out", "in", HeatExchangerPassage(0.0, 4.0e9))
        result = solve_network(net, WATER, 25.0)
        # Quadratic resistances: flow ratio = sqrt(resistance ratio) = 2.
        assert result.flow("easy") / result.flow("hard") == pytest.approx(2.0, rel=0.01)

    def test_closed_valve_diverts_all_flow(self):
        net = HydraulicNetwork()
        for j in ("in", "out"):
            net.add_junction(j)
        net.set_reference("in")
        net.add_branch("pump", "in", "out", Pump(PumpCurve(50.0e3, 0.02)))
        net.add_branch("a", "out", "in", HeatExchangerPassage(0.0, 1.0e10))
        net.add_branch(
            "b_closed", "out", "in", Valve(k_open=2.0, diameter_m=0.02, opening=0.0)
        )
        result = solve_network(net, WATER, 25.0)
        assert result.flow("b_closed") == 0.0
        assert result.flow("a") == pytest.approx(result.flow("pump"), rel=1e-9)


class TestStoppedPump:
    def test_stopped_pump_near_zero_flow(self):
        net = pump_loop(pump=Pump(PumpCurve(50.0e3, 0.01), speed_fraction=0.0))
        result = solve_network(net, WATER, 25.0)
        assert abs(result.flow("pump")) < 1e-6


class TestInjections:
    def test_through_flow(self):
        net = HydraulicNetwork()
        net.add_junction("inlet", injection_m3_s=1.0e-3)
        net.add_junction("outlet", injection_m3_s=-1.0e-3)
        net.set_reference("outlet")
        net.add_branch("pipe", "inlet", "outlet", Pipe(3.0, 0.02))
        result = solve_network(net, WATER, 25.0)
        assert result.flow("pipe") == pytest.approx(1.0e-3, rel=1e-9)
        # Pressure falls along the flow.
        assert result.pressures_pa["inlet"] > result.pressures_pa["outlet"]


class TestOperatingPoint:
    def test_intersection(self):
        curve = PumpCurve(50.0e3, 0.01)
        r_quad = 1.0e9

        def system(q):
            return r_quad * q * q

        q = operating_point(curve, system)
        assert curve.head_pa(q) == pytest.approx(system(q), rel=1e-9)

    def test_stopped_speed_gives_zero(self):
        assert operating_point(PumpCurve(50.0e3, 0.01), lambda q: q, 0.0) == 0.0

    def test_reduced_speed_reduces_flow(self):
        curve = PumpCurve(50.0e3, 0.01)

        def system(q):
            return 1.0e9 * q * q

        full = operating_point(curve, system, 1.0)
        half = operating_point(curve, system, 0.5)
        assert 0.0 < half < full

    def test_free_delivery_at_runout(self):
        curve = PumpCurve(50.0e3, 0.01)
        q = operating_point(curve, lambda q: 0.0)
        assert q == pytest.approx(0.01)


class TestErrors:
    def test_invalid_network_raises(self):
        net = HydraulicNetwork()
        net.add_junction("a")
        with pytest.raises(HydraulicsError):
            solve_network(net, WATER, 25.0)
