"""Full-stack tests of the stdlib asyncio HTTP bridge on a real socket.

A live server on an ephemeral port, raw-socket HTTP/1.1 clients written
with ``asyncio.open_connection`` — no threads, no external HTTP client
needed. Covers round-trips, protocol error mapping (400/404/413) and
the one-request-per-connection contract.
"""

import asyncio
import json

from repro.obs import MetricsRegistry
from repro.service import SimulationGateway, create_app
from repro.service.http import MAX_BODY_BYTES, serve
from repro.service.requests import evaluate_request, normalize_request
from repro.verify.fuzz import canonical_json

MODULE = {"level": "module"}


async def raw_roundtrip(port, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    return response


def http_bytes(method, path, body=b""):
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def parse(response: bytes):
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


def with_server(testcase):
    """Run ``testcase(port)`` against a live gateway server."""

    async def go():
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        server = await serve(create_app(gateway), port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await testcase(port)
        finally:
            server.close()
            await server.wait_closed()
            await gateway.close()

    return asyncio.run(go())


def test_simulate_over_the_wire_matches_oracle():
    async def testcase(port):
        body = json.dumps(MODULE).encode("utf-8")
        return await raw_roundtrip(
            port, http_bytes("POST", "/simulate", body)
        )

    status, body = parse(with_server(testcase))
    assert status == 200
    envelope = json.loads(body)
    expected = evaluate_request(normalize_request(MODULE))
    assert canonical_json(envelope["result"]) == canonical_json(expected)


def test_concurrent_wire_requests_share_one_solve():
    registry = MetricsRegistry()

    async def go():
        gateway = SimulationGateway(registry=registry, max_batch_size=1)
        server = await serve(create_app(gateway), port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            payload = json.dumps(MODULE).encode("utf-8")
            responses = await asyncio.gather(
                *(
                    raw_roundtrip(port, http_bytes("POST", "/simulate", payload))
                    for _ in range(5)
                )
            )
        finally:
            server.close()
            await server.wait_closed()
            await gateway.close()
        return responses

    responses = asyncio.run(go())
    bodies = [parse(r) for r in responses]
    assert all(status == 200 for status, _ in bodies)
    results = {canonical_json(json.loads(b)["result"]) for _, b in bodies}
    assert len(results) == 1
    values = registry.as_dict()["counters"]
    assert values["service_solves_total"] == 1.0
    assert values["service_cache_hits_total"] == 4.0


def test_healthz_and_metrics_over_the_wire():
    async def testcase(port):
        health = await raw_roundtrip(port, http_bytes("GET", "/healthz"))
        metrics = await raw_roundtrip(port, http_bytes("GET", "/metrics"))
        return health, metrics

    health, metrics = with_server(testcase)
    status, body = parse(health)
    assert status == 200 and json.loads(body)["status"] == "ok"
    assert parse(metrics)[0] == 200


def test_unknown_path_is_404_and_bad_json_is_400():
    async def testcase(port):
        missing = await raw_roundtrip(port, http_bytes("GET", "/nope"))
        malformed = await raw_roundtrip(
            port, http_bytes("POST", "/simulate", b"{broken")
        )
        return missing, malformed

    missing, malformed = with_server(testcase)
    assert parse(missing)[0] == 404
    assert parse(malformed)[0] == 400


def test_malformed_request_line_is_400():
    async def testcase(port):
        return await raw_roundtrip(port, b"GARBAGE\r\n\r\n")

    assert parse(with_server(testcase))[0] == 400


def test_oversized_body_is_413():
    async def testcase(port):
        head = (
            f"POST /simulate HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        ).encode("latin-1")
        return await raw_roundtrip(port, head)

    assert parse(with_server(testcase))[0] == 413


def test_bad_content_length_is_400():
    async def testcase(port):
        raw = b"POST /simulate HTTP/1.1\r\nContent-Length: elephants\r\n\r\n"
        return await raw_roundtrip(port, raw)

    assert parse(with_server(testcase))[0] == 400


def test_truncated_body_is_400():
    async def testcase(port):
        raw = (
            b"POST /simulate HTTP/1.1\r\nContent-Length: 50\r\n\r\n{short"
        )
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(raw)
        await writer.drain()
        writer.write_eof()  # half-close: the body will never arrive
        response = await reader.read(-1)
        writer.close()
        await writer.wait_closed()
        return response

    assert parse(with_server(testcase))[0] == 400


def test_connection_closes_after_one_response():
    async def testcase(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(http_bytes("GET", "/healthz"))
        writer.write(http_bytes("GET", "/healthz"))  # second request ignored
        await writer.drain()
        response = await reader.read(-1)  # EOF: the server hung up
        writer.close()
        await writer.wait_closed()
        return response

    response = with_server(testcase)
    assert response.count(b"HTTP/1.1 200") == 1
    assert b"connection: close" in response
