"""Tests for the paper-vs-measured comparison tables."""

import pytest

from repro.reporting import ComparisonTable


class TestRows:
    def test_rel_tol_pass_and_fail(self):
        table = ComparisonTable("t")
        table.add("good", 100.0, 105.0, rel_tol=0.10)
        table.add("bad", 100.0, 120.0, rel_tol=0.10)
        assert table.rows[0].ok
        assert not table.rows[1].ok
        assert not table.all_ok

    def test_band_rows(self):
        table = ComparisonTable("t")
        table.add("in band", 13.0, 12.0, lo=11.0, hi=15.0)
        table.add("below", 13.0, 9.0, lo=11.0, hi=15.0)
        table.add("open high", 1.0, 5.0, lo=1.0)
        assert table.rows[0].ok
        assert not table.rows[1].ok
        assert table.rows[2].ok

    def test_bool_rows(self):
        table = ComparisonTable("t")
        table.add_bool("claim", "stated", True)
        table.add_bool("claim2", "stated", False)
        assert table.rows[0].measured == "holds"
        assert table.rows[1].measured == "FAILS"

    def test_requires_tolerance_spec(self):
        table = ComparisonTable("t")
        with pytest.raises(ValueError):
            table.add("x", 1.0, 1.0)

    def test_failures_listing(self):
        table = ComparisonTable("t")
        table.add("ok", 1.0, 1.0, rel_tol=0.1)
        table.add("nope", 1.0, 2.0, rel_tol=0.1)
        assert [r.claim for r in table.failures()] == ["nope"]

    def test_empty_table_all_ok_raises(self):
        with pytest.raises(ValueError):
            ComparisonTable("t").all_ok


class TestRender:
    def test_render_contains_all_rows(self):
        table = ComparisonTable("demo")
        table.add("alpha", 10.0, 10.5, rel_tol=0.1)
        table.add_bool("beta", "stated", True)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "beta" in text
        assert "yes" in text

    def test_render_marks_failures(self):
        table = ComparisonTable("demo")
        table.add("broken", 10.0, 99.0, rel_tol=0.01)
        assert "NO" in table.render()
