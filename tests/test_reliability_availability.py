"""Tests for the reliability block diagrams."""

import pytest

from repro.reliability.availability import (
    Component,
    SystemReliability,
    parallel_availability,
    series_availability,
)


class TestComponent:
    def test_availability(self):
        # MTBF 1e5 h, MTTR 10 h -> A ~ 0.9999.
        comp = Component("pump", 1.0e-5, 10.0)
        assert comp.availability == pytest.approx(1.0e5 / (1.0e5 + 10.0))

    def test_perfect_component(self):
        comp = Component("ideal", 0.0, 1.0)
        assert comp.availability == 1.0

    def test_count_multiplies_exposure(self):
        single = Component("hose", 1.0e-6, 4.0, count=1)
        many = Component("hose", 1.0e-6, 4.0, count=50)
        assert many.series_availability == pytest.approx(single.availability ** 50)
        assert many.total_failure_rate_per_hour == pytest.approx(50.0e-6)

    def test_rejects_bad_repair(self):
        with pytest.raises(ValueError):
            Component("x", 1e-6, 0.0)


class TestComposition:
    def test_series_product(self):
        assert series_availability([0.9, 0.9]) == pytest.approx(0.81)

    def test_parallel_complement_product(self):
        assert parallel_availability([0.9, 0.9]) == pytest.approx(0.99)

    def test_parallel_beats_series(self):
        avail = [0.95, 0.95]
        assert parallel_availability(avail) > series_availability(avail)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            series_availability([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parallel_availability([1.5])


class TestSystemReliability:
    def _immersion_cm(self):
        system = SystemReliability("immersion CM")
        system.add(Component("pump", 2.0e-5, 8.0))
        system.add(Component("plate HX", 1.0e-6, 24.0))
        system.add(Component("hose connection", 5.0e-7, 4.0, count=4))
        return system

    def _coldplate_cm(self):
        system = SystemReliability("cold-plate CM")
        system.add(Component("pump", 2.0e-5, 8.0))
        system.add(Component("plate HX", 1.0e-6, 24.0))
        # Per-chip plates: ~200 pressure-tight connections.
        system.add(Component("hose connection", 5.0e-7, 4.0, count=200))
        system.add(Component("leak sensor loop", 2.0e-6, 6.0, count=13))
        return system

    def test_immersion_beats_coldplate(self):
        """The paper's architecture argument quantified: fewer pressure-
        tight connections means higher availability and MTBF."""
        immersion = self._immersion_cm()
        coldplate = self._coldplate_cm()
        assert immersion.availability() > coldplate.availability()
        assert immersion.mtbf_hours() > coldplate.mtbf_hours()
        assert immersion.component_count < coldplate.component_count

    def test_redundant_pumps_improve_availability(self):
        single = SystemReliability("single pump")
        single.add(Component("pump", 2.0e-5, 8.0))
        dual = SystemReliability("dual pumps")
        dual.add_redundant(
            [Component("pump A", 2.0e-5, 8.0), Component("pump B", 2.0e-5, 8.0)]
        )
        assert dual.availability() > single.availability()

    def test_downtime_hours(self):
        system = self._immersion_cm()
        downtime = system.expected_downtime_hours_per_year()
        assert downtime == pytest.approx((1.0 - system.availability()) * 8760.0)

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            SystemReliability("empty").availability()

    def test_redundant_group_needs_two(self):
        system = SystemReliability("x")
        with pytest.raises(ValueError):
            system.add_redundant([Component("only", 1e-6, 1.0)])
