"""Tests for the effectiveness-NTU relations."""

import math

import pytest

from repro.heatexchange.entu import (
    FlowArrangement,
    effectiveness,
    effectiveness_counterflow,
    effectiveness_crossflow_both_unmixed,
    effectiveness_parallel,
    ntu_counterflow_from_effectiveness,
)


class TestCounterflow:
    def test_zero_ntu_zero_effectiveness(self):
        assert effectiveness_counterflow(0.0, 0.5) == 0.0

    def test_cr_zero_exponential(self):
        assert effectiveness_counterflow(1.0, 0.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_cr_one_closed_form(self):
        assert effectiveness_counterflow(2.0, 1.0) == pytest.approx(2.0 / 3.0)

    def test_cr_one_limit_continuous(self):
        near = effectiveness_counterflow(2.0, 1.0 - 1e-9)
        exact = effectiveness_counterflow(2.0, 1.0)
        assert near == pytest.approx(exact, rel=1e-6)

    def test_monotone_in_ntu(self):
        values = [effectiveness_counterflow(ntu, 0.7) for ntu in (0.1, 0.5, 1.0, 3.0, 10.0)]
        assert values == sorted(values)

    def test_approaches_unity(self):
        assert effectiveness_counterflow(50.0, 0.7) > 0.99

    def test_bounded_by_unity(self):
        for ntu in (0.5, 2.0, 20.0):
            for cr in (0.0, 0.3, 0.7, 1.0):
                assert 0.0 <= effectiveness_counterflow(ntu, cr) <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            effectiveness_counterflow(-1.0, 0.5)
        with pytest.raises(ValueError):
            effectiveness_counterflow(1.0, 1.5)


class TestParallel:
    def test_asymptote_below_counterflow(self):
        # Parallel flow saturates at 1/(1+Cr).
        assert effectiveness_parallel(50.0, 1.0) == pytest.approx(0.5, rel=1e-6)
        assert effectiveness_counterflow(50.0, 1.0) > effectiveness_parallel(50.0, 1.0)

    def test_counterflow_dominates_at_all_ntu(self):
        for ntu in (0.2, 1.0, 3.0):
            assert effectiveness_counterflow(ntu, 0.8) >= effectiveness_parallel(ntu, 0.8)


class TestCrossflow:
    def test_between_parallel_and_counterflow(self):
        ntu, cr = 2.0, 0.75
        cross = effectiveness_crossflow_both_unmixed(ntu, cr)
        assert effectiveness_parallel(ntu, cr) < cross < effectiveness_counterflow(ntu, cr)

    def test_cr_zero_matches_exponential(self):
        assert effectiveness_crossflow_both_unmixed(1.5, 0.0) == pytest.approx(
            1.0 - math.exp(-1.5)
        )


class TestDispatch:
    def test_all_arrangements(self):
        for arrangement in FlowArrangement:
            value = effectiveness(1.0, 0.5, arrangement)
            assert 0.0 < value < 1.0

    def test_counterflow_dispatch_matches(self):
        assert effectiveness(1.3, 0.6, FlowArrangement.COUNTERFLOW) == pytest.approx(
            effectiveness_counterflow(1.3, 0.6)
        )


class TestInverse:
    def test_roundtrip(self):
        for cr in (0.0, 0.4, 0.8, 1.0):
            for ntu in (0.2, 1.0, 3.0):
                eps = effectiveness_counterflow(ntu, cr)
                assert ntu_counterflow_from_effectiveness(eps, cr) == pytest.approx(
                    ntu, rel=1e-9
                )

    def test_zero(self):
        assert ntu_counterflow_from_effectiveness(0.0, 0.5) == 0.0

    def test_rejects_unity(self):
        with pytest.raises(ValueError):
            ntu_counterflow_from_effectiveness(1.0, 0.5)
