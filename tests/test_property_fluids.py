"""Hypothesis property tests for the fluid library."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluids.library import AIR, GLYCOL30, MINERAL_OIL_MD45, WATER, all_fluids

#: Temperature range where every library fluid is valid.
COMMON_RANGE = st.floats(min_value=1.0, max_value=95.0)


@given(temperature=COMMON_RANGE)
def test_all_properties_positive(temperature):
    for fluid in all_fluids():
        assert fluid.density(temperature) > 0
        assert fluid.specific_heat(temperature) > 0
        assert fluid.conductivity(temperature) > 0
        assert fluid.viscosity(temperature) > 0


@given(t_low=COMMON_RANGE, t_high=COMMON_RANGE)
def test_liquid_viscosity_monotone_decreasing(t_low, t_high):
    if t_low > t_high:
        t_low, t_high = t_high, t_low
    for fluid in (WATER, GLYCOL30, MINERAL_OIL_MD45):
        assert fluid.viscosity(t_low) >= fluid.viscosity(t_high)


@given(t_low=COMMON_RANGE, t_high=COMMON_RANGE)
def test_gas_viscosity_monotone_increasing(t_low, t_high):
    if t_low > t_high:
        t_low, t_high = t_high, t_low
    assert AIR.viscosity(t_low) <= AIR.viscosity(t_high)


@given(t_low=COMMON_RANGE, t_high=COMMON_RANGE)
def test_liquid_density_monotone_decreasing(t_low, t_high):
    if t_low > t_high:
        t_low, t_high = t_high, t_low
    for fluid in (GLYCOL30, MINERAL_OIL_MD45):
        assert fluid.density(t_low) >= fluid.density(t_high)


@given(temperature=COMMON_RANGE)
def test_derived_quantities_consistent(temperature):
    for fluid in all_fluids():
        nu = fluid.kinematic_viscosity(temperature)
        mu = fluid.viscosity(temperature)
        assert abs(nu * fluid.density(temperature) - mu) <= 1e-12 * mu
        pr = fluid.prandtl(temperature)
        alpha = fluid.thermal_diffusivity(temperature)
        # Pr = nu / alpha, two routes to the same number.
        assert abs(pr - nu / alpha) / pr < 1e-9


@given(
    temperature=COMMON_RANGE,
    heat=st.floats(min_value=1.0, max_value=1.0e5),
    delta_t=st.floats(min_value=0.5, max_value=30.0),
)
def test_volume_flow_inverts_heat(temperature, heat, delta_t):
    """Flow sized for a heat load carries exactly that load back."""
    for fluid in (WATER, MINERAL_OIL_MD45):
        flow = fluid.volume_flow_for_heat(heat, delta_t, temperature)
        recovered = fluid.heat_capacity_rate(flow, temperature) * delta_t
        assert abs(recovered - heat) / heat < 1e-9


@given(temperature=COMMON_RANGE)
@settings(max_examples=30)
def test_liquids_always_beat_air_volumetrically(temperature):
    air = AIR.volumetric_heat_capacity(temperature)
    for fluid in (WATER, GLYCOL30, MINERAL_OIL_MD45):
        assert fluid.volumetric_heat_capacity(temperature) > 1000.0 * air
