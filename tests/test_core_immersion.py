"""Tests for the immersion bath model."""

import pytest

from repro.core.immersion import ImmersionSection
from repro.core.skat import skat_heatsink
from repro.core.tim import CONVENTIONAL_PASTE, SRC_OIL_STABLE_INTERFACE
from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.devices.fpga import Fpga


def skat_section(**overrides):
    defaults = dict(
        ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095)),
        n_boards=12,
        sink=skat_heatsink(),
        tim=SRC_OIL_STABLE_INTERFACE,
    )
    defaults.update(overrides)
    return ImmersionSection(**defaults)


class TestSolve:
    def test_skat_operating_point(self):
        """At the design oil state (28.5 C supply, ~2.7 L/s) the chips land
        near the paper's 55 C / 91 W."""
        report = skat_section().solve(28.5, 2.7e-3)
        assert report.max_junction_c == pytest.approx(55.0, abs=3.0)
        assert report.chips_per_board[-1].power_w == pytest.approx(91.0, rel=0.08)

    def test_electronics_heat_near_paper(self):
        """96 chips x ~91 W plus board overheads: ~9.5 kW."""
        report = skat_section().solve(28.5, 2.7e-3)
        assert report.electronics_heat_w == pytest.approx(9500.0, rel=0.08)

    def test_oil_return_warmer_than_supply(self):
        report = skat_section().solve(28.5, 2.7e-3)
        assert report.oil_return_c > report.oil_supply_c
        assert report.oil_rise_k == pytest.approx(
            report.total_heat_w
            / skat_section().oil.heat_capacity_rate(2.7e-3, 28.5),
            rel=1e-6,
        )

    def test_gradient_along_board_small(self):
        """The SKAT circulation design keeps the per-board thermal gradient
        to a few degrees (contrast with the 'considerable thermal
        gradients' of naive immersion)."""
        report = skat_section().solve(28.5, 2.7e-3)
        assert 0.0 < report.thermal_gradient_k < 6.0

    def test_psu_heat_counted(self):
        report = skat_section().solve(28.5, 2.7e-3)
        assert report.psu_heat_w > 0.0
        assert report.total_heat_w == pytest.approx(
            report.electronics_heat_w + report.psu_heat_w
        )

    def test_more_flow_cooler_chips(self):
        low = skat_section().solve(28.5, 1.5e-3)
        high = skat_section().solve(28.5, 4.0e-3)
        assert high.max_junction_c < low.max_junction_c

    def test_zero_flow_rejected(self):
        with pytest.raises(ValueError):
            skat_section().solve(28.5, 0.0)


class TestTimEffects:
    def test_washed_out_paste_raises_junctions(self):
        fresh = skat_section(tim=CONVENTIONAL_PASTE, tim_service_hours=0.0)
        aged = skat_section(tim=CONVENTIONAL_PASTE, tim_service_hours=8760.0)
        assert aged.solve(28.5, 2.7e-3).max_junction_c > fresh.solve(
            28.5, 2.7e-3
        ).max_junction_c

    def test_src_interface_immune_to_service_time(self):
        fresh = skat_section(tim_service_hours=0.0).solve(28.5, 2.7e-3)
        aged = skat_section(tim_service_hours=87600.0).solve(28.5, 2.7e-3)
        assert aged.max_junction_c == pytest.approx(fresh.max_junction_c)


class TestGeometryValidation:
    def test_rejects_too_many_boards(self):
        with pytest.raises(ValueError):
            skat_section(n_boards=25)

    def test_rejects_bad_flow_fraction(self):
        with pytest.raises(ValueError):
            skat_section(flow_fraction_over_boards=0.0)

    def test_board_velocity(self):
        section = skat_section()
        v = section.board_approach_velocity(2.7e-3)
        per_board = 2.7e-3 * section.flow_fraction_over_boards / 12
        assert v == pytest.approx(per_board / section.board_channel_area_m2)
