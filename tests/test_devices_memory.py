"""Tests for the board memory subsystem."""

import pytest

from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.devices.fpga import Fpga
from repro.devices.memory import BoardMemory, DDR4_8GB, MemoryModule


class TestModule:
    def test_power_interpolates_activity(self):
        assert DDR4_8GB.power_w(0.0) == DDR4_8GB.idle_power_w
        assert DDR4_8GB.power_w(1.0) == DDR4_8GB.active_power_w
        mid = DDR4_8GB.power_w(0.5)
        assert DDR4_8GB.idle_power_w < mid < DDR4_8GB.active_power_w

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            DDR4_8GB.power_w(1.5)

    def test_rejects_inverted_powers(self):
        with pytest.raises(ValueError):
            MemoryModule("bad", 8.0, 5.0, 2.0, 19.2)


class TestBoardMemory:
    def test_skat_board_complement(self):
        memory = BoardMemory()
        assert memory.n_modules == 8
        assert memory.capacity_gb == 64.0

    def test_power_consistent_with_board_misc_budget(self):
        """The CCB model budgets ~30 W of misc power; the memory model at
        its default activity must fit inside it."""
        memory = BoardMemory()
        ccb = Ccb(Fpga(KINTEX_ULTRASCALE_KU095))
        assert memory.power_w(0.6) <= ccb.misc_power_w

    def test_aggregate_bandwidth(self):
        memory = BoardMemory()
        assert memory.total_bandwidth_gb_s == pytest.approx(8 * 19.2)

    def test_balance_metric(self):
        """A SKAT board at ~7 TFlops with 8 DDR4 banks: ~0.02 B/Flop —
        streaming-bound, which is why RCS pipelines replicate compute
        rather than fetch more data."""
        memory = BoardMemory()
        balance = memory.bandwidth_per_gflops(7000.0)
        assert 0.005 < balance < 0.1

    def test_two_banks_double_everything(self):
        single = BoardMemory(modules_per_fpga=1)
        double = BoardMemory(modules_per_fpga=2)
        assert double.capacity_gb == 2 * single.capacity_gb
        assert double.power_w(0.5) == pytest.approx(2 * single.power_w(0.5))

    def test_rejects_bad_complement(self):
        with pytest.raises(ValueError):
            BoardMemory(n_fpgas=0)
