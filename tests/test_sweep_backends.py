"""Unit tests for the sweep backend layer and the cross-process metric merge."""

import pickle

import pytest

from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.sweep import (
    DEFAULT_MAX_WORKERS,
    SweepCase,
    available_backends,
    get_backend,
    run_sweep,
    sweep_values,
)
from repro.sweep.backends import chunk_items, resolve_workers


def square(case):
    return case.params["x"] ** 2


def fail_on_three(case):
    x = case.params["x"]
    if x == 3:
        raise ValueError("three is right out")
    return x


class Unpicklable(Exception):
    def __init__(self, handle):
        super().__init__("carries a live handle")
        self.handle = handle

    def __reduce__(self):
        raise TypeError("refuses to pickle")


def raise_unpicklable(case):
    raise Unpicklable(handle=object())


def count_in_registry(case):
    get_registry().inc("worker_side_counter", case.params["x"])
    get_registry().observe("worker_side_values", case.params["x"], buckets=[2, 5])
    return case.params["x"]


CASES = [SweepCase(name=f"x={x}", params={"x": x}) for x in range(6)]


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["process", "serial", "thread"]

    def test_get_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            get_backend("quantum")

    def test_run_sweep_default_is_thread(self):
        with use_registry(MetricsRegistry()) as obs:
            run_sweep(square, CASES[:2])
            counters = obs.as_dict()["counters"]
        assert counters["sweep_backend_thread_runs_total"] == 1

    def test_backend_marker_counter(self):
        with use_registry(MetricsRegistry()) as obs:
            run_sweep(square, CASES[:2], backend="serial")
            counters = obs.as_dict()["counters"]
        assert counters["sweep_backend_serial_runs_total"] == 1


class TestWorkerResolution:
    def test_explicit_wins_but_is_capped_by_cases(self):
        assert resolve_workers(3, 10) == 3
        assert resolve_workers(10, 3) == 3

    def test_default_capped_by_constant(self):
        assert resolve_workers(1000, None) <= DEFAULT_MAX_WORKERS

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_workers(5, 0)

    def test_empty_sweep_short_circuits_to_one_worker(self):
        # Regression: `min(max_workers, n_cases) or 1` leaned on 0 being
        # falsy; the explicit short-circuit must return 1 for an empty
        # sweep whether or not workers were requested explicitly.
        assert resolve_workers(0, None) == 1
        assert resolve_workers(0, 1) == 1
        assert resolve_workers(0, 16) == 1

    def test_empty_sweep_still_validates_max_workers(self):
        with pytest.raises(ValueError):
            resolve_workers(0, 0)
        with pytest.raises(ValueError):
            resolve_workers(0, -2)

    def test_chunks_are_contiguous_and_complete(self):
        items = list(enumerate("abcdefg"))
        chunks = chunk_items(items, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [item for chunk in chunks for item in chunk] == items


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestEveryBackend:
    def test_values_in_case_order(self, backend):
        values = sweep_values(square, CASES, backend=backend, max_workers=2)
        assert values == [x**2 for x in range(6)]

    def test_empty_sweep(self, backend):
        assert run_sweep(square, [], backend=backend) == []

    def test_on_error_raise(self, backend):
        with pytest.raises(ValueError, match="three is right out"):
            run_sweep(fail_on_three, CASES, backend=backend, max_workers=2)

    def test_on_error_capture(self, backend):
        outcomes = run_sweep(
            fail_on_three, CASES, backend=backend, on_error="capture",
            max_workers=2,
        )
        assert [o.ok for o in outcomes] == [True, True, True, False, True, True]
        assert "three is right out" in outcomes[3].error
        assert outcomes[3].error_traceback

    def test_error_counter(self, backend):
        with use_registry(MetricsRegistry()) as obs:
            run_sweep(
                fail_on_three, CASES, backend=backend, on_error="capture",
                max_workers=2,
            )
            counters = obs.as_dict()["counters"]
        assert counters["sweep_case_errors_total"] == 1


class TestProcessBackend:
    def test_worker_metrics_merged_into_parent(self):
        with use_registry(MetricsRegistry()) as obs:
            run_sweep(count_in_registry, CASES, backend="process", max_workers=2)
            data = obs.as_dict()
        assert data["counters"]["worker_side_counter"] == sum(range(6))
        hist = data["histograms"]["worker_side_values"]
        # x in 0..5 against bucket edges [2, 5]: 0,1,2 | 3,4,5(=edge) | none
        assert hist["count"] == 6
        assert sum(hist["counts"]) == 6

    def test_merge_matches_serial_exactly(self):
        results = {}
        for backend in ("serial", "process"):
            with use_registry(MetricsRegistry()) as obs:
                run_sweep(count_in_registry, CASES, backend=backend, max_workers=3)
                results[backend] = obs.as_dict()
        # Everything except executor-specific marker counters is identical.
        for section in ("gauges", "histograms"):
            assert results["process"][section] == results["serial"][section]
        serial_counters = {
            k: v
            for k, v in results["serial"]["counters"].items()
            if not k.startswith("sweep_backend_")
        }
        process_counters = {
            k: v
            for k, v in results["process"]["counters"].items()
            if not k.startswith("sweep_backend_")
        }
        assert process_counters == serial_counters

    def test_unpicklable_exception_downgraded(self):
        with pytest.raises(RuntimeError, match="unpicklable sweep-case exception"):
            run_sweep(raise_unpicklable, CASES[:2], backend="process")

    def test_unpicklable_exception_still_captured(self):
        outcomes = run_sweep(
            raise_unpicklable, CASES[:2], backend="process", on_error="capture"
        )
        assert all(not o.ok for o in outcomes)
        assert "Unpicklable" in outcomes[0].error

    def test_process_raise_finishes_sweep_first(self):
        # Captured outcomes exist for *every* case even when raising: the
        # failure is re-raised after the shards join.
        try:
            run_sweep(fail_on_three, CASES, backend="process", max_workers=2)
        except ValueError as exc:
            assert "three is right out" in str(exc)
        else:  # pragma: no cover - the raise is the point
            pytest.fail("expected the captured failure to re-raise")


class TestSnapshotMerge:
    def test_counters_and_gauges(self):
        a = MetricsRegistry()
        a.inc("hits", 3)
        a.set_gauge("level", 1.0)
        b = MetricsRegistry()
        b.inc("hits", 4)
        b.set_gauge("level", 2.5)
        a.merge_snapshot(b.as_dict())
        data = a.as_dict()
        assert data["counters"]["hits"] == 7
        assert data["gauges"]["level"] == 2.5

    def test_histograms_bucket_add(self):
        a = MetricsRegistry()
        a.observe("t", 1.0, buckets=[2, 5])
        b = MetricsRegistry()
        b.observe("t", 3.0, buckets=[2, 5])
        b.observe("t", 10.0, buckets=[2, 5])
        a.merge_snapshot(b.as_dict())
        hist = a.as_dict()["histograms"]["t"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(14.0)

    def test_histogram_edge_mismatch_rejected(self):
        a = MetricsRegistry()
        a.observe("t", 1.0, buckets=[2, 5])
        b = MetricsRegistry()
        b.observe("t", 1.0, buckets=[3, 6])
        with pytest.raises(ValueError, match="edges"):
            a.merge_snapshot(b.as_dict())

    def test_merge_into_empty_is_copy(self):
        b = MetricsRegistry()
        b.inc("hits", 2)
        b.observe("t", 1.0, buckets=[2])
        a = MetricsRegistry()
        a.merge_snapshot(b.as_dict())
        assert a.as_dict() == b.as_dict()

    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.observe("t", 1.0, buckets=[2])
        snapshot = registry.as_dict()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestMidShardException:
    """Regression: an exception in the middle of a thread-backend chunk.

    With workers=2 and chunk_size=3 the six cases split into exactly two
    chunks; case x=4 fails in the middle of the second chunk. The pinned
    contract: ``on_error="capture"`` still returns one outcome per case
    in case order (indices 0..5, the cases after the failure included),
    and the captured error matches the serial oracle field-for-field.
    """

    @staticmethod
    def _fail_on_four(case):
        x = case.params["x"]
        if x == 4:
            raise ValueError("four fails mid-chunk")
        return x * 10

    def test_capture_keeps_ordering_and_completes_the_shard(self):
        outcomes = run_sweep(
            self._fail_on_four,
            CASES,
            backend="thread",
            max_workers=2,
            chunk_size=3,
            on_error="capture",
        )
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.case.name for o in outcomes] == [c.name for c in CASES]
        assert [o.value for o in outcomes] == [0, 10, 20, 30, None, 50]
        failed = outcomes[4]
        assert not failed.ok
        assert "four fails mid-chunk" in failed.error
        assert "ValueError" in failed.error_traceback
        # The case *after* the failure, in the same chunk, still ran.
        assert outcomes[5].ok

    def test_capture_parity_with_the_serial_oracle(self):
        threaded = run_sweep(
            self._fail_on_four,
            CASES,
            backend="thread",
            max_workers=2,
            chunk_size=3,
            on_error="capture",
        )
        serial = run_sweep(
            self._fail_on_four, CASES, backend="serial", on_error="capture"
        )
        for t, s in zip(threaded, serial):
            assert (t.index, t.case, t.value, t.error) == (
                s.index,
                s.case,
                s.value,
                s.error,
            )
            assert t.ok == s.ok

    def test_raise_mode_still_surfaces_the_mid_shard_error(self):
        with pytest.raises(ValueError, match="four fails mid-chunk"):
            run_sweep(
                self._fail_on_four,
                CASES,
                backend="thread",
                max_workers=2,
                chunk_size=3,
                on_error="raise",
            )
