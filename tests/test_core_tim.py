"""Tests for the thermal-interface models and oil washout."""

import math

import pytest

from repro.core.tim import (
    CONVENTIONAL_PASTE,
    DRY_CONTACT,
    SRC_OIL_STABLE_INTERFACE,
    ThermalInterface,
)

DIE_AREA = 26.0e-3 ** 2


class TestFreshInterfaces:
    def test_fresh_resistance_scale(self):
        r = SRC_OIL_STABLE_INTERFACE.resistance_k_w(DIE_AREA)
        assert 0.02 < r < 0.15

    def test_paste_fresher_is_better_than_src(self):
        assert CONVENTIONAL_PASTE.resistance_k_w(DIE_AREA) < SRC_OIL_STABLE_INTERFACE.resistance_k_w(
            DIE_AREA
        )

    def test_dry_contact_worst(self):
        assert DRY_CONTACT.resistance_k_w(DIE_AREA) > SRC_OIL_STABLE_INTERFACE.resistance_k_w(
            DIE_AREA
        )


class TestWashout:
    def test_paste_degrades_over_service(self):
        """Section 2: 'the thermal paste between FPGA chips and heat-sinks
        is washed out during long-term maintenance'."""
        fresh = CONVENTIONAL_PASTE.resistance_k_w(DIE_AREA, hours_in_oil=0.0)
        year = CONVENTIONAL_PASTE.resistance_k_w(DIE_AREA, hours_in_oil=8760.0)
        assert year > 2.0 * fresh

    def test_src_interface_stable(self):
        """'Its coefficient of heat conductivity can remain permanently
        high.'"""
        fresh = SRC_OIL_STABLE_INTERFACE.resistance_k_w(DIE_AREA, hours_in_oil=0.0)
        decade = SRC_OIL_STABLE_INTERFACE.resistance_k_w(DIE_AREA, hours_in_oil=87600.0)
        assert decade == pytest.approx(fresh)

    def test_src_beats_paste_after_long_service(self):
        hours = 8760.0
        assert SRC_OIL_STABLE_INTERFACE.resistance_k_w(
            DIE_AREA, hours
        ) < CONVENTIONAL_PASTE.resistance_k_w(DIE_AREA, hours)

    def test_degradation_saturates(self):
        m_long = CONVENTIONAL_PASTE.degradation_multiplier(1.0e6)
        assert m_long == pytest.approx(CONVENTIONAL_PASTE.washed_out_multiplier, rel=1e-3)

    def test_degradation_monotone(self):
        times = [0.0, 1000.0, 4000.0, 20000.0]
        values = [CONVENTIONAL_PASTE.degradation_multiplier(t) for t in times]
        assert values == sorted(values)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            CONVENTIONAL_PASTE.degradation_multiplier(-1.0)


class TestValidation:
    def test_rejects_zero_resistivity(self):
        with pytest.raises(ValueError):
            ThermalInterface(name="bad", resistivity_m2k_w=0.0)

    def test_rejects_improving_washout(self):
        with pytest.raises(ValueError):
            ThermalInterface(
                name="bad", resistivity_m2k_w=1e-5, washed_out_multiplier=0.5
            )

    def test_infinite_timescale_means_stable(self):
        tim = ThermalInterface(
            name="x", resistivity_m2k_w=1e-5, washout_timescale_h=math.inf,
            washed_out_multiplier=5.0,
        )
        assert tim.degradation_multiplier(1.0e6) == 1.0
