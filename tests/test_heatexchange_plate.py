"""Tests for the chevron plate heat exchanger."""

import pytest

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.heatexchange.plate import PlateHeatExchanger


def skat_class_hx(**overrides):
    defaults = dict(n_plates=28, plate_width_m=0.10, plate_height_m=0.30)
    defaults.update(overrides)
    return PlateHeatExchanger(**defaults)


class TestGeometry:
    def test_channel_count(self):
        hx = skat_class_hx()
        assert hx.channels_per_side == 14

    def test_transfer_area(self):
        hx = skat_class_hx()
        assert hx.transfer_area_m2 == pytest.approx(28 * 0.03)

    def test_hydraulic_diameter(self):
        hx = skat_class_hx()
        assert hx.hydraulic_diameter_m == pytest.approx(0.006)

    def test_channel_velocity(self):
        hx = skat_class_hx()
        v = hx.channel_velocity_m_s(2.0e-3)
        assert v == pytest.approx(2.0e-3 / (14 * 0.003 * 0.10))

    def test_rejects_too_few_plates(self):
        with pytest.raises(ValueError):
            skat_class_hx(n_plates=2)


class TestFilms:
    def test_water_film_realistic(self):
        hx = skat_class_hx()
        h = hx.film_coefficient(1.2e-3, WATER, 20.0)
        assert 1000.0 < h < 20000.0

    def test_oil_film_weaker_than_water(self):
        hx = skat_class_hx()
        assert hx.film_coefficient(2.0e-3, MINERAL_OIL_MD45, 30.0) < hx.film_coefficient(
            2.0e-3, WATER, 30.0
        )

    def test_film_grows_with_flow(self):
        hx = skat_class_hx()
        low = hx.film_coefficient(1.0e-3, MINERAL_OIL_MD45, 30.0)
        high = hx.film_coefficient(3.0e-3, MINERAL_OIL_MD45, 30.0)
        assert high > low

    def test_overall_u_below_both_films(self):
        hx = skat_class_hx()
        h_hot = hx.film_coefficient(2.0e-3, MINERAL_OIL_MD45, 30.0)
        h_cold = hx.film_coefficient(1.2e-3, WATER, 20.0)
        u = hx.overall_u(2.0e-3, MINERAL_OIL_MD45, 30.0, 1.2e-3, WATER, 20.0)
        assert u < min(h_hot, h_cold)


class TestSolve:
    def test_energy_balance(self):
        hx = skat_class_hx()
        point = hx.solve(MINERAL_OIL_MD45, 31.0, 2.5e-3, WATER, 20.0, 1.2e-3)
        c_hot = MINERAL_OIL_MD45.heat_capacity_rate(2.5e-3, 31.0)
        c_cold = WATER.heat_capacity_rate(1.2e-3, 20.0)
        assert point.q_w == pytest.approx(c_hot * (31.0 - point.hot_out_c), rel=1e-9)
        assert point.q_w == pytest.approx(c_cold * (point.cold_out_c - 20.0), rel=1e-9)

    def test_outlets_between_inlets(self):
        hx = skat_class_hx()
        point = hx.solve(MINERAL_OIL_MD45, 31.0, 2.5e-3, WATER, 20.0, 1.2e-3)
        assert 20.0 < point.hot_out_c < 31.0
        assert 20.0 < point.cold_out_c < 31.0

    def test_skat_duty_class(self):
        """The SKAT duty: ~9.5 kW from 31 C oil into 20 C water must be
        within reach of the 28-plate unit."""
        hx = skat_class_hx()
        point = hx.solve(MINERAL_OIL_MD45, 31.0, 2.7e-3, WATER, 20.0, 1.2e-3)
        assert point.q_w > 8000.0

    def test_no_duty_at_equal_inlets(self):
        hx = skat_class_hx()
        point = hx.solve(MINERAL_OIL_MD45, 20.0, 2.5e-3, WATER, 20.0, 1.2e-3)
        assert point.q_w == pytest.approx(0.0, abs=1e-9)

    def test_rejects_inverted_inlets(self):
        hx = skat_class_hx()
        with pytest.raises(ValueError):
            hx.solve(MINERAL_OIL_MD45, 15.0, 2.5e-3, WATER, 20.0, 1.2e-3)

    def test_effectiveness_in_bounds(self):
        hx = skat_class_hx()
        point = hx.solve(MINERAL_OIL_MD45, 31.0, 2.5e-3, WATER, 20.0, 1.2e-3)
        assert 0.0 < point.effectiveness < 1.0


class TestPressureDrop:
    def test_zero_flow(self):
        hx = skat_class_hx()
        assert hx.pressure_drop_pa(0.0, MINERAL_OIL_MD45, 30.0) == 0.0

    def test_monotone_in_flow(self):
        hx = skat_class_hx()
        drops = [hx.pressure_drop_pa(q, MINERAL_OIL_MD45, 30.0) for q in (1e-3, 2e-3, 4e-3)]
        assert drops == sorted(drops)

    def test_oil_drops_exceed_water(self):
        hx = skat_class_hx()
        assert hx.pressure_drop_pa(2e-3, MINERAL_OIL_MD45, 30.0) > hx.pressure_drop_pa(
            2e-3, WATER, 30.0
        )

    def test_as_passage_matches_at_fit_points(self):
        hx = skat_class_hx()
        design = 2.5e-3
        passage = hx.as_passage(MINERAL_OIL_MD45, 30.0, design)
        for q in (0.5 * design, design):
            true_dp = hx.pressure_drop_pa(q, MINERAL_OIL_MD45, 30.0)
            fit_dp = -passage.pressure_change_pa(q, MINERAL_OIL_MD45, 30.0)
            assert fit_dp == pytest.approx(true_dp, rel=0.05)
