"""Differential tests: batched GPU training runs against the serial oracle.

The workload catalog rides the same structure-of-arrays transient engine
as everything else, so the same contract applies: a batch of GPU modules
under training-trace ``power_step`` scripts reproduces the untouched
serial :class:`~repro.core.simulation.ModuleSimulator` lane for lane at
the transient tolerance, for batch widths 1, 7 and 64, and the fuzzer's
batched evaluator emits byte-identical result records for the
``gpu_module`` family.
"""

import numpy as np
import pytest

from repro.batch.transient import run_module_transient_batch
from repro.core.gpumodule import GPU_WATER_FLOW_M3_S, gpu_module
from repro.core.simulation import ModuleSimulator
from repro.devices import TrainingTraceSpec, training_power_events
from repro.reliability.failures import pump_stop_event

#: The batch engine replays the serial float arithmetic elementwise (see
#: tests/test_batch_differential.py for the derivation of the bound).
TRANSIENT_RTOL = 1.0e-9

DURATION_S = 480.0
DT_S = 10.0

#: Lane widths of the contract: singleton, odd mid-size, full chunk.
BATCH_WIDTHS = [1, 7, 64]


def _trace_lanes(n):
    """n distinct training traces (one spec seed per lane)."""
    return [
        list(
            training_power_events(
                TrainingTraceSpec(seed=seed, dip_fraction=0.7 + 0.002 * seed),
                DURATION_S,
                DT_S,
            )
        )
        for seed in range(n)
    ]


class TestGpuTransientDifferential:
    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    def test_batched_equals_serial(self, n):
        module = gpu_module()
        scenarios = _trace_lanes(n)
        water_in = np.linspace(18.0, 26.0, n) if n > 1 else np.array([20.0])
        batch = run_module_transient_batch(
            module,
            DURATION_S,
            scenarios,
            dt_s=DT_S,
            water_in_c=water_in,
            water_flow_m3_s=GPU_WATER_FLOW_M3_S,
        )
        assert batch.ok.all()
        for i, events in enumerate(scenarios):
            serial = ModuleSimulator(
                module,
                water_in_c=float(water_in[i]),
                water_flow_m3_s=GPU_WATER_FLOW_M3_S,
            ).run(duration_s=DURATION_S, events=list(events), dt_s=DT_S)
            rebuilt = batch.result(i)
            for channel in serial.telemetry.channels:
                _, expected = serial.telemetry.series(channel)
                _, measured = rebuilt.telemetry.series(channel)
                np.testing.assert_allclose(
                    measured,
                    expected,
                    rtol=TRANSIENT_RTOL,
                    atol=1.0e-12,
                    err_msg=f"lane {i} channel {channel}",
                )
            assert rebuilt.max_junction_c == pytest.approx(
                serial.max_junction_c, rel=TRANSIENT_RTOL
            )
            assert rebuilt.shutdown_time_s == serial.shutdown_time_s
            assert rebuilt.alarms_raised == serial.alarms_raised

    def test_mixed_trace_and_fault_lane(self):
        """A lane mixing the training trace with a pump failure still
        replays the serial composition exactly."""
        module = gpu_module()
        events = _trace_lanes(1)[0] + [pump_stop_event(240.0, "oil_pump")]
        events.sort(key=lambda e: e.time_s)
        batch = run_module_transient_batch(
            module,
            DURATION_S,
            [events],
            dt_s=DT_S,
            water_flow_m3_s=GPU_WATER_FLOW_M3_S,
        )
        serial = ModuleSimulator(
            module, water_flow_m3_s=GPU_WATER_FLOW_M3_S
        ).run(duration_s=DURATION_S, events=list(events), dt_s=DT_S)
        rebuilt = batch.result(0)
        _, expected = serial.telemetry.series("junction_c")
        _, measured = rebuilt.telemetry.series("junction_c")
        np.testing.assert_allclose(
            measured, expected, rtol=TRANSIENT_RTOL, atol=1.0e-12
        )

    def test_duplicate_trace_lanes_are_bitwise_identical(self):
        """Lane independence: identical GPU lanes return identical rows."""
        module = gpu_module()
        events = _trace_lanes(1)[0]
        batch = run_module_transient_batch(
            module,
            DURATION_S,
            [events, events, events],
            dt_s=DT_S,
            water_flow_m3_s=GPU_WATER_FLOW_M3_S,
        )
        first = batch.result(0)
        for i in (1, 2):
            other = batch.result(i)
            for channel in first.telemetry.channels:
                _, a = first.telemetry.series(channel)
                _, b = other.telemetry.series(channel)
                assert list(a) == list(b), f"lane {i} channel {channel}"


class TestGpuFuzzBatchParity:
    """The fuzzer's batched gpu_module path is byte-identical to serial."""

    def test_gpu_module_stream_batches_end_to_end(self):
        from repro.verify.fuzz import _batchable, generate_scenarios, run_fuzz

        # Seed 11 draws a mixed stream: some open-loop (batchable) GPU
        # lanes, some supervised ones that stay on the serial path.
        assert any(
            _batchable(s)
            for s in generate_scenarios(11, 9, levels=("gpu_module",))
        )
        never = run_fuzz(11, 9, levels=("gpu_module",), batch="never")
        always = run_fuzz(11, 9, levels=("gpu_module",), batch="always")
        assert never.ok
        assert always.to_json() == never.to_json()
