"""Cross-substrate integration tests.

Each test exercises a chain of at least three substrates the way the
machines use them, verifying that the coupled answers are consistent with
the component answers.
"""

import pytest

from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    taygeta,
)
from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.performance.flops import sustained_gflops
from repro.performance.tasks import InformationGraph, Operation, map_graph_to_field
from repro.reliability.arrhenius import mtbf_ratio
from repro.thermal.network import ThermalNetwork
from repro.thermal.steady import boundary_heat_flows, solve_steady_state


class TestModuleEnergyClosure:
    """Power model -> bath -> HX -> water: energy must balance end to end."""

    @pytest.fixture(scope="class")
    def report(self):
        return skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)

    def test_water_carries_all_heat(self, report):
        water_rise = report.hx.cold_out_c - report.water_in_c
        water_heat = WATER.heat_capacity_rate(
            report.water_flow_m3_s, report.water_in_c
        ) * water_rise
        assert water_heat == pytest.approx(report.immersion.total_heat_w, rel=1e-3)

    def test_oil_side_energy_consistent(self, report):
        oil_heat = MINERAL_OIL_MD45.heat_capacity_rate(
            report.oil_flow_m3_s, report.oil_cold_c
        ) * (report.oil_hot_c - report.oil_cold_c)
        assert oil_heat == pytest.approx(report.immersion.total_heat_w, rel=1e-3)

    def test_hx_duty_equals_bath_heat(self, report):
        assert report.hx.q_w == pytest.approx(report.immersion.total_heat_w, rel=1e-3)

    def test_chip_power_consistent_with_junction(self, report):
        chip = report.immersion.chips_per_board[-1]
        fpga = skat().section.ccb.fpga
        assert fpga.power_w(chip.junction_c) == pytest.approx(chip.power_w, rel=1e-6)


class TestThermalNetworkEquivalence:
    """The module's chip answer must agree with an explicit RC network
    built from the same resistances."""

    def test_module_vs_network(self):
        module = skat()
        report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        chip = report.immersion.chips_per_board[0]
        resistance = report.immersion.chip_resistance_k_w

        net = ThermalNetwork()
        net.add_boundary("oil", chip.local_oil_c)
        net.add_node("junction", heat_w=chip.power_w)
        net.add_resistance("junction", "oil", resistance)
        temps = solve_steady_state(net)
        assert temps["junction"] == pytest.approx(chip.junction_c, abs=0.01)

    def test_energy_conservation_in_explicit_network(self):
        report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        net = ThermalNetwork()
        net.add_boundary("water", report.water_in_c)
        net.add_node("oil")
        heats = 0.0
        # One lumped node per board.
        for b in range(12):
            power = sum(c.power_w for c in report.immersion.chips_per_board)
            net.add_node(f"board{b}", heat_w=power)
            net.add_resistance(f"board{b}", "oil", 0.05)
            heats += power
        net.add_resistance("oil", "water", 0.001)
        temps = solve_steady_state(net)
        flows = boundary_heat_flows(net, temps)
        assert flows["water"] == pytest.approx(heats, rel=1e-9)


class TestWorkloadToThermal:
    """Task graph -> utilization -> power -> junction temperature."""

    def test_mapped_workload_drives_power(self):
        graph = InformationGraph("kernel")
        for i in range(6):
            graph.add(Operation(f"m{i}", "mul"))
        graph.add(Operation("sum0", "add", inputs=("m0", "m1")))
        graph.add(Operation("sum1", "add", inputs=("sum0", "m2")))

        module = skat()
        family = module.section.ccb.fpga.family
        mapping = map_graph_to_field(graph, family, n_fpgas=8, target_utilization=0.9)
        assert 0.85 < mapping.utilization <= 0.9

        busy = skat(utilization=mapping.utilization).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        idle = skat(utilization=0.3).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        assert busy.max_fpga_c > idle.max_fpga_c + 5.0

    def test_throughput_below_sustained_envelope(self):
        graph = InformationGraph("k2")
        for i in range(4):
            graph.add(Operation(f"m{i}", "mul"))
        family = skat().section.ccb.fpga.family
        mapping = map_graph_to_field(graph, family, n_fpgas=8)
        envelope = 8 * sustained_gflops(family, mapping.utilization)
        assert mapping.throughput_gflops <= envelope * 1.01


class TestThermalReliabilityCoupling:
    """Cooling design -> junction temperature -> lifetime."""

    def test_immersion_lifetime_advantage(self):
        taygeta_junction = taygeta().solve(25.0).max_junction_c
        skat_junction = skat().solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        ).max_fpga_c
        advantage = mtbf_ratio(skat_junction, taygeta_junction)
        assert advantage > 2.0
