"""Golden-regression tests for the headline simulation outputs.

Each golden pins one scalar the paper's claims hang on — SKAT steady-state
temperatures, the 47U rack's PFLOPS and PUE, the reverse-return manifold
balance — to a committed JSON value with an explicit per-quantity
tolerance. A solver change that silently shifts the physics (as opposed to
only the speed) fails here before it can drift the benchmark tables.

Regenerate after an *intentional* physics change with::

    PYTHONPATH=src python tests/test_goldens.py --regen

and review the JSON diff like any other code change.
"""

import json
import math
from pathlib import Path
from typing import Dict

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Default relative tolerance for solver-derived quantities (the steady
#: solvers iterate to 1e-6 absolute on temperature; everything downstream
#: is smooth in that error).
SOLVER_RTOL = 1.0e-4
#: Tolerance for closed-form arithmetic (board counts x clock rates).
EXACT_RTOL = 1.0e-9


def _skat_steady() -> Dict[str, Dict[str, float]]:
    from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat

    report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    return {
        "max_fpga_c": {"value": report.max_fpga_c, "rtol": SOLVER_RTOL},
        "bath_mean_c": {"value": report.bath_mean_c, "rtol": SOLVER_RTOL},
        "oil_cold_c": {"value": report.oil_cold_c, "rtol": SOLVER_RTOL},
        "oil_hot_c": {"value": report.oil_hot_c, "rtol": SOLVER_RTOL},
        "oil_flow_m3_s": {"value": report.oil_flow_m3_s, "rtol": SOLVER_RTOL},
        "total_heat_to_water_w": {
            "value": report.total_heat_to_water_w,
            "rtol": SOLVER_RTOL,
        },
    }


def _rack() -> Dict[str, Dict[str, float]]:
    from repro.core.rack import Rack
    from repro.core.skat import skat

    report = Rack(module_factory=skat, n_modules=12).solve()
    return {
        "peak_pflops": {"value": report.peak_pflops, "rtol": EXACT_RTOL},
        "sustained_pflops": {"value": report.sustained_pflops, "rtol": SOLVER_RTOL},
        "pue": {"value": report.pue, "rtol": SOLVER_RTOL},
        "max_fpga_c": {"value": report.max_fpga_c, "rtol": SOLVER_RTOL},
        "it_power_w": {"value": report.it_power_w, "rtol": SOLVER_RTOL},
        "total_water_flow_m3_s": {
            "value": sum(report.water_flows_m3_s),
            "rtol": SOLVER_RTOL,
        },
    }


def _manifold() -> Dict[str, Dict[str, float]]:
    from repro.core.balancing import (
        ManifoldLayout,
        RackManifoldSystem,
        redistribution_evenness,
    )

    reverse = RackManifoldSystem(n_loops=6, layout=ManifoldLayout.REVERSE_RETURN)
    direct = RackManifoldSystem(n_loops=6, layout=ManifoldLayout.DIRECT_RETURN)
    rev_report = reverse.solve()
    dir_report = direct.solve()
    failure = reverse.failure_redistribution(2)
    return {
        "reverse_imbalance_ratio": {
            "value": rev_report.imbalance_ratio,
            "rtol": SOLVER_RTOL,
        },
        "direct_imbalance_ratio": {
            "value": dir_report.imbalance_ratio,
            "rtol": SOLVER_RTOL,
        },
        "reverse_total_flow_m3_s": {
            "value": rev_report.total_flow_m3_s,
            "rtol": SOLVER_RTOL,
        },
        "reverse_first_loop_flow_m3_s": {
            "value": rev_report.loop_flows_m3_s[0],
            "rtol": SOLVER_RTOL,
        },
        "reverse_last_loop_flow_m3_s": {
            "value": rev_report.loop_flows_m3_s[-1],
            "rtol": SOLVER_RTOL,
        },
        "failure_redistribution_evenness": {
            "value": redistribution_evenness(failure["before"], failure["after"]),
            "rtol": 1.0e-3,
        },
    }


def _facility() -> Dict[str, Dict[str, float]]:
    from repro.core.rack import Rack
    from repro.core.skat import skat
    from repro.facility.network import FacilityLoopSystem
    from repro.facility.simulator import FacilitySimulator

    loop_report = FacilityLoopSystem(n_racks=4).solve()
    result = FacilitySimulator(
        n_racks=4,
        rack_factory=lambda: Rack(module_factory=skat, n_modules=2),
    ).run(duration_s=400.0, dt_s=20.0)
    return {
        "loop_total_flow_m3_s": {
            "value": loop_report.total_flow_m3_s,
            "rtol": SOLVER_RTOL,
        },
        "loop_first_branch_flow_m3_s": {
            "value": loop_report.loop_flows_m3_s[0],
            "rtol": SOLVER_RTOL,
        },
        "loop_imbalance_ratio": {
            "value": loop_report.imbalance_ratio,
            "rtol": SOLVER_RTOL,
        },
        "run_max_fpga_c": {"value": result.max_fpga_c, "rtol": SOLVER_RTOL},
        "run_heat_rejected_j": {
            "value": result.heat_rejected_j,
            "rtol": SOLVER_RTOL,
        },
        "run_reuse_return_water_c": {
            "value": result.reuse_return_water_c,
            "rtol": SOLVER_RTOL,
        },
    }


GOLDEN_BUILDERS = {
    "skat_steady": _skat_steady,
    "rack": _rack,
    "manifold": _manifold,
    "facility": _facility,
}


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", sorted(GOLDEN_BUILDERS))
def test_golden(name):
    path = _golden_path(name)
    assert path.exists(), (
        f"golden {path} missing — regenerate with "
        "`PYTHONPATH=src python tests/test_goldens.py --regen`"
    )
    expected = json.loads(path.read_text())
    measured = GOLDEN_BUILDERS[name]()
    assert set(measured) == set(expected), "golden quantity set changed"
    for quantity, spec in expected.items():
        value = measured[quantity]["value"]
        assert math.isfinite(value), quantity
        assert value == pytest.approx(spec["value"], rel=spec["rtol"]), (
            f"{name}.{quantity}: measured {value!r}, golden {spec['value']!r} "
            f"(rtol {spec['rtol']:g})"
        )


def test_goldens_have_no_strays():
    """Every committed golden file corresponds to a builder."""
    # The observability exports (obs_export.*) are owned by
    # tests/test_obs_export.py, the facility backend goldens
    # (facility_sweep/facility_metrics) by
    # tests/test_facility_differential.py, and the batched-sweep goldens
    # (batch_sweep/batch_metrics) by tests/test_batch_differential.py,
    # and the Monte Carlo goldens (montecarlo_*) by
    # tests/test_montecarlo_goldens.py, and the workload-catalog goldens
    # (workloads_*) by tests/test_workload_fuzz.py; all of those pin
    # bytes, not values.
    committed = {
        p.stem
        for p in GOLDEN_DIR.glob("*.json")
        if not p.stem.startswith(
            ("obs_", "facility_", "batch_", "montecarlo_", "workloads_")
        )
    }
    assert committed == set(GOLDEN_BUILDERS)


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in sorted(GOLDEN_BUILDERS.items()):
        path = _golden_path(name)
        path.write_text(json.dumps(builder(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
