"""Gateway concurrency battery: coalescing, cache accounting, failure paths.

The headline invariant (ISSUE satellite 1): K concurrent identical
requests cost exactly one solve, with the K-1 joiners accounted as cache
hits; cancelled and timed-out waiters neither poison the batch nor leak
queue slots. All exact assertions — batch windows close under the
:class:`~repro.service.batcher.ManualTimer` seam or fill instantly with
``max_batch_size=1``.
"""

import asyncio
from types import SimpleNamespace

import pytest

from repro.obs import MetricsRegistry
from repro.service import (
    ManualTimer,
    ServiceEvaluationError,
    ServiceRequestError,
    SimulationGateway,
)

MODULE = {"level": "module"}


def counters(registry):
    return registry.as_dict()["counters"]


async def settle(predicate, rounds=500):
    for _ in range(rounds):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("loop never reached the expected state")


def make_gateway(registry, **kwargs):
    kwargs.setdefault("max_batch_size", 1)
    return SimulationGateway(registry=registry, **kwargs)


def test_k_identical_requests_one_solve():
    registry = MetricsRegistry()

    async def go():
        gateway = make_gateway(registry)
        envelopes = await asyncio.gather(
            *(gateway.simulate(MODULE) for _ in range(8))
        )
        await gateway.close()
        return envelopes

    envelopes = asyncio.run(go())
    values = counters(registry)
    assert values["service_solves_total"] == 1.0
    assert values["service_cache_misses_total"] == 1.0
    assert values["service_cache_hits_total"] == 7.0
    assert values["service_coalesced_total"] == 7.0
    assert values["service_requests_total"] == 8.0
    assert values["service_requests_module_total"] == 8.0
    assert [e["cached"] for e in envelopes].count(False) == 1
    assert len({e["digest"] for e in envelopes}) == 1
    first = envelopes[0]["result"]
    assert all(e["result"] == first for e in envelopes)


def test_resolved_cache_hit_costs_nothing():
    registry = MetricsRegistry()

    async def go():
        gateway = make_gateway(registry)
        miss = await gateway.simulate(MODULE)
        hit = await gateway.simulate(MODULE)
        await gateway.close()
        return miss, hit

    miss, hit = asyncio.run(go())
    assert miss["cached"] is False and hit["cached"] is True
    assert miss["result"] == hit["result"]
    values = counters(registry)
    assert values["service_solves_total"] == 1.0
    assert values["service_cache_hits_total"] == 1.0
    assert values["service_cache_misses_total"] == 1.0


def test_mixed_duplicates_accounting():
    registry = MetricsRegistry()
    payloads = [
        {"level": "module", "duration_s": 240.0 + 10.0 * (i % 3)}
        for i in range(12)
    ]

    async def go():
        gateway = make_gateway(registry)
        envelopes = await asyncio.gather(
            *(gateway.simulate(p) for p in payloads)
        )
        await gateway.close()
        return envelopes

    envelopes = asyncio.run(go())
    values = counters(registry)
    assert values["service_solves_total"] == 3.0
    assert values["service_cache_misses_total"] == 3.0
    assert values["service_cache_hits_total"] == 9.0
    assert len({e["digest"] for e in envelopes}) == 3


def test_baseline_gateway_pays_full_price():
    """cache_entries=0 + coalesce=False: every request is a solve."""
    registry = MetricsRegistry()

    async def go():
        gateway = make_gateway(registry, cache_entries=0, coalesce=False)
        envelopes = await asyncio.gather(
            *(gateway.simulate(MODULE) for _ in range(4))
        )
        await gateway.close()
        return envelopes

    envelopes = asyncio.run(go())
    values = counters(registry)
    assert values["service_solves_total"] == 4.0
    assert values["service_cache_misses_total"] == 4.0
    assert values.get("service_cache_hits_total", 0.0) == 0.0
    first = envelopes[0]["result"]
    assert all(e["result"] == first for e in envelopes)


def test_timed_out_waiter_does_not_lose_the_solve():
    """A wait_for timeout abandons the wait; the solve lands in the cache."""
    registry = MetricsRegistry()

    async def go():
        timer = ManualTimer()
        gateway = SimulationGateway(
            registry=registry, timer=timer, max_batch_size=16
        )
        with pytest.raises(asyncio.TimeoutError):
            await gateway.simulate(MODULE, timeout_s=0.02)
        # The window is still open (the timer never fired); release it.
        assert gateway.batcher.queue_depth == 1
        await settle(lambda: timer.pending == 1)
        assert timer.fire()
        await gateway.close()
        hit = await gateway.simulate(MODULE)
        await gateway.close()
        return hit

    hit = asyncio.run(go())
    assert hit["cached"] is True
    values = counters(registry)
    assert values["service_solves_total"] == 1.0
    assert values["service_cache_hits_total"] == 1.0


def test_cancelled_owner_does_not_poison_followers():
    registry = MetricsRegistry()

    async def go():
        timer = ManualTimer()
        gateway = SimulationGateway(
            registry=registry, timer=timer, max_batch_size=16
        )
        owner = asyncio.create_task(gateway.simulate(MODULE))
        await settle(
            lambda: gateway.batcher.queue_depth == 1 and timer.pending == 1
        )
        owner.cancel()
        await asyncio.gather(owner, return_exceptions=True)
        assert timer.fire()
        await gateway.close()
        assert gateway.stats()["inflight_digests"] == 0
        hit = await gateway.simulate(MODULE)
        await gateway.close()
        return hit

    hit = asyncio.run(go())
    assert hit["cached"] is True
    assert counters(registry)["service_solves_total"] == 1.0


def test_solver_failure_surfaces_and_is_not_cached(monkeypatch):
    registry = MetricsRegistry()

    def failing_sweep(fn, cases, **kwargs):
        return [
            SimpleNamespace(value=None, error="boom", error_traceback="tb")
            for _ in cases
        ]

    async def go():
        gateway = make_gateway(registry)
        with monkeypatch.context() as patch:
            patch.setattr(
                "repro.service.engine.run_sweep_batched", failing_sweep
            )
            with pytest.raises(ServiceEvaluationError) as excinfo:
                await gateway.simulate(MODULE)
            assert excinfo.value.error == "boom"
            assert excinfo.value.traceback == "tb"
            await gateway.close()
        # The failure was never cached: with the real solver back the
        # same request misses again and solves cleanly.
        retry = await gateway.simulate(MODULE)
        await gateway.close()
        return retry

    retry = asyncio.run(go())
    assert retry["cached"] is False
    values = counters(registry)
    assert values["service_errors_total"] == 1.0
    assert values["service_cache_misses_total"] == 2.0
    assert values["service_solves_total"] == 2.0


def test_every_coalesced_waiter_sees_the_failure(monkeypatch):
    registry = MetricsRegistry()

    def failing_sweep(fn, cases, **kwargs):
        return [
            SimpleNamespace(value=None, error="bad lane", error_traceback=None)
            for _ in cases
        ]

    async def go():
        gateway = make_gateway(registry)
        with monkeypatch.context() as patch:
            patch.setattr(
                "repro.service.engine.run_sweep_batched", failing_sweep
            )
            outcomes = await asyncio.gather(
                *(gateway.simulate(MODULE) for _ in range(3)),
                return_exceptions=True,
            )
            await gateway.close()
        return outcomes

    outcomes = asyncio.run(go())
    assert len(outcomes) == 3
    assert all(isinstance(o, ServiceEvaluationError) for o in outcomes)
    assert counters(registry)["service_errors_total"] == 1.0


def test_dispatch_crash_maps_to_evaluation_error(monkeypatch):
    registry = MetricsRegistry()

    def crashing_sweep(fn, cases, **kwargs):
        raise RuntimeError("executor died")

    async def go():
        gateway = make_gateway(registry)
        monkeypatch.setattr(
            "repro.service.engine.run_sweep_batched", crashing_sweep
        )
        with pytest.raises(ServiceEvaluationError, match="dispatch failed"):
            await gateway.simulate(MODULE)
        await gateway.close()

    asyncio.run(go())
    assert counters(registry)["service_errors_total"] == 1.0


def test_malformed_payload_rejected_before_any_work():
    registry = MetricsRegistry()

    async def go():
        gateway = make_gateway(registry)
        with pytest.raises(ServiceRequestError):
            await gateway.simulate({"level": "module", "bogus": 1})
        await gateway.close()

    asyncio.run(go())
    assert counters(registry) == {}


def test_sweep_explicit_scenarios_share_the_cache():
    registry = MetricsRegistry()
    scenarios = [
        MODULE,
        {"level": "module", "duration_s": 250.0},
        MODULE,  # duplicate collapses through cache/coalescing
    ]

    async def go():
        gateway = make_gateway(registry)
        envelope = await gateway.sweep({"scenarios": scenarios})
        await gateway.close()
        return envelope

    envelope = asyncio.run(go())
    assert envelope["count"] == 3
    assert envelope["results"][0]["digest"] == envelope["results"][2]["digest"]
    assert envelope["results"][0]["result"] == envelope["results"][2]["result"]
    values = counters(registry)
    assert values["service_solves_total"] == 2.0
    assert values["service_sweeps_total"] == 1.0


def test_sweep_generator_form():
    registry = MetricsRegistry()

    async def go():
        gateway = make_gateway(registry)
        envelope = await gateway.sweep(
            {"seed": 11, "n_scenarios": 4, "levels": ["module"]}
        )
        await gateway.close()
        return envelope

    envelope = asyncio.run(go())
    assert envelope["count"] == 4
    assert all("result" in r for r in envelope["results"])


def test_sweep_failures_reported_in_place(monkeypatch):
    registry = MetricsRegistry()

    def failing_sweep(fn, cases, **kwargs):
        return [
            SimpleNamespace(value=None, error="lane down", error_traceback=None)
            for _ in cases
        ]

    async def go():
        gateway = make_gateway(registry)
        monkeypatch.setattr(
            "repro.service.engine.run_sweep_batched", failing_sweep
        )
        envelope = await gateway.sweep({"scenarios": [MODULE]})
        await gateway.close()
        return envelope

    envelope = asyncio.run(go())
    assert envelope["count"] == 1
    assert envelope["results"][0] == {
        "digest": envelope["results"][0]["digest"],
        "error": "lane down",
    }


@pytest.mark.parametrize(
    "payload",
    [
        [],
        {"scenarios": "nope"},
        {"scenarios": [], "extra": 1},
        {"seed": 1},
        {"seed": 1, "n_scenarios": -2},
        {"seed": 1, "n_scenarios": 1, "levels": ["campus"]},
        {"seed": "x", "n_scenarios": 1},
        {"frobnicate": True},
    ],
)
def test_sweep_malformed_payloads_rejected(payload):
    async def go():
        gateway = make_gateway(MetricsRegistry())
        with pytest.raises(ServiceRequestError):
            await gateway.sweep(payload)
        await gateway.close()

    asyncio.run(go())


def test_sweep_scenario_budget_enforced():
    async def go():
        gateway = make_gateway(MetricsRegistry())
        with pytest.raises(ServiceRequestError, match="at most"):
            await gateway.sweep({"scenarios": [MODULE] * 513})
        await gateway.close()

    asyncio.run(go())


def test_stats_shape():
    async def go():
        gateway = make_gateway(MetricsRegistry())
        stats = gateway.stats()
        assert stats == {
            "queue_depth": 0,
            "dispatches_in_flight": 0,
            "inflight_digests": 0,
            "cache": {"entries": 0, "max_entries": 1024},
        }
        await gateway.close()

    asyncio.run(go())
