"""Tests for the chiller model."""

import pytest

from repro.heatexchange.chiller import Chiller


class TestCop:
    def test_cop_positive_and_realistic(self):
        chiller = Chiller(setpoint_c=20.0, capacity_w=150.0e3)
        cop = chiller.cop(20.0)
        assert 3.0 < cop < 12.0

    def test_cop_falls_with_colder_supply(self):
        chiller = Chiller(setpoint_c=10.0, capacity_w=150.0e3)
        assert chiller.cop(10.0) < chiller.cop(20.0)

    def test_rejects_condenser_colder_than_setpoint(self):
        with pytest.raises(ValueError):
            Chiller(setpoint_c=40.0, condenser_temperature_c=35.0)


class TestOperate:
    def test_holds_setpoint_below_capacity(self):
        chiller = Chiller(setpoint_c=20.0, capacity_w=150.0e3)
        state = chiller.operate(100.0e3)
        assert state.supply_temperature_c == 20.0
        assert not state.overloaded

    def test_electrical_power(self):
        chiller = Chiller(setpoint_c=20.0, capacity_w=150.0e3)
        state = chiller.operate(100.0e3)
        assert state.electrical_power_w == pytest.approx(100.0e3 / state.cop)

    def test_overload_floats_supply_up(self):
        chiller = Chiller(
            setpoint_c=20.0, capacity_w=100.0e3, water_capacity_rate_w_k=10.0e3
        )
        state = chiller.operate(120.0e3)
        assert state.overloaded
        assert state.supply_temperature_c == pytest.approx(22.0)

    def test_zero_load(self):
        chiller = Chiller()
        state = chiller.operate(0.0)
        assert state.electrical_power_w == 0.0
        assert not state.overloaded

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            Chiller().operate(-1.0)
