"""Unit tests for the metrics registry (repro.obs.registry)."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    sanitize_metric_name,
    set_registry,
    use_registry,
)


class TestCounters:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("solves_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_counter_handle_is_shared(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        reg.inc("c", 2)
        assert reg.counter("c").value == 2

    def test_threaded_increments_are_exact(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauges:
    def test_gauge_set_and_move(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("oil_c")
        gauge.set(42.5)
        assert gauge.value == 42.5
        gauge.inc(-2.5)
        assert gauge.value == 40.0

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")


class TestHistograms:
    def test_bucketing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        # le semantics: 0.5 and 1.0 land in the first bucket.
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.5)

    def test_edges_must_be_strictly_increasing(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=(5.0, 1.0))

    def test_edges_must_be_finite_and_present(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=(1.0, float("inf")))


class TestRegistryLifecycle:
    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for name in ("", "2leading", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                reg.counter(name)

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("cache hits/misses") == "cache_hits_misses"
        assert sanitize_metric_name("2nd") == "_2nd"
        assert sanitize_metric_name("") == "_"

    def test_merge_counters_prefix_and_zero_skip(self):
        reg = MetricsRegistry()
        reg.merge_counters({"hits": 3, "misses": 0}, prefix="cache_")
        snapshot = reg.as_dict()["counters"]
        assert snapshot == {"cache_hits": 3.0}

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 1.0)
        reg.observe("h", 3.0, buckets=(1.0, 5.0))
        with reg.span("s"):
            pass
        with reg.profile("p"):
            pass
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0
        assert reg.histogram("h").count == 0
        assert reg.traces() == {}
        assert reg.hot_paths() == []

    def test_as_dict_is_sorted(self):
        reg = MetricsRegistry()
        reg.inc("zeta")
        reg.inc("alpha")
        assert list(reg.as_dict()["counters"]) == ["alpha", "zeta"]


class TestProcessRegistry:
    def test_default_is_null(self):
        assert isinstance(get_registry(), NullRegistry)
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_use_registry_installs_and_restores(self):
        before = get_registry()
        with use_registry() as obs:
            assert get_registry() is obs
            assert obs.enabled
        assert get_registry() is before

    def test_use_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
        assert previous is NULL_REGISTRY

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.inc("anything", 5)
        null.set_gauge("g", 1.0)
        null.observe("h", 2.0)
        null.merge_counters({"a": 1})
        with null.span("s") as span:
            span.annotate(case="x")
        with null.profile("p"):
            pass
        assert null.counter("anything").value == 0
        assert null.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert null.traces() == {}
        assert null.hot_paths() == []
        assert null.current_span() is None
