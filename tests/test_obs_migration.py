"""Every instrumented layer reports through one installed registry.

These are the migration guarantees of the unified observability layer:
hydraulics, the module/rack simulators, monitoring, the sweep runner and
the resilience campaign all publish into whatever registry
:func:`repro.obs.get_registry` returns — and publish *nothing* when the
default no-op registry is installed.
"""

import pytest

from repro.control.controller import Alarm, AlarmSeverity
from repro.control.monitor import AlarmLog, TelemetryLog
from repro.control.supervisor import Supervisor
from repro.core.balancing import RackManifoldSystem
from repro.core.rack import Rack
from repro.core.racksim import RackSimulator
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.fluids.library import WATER
from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.reliability.failures import pump_stop_event
from repro.resilience.campaign import FaultScenario, run_campaign
from repro.sweep import SweepCase, run_sweep


class TestHydraulicsLayer:
    def test_manifold_solve_publishes_counters_and_histogram(self):
        with use_registry() as obs:
            system = RackManifoldSystem(n_loops=4)
            system.solve()
            system.solve()  # cache replay
        counters = obs.as_dict()["counters"]
        assert counters["hydraulics_solves"] == 2
        assert counters["hydraulics_cold_starts"] == 1
        assert counters["hydraulics_cache_hits"] == 1
        assert counters["hydraulics_residual_evaluations"] > 0
        hist = obs.histogram("hydraulics_residual_evaluations_per_solve")
        assert hist.count == 2

    def test_stateless_solve_network_publishes(self):
        from repro.hydraulics.elements import CheckValve, Pump, PumpCurve
        from repro.hydraulics.network import HydraulicNetwork
        from repro.hydraulics.solver import solve_network

        net = HydraulicNetwork()
        net.add_junction("a")
        net.add_junction("b")
        net.set_reference("a")
        net.add_branch("pump", "a", "b", Pump(PumpCurve(50.0e3, 0.01)))
        net.add_branch("check", "b", "a", CheckValve())
        with use_registry() as obs:
            solve_network(net, WATER, 25.0)
        counters = obs.as_dict()["counters"]
        assert counters["hydraulics_solves"] == 1
        assert counters["hydraulics_cold_starts"] == 1


class TestSimulatorLayers:
    def test_module_simulator_totals_accumulate_per_run_metrics_reset(self):
        """Global counters accumulate; per-run metrics reset (satellite)."""
        events = [pump_stop_event(240.0, "oil_pump", 0.0)]
        with use_registry() as obs:
            sim = ModuleSimulator(module=skat(), supervisor=Supervisor())
            sim.run(duration_s=400.0, events=list(events), dt_s=5.0)
            first = sim.metrics.as_dict()["counters"]
            sim.run(duration_s=400.0, events=list(events), dt_s=5.0)
            second = sim.metrics.as_dict()["counters"]
        # reset() zeroed the run-scoped registry: repeat runs are
        # order-independent, not cumulative.
        assert first == second
        assert first["runs"] == 1
        counters = obs.as_dict()["counters"]
        assert counters["module_sim_runs"] == 2
        assert counters["module_sim_steps"] == 2 * first["steps"]

    def test_rack_simulator_publishes_and_resets(self):
        with use_registry() as obs:
            sim = RackSimulator(Rack(module_factory=skat, n_modules=2))
            sim.run(duration_s=150.0, events=[], dt_s=5.0)
            per_run = sim.metrics.as_dict()["counters"]
            sim.reset()
        assert per_run["runs"] == 1
        assert per_run["steps"] > 0
        assert all(v == 0 for v in sim.metrics.as_dict()["counters"].values())
        counters = obs.as_dict()["counters"]
        assert counters["rack_sim_runs"] == 1
        assert counters["rack_sim_steps"] == per_run["steps"]

    def test_default_noop_path_leaves_process_registry_empty(self):
        """Uninstrumented runs must not leak into the null registry."""
        sim = ModuleSimulator(module=skat())
        sim.run(duration_s=100.0, events=[], dt_s=5.0)
        assert get_registry().as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        # The per-instance registry still works without an installed one.
        assert sim.metrics.as_dict()["counters"]["runs"] == 1


class TestSweepAndCampaignLayers:
    def test_run_sweep_counts_runs_cases_and_errors(self):
        cases = [SweepCase(name=f"c{i}", params={"i": i}) for i in range(4)]

        def evaluate(case):
            if case.params["i"] == 2:
                raise RuntimeError("boom")
            return case.params["i"]

        with use_registry() as obs:
            outcomes = run_sweep(evaluate, cases, on_error="capture")
        assert sum(1 for o in outcomes if not o.ok) == 1
        counters = obs.as_dict()["counters"]
        assert counters["sweep_runs_total"] == 1
        assert counters["sweep_cases_total"] == 4
        assert counters["sweep_case_errors_total"] == 1

    def test_run_campaign_publishes_accounting(self):
        scenarios = [
            FaultScenario(
                name="pump_stop",
                events=(pump_stop_event(120.0, "oil_pump", 0.0),),
            ),
            FaultScenario(
                name="pump_derate",
                events=(pump_stop_event(120.0, "oil_pump", 0.5),),
            ),
        ]
        with use_registry() as obs:
            report = run_campaign(
                lambda: ModuleSimulator(module=skat(), supervisor=Supervisor()),
                scenarios,
                duration_s=300.0,
                dt_s=5.0,
            )
        counters = obs.as_dict()["counters"]
        assert counters["campaign_runs_total"] == 1
        assert counters["campaign_scenarios_total"] == 2
        assert counters.get("campaign_scenario_failures_total", 0) == 0
        assert counters["campaign_survived_total"] == sum(
            1 for r in report.scenarios if r.survived
        )
        # The sweep layer underneath reported through the same registry.
        assert counters["sweep_cases_total"] == 2


class TestMonitorLayer:
    def test_telemetry_record_and_increment_mirror(self):
        with use_registry() as obs:
            log = TelemetryLog()
            log.record(0.0, {"t_oil_c": 40.0})
            log.record(5.0, {"t_oil_c": 41.0})
            log.increment("throttle events")
        counters = obs.as_dict()["counters"]
        assert counters["telemetry_samples_total"] == 2
        assert counters["telemetry_throttle_events_total"] == 1

    def test_alarm_log_counts_fresh_episodes_only(self):
        alarm = Alarm(
            severity=AlarmSeverity.CRITICAL, source="overtemp", message="hot"
        )
        with use_registry() as obs:
            log = AlarmLog()
            log.observe(0.0, [alarm])
            log.observe(5.0, [alarm])  # still latched: not a fresh episode
        assert obs.as_dict()["counters"]["alarm_episodes_total"] == 1

    def test_set_counters_is_not_mirrored(self):
        """Replacement semantics: bulk restore must not inflate totals."""
        with use_registry() as obs:
            log = TelemetryLog()
            log.set_counters({"restored": 7.0})
        assert "telemetry_restored_total" not in obs.as_dict()["counters"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
