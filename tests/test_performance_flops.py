"""Tests for the performance model and its paper calibrations."""

import pytest

from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_PLUS_VU9P,
    VIRTEX7_X485T,
)
from repro.performance.flops import (
    peak_gflops,
    performance_per_litre,
    performance_per_watt,
    sustained_gflops,
)


class TestPeak:
    def test_scales_with_logic_and_clock(self):
        base = peak_gflops(VIRTEX7_X485T)
        double_clock = peak_gflops(VIRTEX7_X485T, clock_mhz=2 * VIRTEX7_X485T.nominal_clock_mhz)
        assert double_clock == pytest.approx(2.0 * base)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            peak_gflops(VIRTEX7_X485T, clock_mhz=0.0)

    def test_ku095_near_0_9_tflops(self):
        assert peak_gflops(KINTEX_ULTRASCALE_KU095) == pytest.approx(880.0, rel=0.05)


class TestPaperRatios:
    def test_skat_vs_taygeta_8_7x(self):
        """Section 3: SKAT (96 chips) is 8.7x Taygeta (32 chips)."""
        skat = 96 * peak_gflops(KINTEX_ULTRASCALE_KU095)
        taygeta = 32 * peak_gflops(VIRTEX7_X485T)
        assert skat / taygeta == pytest.approx(8.7, rel=0.05)

    def test_ultrascale_plus_3x_per_chip(self):
        """Section 4: UltraScale+ brings "a three time increase in
        computational performance" in the same volume."""
        ratio = peak_gflops(ULTRASCALE_PLUS_VU9P) / peak_gflops(KINTEX_ULTRASCALE_KU095)
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_rack_above_1_pflops(self):
        """Conclusions: 12 CMs x 96 chips > 1 PFlops."""
        rack = 12 * 96 * peak_gflops(KINTEX_ULTRASCALE_KU095)
        assert rack > 1.0e6  # GFlops


class TestSustained:
    def test_utilization_scaling(self):
        full = peak_gflops(KINTEX_ULTRASCALE_KU095)
        assert sustained_gflops(KINTEX_ULTRASCALE_KU095, 0.9) == pytest.approx(0.9 * full)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            sustained_gflops(KINTEX_ULTRASCALE_KU095, 1.5)


class TestSpecific:
    def test_per_watt(self):
        assert performance_per_watt(910.0, 91.0) == pytest.approx(10.0)

    def test_per_litre(self):
        assert performance_per_litre(1000.0, 50.0) == pytest.approx(20.0)

    def test_reject_bad_denominators(self):
        with pytest.raises(ValueError):
            performance_per_watt(10.0, 0.0)
        with pytest.raises(ValueError):
            performance_per_litre(10.0, 0.0)

    def test_immersion_generation_gains_efficiency(self):
        """Specific performance (GFlops/W) improves from Virtex-7 to
        UltraScale — the paper's energy-efficiency storyline."""
        v7 = performance_per_watt(
            peak_gflops(VIRTEX7_X485T), VIRTEX7_X485T.operating_power_w
        )
        ku = performance_per_watt(
            peak_gflops(KINTEX_ULTRASCALE_KU095),
            KINTEX_ULTRASCALE_KU095.operating_power_w,
        )
        assert ku > v7
