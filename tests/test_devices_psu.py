"""Tests for the immersion PSU model."""

import pytest

from repro.devices.psu import ImmersionPsu


class TestEfficiency:
    def test_peak_at_half_load(self):
        psu = ImmersionPsu()
        assert psu.efficiency(2000.0) == pytest.approx(psu.peak_efficiency)

    def test_droops_away_from_peak(self):
        psu = ImmersionPsu()
        assert psu.efficiency(4000.0) < psu.peak_efficiency
        assert psu.efficiency(400.0) < psu.peak_efficiency

    def test_full_load_still_reasonable(self):
        psu = ImmersionPsu()
        assert psu.efficiency(4000.0) > 0.9

    def test_rejects_over_rating(self):
        psu = ImmersionPsu()
        with pytest.raises(ValueError):
            psu.efficiency(4500.0)


class TestDissipation:
    def test_zero_output_zero_heat(self):
        assert ImmersionPsu().dissipation_w(0.0) == 0.0

    def test_heat_consistent_with_efficiency(self):
        psu = ImmersionPsu()
        out = 3000.0
        eta = psu.efficiency(out)
        assert psu.dissipation_w(out) == pytest.approx(out * (1.0 / eta - 1.0))

    def test_skat_psu_heat_scale(self):
        """Three 4 kW units at ~3.2 kW each shed a few hundred watts into
        the bath — heat the CM balance must carry."""
        psu = ImmersionPsu()
        assert 100.0 < psu.dissipation_w(3200.0) < 250.0

    def test_input_power(self):
        psu = ImmersionPsu()
        out = 2500.0
        assert psu.input_power_w(out) == pytest.approx(out + psu.dissipation_w(out))


class TestPaperSpec:
    def test_defaults_match_paper(self):
        """Section 3: "DC/DC 380/12 V transducing with the power up to
        4 kW for four CCBs"."""
        psu = ImmersionPsu()
        assert psu.rated_output_w == 4000.0
        assert psu.input_voltage_v == 380.0
        assert psu.output_voltage_v == 12.0
        assert psu.boards_served == 4
