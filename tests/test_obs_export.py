"""Exporter determinism: canonical JSON + Prometheus text, golden-pinned.

The golden scenario is a seeded, supervised CM transient (fixed sensor
seeds, fixed event times): its metric state is integer-valued and
platform-stable, so the exports are pinned byte-for-byte under
``tests/goldens/``. Regenerate after an *intentional* instrumentation
change with::

    PYTHONPATH=src python tests/test_obs_export.py --regen

and review the diff like any other code change.
"""

import json
from pathlib import Path

from repro.obs import MetricsRegistry, to_json, to_prometheus, use_registry

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_JSON = GOLDEN_DIR / "obs_export.json"
GOLDEN_PROM = GOLDEN_DIR / "obs_export.prom"


def _run_golden_scenario() -> MetricsRegistry:
    """The pinned scenario: supervised CM under a pump stop + TIM washout."""
    from repro.control.supervisor import Supervisor
    from repro.core.simulation import ModuleSimulator
    from repro.core.skat import skat
    from repro.reliability.failures import pump_stop_event, tim_washout_drift

    with use_registry() as obs:
        simulator = ModuleSimulator(module=skat(), supervisor=Supervisor())
        simulator.run(
            duration_s=600.0,
            events=[
                pump_stop_event(240.0, "oil_pump", 0.0),
                tim_washout_drift(300.0, "fpga_hot", 4.0),
            ],
            dt_s=5.0,
        )
    return obs


class TestDeterminism:
    def test_same_scenario_exports_identical_bytes(self):
        """Same seed + same scenario => byte-identical exports."""
        first = _run_golden_scenario()
        second = _run_golden_scenario()
        assert to_json(first) == to_json(second)
        assert to_prometheus(first) == to_prometheus(second)

    def test_exports_exclude_wall_clock_state(self):
        """Spans and profile hooks never leak into the deterministic export."""
        reg = MetricsRegistry()
        reg.inc("c", 1)
        with reg.span("timed"):
            pass
        with reg.profile("hot"):
            pass
        payload = json.loads(to_json(reg))
        assert payload == {
            "counters": {"c": 1},
            "gauges": {},
            "histograms": {},
        }
        assert "timed" not in to_prometheus(reg)

    def test_registration_order_does_not_change_bytes(self):
        a = MetricsRegistry()
        a.inc("x", 1)
        a.inc("y", 2)
        b = MetricsRegistry()
        b.inc("y", 2)
        b.inc("x", 1)
        assert to_json(a) == to_json(b)
        assert to_prometheus(a) == to_prometheus(b)


class TestFormats:
    def test_prometheus_shape(self):
        reg = MetricsRegistry()
        reg.inc("solves_total", 3)
        reg.set_gauge("oil_c", 41.25)
        hist = reg.histogram("residuals", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(7.0)
        text = to_prometheus(reg)
        assert "# TYPE solves_total counter\nsolves_total 3\n" in text
        assert "# TYPE oil_c gauge\noil_c 41.25\n" in text
        assert 'residuals_bucket{le="1"} 1' in text
        assert 'residuals_bucket{le="5"} 1' in text
        assert 'residuals_bucket{le="+Inf"} 2' in text
        assert "residuals_sum 7.5" in text
        assert "residuals_count 2" in text
        assert text.endswith("\n")

    def test_integral_floats_render_as_integers(self):
        reg = MetricsRegistry()
        reg.inc("c", 2.0)
        reg.set_gauge("g", 3.0)
        assert '"c":2' in to_json(reg)
        assert "c 2\n" in to_prometheus(reg)
        assert "g 3\n" in to_prometheus(reg)

    def test_json_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        payload = to_json(reg)
        assert payload == json.dumps(
            json.loads(payload), sort_keys=True, separators=(",", ":")
        )


class TestGoldens:
    def test_json_export_matches_golden(self):
        obs = _run_golden_scenario()
        assert to_json(obs) + "\n" == GOLDEN_JSON.read_text()

    def test_prometheus_export_matches_golden(self):
        obs = _run_golden_scenario()
        assert to_prometheus(obs) == GOLDEN_PROM.read_text()


def _regen() -> None:
    obs = _run_golden_scenario()
    GOLDEN_JSON.write_text(to_json(obs) + "\n")
    GOLDEN_PROM.write_text(to_prometheus(obs))
    print(f"wrote {GOLDEN_JSON} and {GOLDEN_PROM}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
