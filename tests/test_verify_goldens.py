"""Checkers versus the pinned goldens — accept all, reject any 5 % tamper.

Property one (acceptance): every committed golden in ``tests/goldens``
passes :meth:`CheckSuite.check_value_spec` against a fresh run of its
builder, with zero violations. Property two (sensitivity): perturb any
single pinned quantity by a seeded 5 % and the checker must flag exactly
that quantity — every pinned rtol is at most 1e-3, fifty times tighter
than the injected error.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.verify import CheckSuite, InvariantViolationError, Tolerances

sys.path.insert(0, str(Path(__file__).parent))
from test_goldens import GOLDEN_BUILDERS, GOLDEN_DIR  # noqa: E402

PERTURBATION = 0.05
SEED = 20260806


def _golden(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.mark.parametrize("name", sorted(GOLDEN_BUILDERS))
def test_committed_goldens_pass_unmodified(name):
    expected = _golden(name)
    measured = {q: spec["value"] for q, spec in GOLDEN_BUILDERS[name]().items()}
    suite = CheckSuite(strict=True)
    suite.check_value_spec(expected, measured, where=name)
    assert suite.ok


@pytest.mark.parametrize("name", sorted(GOLDEN_BUILDERS))
def test_every_quantity_rejects_a_seeded_five_percent_bump(name):
    expected = _golden(name)
    baseline = {q: spec["value"] for q, spec in expected.items()}
    rng = np.random.default_rng(SEED)
    for quantity in sorted(expected):
        sign = 1.0 if rng.integers(0, 2) else -1.0
        tampered = dict(baseline)
        tampered[quantity] = baseline[quantity] * (1.0 + sign * PERTURBATION)
        suite = CheckSuite()
        found = suite.check_value_spec(expected, tampered, where=name)
        assert [v.where for v in found] == [f"{name}.{quantity}"], (
            f"5% perturbation of {name}.{quantity} was not isolated"
        )
        assert all(v.invariant == "golden_consistency" for v in found)


def test_pinned_rtols_leave_margin_below_the_perturbation():
    for name in sorted(GOLDEN_BUILDERS):
        for quantity, spec in _golden(name).items():
            assert spec["rtol"] <= 1e-3, f"{name}.{quantity} rtol too loose"


def test_strict_suite_raises_on_golden_mismatch():
    expected = _golden("rack")
    tampered = {q: spec["value"] for q, spec in expected.items()}
    first = sorted(tampered)[0]
    tampered[first] *= 1.0 + PERTURBATION
    suite = CheckSuite(strict=True, tolerances=Tolerances())
    with pytest.raises(InvariantViolationError):
        suite.check_value_spec(expected, tampered, where="rack")


def test_non_finite_measurement_is_a_violation():
    expected = _golden("skat_steady")
    measured = {q: spec["value"] for q, spec in expected.items()}
    first = sorted(measured)[0]
    measured[first] = float("nan")
    found = CheckSuite().check_value_spec(expected, measured, where="skat_steady")
    assert [v.where for v in found] == [f"skat_steady.{first}"]
