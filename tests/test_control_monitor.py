"""Tests for the telemetry log, run counters and the alarm log."""

import pytest

from repro.control.controller import Alarm, AlarmSeverity
from repro.control.monitor import AlarmLog, TelemetryLog


def _alarm(source="oil", severity=AlarmSeverity.WARNING, message="hot"):
    return Alarm(severity=severity, source=source, message=message)


def filled_log():
    log = TelemetryLog()
    for i in range(5):
        log.record(float(i), {"oil_c": 25.0 + i, "flow": 2.0e-3})
    return log


class TestRecording:
    def test_length(self):
        assert len(filled_log()) == 5

    def test_time_must_not_decrease(self):
        log = filled_log()
        with pytest.raises(ValueError, match="backwards"):
            log.record(1.0, {"oil_c": 20.0})

    def test_equal_times_allowed(self):
        log = filled_log()
        log.record(4.0, {"oil_c": 30.0})
        assert len(log) == 6

    def test_channels_in_first_seen_order(self):
        log = TelemetryLog()
        log.record(0.0, {"b": 1.0})
        log.record(1.0, {"a": 2.0, "b": 3.0})
        assert log.channels == ["b", "a"]


class TestQueries:
    def test_series(self):
        times, values = filled_log().series("oil_c")
        assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(values) == [25.0, 26.0, 27.0, 28.0, 29.0]

    def test_series_skips_missing_samples(self):
        log = TelemetryLog()
        log.record(0.0, {"a": 1.0})
        log.record(1.0, {"b": 2.0})
        log.record(2.0, {"a": 3.0})
        times, values = log.series("a")
        assert list(times) == [0.0, 2.0]
        assert list(values) == [1.0, 3.0]

    def test_unknown_channel(self):
        with pytest.raises(KeyError):
            filled_log().series("nope")

    def test_latest_and_extrema(self):
        log = filled_log()
        assert log.latest("oil_c") == 29.0
        assert log.maximum("oil_c") == 29.0
        assert log.minimum("oil_c") == 25.0

    def test_first_crossing(self):
        log = filled_log()
        assert log.first_crossing("oil_c", 27.0) == 2.0
        assert log.first_crossing("oil_c", 100.0) is None

    def test_summary(self):
        summary = filled_log().summary()
        assert summary["oil_c"] == {"min": 25.0, "max": 29.0, "last": 29.0}
        assert "flow" in summary


class TestSensorDropout:
    """A channel that stops reporting mid-run must not corrupt queries."""

    def dropout_log(self):
        log = TelemetryLog()
        log.record(0.0, {"oil_c": 25.0, "flow": 2.0e-3})
        log.record(1.0, {"oil_c": 26.0, "flow": 2.1e-3})
        log.record(2.0, {"oil_c": 27.0})  # flow sensor drops out
        log.record(3.0, {"oil_c": 28.0})
        log.record(4.0, {"oil_c": 29.0, "flow": 1.9e-3})  # sensor returns
        return log

    def test_series_skips_the_gap(self):
        times, values = self.dropout_log().series("flow")
        assert list(times) == [0.0, 1.0, 4.0]
        assert list(values) == [2.0e-3, 2.1e-3, 1.9e-3]

    def test_latest_is_post_recovery(self):
        assert self.dropout_log().latest("flow") == 1.9e-3

    def test_extrema_span_the_gap(self):
        log = self.dropout_log()
        assert log.maximum("flow") == 2.1e-3
        assert log.minimum("flow") == 1.9e-3

    def test_permanent_dropout_keeps_last_value(self):
        log = TelemetryLog()
        log.record(0.0, {"level": 1.0})
        log.record(1.0, {"level": 0.9})
        log.record(2.0, {})  # level sensor dead from here on
        log.record(3.0, {})
        assert log.latest("level") == 0.9
        assert log.first_crossing("level", 0.95) == 0.0

    def test_summary_only_covers_reported_samples(self):
        summary = self.dropout_log().summary()
        assert summary["flow"]["last"] == 1.9e-3
        assert summary["oil_c"]["last"] == 29.0


class TestCounters:
    def test_increment_accumulates(self):
        log = TelemetryLog()
        log.increment("cache_hits")
        log.increment("cache_hits", 4.0)
        assert log.counter("cache_hits") == 5.0

    def test_untouched_counter_reads_zero(self):
        assert TelemetryLog().counter("nope") == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError, match="accumulate"):
            TelemetryLog().increment("x", -1.0)

    def test_empty_name_rejected(self):
        log = TelemetryLog()
        with pytest.raises(ValueError, match="non-empty"):
            log.increment("")
        with pytest.raises(ValueError, match="non-empty"):
            log.set_counters({"": 1.0})

    def test_set_counters_replaces(self):
        log = TelemetryLog()
        log.increment("solves", 3.0)
        log.set_counters({"solves": 10.0, "fallbacks": 1.0})
        assert log.counter("solves") == 10.0
        assert log.counter("fallbacks") == 1.0

    def test_counters_property_is_a_copy(self):
        log = TelemetryLog()
        log.increment("solves")
        snapshot = log.counters
        snapshot["solves"] = 99.0
        assert log.counter("solves") == 1.0

    def test_summary_includes_counters_only_when_present(self):
        log = filled_log()
        assert "counters" not in log.summary()
        log.increment("cache_hits", 2.0)
        assert log.summary()["counters"] == {"cache_hits": 2.0}


class TestAlarmLog:
    def test_repeats_deduplicate_into_one_episode(self):
        log = AlarmLog()
        for t in range(5):
            log.observe(float(t), [_alarm()])
        assert log.episodes == 1

    def test_clear_and_retrip_is_a_new_episode(self):
        log = AlarmLog()
        log.observe(0.0, [_alarm()])
        log.observe(1.0, [])  # condition clears
        fresh = log.observe(2.0, [_alarm()])
        assert log.episodes == 2
        assert len(fresh) == 1

    def test_severity_escalation_is_a_new_episode(self):
        log = AlarmLog()
        log.observe(0.0, [_alarm(severity=AlarmSeverity.WARNING)])
        log.observe(1.0, [_alarm(severity=AlarmSeverity.CRITICAL)])
        assert log.episodes == 2

    def test_distinct_sources_tracked_independently(self):
        log = AlarmLog()
        log.observe(0.0, [_alarm(source="oil"), _alarm(source="flow")])
        log.observe(1.0, [_alarm(source="oil"), _alarm(source="flow")])
        assert log.episodes == 2
        assert log.episodes_from("oil") == 1
        assert log.episodes_from("flow") == 1

    def test_same_key_within_one_cycle_collapses(self):
        log = AlarmLog()
        log.observe(0.0, [_alarm(message="a"), _alarm(message="b")])
        assert log.episodes == 1

    def test_time_must_not_go_backwards(self):
        log = AlarmLog()
        log.observe(5.0, [])
        with pytest.raises(ValueError, match="backwards"):
            log.observe(4.0, [])

    def test_history_records_times(self):
        log = AlarmLog()
        log.observe(0.0, [])
        log.observe(7.0, [_alarm()])
        assert [r.time_s for r in log.history] == [7.0]

    def test_active_reflects_last_observation(self):
        log = AlarmLog()
        log.observe(0.0, [_alarm()])
        assert log.active == {("oil", "warning")}
        log.observe(1.0, [])
        assert log.active == set()
