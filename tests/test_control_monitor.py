"""Tests for the telemetry log."""

import pytest

from repro.control.monitor import TelemetryLog


def filled_log():
    log = TelemetryLog()
    for i in range(5):
        log.record(float(i), {"oil_c": 25.0 + i, "flow": 2.0e-3})
    return log


class TestRecording:
    def test_length(self):
        assert len(filled_log()) == 5

    def test_time_must_not_decrease(self):
        log = filled_log()
        with pytest.raises(ValueError, match="backwards"):
            log.record(1.0, {"oil_c": 20.0})

    def test_equal_times_allowed(self):
        log = filled_log()
        log.record(4.0, {"oil_c": 30.0})
        assert len(log) == 6

    def test_channels_in_first_seen_order(self):
        log = TelemetryLog()
        log.record(0.0, {"b": 1.0})
        log.record(1.0, {"a": 2.0, "b": 3.0})
        assert log.channels == ["b", "a"]


class TestQueries:
    def test_series(self):
        times, values = filled_log().series("oil_c")
        assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(values) == [25.0, 26.0, 27.0, 28.0, 29.0]

    def test_series_skips_missing_samples(self):
        log = TelemetryLog()
        log.record(0.0, {"a": 1.0})
        log.record(1.0, {"b": 2.0})
        log.record(2.0, {"a": 3.0})
        times, values = log.series("a")
        assert list(times) == [0.0, 2.0]
        assert list(values) == [1.0, 3.0]

    def test_unknown_channel(self):
        with pytest.raises(KeyError):
            filled_log().series("nope")

    def test_latest_and_extrema(self):
        log = filled_log()
        assert log.latest("oil_c") == 29.0
        assert log.maximum("oil_c") == 29.0
        assert log.minimum("oil_c") == 25.0

    def test_first_crossing(self):
        log = filled_log()
        assert log.first_crossing("oil_c", 27.0) == 2.0
        assert log.first_crossing("oil_c", 100.0) is None

    def test_summary(self):
        summary = filled_log().summary()
        assert summary["oil_c"] == {"min": 25.0, "max": 29.0, "last": 29.0}
        assert "flow" in summary
