"""Determinism and shrinking guarantees of the scenario fuzzer.

The fuzzer's whole value is reproducibility: the same seed must emit a
byte-identical scenario stream on any machine and any backend, a failure
must shrink to the same minimal artifact every time, and that artifact
must replay to the same violation after a round-trip through disk.
"""

import dataclasses
import json

import pytest

from repro.verify import (
    FuzzScenario,
    InvariantViolationError,
    Tolerances,
    generate_scenarios,
    run_fuzz,
    run_scenario,
    scenario_stream_digest,
    shrink_scenario,
    write_repro_artifact,
)
from repro.verify import fuzz
from repro.verify.fuzz import canonical_json

SEED = 1337

#: Impossible tolerance — every energy-balance comparison fails, giving the
#: shrink/replay tests a deterministic "bug" to reproduce without having to
#: break the simulators.
BROKEN = Tolerances(energy_abs_c=-1.0, energy_rel=0.0)


class TestDeterminism:
    def test_same_seed_yields_a_byte_identical_stream(self):
        first = generate_scenarios(SEED, 24)
        second = generate_scenarios(SEED, 24)
        assert [s.to_json() for s in first] == [s.to_json() for s in second]
        assert scenario_stream_digest(first) == scenario_stream_digest(second)

    def test_different_seeds_differ(self):
        assert scenario_stream_digest(
            generate_scenarios(SEED, 24)
        ) != scenario_stream_digest(generate_scenarios(SEED + 1, 24))

    def test_prefix_stability(self):
        """Asking for more scenarios never changes the ones already drawn."""
        short = generate_scenarios(SEED, 6)
        long = generate_scenarios(SEED, 12)
        assert [s.to_json() for s in long[:6]] == [s.to_json() for s in short]

    def test_scenario_round_trips_through_dict_and_json(self):
        for scenario in generate_scenarios(SEED, 9):
            assert FuzzScenario.from_dict(scenario.to_dict()) == scenario
            assert (
                FuzzScenario.from_dict(json.loads(scenario.to_json())) == scenario
            )

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_agree_with_serial(self, backend):
        serial = run_fuzz(SEED, 9, backend="serial")
        other = run_fuzz(SEED, 9, backend=backend, max_workers=2)
        assert serial.ok and other.ok
        assert other.scenario_digest == serial.scenario_digest
        assert other.results == serial.results
        assert other.checks_run == serial.checks_run

    def test_report_serializes(self):
        report = run_fuzz(SEED, 3)
        payload = json.loads(report.to_json())
        assert payload["seed"] == SEED
        assert payload["n_scenarios"] == 3
        assert payload["violations"] == []

    def test_strict_mode_raises_under_broken_tolerances(self):
        with pytest.raises(InvariantViolationError) as err:
            run_fuzz(SEED, 3, tolerances=BROKEN, strict=True)
        assert err.value.violations

    def test_broken_tolerances_surface_per_scenario_violations(self):
        report = run_fuzz(SEED, 3, tolerances=BROKEN)
        assert not report.ok
        assert all("scenario" in v for v in report.violations)


class TestBatchParity:
    """The batched run_many path is byte-identical to per-object runs."""

    def test_batched_report_matches_per_object(self):
        never = run_fuzz(SEED, 18, batch="never")
        auto = run_fuzz(SEED, 18, batch="auto")
        assert auto.to_json() == never.to_json()
        assert auto.scenario_digest == never.scenario_digest

    def test_module_only_stream_batches_end_to_end(self):
        never = run_fuzz(SEED, 12, levels=("module",), batch="never")
        always = run_fuzz(SEED, 12, levels=("module",), batch="always")
        assert always.to_json() == never.to_json()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batched_path_agrees_across_backends(self, backend):
        serial = run_fuzz(SEED, 12, batch="auto")
        other = run_fuzz(SEED, 12, backend=backend, batch="auto", max_workers=2)
        assert other.results == serial.results
        assert other.checks_run == serial.checks_run

    def test_broken_tolerances_surface_identically_when_batched(self):
        never = run_fuzz(SEED, 9, tolerances=BROKEN, batch="never")
        auto = run_fuzz(SEED, 9, tolerances=BROKEN, batch="auto")
        assert not never.ok
        assert auto.to_json() == never.to_json()

    def test_always_without_batchable_scenarios_raises(self):
        with pytest.raises(ValueError):
            run_fuzz(SEED, 3, levels=("facility",), batch="always")

    def test_only_open_loop_module_scenarios_are_batchable(self):
        scenarios = generate_scenarios(SEED, 30)
        batchable = [s for s in scenarios if fuzz._batchable(s)]
        assert batchable, "stream should contain open-loop module scenarios"
        for scenario in batchable:
            assert scenario.level == "module"
            assert not scenario.supervised
            assert not any(e.kind == "sensor_fault" for e in scenario.events)

    def test_shrink_artifacts_identical_under_batched_evaluation(self, tmp_path):
        """Shrinking with the batched evaluator as the oracle yields the
        same minimal scenario — and the same artifact bytes — as the
        per-object oracle (same scenario digests, same shrink artifacts)."""
        from repro.sweep import SweepCase
        from repro.sweep.batched import SERIAL_FALLBACK
        from repro.verify.fuzz import fuzz_module_batch

        broken = dataclasses.asdict(BROKEN)

        def batched_record(scenario):
            case = SweepCase(
                name=scenario.name,
                params={"scenario": scenario.to_dict(), "tolerances": broken},
            )
            (record,) = fuzz_module_batch([case])
            assert record is not SERIAL_FALLBACK
            return record

        scenario = next(
            s
            for s in generate_scenarios(SEED, 30)
            if fuzz._batchable(s)
            and run_scenario(s, tolerances=BROKEN)["violations"]
        )
        serial_shrunk = shrink_scenario(
            scenario,
            lambda s: bool(run_scenario(s, tolerances=BROKEN)["violations"]),
        )
        batched_shrunk = shrink_scenario(
            scenario, lambda s: bool(batched_record(s)["violations"])
        )
        assert batched_shrunk == serial_shrunk
        serial_path = tmp_path / "serial.json"
        batched_path = tmp_path / "batched.json"
        write_repro_artifact(str(serial_path), serial_shrunk)
        write_repro_artifact(str(batched_path), batched_shrunk)
        assert serial_path.read_bytes() == batched_path.read_bytes()


class TestShrinking:
    def _failing_scenario(self):
        for scenario in generate_scenarios(SEED, 12):
            if run_scenario(scenario, tolerances=BROKEN)["violations"]:
                return scenario
        raise AssertionError("no scenario tripped the broken tolerances")

    @staticmethod
    def _reproduces(scenario):
        return bool(run_scenario(scenario, tolerances=BROKEN)["violations"])

    def test_shrink_is_deterministic(self):
        scenario = self._failing_scenario()
        first = shrink_scenario(scenario, self._reproduces)
        second = shrink_scenario(scenario, self._reproduces)
        assert first == second
        assert first.to_json() == second.to_json()

    def test_shrunk_scenario_still_replays_the_violation(self):
        scenario = self._failing_scenario()
        original = run_scenario(scenario, tolerances=BROKEN)["violations"]
        shrunk = shrink_scenario(scenario, self._reproduces)
        replayed = run_scenario(shrunk, tolerances=BROKEN)["violations"]
        assert replayed
        assert replayed[0]["invariant"] == original[0]["invariant"]
        assert shrunk.duration_s <= scenario.duration_s
        assert len(shrunk.events) <= len(scenario.events)

    def test_shrink_with_synthetic_predicate_reaches_the_floor(self):
        scenario = next(
            s for s in generate_scenarios(SEED, 12) if s.level == "facility"
        )
        shrunk = shrink_scenario(scenario, lambda s: True)
        assert shrunk.events == ()
        assert shrunk.n_racks == 2
        assert shrunk.n_modules == 2
        assert shrunk.duration_s >= 2.0 * shrunk.dt_s

    def test_shrinking_a_passing_scenario_is_a_caller_bug(self):
        scenario = generate_scenarios(SEED, 1)[0]
        with pytest.raises(ValueError):
            shrink_scenario(scenario, lambda s: False)


class TestArtifacts:
    def test_artifact_round_trips_and_replays(self, tmp_path):
        scenario = generate_scenarios(SEED, 3)[1]
        violations = run_scenario(scenario, tolerances=BROKEN)["violations"]
        path = tmp_path / "repro.json"
        text = write_repro_artifact(str(path), scenario, violations)
        payload = json.loads(path.read_text())
        assert payload == json.loads(text)
        restored = FuzzScenario.from_dict(payload["scenario"])
        assert restored == scenario
        assert payload["violations"] == list(violations)
        # Canonical form: writing the restored scenario is byte-identical.
        again = tmp_path / "again.json"
        write_repro_artifact(str(again), restored, violations)
        assert again.read_text() == path.read_text()
