"""Tests for the fault-tolerant sweep execution harness.

Covers the four pillars — checkpoint/resume byte-identity, per-case
deadlines + worker-crash recovery with bisection, retry + quarantine,
and the backend demotion ladder — plus the mid-sweep KeyboardInterrupt
contract on all three backends (partial outcomes checkpointed, no
orphaned worker processes, resume byte-identical to uninterrupted).

Every evaluation function is module-level (the process backend pickles
them by reference); filesystem sentinels stand in for "the first time
this happened" state that must survive a killed worker.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.sweep import (
    BatchedSweepFn,
    HarnessConfig,
    HarnessError,
    CheckpointMismatchError,
    SweepCase,
    load_quarantine,
    replay_quarantined,
    run_sweep,
    run_sweep_batched,
    run_sweep_resilient,
    sweep_cases,
    sweep_digest,
)
from repro.sweep.harness import classify_failure


# -- module-level evaluation functions (picklable) ---------------------


def square(case):
    return case.params["x"] ** 2


def tupled(case):
    # Tuples do not survive a JSON round trip — exercises the pickle
    # encoding of checkpointed values.
    return (case.params["x"], case.params["x"] + 1)


def sleep_on_three(case):
    if case.params["x"] == 3:
        time.sleep(60.0)
    return case.params["x"] * 10


def kill_worker_on_two_once(case):
    x = case.params["x"]
    if x == 2:
        sentinel = Path(case.params["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("crashed once\n")
            os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def kill_any_worker_process(case):
    # Dies whenever it runs in a process other than the one recorded in
    # params — i.e. always in a pool worker, never after thread demotion.
    if os.getpid() != case.params["main_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return case.params["x"] + 1


def succeed_on_retry(case):
    if case.params.get("harness_attempt", 0) >= 1:
        return "recovered"
    raise ValueError("needs a relaxed tolerance")


def always_non_finite(case):
    raise FloatingPointError("junction temperature is NaN")


def interrupt_on_target(case):
    x = case.params["x"]
    if x == case.params["target"]:
        sentinel = Path(case.params["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("interrupted\n")
            raise KeyboardInterrupt
    return x + 100


def batch_squares(cases):
    return [case.params["x"] ** 2 for case in cases]


def _cases(n, **extra):
    return [
        SweepCase(name=f"x={x}", params={"x": x, **extra}) for x in range(n)
    ]


def _assert_no_orphans(timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()  # also reaps zombies
        if not children:
            return
        time.sleep(0.05)
    pytest.fail(f"orphaned worker processes: {multiprocessing.active_children()}")


# -- digest ------------------------------------------------------------


class TestDigest:
    def test_stable_across_calls(self):
        cases = _cases(4)
        a = sweep_digest(square, cases, "serial", 2)
        b = sweep_digest(square, list(cases), "serial", 2)
        assert a == b and len(a) == 64

    def test_sensitive_to_everything(self):
        cases = _cases(4)
        base = sweep_digest(square, cases, "serial", 2)
        assert sweep_digest(tupled, cases, "serial", 2) != base
        assert sweep_digest(square, cases[:3], "serial", 2) != base
        assert sweep_digest(square, cases, "thread", 2) != base
        assert sweep_digest(square, cases, "serial", 3) != base

    def test_handles_non_json_params(self):
        cases = [
            SweepCase(name="c", params={"fn": square, "t": (1, 2), "o": object()})
        ]
        a = sweep_digest(square, cases, "serial", 1)
        assert a == sweep_digest(square, cases, "serial", 1)


# -- checkpoint / resume ----------------------------------------------


class TestCheckpointResume:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_parity_with_plain_run_sweep(self, backend, tmp_path):
        cases = _cases(9)
        with use_registry(MetricsRegistry()) as obs:
            plain = run_sweep(square, cases, backend=backend, max_workers=2)
            plain_metrics = to_json(obs, exclude=("harness_",))
        with use_registry(MetricsRegistry()) as obs:
            harnessed = run_sweep(
                square,
                cases,
                backend=backend,
                max_workers=2,
                harness=HarnessConfig(
                    checkpoint=tmp_path / "ckpt.json", checkpoint_every=4
                ),
            )
            harness_metrics = to_json(obs, exclude=("harness_",))
        assert [(o.index, o.case, o.value) for o in harnessed] == [
            (o.index, o.case, o.value) for o in plain
        ]
        assert harness_metrics == plain_metrics

    def test_full_resume_reruns_nothing(self, tmp_path):
        cases = _cases(6)
        config = HarnessConfig(checkpoint=tmp_path / "c.json", checkpoint_every=2)
        with use_registry(MetricsRegistry()) as obs:
            first = run_sweep_resilient(square, cases, config=config)
            first_metrics = to_json(obs)
        resume = HarnessConfig(
            checkpoint=tmp_path / "c.json", resume=True, checkpoint_every=2
        )
        with use_registry(MetricsRegistry()) as obs:
            second = run_sweep_resilient(square, cases, config=resume)
            second_metrics = to_json(obs)
        assert second.resumed_cases == 6
        assert [o.value for o in second.outcomes] == [o.value for o in first.outcomes]
        assert second_metrics == first_metrics

    def test_non_json_values_round_trip(self, tmp_path):
        cases = _cases(4)
        config = HarnessConfig(checkpoint=tmp_path / "c.json", checkpoint_every=2)
        run_sweep_resilient(tupled, cases, config=config)
        resume = HarnessConfig(
            checkpoint=tmp_path / "c.json", resume=True, checkpoint_every=2
        )
        result = run_sweep_resilient(tupled, cases, config=resume)
        assert [o.value for o in result.outcomes] == [(x, x + 1) for x in range(4)]
        assert all(isinstance(o.value, tuple) for o in result.outcomes)

    def test_digest_mismatch_refused(self, tmp_path):
        config = HarnessConfig(checkpoint=tmp_path / "c.json", checkpoint_every=2)
        run_sweep_resilient(square, _cases(4), config=config)
        resume = HarnessConfig(
            checkpoint=tmp_path / "c.json", resume=True, checkpoint_every=2
        )
        with pytest.raises(CheckpointMismatchError, match="refusing to resume"):
            run_sweep_resilient(square, _cases(5), config=resume)

    def test_missing_checkpoint_starts_fresh(self, tmp_path):
        resume = HarnessConfig(checkpoint=tmp_path / "nope.json", resume=True)
        result = run_sweep_resilient(square, _cases(3), config=resume)
        assert result.resumed_cases == 0
        assert [o.value for o in result.outcomes] == [0, 1, 4]

    def test_checkpoint_is_canonical_json(self, tmp_path):
        config = HarnessConfig(checkpoint=tmp_path / "c.json", checkpoint_every=2)
        run_sweep_resilient(square, _cases(4), config=config)
        raw = (tmp_path / "c.json").read_text()
        payload = json.loads(raw)
        assert raw == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert payload["version"] == 1
        assert len(payload["waves"]) == 2

    def test_empty_sweep(self):
        result = run_sweep_resilient(square, [])
        assert result.outcomes == () and result.ok


# -- mid-sweep KeyboardInterrupt (satellite 3) -------------------------


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestKeyboardInterrupt:
    def test_partial_checkpoint_no_orphans_resume_byte_identical(
        self, backend, tmp_path
    ):
        sentinel = tmp_path / "sentinel"
        cases = _cases(8, sentinel=str(sentinel), target=5)
        config = HarnessConfig(
            checkpoint=tmp_path / "ckpt.json", checkpoint_every=2
        )
        with use_registry(MetricsRegistry()):
            with pytest.raises(KeyboardInterrupt):
                run_sweep_resilient(
                    interrupt_on_target,
                    cases,
                    backend=backend,
                    max_workers=2,
                    config=config,
                )
        _assert_no_orphans()
        # Completed waves made it to disk; the interrupted one did not.
        payload = json.loads((tmp_path / "ckpt.json").read_text())
        n_waves = len(payload["waves"])
        assert 1 <= n_waves < 4
        assert sentinel.exists()

        # Resume: the sentinel exists now, so the target case completes.
        resume = HarnessConfig(
            checkpoint=tmp_path / "ckpt.json", resume=True, checkpoint_every=2
        )
        with use_registry(MetricsRegistry()) as obs:
            resumed = run_sweep_resilient(
                interrupt_on_target,
                cases,
                backend=backend,
                max_workers=2,
                config=resume,
            )
            resumed_metrics = to_json(obs)
        assert resumed.resumed_cases == 2 * n_waves

        # Uninterrupted reference over identical inputs (sentinel still
        # present), different checkpoint file: byte-identical outcomes
        # and metric export.
        reference = HarnessConfig(
            checkpoint=tmp_path / "ref.json", checkpoint_every=2
        )
        with use_registry(MetricsRegistry()) as obs:
            ref = run_sweep_resilient(
                interrupt_on_target,
                cases,
                backend=backend,
                max_workers=2,
                config=reference,
            )
            ref_metrics = to_json(obs)
        assert [(o.index, o.case, o.value, o.error) for o in resumed.outcomes] == [
            (o.index, o.case, o.value, o.error) for o in ref.outcomes
        ]
        assert resumed_metrics == ref_metrics


# -- deadlines, crashes, bisection ------------------------------------


class TestProcessSupervision:
    def test_hung_case_deadline_killed_and_quarantined(self, tmp_path):
        cases = _cases(6)
        config = HarnessConfig(
            checkpoint=tmp_path / "c.json",
            timeout_s=0.5,
            retries=0,
            quarantine=tmp_path / "quarantine.json",
        )
        with use_registry(MetricsRegistry()) as obs:
            result = run_sweep_resilient(
                sleep_on_three, cases, backend="process", max_workers=2,
                config=config,
            )
            counters = obs.as_dict()["counters"]
        _assert_no_orphans()
        # The hung case is a structured failure; the other five completed.
        assert [o.ok for o in result.outcomes] == [
            True, True, True, False, True, True,
        ]
        assert "CaseDeadlineError" in result.outcomes[3].error
        assert [o.value for o in result.outcomes if o.ok] == [0, 10, 20, 40, 50]
        assert len(result.quarantined) == 1
        record = result.quarantined[0]
        assert record.taxonomy == "timeout"
        assert record.index == 3
        assert counters["harness_deadline_kills_total"] == 1
        assert counters["harness_quarantined_total"] == 1
        assert counters["harness_pool_respawns_total"] >= 1
        # The artifact replays: the rebuilt case is the original.
        loaded = load_quarantine(tmp_path / "quarantine.json")
        assert len(loaded) == 1
        assert loaded[0].rebuild_case() == cases[3]

    def test_killed_worker_recovered_by_bisection(self, tmp_path):
        sentinel = tmp_path / "crash-sentinel"
        cases = _cases(8, sentinel=str(sentinel))
        with use_registry(MetricsRegistry()) as obs:
            result = run_sweep_resilient(
                kill_worker_on_two_once,
                cases,
                backend="process",
                max_workers=2,
                config=HarnessConfig(retries=0),
            )
            counters = obs.as_dict()["counters"]
        _assert_no_orphans()
        # The crash was transient (sentinel flips it off): every case
        # completes, including the killer's innocent shard-mates.
        assert result.ok
        assert [o.value for o in result.outcomes] == [x * 10 for x in range(8)]
        assert counters["harness_pool_respawns_total"] >= 1
        assert counters["harness_bisections_total"] >= 1

    def test_persistent_killer_isolated_as_worker_death(self, tmp_path):
        # x == 2 kills its worker every time it runs. Bisection must
        # isolate exactly that case; its shard-mates must all complete.
        cases = _cases(6)
        with use_registry(MetricsRegistry()):
            result = run_sweep_resilient(
                _persistent_killer, cases, backend="process", max_workers=2,
                config=HarnessConfig(retries=0, quarantine=tmp_path / "q.json"),
            )
        _assert_no_orphans()
        assert [o.ok for o in result.outcomes] == [
            True, True, False, True, True, True,
        ]
        assert "WorkerCrashError" in result.outcomes[2].error
        assert result.quarantined[0].taxonomy == "worker-death"


def _persistent_killer(case):
    if case.params["x"] == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return case.params["x"]


# -- retry + quarantine ------------------------------------------------


class TestRetryQuarantine:
    def test_retry_succeeds_via_relaxation_param(self):
        cases = [SweepCase(name="flaky", params={})]
        with use_registry(MetricsRegistry()) as obs:
            result = run_sweep_resilient(
                succeed_on_retry, cases, config=HarnessConfig(retries=2)
            )
            counters = obs.as_dict()["counters"]
        assert result.ok
        assert result.outcomes[0].value == "recovered"
        assert counters["harness_retries_total"] == 1
        assert counters["harness_retry_successes_total"] == 1
        assert counters.get("harness_quarantined_total", 0) == 0

    def test_persistent_failure_quarantined_with_taxonomy(self, tmp_path):
        cases = _cases(3)
        config = HarnessConfig(retries=2, quarantine=tmp_path / "q.json")
        with use_registry(MetricsRegistry()) as obs:
            result = run_sweep_resilient(always_non_finite, cases, config=config)
            counters = obs.as_dict()["counters"]
        assert not result.ok
        assert len(result.quarantined) == 3
        assert all(q.taxonomy == "non-finite" for q in result.quarantined)
        assert all(
            "FloatingPointError" in t
            for q in result.quarantined
            for t in q.error_types
        )
        assert all(q.attempts == 3 for q in result.quarantined)
        assert counters["harness_quarantined_total"] == 3
        assert counters["harness_quarantined_non_finite_total"] == 3

    def test_quarantine_artifact_replays(self, tmp_path):
        cases = _cases(3)
        config = HarnessConfig(retries=0, quarantine=tmp_path / "q.json")
        run_sweep_resilient(always_non_finite, cases, config=config)
        raw = (tmp_path / "q.json").read_text()
        payload = json.loads(raw)
        assert raw == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ) + "\n"
        outcomes = replay_quarantined(square, tmp_path / "q.json")
        assert [o.value for o in outcomes] == [0, 1, 4]

    def test_run_sweep_raises_harness_error_after_completion(self, tmp_path):
        cases = _cases(3)
        with pytest.raises(HarnessError, match="failed after harness"):
            run_sweep(
                always_non_finite,
                cases,
                backend="serial",
                harness=HarnessConfig(retries=0, checkpoint=tmp_path / "c.json"),
            )
        # The failing sweep still checkpointed every wave.
        assert (tmp_path / "c.json").exists()


# -- demotion ladder ---------------------------------------------------


class TestDemotion:
    def test_process_demotes_to_thread_when_budget_spent(self):
        cases = [
            SweepCase(name=f"x={x}", params={"x": x, "main_pid": os.getpid()})
            for x in range(4)
        ]
        with use_registry(MetricsRegistry()) as obs:
            result = run_sweep_resilient(
                kill_any_worker_process,
                cases,
                backend="process",
                max_workers=2,
                config=HarnessConfig(max_pool_respawns=0, retries=0),
            )
            counters = obs.as_dict()["counters"]
        _assert_no_orphans()
        assert result.ok
        assert [o.value for o in result.outcomes] == [1, 2, 3, 4]
        assert "process->thread" in result.demotions
        assert counters["harness_demotions_total"] >= 1

    def test_demotion_disabled_raises(self):
        cases = [
            SweepCase(name=f"x={x}", params={"x": x, "main_pid": os.getpid()})
            for x in range(4)
        ]
        with pytest.raises(HarnessError, match="demotion is disabled"):
            run_sweep_resilient(
                kill_any_worker_process,
                cases,
                backend="process",
                max_workers=2,
                config=HarnessConfig(max_pool_respawns=0, demote=False),
            )
        _assert_no_orphans()


# -- taxonomy ----------------------------------------------------------


class TestTaxonomy:
    def test_buckets(self):
        assert classify_failure(["x.CaseDeadlineError"], None) == "timeout"
        assert classify_failure(["x.WorkerCrashError"], None) == "worker-death"
        assert classify_failure(["builtins.FloatingPointError"], None) == "non-finite"
        assert classify_failure([], "ValueError('went to nan')") == "non-finite"
        assert (
            classify_failure([], "RuntimeError('failed to converge')")
            == "non-convergence"
        )
        assert classify_failure(["m.ConvergenceError"], None) == "non-convergence"
        assert classify_failure(["builtins.KeyError"], "KeyError('z')") == "error"

    def test_type_dominates_text(self):
        # A deadline whose repr mentions nan still classifies as timeout.
        assert (
            classify_failure(["x.CaseDeadlineError"], "deadline at nan")
            == "timeout"
        )


# -- config validation -------------------------------------------------


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            HarnessConfig(checkpoint_every=0)
        with pytest.raises(ValueError):
            HarnessConfig(timeout_s=0.0)
        with pytest.raises(ValueError):
            HarnessConfig(retries=-1)
        with pytest.raises(ValueError):
            HarnessConfig(max_pool_respawns=-1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown harness backend"):
            run_sweep_resilient(square, _cases(2), backend="quantum")


# -- batched dispatch through the harness ------------------------------


class TestBatchedHarness:
    def test_parity_and_resume(self, tmp_path):
        cases = sweep_cases(x=list(range(10)))
        spec = BatchedSweepFn(serial=square, batch=batch_squares)
        plain = run_sweep_batched(spec, cases, batch_size=3, backend="serial")
        config = HarnessConfig(checkpoint=tmp_path / "c.json", checkpoint_every=2)
        harnessed = run_sweep_batched(
            spec, cases, batch_size=3, backend="serial", harness=config
        )
        assert [o.value for o in harnessed] == [o.value for o in plain]
        # Waves checkpoint whole batches: 4 batches / 2 per wave = 2 waves.
        payload = json.loads((tmp_path / "c.json").read_text())
        assert len(payload["waves"]) == 2
        resumed = run_sweep_batched(
            spec,
            cases,
            batch_size=3,
            backend="serial",
            harness=HarnessConfig(
                checkpoint=tmp_path / "c.json", resume=True, checkpoint_every=2
            ),
        )
        assert [o.value for o in resumed] == [o.value for o in plain]


class TestMonteCarloKillResume:
    """SIGKILL a checkpointed Monte Carlo campaign mid-wave; the resumed
    run's export must be byte-identical to an uninterrupted reference.

    Exercises the real CLI (``scripts/run_montecarlo.py``) on the process
    backend so the kill takes down an actual worker pool, not a mock: a
    facility-level campaign of 90 evaluations in 18 batches checkpoints
    every 2 batches (9 waves), the driver watches the checkpoint file and
    kills the whole process group about halfway through.
    """

    SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "run_montecarlo.py"

    @classmethod
    def _cli(cls, out, checkpoint=None, resume=False):
        argv = [
            sys.executable,
            str(cls.SCRIPT),
            "--level", "facility",
            "--samples", "90",
            "--seed", "7",
            "--backend", "process",
            "--batch-size", "5",
            "--out", str(out),
        ]
        if checkpoint is not None:
            argv += ["--checkpoint", str(checkpoint), "--checkpoint-every", "2"]
        if resume:
            argv.append("--resume")
        return argv

    @staticmethod
    def _env():
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    @staticmethod
    def _waves_on_disk(checkpoint):
        try:
            return len(json.loads(checkpoint.read_text())["waves"])
        except (OSError, ValueError, KeyError):
            return 0

    def test_sigkill_mid_campaign_resumes_byte_identically(self, tmp_path):
        env = self._env()
        total_waves = 9

        # 1. Uninterrupted reference, no harness in the loop.
        reference = tmp_path / "reference.json"
        subprocess.run(
            self._cli(reference), env=env, check=True, capture_output=True
        )

        # 2. Victim in its own process group: one SIGKILL takes down the
        # CLI and its pool workers together, like a node loss would.
        checkpoint = tmp_path / "mc-ckpt.json"
        victim_out = tmp_path / "victim.json"
        victim = subprocess.Popen(
            self._cli(victim_out, checkpoint=checkpoint),
            env=env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        killed = False
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if self._waves_on_disk(checkpoint) >= total_waves // 2:
                    os.killpg(victim.pid, signal.SIGKILL)
                    killed = True
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.01)
            victim.wait(timeout=30.0)
        finally:
            if victim.poll() is None:
                os.killpg(victim.pid, signal.SIGKILL)
        assert killed, "campaign finished before the kill could land"
        waves_at_kill = self._waves_on_disk(checkpoint)
        assert 0 < waves_at_kill < total_waves, "kill was not mid-campaign"
        assert not victim_out.exists(), "killed run must not have exported"

        # 3. Resume from the checkpoint and diff the export bytes.
        resumed_out = tmp_path / "resumed.json"
        subprocess.run(
            self._cli(resumed_out, checkpoint=checkpoint, resume=True),
            env=env,
            check=True,
            capture_output=True,
        )
        assert resumed_out.read_bytes() == reference.read_bytes()
