"""Hypothesis property tests for the hydraulic substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.hydraulics.elements import (
    HeatExchangerPassage,
    Pipe,
    Pump,
    PumpCurve,
)
from repro.hydraulics.network import HydraulicNetwork
from repro.hydraulics.solver import solve_network


@given(
    q=st.floats(min_value=1e-6, max_value=1e-2),
    length=st.floats(min_value=0.1, max_value=20.0),
    diameter=st.floats(min_value=0.005, max_value=0.1),
)
@settings(max_examples=80)
def test_pipe_loss_odd_and_monotone(q, length, diameter):
    pipe = Pipe(length_m=length, diameter_m=diameter)
    forward = pipe.pressure_change_pa(q, WATER, 25.0)
    backward = pipe.pressure_change_pa(-q, WATER, 25.0)
    assert forward < 0
    assert backward == pytest.approx(-forward, rel=1e-9)
    # Monotone: more flow, more loss.
    assert -pipe.pressure_change_pa(2.0 * q, WATER, 25.0) > -forward


@given(
    shutoff=st.floats(min_value=1e3, max_value=5e5),
    qmax=st.floats(min_value=1e-4, max_value=5e-2),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_pump_curve_inverse_roundtrip(shutoff, qmax, q):
    curve = PumpCurve(shutoff_pressure_pa=shutoff, max_flow_m3_s=qmax)
    flow = q * qmax
    head = curve.head_pa(flow)
    assert curve.flow_at_head_pa(head) == pytest.approx(flow, abs=qmax * 1e-9)


@st.composite
def parallel_loop_networks(draw):
    """A pump feeding 2-6 parallel quadratic branches."""
    n = draw(st.integers(min_value=2, max_value=6))
    resistances = draw(
        st.lists(
            st.floats(min_value=1e8, max_value=1e11), min_size=n, max_size=n
        )
    )
    net = HydraulicNetwork()
    net.add_junction("in")
    net.add_junction("out")
    net.set_reference("in")
    net.add_branch("pump", "in", "out", Pump(PumpCurve(8.0e4, 2.0e-2)))
    for i, r in enumerate(resistances):
        net.add_branch(f"loop_{i}", "out", "in", HeatExchangerPassage(0.0, r))
    return net, n, resistances


@given(data=parallel_loop_networks())
@settings(max_examples=40, deadline=None)
def test_mass_conservation(data):
    net, n, _ = data
    result = solve_network(net, WATER, 25.0)
    total = sum(result.flow(f"loop_{i}") for i in range(n))
    assert result.flow("pump") == pytest.approx(total, rel=1e-6)


@given(data=parallel_loop_networks())
@settings(max_examples=40, deadline=None)
def test_flows_ordered_by_resistance(data):
    net, n, resistances = data
    result = solve_network(net, WATER, 25.0)
    pairs = sorted(zip(resistances, [result.flow(f"loop_{i}") for i in range(n)]))
    flows_by_resistance = [q for _, q in pairs]
    # Lower resistance must never carry less flow.
    for easier, harder in zip(flows_by_resistance, flows_by_resistance[1:]):
        assert easier >= harder - 1e-12


@given(data=parallel_loop_networks())
@settings(max_examples=30, deadline=None)
def test_all_branch_pressure_drops_equal(data):
    """Parallel branches between the same junctions see the same dp — and
    each branch's own characteristic must reproduce it at the solved flow."""
    net, n, _ = data
    result = solve_network(net, WATER, 25.0)
    dp = result.pressure_drop_pa("out", "in")
    for i in range(n):
        branch = net.branch(f"loop_{i}")
        q = result.flow(f"loop_{i}")
        assert -branch.element.pressure_change_pa(q, WATER, 25.0) == pytest.approx(
            dp, rel=1e-6
        )


@given(
    temperature=st.floats(min_value=5.0, max_value=50.0),
    q=st.floats(min_value=1e-5, max_value=5e-3),
)
@settings(max_examples=50)
def test_oil_always_harder_to_pump_than_water(temperature, q):
    """Holds over the machines' operating band. (Above ~70 C the thinned
    oil can stay laminar while water has gone turbulent, and the ordering
    can invert — a real effect, not a model bug.)"""
    pipe = Pipe(length_m=3.0, diameter_m=0.02)
    oil = -pipe.pressure_change_pa(q, MINERAL_OIL_MD45, temperature)
    water = -pipe.pressure_change_pa(q, WATER, temperature)
    assert oil >= water
