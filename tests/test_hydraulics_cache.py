"""Tests for the solver's solution cache, state keys and counters."""

import pytest

from repro.fluids.library import MINERAL_OIL_MD45, WATER
from repro.hydraulics.cache import (
    DEFAULT_TEMPERATURE_BUCKET_C,
    SolutionCache,
    SolverCounters,
    element_state_key,
    network_state_key,
    temperature_bucket,
)
from repro.hydraulics.elements import Pump, PumpCurve, Valve
from repro.hydraulics.network import HydraulicNetwork


def two_loop_network(opening=1.0, speed=1.0):
    net = HydraulicNetwork()
    net.add_junction("in")
    net.add_junction("out")
    net.set_reference("in")
    pump = Pump(PumpCurve(8.0e4, 2.0e-2))
    pump.speed_fraction = speed
    net.add_branch("pump", "in", "out", pump)
    net.add_branch(
        "v0", "out", "in", Valve(k_open=2.0, diameter_m=0.025, opening=opening)
    )
    net.add_branch("v1", "out", "in", Valve(k_open=2.0, diameter_m=0.025))
    return net


class TestTemperatureBucket:
    def test_default_bucket_width(self):
        assert temperature_bucket(20.0) == temperature_bucket(20.1)
        assert temperature_bucket(20.0) != temperature_bucket(20.2)

    def test_bucket_scales(self):
        assert temperature_bucket(20.0, bucket_c=1.0) == temperature_bucket(
            20.4, bucket_c=1.0
        )

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            temperature_bucket(20.0, bucket_c=0.0)


class TestStateKeys:
    def test_same_state_same_key(self):
        key_a = network_state_key(two_loop_network(), WATER, 20.0)
        key_b = network_state_key(two_loop_network(), WATER, 20.05)
        assert key_a == key_b
        assert hash(key_a) == hash(key_b)

    def test_valve_opening_changes_key(self):
        key_a = network_state_key(two_loop_network(opening=1.0), WATER, 20.0)
        key_b = network_state_key(two_loop_network(opening=0.5), WATER, 20.0)
        assert key_a != key_b

    def test_pump_speed_changes_key(self):
        key_a = network_state_key(two_loop_network(speed=1.0), WATER, 20.0)
        key_b = network_state_key(two_loop_network(speed=0.7), WATER, 20.0)
        assert key_a != key_b

    def test_fluid_changes_key(self):
        net = two_loop_network()
        assert network_state_key(net, WATER, 20.0) != network_state_key(
            net, MINERAL_OIL_MD45, 20.0
        )

    def test_temperature_bucket_changes_key(self):
        net = two_loop_network()
        apart = 4 * DEFAULT_TEMPERATURE_BUCKET_C
        assert network_state_key(net, WATER, 20.0) != network_state_key(
            net, WATER, 20.0 + apart
        )

    def test_in_place_mutation_changes_key(self):
        """The key must see element state, not element identity."""
        net = two_loop_network()
        before = network_state_key(net, WATER, 20.0)
        net.branch("v0").element.opening = 0.25
        assert network_state_key(net, WATER, 20.0) != before

    def test_element_key_distinguishes_parameters(self):
        assert element_state_key(
            Valve(k_open=2.0, diameter_m=0.025)
        ) != element_state_key(Valve(k_open=3.0, diameter_m=0.025))


class TestSolutionCache:
    def test_round_trip(self):
        cache = SolutionCache(maxsize=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert "k" in cache and len(cache) == 1

    def test_miss_returns_none(self):
        assert SolutionCache().get("missing") is None

    def test_lru_eviction_order(self):
        cache = SolutionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: b is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_overwrite_refreshes(self):
        cache = SolutionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_clear(self):
        cache = SolutionCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            SolutionCache(maxsize=0)


class TestSolverCounters:
    def test_defaults_zero(self):
        counters = SolverCounters()
        assert all(v == 0 for v in counters.as_dict().values())

    def test_reset(self):
        counters = SolverCounters(solves=5, cache_hits=3, bracket_inversions=7)
        counters.reset()
        assert counters.as_dict() == SolverCounters().as_dict()

    def test_hit_rate(self):
        assert SolverCounters().hit_rate == 0.0
        assert SolverCounters(solves=4, cache_hits=1).hit_rate == 0.25
