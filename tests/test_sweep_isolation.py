"""Order-dependence and isolation tests for the sweep machinery.

Two ways a sweep can silently rot: hidden mutable state that makes the
second run of the same case list differ from the first (warm caches,
latched supervisors, leaked registries), and new module-level mutable
containers that couple cases to each other across an interpreter's
lifetime. The first is tested by running the same matrix repeatedly —
in one process, across backends, and across fresh worker pools — and
demanding identical outcomes and metric exports every time. The second
is an executable audit: every module-level ``dict``/``list``/``set`` in
``repro`` must appear in the pinned read-only allowlist below, and its
contents must be unchanged after a full facility sweep.
"""

import copy
import importlib
import pkgutil

import pytest

import repro
from repro.facility.sweep import evaluate_facility_case, smoke_cases
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.sweep import run_sweep

MATRIX = smoke_cases(racks=2, modules=2, duration_s=100.0, dt_s=20.0)


def run_matrix(backend):
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep(
            evaluate_facility_case, MATRIX, backend=backend, max_workers=2
        )
        export = to_json(obs, exclude=("sweep_backend_",))
    return outcomes, export


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_same_cases_twice_in_one_process(backend):
    """Run N then run N again: byte-identical outcomes and metrics."""
    first = run_matrix(backend)
    second = run_matrix(backend)
    assert second == first


def test_interleaved_backends_do_not_contaminate():
    """serial / process / serial — the bread slices must match."""
    before = run_matrix("serial")
    run_matrix("process")
    after = run_matrix("serial")
    assert after == before


def test_fresh_worker_pools_reproduce():
    """Every process-backend run builds a fresh pool; results must agree."""
    runs = [run_matrix("process") for _ in range(2)]
    assert runs[0] == runs[1]


#: Every module-level mutable container in ``repro``, by (module, name).
#: All are read-only lookup tables or registries populated at import
#: time. Adding a new one is fine — add it here *after* convincing
#: yourself nothing writes to it at run time (a run-time write couples
#: sweep cases to each other and breaks order-independence).
MUTABLE_ALLOWLIST = {
    ("repro.__main__", "COMMANDS"),
    ("repro.analysis.montecarlo", "LEVELS"),
    ("repro.analysis.montecarlo", "_EVALUATORS"),
    ("repro.analysis.uncertainty", "DEFAULT_TOLERANCES"),
    ("repro.batch", "_EXPORTS"),
    ("repro.batch.sweepfns", "_MODULE_FACTORIES"),
    ("repro.configio", "_TIMS"),
    ("repro.core.serviceability", "SERVICE_CATALOG"),
    ("repro.facility.sweep", "SCENARIOS"),
    ("repro.facility.sweep", "WORKLOAD_SCENARIOS"),
    ("repro.hydraulics.curves", "DEFAULT_CATALOG"),
    ("repro.performance.tasks", "OPERATION_COSTS_CELLS"),
    ("repro.resilience.campaign", "_DEFAULT_RATES_PER_HOUR"),
    ("repro.resilience.campaign", "_DEFAULT_REPAIR_HOURS"),
    ("repro.service.asgi", "_JSON"),
    ("repro.service.asgi", "_TEXT"),
    ("repro.service.http", "_REASONS"),
    ("repro.service.requests", "LEVEL_DEFAULTS"),
    ("repro.sweep.backends", "_BACKENDS"),
    ("repro.verify.checkers", "_STATE_NAMES"),
    ("repro.verify.fuzz", "_MAGNITUDE_DECIMALS"),
}


def _module_level_mutables():
    """Every (module, name, value) module-level container, deduped by id.

    Re-exports (``repro.facility.SCENARIOS`` is the same object as
    ``repro.facility.sweep.SCENARIOS``) are attributed to whichever
    allowlisted module claims them, so aliases don't need duplicate
    entries.
    """
    found = {}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        for name, value in vars(module).items():
            if name.startswith("__"):
                continue
            if isinstance(value, (dict, list, set)):
                entry = (info.name, name)
                previous = found.get(id(value))
                if previous is None or (
                    previous not in MUTABLE_ALLOWLIST
                    and entry in MUTABLE_ALLOWLIST
                ):
                    found[id(value)] = entry
    values = {}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        for name, value in vars(module).items():
            if (info.name, name) in found.values() and isinstance(
                value, (dict, list, set)
            ):
                values[(info.name, name)] = value
    return values


def test_module_level_mutable_state_is_allowlisted():
    mutables = _module_level_mutables()
    unexpected = set(mutables) - MUTABLE_ALLOWLIST
    assert not unexpected, (
        f"new module-level mutable container(s) {sorted(unexpected)}; "
        "audit them for run-time writes and extend MUTABLE_ALLOWLIST in "
        "tests/test_sweep_isolation.py"
    )


def test_allowlisted_tables_unchanged_by_sweeps():
    """A full facility sweep must not write to any module-level table."""
    mutables = _module_level_mutables()
    snapshots = {key: copy.deepcopy(value) for key, value in mutables.items()}
    run_matrix("serial")
    run_matrix("process")
    for key, before in snapshots.items():
        after = mutables[key]
        if key == ("repro.sweep.backends", "_BACKENDS"):
            # Instances are stateless singletons; identity of keys suffices.
            assert sorted(after) == sorted(before)
            continue
        assert after == before, f"sweep mutated module-level state {key}"


def test_rack_simulator_back_to_back_runs_identical():
    """One simulator instance, two runs: reset() restores pristine state."""
    from repro.control.supervisor import Supervisor
    from repro.core.rack import Rack
    from repro.core.skat import skat
    from repro.core.racksim import RackSimulator

    simulator = RackSimulator(
        rack=Rack(module_factory=skat, n_modules=2), supervisor=Supervisor()
    )
    first = simulator.run(duration_s=100.0, dt_s=20.0)
    second = simulator.run(duration_s=100.0, dt_s=20.0)
    assert first.max_fpga_c == second.max_fpga_c
    assert first.heat_rejected_j == second.heat_rejected_j
    assert first.recovery_actions == second.recovery_actions
