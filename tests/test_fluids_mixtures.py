"""Tests for the glycol-mixture generator."""

import pytest

from repro.fluids.library import WATER
from repro.fluids.mixtures import (
    MAX_GLYCOL_FRACTION,
    fraction_for_freeze_protection,
    freeze_point_c,
    glycol_mixture,
)


class TestFreezeCurve:
    def test_pure_water_freezes_at_zero(self):
        assert freeze_point_c(0.0) == 0.0

    def test_monotone_decreasing(self):
        points = [freeze_point_c(x) for x in (0.0, 0.2, 0.4, 0.6)]
        assert points == sorted(points, reverse=True)

    def test_30_percent_near_minus_15(self):
        assert freeze_point_c(0.3) == pytest.approx(-15.0, abs=3.0)

    def test_protection_roundtrip(self):
        for target in (-5.0, -15.0, -30.0):
            x = fraction_for_freeze_protection(target)
            assert freeze_point_c(x) == pytest.approx(target, abs=0.01)

    def test_no_protection_needed_above_zero(self):
        assert fraction_for_freeze_protection(5.0) == 0.0

    def test_too_cold_rejected(self):
        with pytest.raises(ValueError, match="validity"):
            fraction_for_freeze_protection(-60.0)


class TestMixtureProperties:
    def test_zero_fraction_is_water(self):
        assert glycol_mixture(0.0) is WATER

    def test_more_glycol_more_viscous(self):
        mu = [glycol_mixture(x).viscosity(20.0) for x in (0.1, 0.3, 0.5)]
        assert mu == sorted(mu)

    def test_more_glycol_less_heat_capacity(self):
        cp = [glycol_mixture(x).specific_heat(20.0) for x in (0.1, 0.3, 0.5)]
        assert cp == sorted(cp, reverse=True)

    def test_more_glycol_denser(self):
        rho = [glycol_mixture(x).density(20.0) for x in (0.1, 0.3, 0.5)]
        assert rho == sorted(rho)

    def test_conductivity_below_water(self):
        assert glycol_mixture(0.4).conductivity(20.0) < WATER.conductivity(20.0)

    def test_mixture_near_library_glycol30(self):
        from repro.fluids.library import GLYCOL30

        generated = glycol_mixture(0.3)
        for accessor in ("density", "specific_heat", "conductivity"):
            lib = getattr(GLYCOL30, accessor)(25.0)
            gen = getattr(generated, accessor)(25.0)
            assert gen == pytest.approx(lib, rel=0.08), accessor

    def test_valid_down_to_near_freeze_point(self):
        blend = glycol_mixture(0.4)
        cold = blend.t_min_c + 0.5
        assert blend.viscosity(cold) > 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            glycol_mixture(MAX_GLYCOL_FRACTION + 0.01)
        with pytest.raises(ValueError):
            glycol_mixture(-0.1)

    def test_not_dielectric(self):
        assert not glycol_mixture(0.3).dielectric
