"""Unit tests for the supervisory graceful-degradation state machine."""

import pytest

from repro.control.supervisor import Supervisor, SupervisorState
from repro.resilience.voting import median_vote


def make_supervisor(**kwargs):
    return Supervisor(**kwargs)


NOMINAL = dict(
    coolant=28.0,
    component_temps_c={"fpga_hot": 55.0},
    flow_m3_s=1.5e-3,
    level_fraction=1.0,
)


class TestNormalOperation:
    def test_nominal_step_stays_normal(self):
        sup = make_supervisor()
        decision = sup.step(0.0, **NOMINAL)
        assert sup.state is SupervisorState.NORMAL
        assert not decision.shutdown
        assert decision.utilization == pytest.approx(0.9)
        assert decision.active_pump == "oil_pump"
        assert decision.new_actions == ()

    def test_plain_float_coolant_accepted(self):
        sup = make_supervisor()
        decision = sup.step(0.0, 28.0, {"fpga_hot": 55.0}, 1.5e-3)
        assert not decision.shutdown


class TestPumpFailover:
    def test_flow_trip_answered_by_failover(self):
        sup = make_supervisor()
        decision = sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        assert not decision.shutdown
        assert decision.active_pump == "standby_pump"
        assert sup.state is SupervisorState.DEGRADED
        assert [a.kind for a in decision.new_actions] == ["pump_failover"]

    def test_second_flow_trip_exhausts_standby(self):
        sup = make_supervisor()
        sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        decision = sup.step(20.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        assert decision.shutdown
        assert sup.state is SupervisorState.SAFE_SHUTDOWN

    def test_flow_interlock_switches_below_min_flow(self):
        sup = make_supervisor()
        assert sup.flow_interlock(5.0, 1.0e-5)
        assert sup.active_pump == "standby_pump"
        # Budget spent: a second interlock cannot switch again.
        assert not sup.flow_interlock(10.0, 1.0e-5)

    def test_flow_interlock_ignores_healthy_flow(self):
        sup = make_supervisor()
        assert not sup.flow_interlock(5.0, 1.5e-3)
        assert sup.active_pump == "oil_pump"

    def test_standby_speed_cap_applies(self):
        sup = make_supervisor(standby_speed_fraction=0.8)
        sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        decision = sup.step(20.0, **NOMINAL)
        assert decision.pump_speed_fraction <= 0.8


class TestTemperatureLadder:
    def test_component_warning_throttles(self):
        sup = make_supervisor()
        decision = sup.step(10.0, 28.0, {"fpga_hot": 75.0}, 1.5e-3)
        assert not decision.shutdown
        assert decision.utilization == pytest.approx(0.85)
        assert sup.state is SupervisorState.THROTTLED

    def test_coolant_warning_drops_chiller_setpoint(self):
        sup = make_supervisor()
        decision = sup.step(10.0, 38.0, {"fpga_hot": 55.0}, 1.5e-3)
        assert not decision.shutdown
        assert decision.chiller_setpoint_c < sup.controller.nominal_setpoint_c
        assert sup.state is SupervisorState.DEGRADED

    def test_throttle_bottoms_at_floor(self):
        sup = make_supervisor()
        for step in range(5):
            sup.step(10.0 * step, 28.0, {"fpga_hot": 75.0}, 1.5e-3)
        assert sup.utilization == pytest.approx(0.85)

    def test_temperature_trip_mitigated_then_exhausted(self):
        sup = make_supervisor()
        decisions = [
            sup.step(10.0 * i, 28.0, {"fpga_hot": 90.0}, 1.5e-3) for i in range(6)
        ]
        # The first trips are answered by fallback + throttle, the latch
        # cleared; once budgets and the floor are spent the machine goes
        # to SAFE_SHUTDOWN.
        assert not decisions[0].shutdown
        assert any(d.shutdown for d in decisions)
        assert sup.state is SupervisorState.SAFE_SHUTDOWN

    def test_chiller_fallback_budget_bounded(self):
        sup = make_supervisor(max_chiller_fallbacks=1, chiller_fallback_delta_c=4.0)
        sup.step(0.0, 38.0, {"fpga_hot": 55.0}, 1.5e-3)
        before = sup.step(10.0, 38.0, {"fpga_hot": 55.0}, 1.5e-3).chiller_setpoint_c
        after = sup.step(20.0, 38.0, {"fpga_hot": 55.0}, 1.5e-3).chiller_setpoint_c
        assert before == after == pytest.approx(16.0)


class TestLevelAndSensors:
    def test_level_trip_forces_safe_shutdown(self):
        sup = make_supervisor()
        decision = sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.5e-3, level_fraction=0.5)
        assert decision.shutdown
        assert sup.state is SupervisorState.SAFE_SHUTDOWN
        assert [a.kind for a in decision.new_actions] == ["safe_shutdown"]

    def test_blind_sensor_bank_forces_safe_shutdown(self):
        sup = make_supervisor()
        vote = median_vote([None, None, None])
        decision = sup.step(10.0, vote, {"fpga_hot": 55.0}, 1.5e-3)
        assert decision.shutdown
        assert sup.state is SupervisorState.SAFE_SHUTDOWN
        assert any(a.source == "sensor" for a in decision.alarms)

    def test_outvoted_sensor_degrades_once(self):
        sup = make_supervisor()
        vote = median_vote([28.0, 60.0, 28.2], deviation_limit=3.0)
        first = sup.step(10.0, vote, {"fpga_hot": 55.0}, 1.5e-3)
        second = sup.step(20.0, vote, {"fpga_hot": 55.0}, 1.5e-3)
        assert sup.state is SupervisorState.DEGRADED
        assert [a.kind for a in first.new_actions] == ["sensor_vote"]
        assert second.new_actions == ()  # flagged only once
        assert any(a.source == "sensor" for a in second.alarms)


class TestLatchAndReset:
    def test_safe_shutdown_latches(self):
        sup = make_supervisor()
        sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.5e-3, level_fraction=0.5)
        decision = sup.step(20.0, **NOMINAL)
        assert decision.shutdown
        assert decision.pump_speed_fraction == 0.0

    def test_reset_restores_pristine_state(self):
        sup = make_supervisor()
        sup.step(10.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        sup.step(20.0, 28.0, {"fpga_hot": 55.0}, 1.0e-5)
        sup.reset()
        assert sup.state is SupervisorState.NORMAL
        assert sup.active_pump == "oil_pump"
        assert sup.utilization == pytest.approx(0.9)
        assert sup.actions == []
        decision = sup.step(0.0, **NOMINAL)
        assert not decision.shutdown

    def test_states_only_escalate(self):
        sup = make_supervisor()
        sup.step(0.0, 28.0, {"fpga_hot": 75.0}, 1.5e-3)
        assert sup.state is SupervisorState.THROTTLED
        sup.step(10.0, **NOMINAL)
        assert sup.state is SupervisorState.THROTTLED

    def test_record_logs_external_recovery(self):
        sup = make_supervisor()
        sup.record(5.0, "hydraulic_retry", "relaxed tolerance")
        assert [a.kind for a in sup.actions] == ["hydraulic_retry"]
        assert sup.state is SupervisorState.NORMAL
        sup.record(6.0, "module_shutdown", "cm_2", state=SupervisorState.DEGRADED)
        assert sup.state is SupervisorState.DEGRADED


class TestValidation:
    def test_rejects_floor_above_nominal(self):
        with pytest.raises(ValueError):
            make_supervisor(throttle_floor=0.95, nominal_utilization=0.9)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            make_supervisor(throttle_step=0.0)

    def test_rejects_negative_budgets(self):
        with pytest.raises(ValueError):
            make_supervisor(max_pump_failovers=-1)

    def test_rejects_bad_standby_fraction(self):
        with pytest.raises(ValueError):
            make_supervisor(standby_speed_fraction=0.0)
