"""Tests for the electro-thermal FPGA power model."""

import pytest

from repro.devices.families import KINTEX_ULTRASCALE_KU095, VIRTEX7_X485T
from repro.devices.power import (
    FpgaPowerModel,
    REFERENCE_JUNCTION_C,
    REFERENCE_UTILIZATION,
    ThermalRunawayError,
)


class TestCalibration:
    def test_reference_point_matches_catalog(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        power = model.total_power_w(
            REFERENCE_UTILIZATION,
            KINTEX_ULTRASCALE_KU095.nominal_clock_mhz,
            REFERENCE_JUNCTION_C,
        )
        assert power == pytest.approx(KINTEX_ULTRASCALE_KU095.operating_power_w)

    def test_static_dynamic_split(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        family = KINTEX_ULTRASCALE_KU095
        assert model.static_reference_w == pytest.approx(
            family.static_fraction * family.operating_power_w
        )
        assert model.dynamic_reference_w + model.static_reference_w == pytest.approx(
            family.operating_power_w
        )


class TestDynamicPower:
    def test_scales_linearly_with_utilization(self):
        model = FpgaPowerModel(VIRTEX7_X485T)
        clock = VIRTEX7_X485T.nominal_clock_mhz
        half = model.dynamic_power_w(0.45, clock)
        full = model.dynamic_power_w(0.9, clock)
        assert full == pytest.approx(2.0 * half)

    def test_scales_linearly_with_clock(self):
        model = FpgaPowerModel(VIRTEX7_X485T)
        slow = model.dynamic_power_w(0.9, 200.0)
        fast = model.dynamic_power_w(0.9, 400.0)
        assert fast == pytest.approx(2.0 * slow)

    def test_zero_utilization_zero_dynamic(self):
        model = FpgaPowerModel(VIRTEX7_X485T)
        assert model.dynamic_power_w(0.0, 400.0) == 0.0

    def test_rejects_bad_utilization(self):
        model = FpgaPowerModel(VIRTEX7_X485T)
        with pytest.raises(ValueError):
            model.dynamic_power_w(1.5, 400.0)


class TestStaticPower:
    def test_rises_exponentially(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        at_60 = model.static_power_w(60.0)
        at_105 = model.static_power_w(105.0)
        # One e-fold per 45 K.
        assert at_105 / at_60 == pytest.approx(2.718, rel=0.01)

    def test_colder_junction_leaks_less(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        assert model.static_power_w(40.0) < model.static_reference_w


class TestSolveJunction:
    def test_fixed_point_consistent(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        r, coolant = 0.27, 30.0
        t_j = model.solve_junction(r, coolant)
        power = model.total_power_w(
            REFERENCE_UTILIZATION, KINTEX_ULTRASCALE_KU095.nominal_clock_mhz, t_j
        )
        assert t_j == pytest.approx(coolant + r * power, abs=1e-6)

    def test_better_cooling_cooler_junction(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        good = model.solve_junction(0.2, 30.0)
        bad = model.solve_junction(0.4, 30.0)
        assert good < bad

    def test_hotter_coolant_hotter_junction(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        assert model.solve_junction(0.27, 40.0) > model.solve_junction(0.27, 30.0)

    def test_runaway_detected(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        with pytest.raises(ThermalRunawayError):
            model.solve_junction(5.0, 60.0)

    def test_lower_utilization_runs_cooler(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        busy = model.solve_junction(0.27, 30.0, utilization=0.95)
        idle = model.solve_junction(0.27, 30.0, utilization=0.5)
        assert idle < busy

    def test_rejects_nonpositive_resistance(self):
        model = FpgaPowerModel(KINTEX_ULTRASCALE_KU095)
        with pytest.raises(ValueError):
            model.solve_junction(0.0, 30.0)
