"""Tests for the hydraulic network container."""

import pytest

from repro.fluids.library import WATER
from repro.hydraulics.elements import Pipe, Pump, PumpCurve, Valve
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError


def simple_loop():
    net = HydraulicNetwork()
    net.add_junction("a")
    net.add_junction("b")
    net.set_reference("a")
    net.add_branch("pump", "a", "b", Pump(PumpCurve(50.0e3, 0.01)))
    net.add_branch("pipe", "b", "a", Pipe(5.0, 0.025))
    return net


class TestConstruction:
    def test_junctions_and_branches(self):
        net = simple_loop()
        assert net.junction_names == ["a", "b"]
        assert [b.name for b in net.branches] == ["pump", "pipe"]
        assert net.reference == "a"

    def test_duplicate_junction_rejected(self):
        net = simple_loop()
        with pytest.raises(HydraulicsError, match="duplicate"):
            net.add_junction("a")

    def test_duplicate_branch_rejected(self):
        net = simple_loop()
        with pytest.raises(HydraulicsError, match="duplicate"):
            net.add_branch("pump", "a", "b", Pipe(1.0, 0.02))

    def test_unknown_junction_rejected(self):
        net = simple_loop()
        with pytest.raises(HydraulicsError, match="unknown"):
            net.add_branch("x", "a", "nowhere", Pipe(1.0, 0.02))

    def test_self_loop_rejected(self):
        net = simple_loop()
        with pytest.raises(HydraulicsError, match="self-loop"):
            net.add_branch("x", "a", "a", Pipe(1.0, 0.02))


class TestElementReplacement:
    def test_replace_element(self):
        net = simple_loop()
        net.replace_element("pipe", Pipe(10.0, 0.05))
        assert net.branch("pipe").element.length_m == 10.0

    def test_replace_unknown_branch(self):
        net = simple_loop()
        with pytest.raises(HydraulicsError, match="unknown branch"):
            net.replace_element("nope", Pipe(1.0, 0.02))

    def test_closed_valve_excluded_from_open_branches(self):
        net = simple_loop()
        net.add_junction("c")
        net.add_branch("valve", "b", "c", Valve(k_open=2.0, diameter_m=0.02, opening=0.0))
        net.add_branch("drain", "c", "a", Pipe(1.0, 0.02))
        open_names = [b.name for b in net.open_branches()]
        assert "valve" not in open_names
        assert "pump" in open_names


class TestIncidence:
    def test_orientations(self):
        net = simple_loop()
        incident = {(b.name, o) for b, o in net.incident("b")}
        assert incident == {("pump", -1), ("pipe", +1)}


class TestValidation:
    def test_valid_loop_passes(self):
        simple_loop().validate()

    def test_no_reference_fails(self):
        net = HydraulicNetwork()
        net.add_junction("a")
        net.add_junction("b")
        net.add_branch("p", "a", "b", Pipe(1.0, 0.02))
        with pytest.raises(HydraulicsError, match="reference"):
            net.validate()

    def test_no_branches_fails(self):
        net = HydraulicNetwork()
        net.add_junction("a")
        net.set_reference("a")
        with pytest.raises(HydraulicsError, match="no branches"):
            net.validate()

    def test_nonzero_injection_sum_fails(self):
        net = HydraulicNetwork()
        net.add_junction("a", injection_m3_s=1.0e-3)
        net.add_junction("b")
        net.set_reference("a")
        net.add_branch("p", "a", "b", Pipe(1.0, 0.02))
        with pytest.raises(HydraulicsError, match="sum to zero"):
            net.validate()

    def test_disconnected_by_closed_valves_fails(self):
        net = HydraulicNetwork()
        net.add_junction("a")
        net.add_junction("b")
        net.set_reference("a")
        net.add_branch("v", "a", "b", Valve(k_open=1.0, diameter_m=0.02, opening=0.0))
        with pytest.raises(HydraulicsError, match="disconnected"):
            net.validate()

    def test_empty_network_fails(self):
        with pytest.raises(HydraulicsError, match="empty"):
            HydraulicNetwork().validate()
