"""Tests for the air-cooling viability frontier."""

import pytest

from repro.analysis.crossover import (
    air_junction_at_power,
    hypothetical_family,
    immersion_junction_at_power,
    sweep_frontier,
    viability_frontier_w,
)


class TestHypotheticalFamily:
    def test_power_set(self):
        family = hypothetical_family(60.0)
        assert family.operating_power_w == 60.0
        assert family.max_power_w == pytest.approx(72.0)

    def test_geometry_held_fixed(self):
        from repro.devices.families import VIRTEX7_X485T

        family = hypothetical_family(60.0)
        assert family.package_size_mm == VIRTEX7_X485T.package_size_mm
        assert family.logic_cells == VIRTEX7_X485T.logic_cells

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError):
            hypothetical_family(0.0)


class TestJunctionCurves:
    def test_air_monotone_then_runaway(self):
        j30 = air_junction_at_power(30.0)
        j38 = air_junction_at_power(38.0)
        assert j30 < j38
        assert air_junction_at_power(90.0) is None  # UltraScale class: hopeless

    def test_immersion_monotone_and_alive_at_90w(self):
        j50 = immersion_junction_at_power(50.0)
        j90 = immersion_junction_at_power(90.0)
        assert j50 < j90
        assert j90 is not None


class TestFrontier:
    def test_air_frontier_between_v6_and_v7_class(self):
        """The paper's history: Virtex-6 (30 W) was fine, Virtex-7 (40 W)
        was marginal — the frontier sits between them."""
        frontier = viability_frontier_w(air_junction_at_power)
        assert 30.0 < frontier < 45.0

    def test_immersion_frontier_beyond_ultrascale(self):
        """Immersion must carry the ~90-100 W UltraScale class."""
        frontier = viability_frontier_w(immersion_junction_at_power, hi_w=600.0)
        assert frontier > 85.0

    def test_immersion_extends_the_frontier_at_least_2x(self):
        air = viability_frontier_w(air_junction_at_power)
        immersion = viability_frontier_w(immersion_junction_at_power, hi_w=600.0)
        assert immersion > 2.0 * air

    def test_bad_bracket_detected(self):
        with pytest.raises(ValueError):
            viability_frontier_w(air_junction_at_power, lo_w=200.0, hi_w=300.0)


class TestSweep:
    def test_sweep_shape(self):
        points = sweep_frontier([20.0, 40.0, 90.0])
        assert [p.power_w for p in points] == [20.0, 40.0, 90.0]
        assert points[0].air_junction_c < points[1].air_junction_c
        assert points[2].air_junction_c is None
        assert points[2].immersion_junction_c is not None

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            sweep_frontier([])
