"""Regression tests for the batched sweep dispatcher's edge behaviour.

:func:`repro.sweep.run_sweep_batched` chunks a case list into
structure-of-arrays solves; these tests pin the seams of that chunking —
empty sweeps, batches wider than the sweep, mid-batch lanes that demote to
the serial fallback, whole-batch demotions, error capture/raise semantics
and the deterministic batch counters. The value-level batched==serial
contract lives in ``tests/test_batch_differential.py``.
"""

import numpy as np
import pytest

from repro.batch.sweepfns import (
    MODULE_STEADY,
    RACK_MANIFOLD,
    manifold_smoke_cases,
    steady_smoke_cases,
)
from repro.obs import MetricsRegistry, use_registry
from repro.sweep import (
    SERIAL_FALLBACK,
    BatchedSweepFn,
    SweepCase,
    run_sweep_batched,
)


def _bad_temperature_case(name="bad"):
    """A manifold case whose fluid temperature is outside water's range.

    The batched engine records the serial range error for the lane, the
    dispatcher demotes it to the per-case serial path, and that path
    raises the identical error — which the sweep then captures or
    re-raises depending on ``on_error``.
    """
    return SweepCase(
        name=name,
        params={
            "openings": [1.0, 0.9, 0.8, 1.0, 0.7, 0.95],
            "pump_speed": 1.0,
            "temperature_c": 150.0,
        },
    )


def test_empty_sweep_returns_empty_list():
    with use_registry(MetricsRegistry()) as obs:
        assert run_sweep_batched(RACK_MANIFOLD, []) == []
        assert obs.counter("sweep_batched_runs_total").value == 0


def test_batch_wider_than_sweep_is_one_ragged_batch():
    cases = manifold_smoke_cases(3)
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep_batched(RACK_MANIFOLD, cases, batch_size=64)
        assert obs.counter("sweep_batches_total").value == 1
        assert obs.counter("sweep_batched_cases_total").value == 3
        assert obs.counter("sweep_batch_fallbacks_total").value == 0
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert all(o.ok for o in outcomes)


def test_counters_account_for_every_batch_and_case():
    cases = manifold_smoke_cases(7)
    with use_registry(MetricsRegistry()) as obs:
        run_sweep_batched(RACK_MANIFOLD, cases, batch_size=3)
        assert obs.counter("sweep_batched_runs_total").value == 1
        assert obs.counter("sweep_batches_total").value == 3  # 3 + 3 + 1
        assert obs.counter("sweep_batched_cases_total").value == 7
        # The inner dispatch counts batches as its cases.
        assert obs.counter("sweep_cases_total").value == 3


def test_mid_batch_fallback_does_not_contaminate_neighbours():
    """A lane the engine rejects demotes alone; its neighbours keep values
    bitwise identical to a sweep that never contained the bad lane."""
    good = manifold_smoke_cases(4)
    mixed = good[:2] + [_bad_temperature_case()] + good[2:]
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep_batched(
            RACK_MANIFOLD, mixed, batch_size=5, on_error="capture"
        )
        assert obs.counter("sweep_batch_fallbacks_total").value == 1
        assert obs.counter("sweep_case_errors_total").value == 1
    clean = run_sweep_batched(RACK_MANIFOLD, good, batch_size=4)
    bad = outcomes[2]
    assert not bad.ok
    assert "validity range" in bad.error
    survivors = [o for i, o in enumerate(outcomes) if i != 2]
    for survivor, reference in zip(survivors, clean):
        assert survivor.ok
        assert survivor.value == reference.value  # bitwise, not approx


def test_on_error_raise_defers_until_sweep_completes():
    cases = [_bad_temperature_case()] + manifold_smoke_cases(2)
    with pytest.raises(ValueError, match="validity range"):
        run_sweep_batched(RACK_MANIFOLD, cases, batch_size=2)


def test_whole_batch_demotion_on_batch_fn_error():
    """Mixed module configs make the batch fn raise; every case of the
    batch is then evaluated serially and still succeeds."""
    cases = steady_smoke_cases(2) + [
        SweepCase(
            name="plus",
            params={
                "module": "skat_plus",
                "water_in_c": 20.0,
                "water_flow_m3_s": 8.0e-4,
            },
        )
    ]
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep_batched(MODULE_STEADY, cases, batch_size=3)
        assert obs.counter("sweep_batch_errors_total").value == 1
        assert obs.counter("sweep_batch_fallbacks_total").value == 3
    assert all(o.ok for o in outcomes)
    assert outcomes[2].value["oil_cold_c"] > 20.0


def test_fallback_sentinel_is_a_singleton():
    from repro.sweep.batched import _SerialFallback

    assert _SerialFallback() is SERIAL_FALLBACK
    assert repr(SERIAL_FALLBACK) == "SERIAL_FALLBACK"


def test_invalid_arguments_rejected():
    cases = manifold_smoke_cases(2)
    with pytest.raises(ValueError, match="batch_size"):
        run_sweep_batched(RACK_MANIFOLD, cases, batch_size=0)
    with pytest.raises(ValueError, match="on_error"):
        run_sweep_batched(RACK_MANIFOLD, cases, on_error="bogus")
    with pytest.raises(TypeError, match="BatchedSweepFn"):
        run_sweep_batched(lambda case: None, cases)


def test_batch_length_mismatch_demotes_to_serial():
    """A batch fn returning the wrong number of values is treated as a
    whole-batch error, not silently misaligned."""
    spec = BatchedSweepFn(
        serial=RACK_MANIFOLD.serial,
        batch=lambda cases: [SERIAL_FALLBACK] * (len(cases) + 1),
    )
    cases = manifold_smoke_cases(2)
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_sweep_batched(spec, cases, backend="serial")
        assert obs.counter("sweep_batch_errors_total").value == 1
    assert all(o.ok for o in outcomes)


def test_engine_level_fallback_keeps_neighbour_lanes_bitwise():
    """The manifold engine's own serial ladder (forced via a starved
    Newton budget) re-solves only its lane; neighbours keep the batched
    values bitwise."""
    from repro.batch.manifold import solve_manifold_batch
    from repro.core.balancing import RackManifoldSystem

    template = RackManifoldSystem()
    rng = np.random.default_rng(11)
    openings = rng.uniform(0.3, 1.0, size=(4, template.n_loops))
    full = solve_manifold_batch(template, openings)
    assert not full.fallback_mask.any()
    # Starving the budget forces every lane down the ladder; the ladder's
    # results must agree with the batched Newton within solver tolerance
    # while the differential suite pins ladder == serial exactly.
    starved = solve_manifold_batch(template, openings, max_iterations=1)
    assert starved.fallback_mask.all()
    np.testing.assert_allclose(
        starved.loop_flows_m3_s, full.loop_flows_m3_s, rtol=1.0e-6
    )
