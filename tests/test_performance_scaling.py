"""Tests for the generation-scaling trend analysis."""

import math

import pytest

from repro.devices.families import family_roadmap
from repro.performance.scaling import (
    TrendFit,
    efficiency_trend,
    performance_trend,
    power_trend,
    stable_growth_check,
)


class TestTrendFit:
    def test_exact_exponential_recovered(self):
        from repro.performance.scaling import _fit_exponential

        points = [(2010 + i, 100.0 * math.exp(0.3 * i)) for i in range(5)]
        fit = _fit_exponential(points)
        assert fit.b == pytest.approx(0.3, rel=1e-6)
        assert fit.a == pytest.approx(100.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_doubling_time(self):
        fit = TrendFit(year0=2010, a=1.0, b=math.log(2.0) / 2.0, r_squared=1.0)
        assert fit.doubling_time_years == pytest.approx(2.0)

    def test_flat_trend_never_doubles(self):
        fit = TrendFit(year0=2010, a=1.0, b=0.0, r_squared=1.0)
        assert math.isinf(fit.doubling_time_years)

    def test_predict(self):
        fit = TrendFit(year0=2010, a=10.0, b=0.1, r_squared=1.0)
        assert fit.predict(2010) == pytest.approx(10.0)
        assert fit.predict(2020) == pytest.approx(10.0 * math.exp(1.0))


class TestRoadmapTrends:
    def test_performance_grows_steadily(self):
        """Section 5: 'a stable, practically linear growth' — on the log
        axis that is a clean exponential, R^2 above 0.95."""
        fit = performance_trend()
        assert fit.b > 0.0
        assert fit.r_squared > 0.95

    def test_performance_doubling_every_1_to_3_years(self):
        fit = performance_trend()
        assert 1.0 < fit.doubling_time_years < 3.0

    def test_efficiency_improves_too(self):
        assert efficiency_trend().b > 0.0

    def test_power_grows_slower_than_performance(self):
        """Energetic efficiency improves because performance outruns power
        — the core of the paper's efficiency claim."""
        assert power_trend().b < performance_trend().b


class TestStableGrowthCheck:
    def test_claim_holds_for_the_catalog(self):
        check = stable_growth_check()
        assert check["monotone_growth"]
        assert check["r_squared"] > 0.95
        assert all(m > 1.5 for m in check["per_generation_multiples"])

    def test_subset_of_families(self):
        first_three = family_roadmap()[:3]
        check = stable_growth_check(first_three)
        assert len(check["per_generation_multiples"]) == 2
