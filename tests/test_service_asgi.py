"""ASGI adapter tests: routing, status mapping, canonical bodies, lifespan.

The adapter is driven directly (scope/receive/send callables) — no
server in the loop, so these tests cover exactly the adapter contract.
"""

import asyncio
import json

import pytest

from repro.obs import MetricsRegistry
from repro.service import ServiceEvaluationError, SimulationGateway, create_app
from repro.service.requests import evaluate_request, normalize_request
from repro.verify.fuzz import canonical_json

MODULE = {"level": "module"}


def call(app, method, path, payload=None, body=None):
    """One ASGI HTTP round-trip; returns (status, headers, body bytes)."""
    if body is None:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")

    async def go():
        scope = {
            "type": "http",
            "method": method,
            "path": path,
            "headers": [],
            "query_string": b"",
        }
        messages = []
        sent = {"given": False}

        async def receive():
            if sent["given"]:
                return {"type": "http.disconnect"}
            sent["given"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message):
            messages.append(message)

        await app(scope, receive, send)
        return messages

    messages = asyncio.run(go())
    assert messages[0]["type"] == "http.response.start"
    assert messages[1]["type"] == "http.response.body"
    return (
        messages[0]["status"],
        dict(messages[0]["headers"]),
        messages[1]["body"],
    )


def make_app(registry=None, **kwargs):
    kwargs.setdefault("max_batch_size", 1)
    gateway = SimulationGateway(
        registry=registry or MetricsRegistry(), **kwargs
    )
    return create_app(gateway), gateway


def test_simulate_roundtrip_is_canonical_oracle_bytes():
    app, _ = make_app()
    status, headers, body = call(app, "POST", "/simulate", MODULE)
    assert status == 200
    assert headers[b"content-type"].startswith(b"application/json")
    assert int(headers[b"content-length"]) == len(body)
    assert body.endswith(b"\n")
    envelope = json.loads(body)
    # The body IS the canonical encoding (sorted keys, compact) ...
    assert body == (canonical_json(envelope) + "\n").encode("utf-8")
    # ... and the result inside is the serial oracle's bytes.
    expected = evaluate_request(normalize_request(MODULE))
    assert canonical_json(envelope["result"]) == canonical_json(expected)
    assert envelope["cached"] is False


def test_sweep_roundtrip():
    app, _ = make_app()
    status, _, body = call(
        app, "POST", "/sweep", {"scenarios": [MODULE, MODULE]}
    )
    assert status == 200
    envelope = json.loads(body)
    assert envelope["count"] == 2
    assert envelope["results"][0]["result"] == envelope["results"][1]["result"]


def test_healthz_reports_stats():
    app, _ = make_app()
    status, _, body = call(app, "GET", "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["cache"] == {"entries": 0, "max_entries": 1024}
    assert health["queue_depth"] == 0


def test_metrics_exposition():
    registry = MetricsRegistry()
    app, _ = make_app(registry=registry)
    assert call(app, "POST", "/simulate", MODULE)[0] == 200
    status, headers, body = call(app, "GET", "/metrics")
    assert status == 200
    assert headers[b"content-type"].startswith(b"text/plain")
    text = body.decode("utf-8")
    assert "service_requests_total 1" in text
    assert "service_solves_total 1" in text


def test_invalid_json_is_400():
    app, _ = make_app()
    status, _, body = call(app, "POST", "/simulate", body=b"{nope")
    assert status == 400
    assert "invalid JSON" in json.loads(body)["error"]


def test_schema_violation_is_400():
    app, _ = make_app()
    status, _, body = call(
        app, "POST", "/simulate", {"level": "module", "bogus": 1}
    )
    assert status == 400
    assert "unknown keys" in json.loads(body)["error"]


def test_evaluation_failure_is_500():
    app, gateway = make_app()

    async def exploding(payload, timeout_s=None):
        raise ServiceEvaluationError("melted")

    gateway.simulate = exploding
    status, _, body = call(app, "POST", "/simulate", MODULE)
    assert status == 500
    assert json.loads(body)["error"] == "melted"


@pytest.mark.parametrize(
    "method,path,status",
    [
        ("GET", "/nowhere", 404),
        ("GET", "/simulate", 405),
        ("GET", "/sweep", 405),
        ("POST", "/healthz", 405),
        ("POST", "/metrics", 405),
    ],
)
def test_route_and_method_mapping(method, path, status):
    app, _ = make_app()
    assert call(app, method, path)[0] == status


def test_lifespan_shutdown_closes_gateway():
    app, gateway = make_app()
    closed = {"done": False}

    async def tracking_close():
        closed["done"] = True

    gateway.close = tracking_close

    async def go():
        events = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]
        completions = []

        async def receive():
            return events.pop(0)

        async def send(message):
            completions.append(message["type"])

        await app({"type": "lifespan"}, receive, send)
        return completions

    completions = asyncio.run(go())
    assert completions == [
        "lifespan.startup.complete",
        "lifespan.shutdown.complete",
    ]
    assert closed["done"] is True


def test_unsupported_scope_rejected():
    app, _ = make_app()

    async def go():
        await app({"type": "websocket"}, None, None)

    with pytest.raises(RuntimeError, match="unsupported ASGI scope"):
        asyncio.run(go())
