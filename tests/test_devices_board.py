"""Tests for the computational circuit board (CCB) model."""

import pytest

from repro.devices.board import BoardLayoutError, Ccb, RACK_19_INTERNAL_WIDTH_MM
from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_PLUS_VU9P,
)
from repro.devices.fpga import Fpga


def skat_board(**overrides):
    return Ccb(Fpga(KINTEX_ULTRASCALE_KU095), **overrides)


def skat_plus_board(**overrides):
    return Ccb(Fpga(ULTRASCALE_PLUS_VU9P), **overrides)


class TestLayout:
    def test_skat_board_with_controller_fits(self):
        """Section 3: 8 field FPGAs + controller in 42.5 mm packages fit
        the 19-inch width."""
        board = skat_board(separate_controller=True)
        assert board.package_sites == 9
        assert board.fits_19_inch_rack()

    def test_ultrascale_plus_with_controller_does_not_fit(self):
        """Section 4: with 45 mm packages "it is impossible to use the
        existing CCB design" — nine sites exceed the width."""
        board = skat_plus_board(separate_controller=True)
        assert not board.fits_19_inch_rack()
        with pytest.raises(BoardLayoutError, match="exceeding"):
            board.require_fit()

    def test_ultrascale_plus_without_controller_fits(self):
        """Section 4's fix: "exclude its CCB controller from its
        structure"."""
        board = skat_plus_board(separate_controller=False)
        assert board.package_sites == 8
        assert board.fits_19_inch_rack()

    def test_row_width_arithmetic(self):
        board = skat_board(separate_controller=True)
        expected = 9 * (42.5 + board.clearance_mm)
        assert board.row_width_mm == pytest.approx(expected)
        assert board.row_width_mm <= RACK_19_INTERNAL_WIDTH_MM


class TestComputeField:
    def test_separate_controller_full_field(self):
        board = skat_board(separate_controller=True)
        chips = board.compute_fpgas()
        assert len(chips) == 8
        assert all(c.utilization == board.fpga.utilization for c in chips)

    def test_folded_controller_costs_utilization(self):
        board = skat_plus_board(separate_controller=False, controller_overhead=0.04)
        chips = board.compute_fpgas()
        assert len(chips) == 8
        assert chips[0].utilization == pytest.approx(board.fpga.utilization - 0.04)
        assert all(c.utilization == board.fpga.utilization for c in chips[1:])


class TestHeat:
    def test_skat_board_near_800w(self):
        """Section 3: "12 CCBs with a power of up to 800 W each"."""
        board = skat_board()
        assert board.nominal_heat_load_w() == pytest.approx(800.0, rel=0.1)

    def test_heat_rises_with_junction(self):
        board = skat_board()
        assert board.heat_load_w(70.0) > board.heat_load_w(50.0)

    def test_controller_adds_heat(self):
        with_ctrl = skat_board(separate_controller=True).heat_load_w(55.0)
        without = skat_board(separate_controller=False).heat_load_w(55.0)
        assert with_ctrl > without


class TestValidation:
    def test_rejects_zero_fpgas(self):
        with pytest.raises(BoardLayoutError):
            skat_board(n_fpgas=0)

    def test_rejects_bad_overhead(self):
        with pytest.raises(BoardLayoutError):
            skat_board(controller_overhead=1.0)
