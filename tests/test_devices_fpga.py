"""Tests for the configured FPGA instance."""

import pytest

from repro.devices.families import KINTEX_ULTRASCALE_KU095, VIRTEX7_X485T
from repro.devices.fpga import Fpga


class TestConstruction:
    def test_default_clock_is_nominal(self):
        chip = Fpga(KINTEX_ULTRASCALE_KU095)
        assert chip.clock_mhz == KINTEX_ULTRASCALE_KU095.nominal_clock_mhz

    def test_custom_clock(self):
        chip = Fpga(KINTEX_ULTRASCALE_KU095, clock_mhz=300.0)
        assert chip.clock_mhz == 300.0

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            Fpga(KINTEX_ULTRASCALE_KU095, utilization=1.2)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            Fpga(KINTEX_ULTRASCALE_KU095, clock_mhz=0.0)


class TestOperate:
    def test_skat_anchor(self):
        """91 W / 55 C against 30 C oil at ~0.27 K/W (Section 3)."""
        chip = Fpga(KINTEX_ULTRASCALE_KU095)
        point = chip.operate(0.27, 30.0)
        assert point.junction_c == pytest.approx(55.0, abs=3.0)
        assert point.power_w == pytest.approx(91.0, rel=0.08)

    def test_overheat_property(self):
        chip = Fpga(KINTEX_ULTRASCALE_KU095)
        point = chip.operate(0.27, 30.0)
        assert point.overheat_k == pytest.approx(point.junction_c - 30.0)

    def test_power_consistent_with_junction(self):
        chip = Fpga(VIRTEX7_X485T, utilization=0.85)
        point = chip.operate(0.8, 25.0)
        assert chip.power_w(point.junction_c) == pytest.approx(point.power_w)

    def test_reliability_limit_check(self):
        chip = Fpga(KINTEX_ULTRASCALE_KU095)
        assert chip.within_reliability_limit(55.0)
        assert not chip.within_reliability_limit(80.0)

    def test_utilization_affects_power(self):
        hot = Fpga(KINTEX_ULTRASCALE_KU095, utilization=0.95).operate(0.27, 30.0)
        cool = Fpga(KINTEX_ULTRASCALE_KU095, utilization=0.5).operate(0.27, 30.0)
        assert cool.power_w < hot.power_w
        assert cool.junction_c < hot.junction_c
