"""Differential tests: the batched engines against their serial oracles.

The contract of :mod:`repro.batch`: every structure-of-arrays engine —
module steady state, module transient, rack manifold — reproduces the
untouched serial solver lane for lane, and the batched sweep dispatcher
(:func:`repro.sweep.batched.run_sweep_batched`) produces an identical
``SweepOutcome`` sequence and identical canonical metric exports on the
serial, thread and process backends. The committed byte-for-byte goldens
(``tests/goldens/batch_sweep.json``, ``batch_metrics.json``) tie the
batched sweep to the CI smoke job; regenerate them after an intentional
physics change with::

    PYTHONPATH=src python scripts/run_batch_differential.py \\
        --steady 12 --manifold 12 --batch-size 5 --backend serial \\
        --out tests/goldens/batch_sweep.json \\
        --metrics-out tests/goldens/batch_metrics.json

Tolerances: the serial steady solve refines its oil-temperature root with
``brentq(xtol=1e-6)`` while the batch path refines the same bracket to
1e-9, so steady quantities agree to ~1e-8 relative and are pinned at
1e-6. The transient and manifold engines replay the serial arithmetic
element for element and are pinned at 1e-9.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.batch.manifold import solve_manifold_batch
from repro.batch.steady import solve_module_steady_batch
from repro.batch.transient import run_module_transient_batch
from repro.batch.sweepfns import (
    MODULE_STEADY,
    RACK_MANIFOLD,
    manifold_smoke_cases,
    steady_smoke_cases,
)
from repro.control.supervisor import Supervisor
from repro.core.balancing import RackManifoldSystem
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.reliability.failures import (
    leak_event,
    pump_stop_event,
    sensor_fault_event,
    tim_washout_drift,
)
from repro.sweep import run_sweep, run_sweep_batched
from repro.verify.checkers import CheckSuite

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Brentq-vs-Illinois slack of the steady root (see module docstring).
STEADY_RTOL = 1.0e-6
#: The transient and manifold engines mirror the serial float arithmetic.
TRANSIENT_RTOL = 1.0e-9
MANIFOLD_RTOL = 1.0e-9

#: Batch widths of the direct engine comparisons (ragged sweep chunks are
#: exercised separately by the 12-case, batch-size-5 sweep matrix below).
BATCH_WIDTHS = [1, 2, 7, 64]


def _steady_fields(report):
    return {
        "oil_cold_c": report.oil_cold_c,
        "oil_hot_c": report.oil_hot_c,
        "oil_flow_m3_s": report.oil_flow_m3_s,
        "pump_electrical_w": report.pump_electrical_w,
        "max_fpga_c": report.max_fpga_c,
        "bath_mean_c": report.bath_mean_c,
        "module_electrical_w": report.module_electrical_w,
        "total_heat_to_water_w": report.total_heat_to_water_w,
    }


def _assert_fields_close(measured, expected, rtol, label):
    for key, value in expected.items():
        assert measured[key] == pytest.approx(value, rel=rtol), (
            f"{label}.{key}: batched {measured[key]!r} vs serial {value!r}"
        )


class TestModuleSteadyDifferential:
    """solve_module_steady_batch vs ComputationalModule.solve_steady."""

    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    def test_batched_equals_serial(self, n):
        water_in = np.linspace(14.0, 26.0, n) if n > 1 else np.array([20.0])
        water_flow = np.linspace(5.0e-4, 1.2e-3, n) if n > 1 else np.array([8.0e-4])
        utilization = np.linspace(0.55, 1.0, n) if n > 1 else np.array([0.9])
        batch = solve_module_steady_batch(
            skat(), water_in, water_flow, utilization=utilization
        )
        assert len(batch) == n
        assert batch.ok.all()
        for i in range(n):
            serial = skat(utilization=float(utilization[i])).solve_steady(
                water_in_c=float(water_in[i]),
                water_flow_m3_s=float(water_flow[i]),
            )
            _assert_fields_close(
                _steady_fields(batch.report(i)),
                _steady_fields(serial),
                STEADY_RTOL,
                f"steady[{i}]",
            )

    def test_module_view_defaults_equal_serial(self):
        """The N=1 view on the module reproduces the scalar call."""
        module = skat()
        batch = module.solve_steady_batch()
        assert len(batch) == 1
        _assert_fields_close(
            _steady_fields(batch.report(0)),
            _steady_fields(module.solve_steady()),
            STEADY_RTOL,
            "steady_view",
        )

    def test_failed_lane_matches_serial_and_isolates_neighbours(self):
        """An out-of-range lane raises the serial error; neighbours are
        bitwise identical to a batch that never contained it."""
        module = skat()
        with pytest.raises(ValueError) as serial_exc:
            module.solve_steady(water_in_c=500.0)
        mixed = solve_module_steady_batch(
            module, np.array([20.0, 500.0, 24.0]), np.array([8.0e-4] * 3)
        )
        assert list(mixed.ok) == [True, False, True]
        assert type(mixed.errors[1]) is type(serial_exc.value)
        assert str(mixed.errors[1]) == str(serial_exc.value)
        with pytest.raises(ValueError, match=str(serial_exc.value)[:20]):
            mixed.report(1)
        clean = solve_module_steady_batch(
            module, np.array([20.0, 24.0]), np.array([8.0e-4] * 2)
        )
        for good, ref in ((0, 0), (2, 1)):
            assert mixed.oil_cold_c[good] == clean.oil_cold_c[ref]
            assert mixed.oil_flow_m3_s[good] == clean.oil_flow_m3_s[ref]
            assert mixed.hx.q_w[good] == clean.hx.q_w[ref]


#: Open-loop failure scripts of the transient comparison; ``None`` checks
#: the "no events" convention the serial ``run()`` signature uses.
TRANSIENT_SCENARIOS = [
    None,
    [],
    [pump_stop_event(300.0, "oil_pump")],
    [pump_stop_event(200.0, "oil_pump", remaining_speed=0.6)],
    [tim_washout_drift(100.0, "all", 2.0)],
    [leak_event(240.0, "bath", 2.0e-5)],
    [
        pump_stop_event(350.0, "oil_pump", remaining_speed=0.5),
        leak_event(150.0, "bath", 1.0e-5),
    ],
]

TRANSIENT_DURATION_S = 900.0
TRANSIENT_DT_S = 10.0


class TestModuleTransientDifferential:
    """run_module_transient_batch vs ModuleSimulator.run, lane for lane."""

    @pytest.mark.parametrize(
        "scenarios",
        [
            TRANSIENT_SCENARIOS[:1],
            TRANSIENT_SCENARIOS[:2],
            TRANSIENT_SCENARIOS,
        ],
        ids=["n1", "n2", "n7"],
    )
    def test_batched_equals_serial(self, scenarios):
        module = skat()
        n = len(scenarios)
        water_in = np.linspace(18.0, 24.0, n) if n > 1 else np.array([20.0])
        batch = run_module_transient_batch(
            module,
            TRANSIENT_DURATION_S,
            scenarios,
            dt_s=TRANSIENT_DT_S,
            water_in_c=water_in,
        )
        assert batch.ok.all()
        for i, events in enumerate(scenarios):
            serial = ModuleSimulator(module, water_in_c=float(water_in[i])).run(
                duration_s=TRANSIENT_DURATION_S,
                events=list(events) if events else events,
                dt_s=TRANSIENT_DT_S,
            )
            rebuilt = batch.result(i)
            serial_times, _ = serial.telemetry.series("oil_c")
            rebuilt_times, _ = rebuilt.telemetry.series("oil_c")
            np.testing.assert_array_equal(rebuilt_times, serial_times)
            for channel in serial.telemetry.channels:
                _, expected = serial.telemetry.series(channel)
                _, measured = rebuilt.telemetry.series(channel)
                np.testing.assert_allclose(
                    measured,
                    expected,
                    rtol=TRANSIENT_RTOL,
                    atol=1.0e-12,
                    err_msg=f"lane {i} channel {channel}",
                )
            assert rebuilt.telemetry.counters == serial.telemetry.counters
            assert rebuilt.max_junction_c == pytest.approx(
                serial.max_junction_c, rel=TRANSIENT_RTOL
            )
            assert rebuilt.max_oil_c == pytest.approx(
                serial.max_oil_c, rel=TRANSIENT_RTOL
            )
            assert rebuilt.shutdown_time_s == serial.shutdown_time_s
            assert rebuilt.alarms_raised == serial.alarms_raised

    def test_run_many_view_passes_check_suite(self):
        """The N=1..k view feeds every rebuilt lane through CheckSuite."""
        simulator = ModuleSimulator(skat(), water_in_c=20.0)
        simulator.checks = CheckSuite(strict=True)
        batch = simulator.run_many(
            600.0,
            [None, [pump_stop_event(200.0, "oil_pump")]],
            dt_s=10.0,
        )
        assert batch.ok.all()
        assert simulator.checks.violations == []

    def test_run_many_rejects_closed_loop(self):
        simulator = ModuleSimulator(skat(), supervisor=Supervisor())
        with pytest.raises(ValueError, match="open-loop only"):
            simulator.run_many(300.0, [None], dt_s=10.0)

    def test_sensor_faults_stay_serial(self):
        with pytest.raises(ValueError, match="sensor_fault"):
            run_module_transient_batch(
                skat(),
                300.0,
                [[sensor_fault_event(100.0, "bath_sensor_0", 5.0)]],
                dt_s=10.0,
            )


class TestManifoldDifferential:
    """solve_manifold_batch vs RackManifoldSystem.solve, lane for lane."""

    @pytest.mark.parametrize("n", BATCH_WIDTHS)
    def test_batched_equals_serial(self, n):
        rng = np.random.default_rng(2026 + n)
        template = RackManifoldSystem()
        openings = rng.uniform(0.25, 1.0, size=(n, template.n_loops))
        if n >= 2:
            openings[1, 3] = 0.0  # one serviced loop mid-batch
        speeds = rng.uniform(0.7, 1.0, size=n)
        temps = rng.uniform(15.0, 35.0, size=n)
        batch = solve_manifold_batch(
            template, openings, pump_speed_fraction=speeds, temperature_c=temps
        )
        assert batch.n == n
        assert batch.ok.all()
        assert not batch.fallback_mask.any()
        for i in range(n):
            system = RackManifoldSystem(
                balancing_valves=[float(o) for o in openings[i]],
                temperature_c=float(temps[i]),
            )
            system.pump.speed_fraction = float(speeds[i])
            serial = system.solve()
            rebuilt = batch.report(i)
            assert rebuilt.failed_loops == serial.failed_loops
            assert rebuilt.layout == serial.layout
            np.testing.assert_allclose(
                rebuilt.loop_flows_m3_s,
                serial.loop_flows_m3_s,
                rtol=MANIFOLD_RTOL,
                atol=1.0e-15,
                err_msg=f"lane {i} loop flows",
            )
            worst = max(abs(r) for r in batch.junction_residuals(i).values())
            assert worst <= 1.0e-9

    def test_forced_fallback_lanes_equal_serial_exactly(self):
        """Lanes demoted to the robust serial ladder ARE serial solves."""
        rng = np.random.default_rng(7)
        template = RackManifoldSystem()
        openings = rng.uniform(0.3, 1.0, size=(3, template.n_loops))
        starved = solve_manifold_batch(template, openings, max_iterations=1)
        assert starved.fallback_mask.all()
        assert starved.ok.all()
        for i in range(3):
            serial = RackManifoldSystem(
                balancing_valves=[float(o) for o in openings[i]]
            ).solve()
            assert starved.report(i).loop_flows_m3_s == serial.loop_flows_m3_s

    def test_solve_batch_view_reads_current_valve_state(self):
        system = RackManifoldSystem(
            balancing_valves=[1.0, 0.8, 0.6, 1.0, 0.9, 0.7]
        )
        serial = system.solve()
        batch = system.solve_batch()
        assert batch.n == 1
        np.testing.assert_allclose(
            batch.report(0).loop_flows_m3_s,
            serial.loop_flows_m3_s,
            rtol=MANIFOLD_RTOL,
            atol=1.0e-15,
        )


# ---------------------------------------------------------------------------
# The batched sweep across backends: 12 cases in batches of 5 gives two
# full chunks plus one ragged 2-case chunk per family.

STEADY_MATRIX = steady_smoke_cases(12)
MANIFOLD_MATRIX = manifold_smoke_cases(12)
SWEEP_BATCH_SIZE = 5


def run_batched_matrix(backend, max_workers=2):
    """Both family sweeps on one backend, plus the canonical metric export."""
    with use_registry(MetricsRegistry()) as obs:
        steady = run_sweep_batched(
            MODULE_STEADY,
            STEADY_MATRIX,
            batch_size=SWEEP_BATCH_SIZE,
            backend=backend,
            max_workers=max_workers,
        )
        manifold = run_sweep_batched(
            RACK_MANIFOLD,
            MANIFOLD_MATRIX,
            batch_size=SWEEP_BATCH_SIZE,
            backend=backend,
            max_workers=max_workers,
        )
        export = to_json(obs, exclude=("sweep_backend_",))
    return steady, manifold, export


@pytest.fixture(scope="module")
def sweep_oracle():
    return run_batched_matrix("serial")


class TestBatchedSweepBackends:
    """run_sweep_batched determinism across serial/thread/process."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_outcome_sequences_identical(self, backend, sweep_oracle):
        steady, manifold, _ = run_batched_matrix(backend)
        assert steady == sweep_oracle[0]
        assert manifold == sweep_oracle[1]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_metric_exports_identical(self, backend, sweep_oracle):
        _, _, export = run_batched_matrix(backend)
        assert export == sweep_oracle[2]

    def test_batched_values_match_per_case_serial(self, sweep_oracle):
        """The dispatcher's values equal a plain per-case serial sweep."""
        steady, manifold, _ = sweep_oracle
        serial_steady = run_sweep(MODULE_STEADY.serial, STEADY_MATRIX)
        for batched, oracle in zip(steady, serial_steady):
            assert batched.ok and oracle.ok
            assert batched.case == oracle.case
            assert set(batched.value) == set(oracle.value)
            for key, expected in oracle.value.items():
                assert batched.value[key] == pytest.approx(
                    expected, rel=STEADY_RTOL
                ), f"{batched.case.name}.{key}"
        serial_manifold = run_sweep(RACK_MANIFOLD.serial, MANIFOLD_MATRIX)
        for batched, oracle in zip(manifold, serial_manifold):
            assert batched.ok and oracle.ok
            assert batched.value["failed_loops"] == oracle.value["failed_loops"]
            np.testing.assert_allclose(
                batched.value["loop_flows_m3_s"],
                oracle.value["loop_flows_m3_s"],
                rtol=MANIFOLD_RTOL,
                atol=1.0e-15,
                err_msg=batched.case.name,
            )

    def test_ordering_and_indices_are_case_order(self, sweep_oracle):
        steady, manifold, _ = sweep_oracle
        assert [o.index for o in steady] == list(range(len(STEADY_MATRIX)))
        assert [o.case.name for o in manifold] == [
            c.name for c in MANIFOLD_MATRIX
        ]


class TestPinnedGoldens:
    """All three backends must reproduce the committed bytes."""

    @pytest.fixture(scope="class")
    def golden_payload(self):
        return (GOLDEN_DIR / "batch_sweep.json").read_text()

    @pytest.fixture(scope="class")
    def golden_metrics(self):
        return (GOLDEN_DIR / "batch_metrics.json").read_text()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_reproduces_goldens(
        self, backend, golden_payload, golden_metrics
    ):
        steady, manifold, export = run_batched_matrix(backend)
        payload = json.dumps(
            {
                "module_steady": [o.value for o in steady],
                "manifold": [o.value for o in manifold],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        assert payload + "\n" == golden_payload, (
            "batched sweep payload drifted from tests/goldens/"
            "batch_sweep.json — regenerate with "
            "scripts/run_batch_differential.py (see module docstring) and "
            "review the diff"
        )
        assert export + "\n" == golden_metrics, (
            "batched sweep metrics drifted from tests/goldens/"
            "batch_metrics.json — regenerate with "
            "scripts/run_batch_differential.py (see module docstring)"
        )
