"""Tests for the steady-state thermal solver."""

import pytest

from repro.thermal.network import ThermalNetwork
from repro.thermal.steady import boundary_heat_flows, solve_steady_state


class TestSingleResistor:
    def test_ohms_law(self):
        net = ThermalNetwork()
        net.add_boundary("coolant", 30.0)
        net.add_node("junction", heat_w=91.0)
        net.add_resistance("junction", "coolant", 0.27)
        temps = solve_steady_state(net)
        assert temps["junction"] == pytest.approx(30.0 + 0.27 * 91.0)
        assert temps["coolant"] == 30.0

    def test_no_heat_equals_boundary(self):
        net = ThermalNetwork()
        net.add_boundary("ambient", 25.0)
        net.add_node("plate")
        net.add_resistance("plate", "ambient", 1.0)
        temps = solve_steady_state(net)
        assert temps["plate"] == pytest.approx(25.0)


class TestSeriesChain:
    def test_temperatures_accumulate(self):
        net = ThermalNetwork()
        net.add_boundary("oil", 30.0)
        net.add_node("junction", heat_w=100.0)
        net.add_node("case")
        net.add_node("sink")
        net.add_resistance("junction", "case", 0.08)
        net.add_resistance("case", "sink", 0.05)
        net.add_resistance("sink", "oil", 0.10)
        temps = solve_steady_state(net)
        assert temps["sink"] == pytest.approx(40.0)
        assert temps["case"] == pytest.approx(45.0)
        assert temps["junction"] == pytest.approx(53.0)


class TestParallelPaths:
    def test_parallel_resistances_combine(self):
        net = ThermalNetwork()
        net.add_boundary("ambient", 20.0)
        net.add_node("source", heat_w=10.0)
        net.add_resistance("source", "ambient", 2.0)
        net.add_resistance("source", "ambient", 2.0)
        temps = solve_steady_state(net)
        assert temps["source"] == pytest.approx(30.0)  # R_eff = 1.0


class TestMultipleBoundaries:
    def test_heat_splits_between_boundaries(self):
        net = ThermalNetwork()
        net.add_boundary("water", 20.0)
        net.add_boundary("air", 40.0)
        net.add_node("plate", heat_w=0.0)
        net.add_resistance("plate", "water", 1.0)
        net.add_resistance("plate", "air", 1.0)
        temps = solve_steady_state(net)
        assert temps["plate"] == pytest.approx(30.0)

    def test_boundary_heat_flows_conserve_energy(self):
        net = ThermalNetwork()
        net.add_boundary("water", 20.0)
        net.add_boundary("air", 25.0)
        net.add_node("a", heat_w=60.0)
        net.add_node("b", heat_w=40.0)
        net.add_resistance("a", "b", 0.2)
        net.add_resistance("a", "water", 0.5)
        net.add_resistance("b", "air", 0.8)
        temps = solve_steady_state(net)
        flows = boundary_heat_flows(net, temps)
        assert sum(flows.values()) == pytest.approx(100.0, rel=1e-9)

    def test_heat_flows_into_colder_boundary_dominant(self):
        net = ThermalNetwork()
        net.add_boundary("cold", 10.0)
        net.add_boundary("warm", 30.0)
        net.add_node("source", heat_w=50.0)
        net.add_resistance("source", "cold", 1.0)
        net.add_resistance("source", "warm", 1.0)
        temps = solve_steady_state(net)
        flows = boundary_heat_flows(net, temps)
        assert flows["cold"] > flows["warm"]


class TestLargerNetwork:
    def test_board_of_chips(self):
        """Eight chips on a shared sink plate into oil — all solvable and
        ordered by their distance from the boundary."""
        net = ThermalNetwork()
        net.add_boundary("oil", 28.0)
        net.add_node("plate")
        net.add_resistance("plate", "oil", 0.02)
        for i in range(8):
            net.add_node(f"chip{i}", heat_w=91.0)
            net.add_resistance(f"chip{i}", "plate", 0.25)
        temps = solve_steady_state(net)
        plate = temps["plate"]
        assert plate == pytest.approx(28.0 + 8 * 91.0 * 0.02)
        for i in range(8):
            assert temps[f"chip{i}"] == pytest.approx(plate + 91.0 * 0.25)

    def test_validation_error_propagates(self):
        net = ThermalNetwork()
        net.add_node("floating", heat_w=1.0)
        with pytest.raises(Exception):
            solve_steady_state(net)
