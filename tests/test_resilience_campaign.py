"""Tests for the seeded fault-injection campaign engine."""

import json

import pytest

from repro.control.supervisor import Supervisor
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.reliability.failures import (
    MAX_LEAK_RATE_M3_S,
    MAX_SENSOR_OFFSET_C,
    MAX_TIM_MULTIPLIER,
    pump_stop_event,
)
from repro.resilience.campaign import (
    KINDS,
    CampaignReport,
    FaultScenario,
    ScenarioReport,
    draw_scenarios,
    mc_model_from_campaign,
    run_campaign,
    single_fault_scenarios,
)


def supervised_simulator():
    return ModuleSimulator(module=skat(), supervisor=Supervisor())


class TestFaultScenario:
    def test_kinds_sorted_and_deduplicated(self):
        scenario = FaultScenario(
            name="double",
            events=(
                pump_stop_event(100.0, "oil_pump", 0.0),
                pump_stop_event(200.0, "standby_pump", 0.0),
            ),
        )
        assert scenario.kinds == ("pump_stop",)
        assert scenario.first_fault_time_s == 100.0

    def test_rejects_empty_name_and_events(self):
        with pytest.raises(ValueError):
            FaultScenario(name="", events=(pump_stop_event(1.0, "p", 0.0),))
        with pytest.raises(ValueError):
            FaultScenario(name="empty", events=())


class TestScenarioGeneration:
    def test_single_fault_set_covers_every_kind(self):
        scenarios = single_fault_scenarios()
        assert sorted(s.name for s in scenarios) == sorted(KINDS)
        kinds = {kind for s in scenarios for kind in s.kinds}
        assert kinds == set(KINDS)

    def test_draw_is_deterministic_per_seed(self):
        a = draw_scenarios(7, 12)
        b = draw_scenarios(7, 12)
        assert [s.name for s in a] == [s.name for s in b]
        assert all(
            ea.magnitude == eb.magnitude and ea.time_s == eb.time_s
            for sa, sb in zip(a, b)
            for ea, eb in zip(sa.events, sb.events)
        )

    def test_different_seeds_differ(self):
        a = draw_scenarios(7, 12)
        b = draw_scenarios(8, 12)
        assert [s.name for s in a] != [s.name for s in b] or any(
            ea.magnitude != eb.magnitude
            for sa, sb in zip(a, b)
            for ea, eb in zip(sa.events, sb.events)
        )

    def test_times_land_on_the_dt_grid(self):
        for scenario in draw_scenarios(3, 20, dt_s=5.0):
            for event in scenario.events:
                assert event.time_s % 5.0 == pytest.approx(0.0)

    def test_magnitudes_inside_validated_ranges(self):
        # The factories raise on out-of-range magnitudes, so surviving
        # construction is itself the check; spot-check the bounds anyway.
        for scenario in draw_scenarios(11, 40, compound_fraction=0.5):
            for event in scenario.events:
                if event.kind == "leak":
                    assert 0.0 < event.magnitude <= MAX_LEAK_RATE_M3_S
                elif event.kind == "tim_washout":
                    assert 1.0 <= event.magnitude <= MAX_TIM_MULTIPLIER
                elif event.kind == "sensor_fault":
                    assert abs(event.magnitude) <= MAX_SENSOR_OFFSET_C
                else:
                    assert 0.0 <= event.magnitude < 1.0

    def test_compound_scenarios_mix_distinct_kinds(self):
        scenarios = draw_scenarios(5, 40, compound_fraction=1.0)
        for scenario in scenarios:
            assert len(scenario.events) == 2
            assert len(scenario.kinds) == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            draw_scenarios(1, 0)
        with pytest.raises(ValueError):
            draw_scenarios(1, 4, compound_fraction=1.5)
        with pytest.raises(ValueError):
            draw_scenarios(1, 4, dt_s=0.0)


class TestRunCampaign:
    def test_identical_seeds_identical_reports(self):
        scenarios = draw_scenarios(21, 4)
        kwargs = dict(duration_s=600.0, dt_s=5.0, seed=21)
        a = run_campaign(supervised_simulator, scenarios, **kwargs)
        b = run_campaign(supervised_simulator, draw_scenarios(21, 4), **kwargs)
        assert a.to_json() == b.to_json()

    def test_serial_matches_parallel(self):
        scenarios = single_fault_scenarios()
        serial = run_campaign(
            supervised_simulator, scenarios, duration_s=600.0, max_workers=1
        )
        parallel = run_campaign(
            supervised_simulator, scenarios, duration_s=600.0, max_workers=4
        )
        assert serial.to_json() == parallel.to_json()

    def test_json_round_trips(self):
        report = run_campaign(
            supervised_simulator, single_fault_scenarios(), duration_s=400.0
        )
        payload = json.loads(report.to_json())
        assert payload["n_scenarios"] == len(KINDS)
        assert {s["name"] for s in payload["scenarios"]} == set(KINDS)

    def test_simulator_crash_is_captured_not_raised(self):
        class Exploding:
            def run(self, duration_s, events, dt_s):
                raise RuntimeError("boom in the solver")

        report = run_campaign(
            lambda: Exploding(), single_fault_scenarios(), duration_s=400.0
        )
        assert all(not s.ok for s in report.scenarios)
        assert len(report.failures) == len(KINDS)
        assert all(f["kind"] == "RuntimeError" for f in report.failures)
        assert report.bounded_fraction == 0.0

    def test_rejects_duplicate_names_and_empty(self):
        scenario = single_fault_scenarios()[0]
        with pytest.raises(ValueError):
            run_campaign(supervised_simulator, [scenario, scenario])
        with pytest.raises(ValueError):
            run_campaign(supervised_simulator, [])

    def test_scores_mitigation_timing(self):
        report = run_campaign(
            supervised_simulator,
            [
                FaultScenario(
                    name="pump", events=(pump_stop_event(240.0, "oil_pump", 0.0),)
                )
            ],
            duration_s=600.0,
        )
        (score,) = report.scenarios
        assert score.ok and score.bounded
        assert score.time_to_mitigation_s is not None
        assert 0.0 <= score.time_to_mitigation_s <= 60.0
        assert score.min_utilization == pytest.approx(0.9)
        assert score.degraded_pflops is not None and score.degraded_pflops > 0.0


def open_loop_simulator():
    return ModuleSimulator(module=skat())


class TestBatchedCampaign:
    """The open-loop campaign hot loop rides the vectorized core."""

    def _scenarios(self):
        # Open-loop-eligible subset: no sensor faults.
        return [
            s
            for s in single_fault_scenarios()
            if "sensor_fault" not in s.kinds
        ]

    def test_batched_matches_per_object_byte_for_byte(self):
        scenarios = self._scenarios()
        kwargs = dict(duration_s=400.0, dt_s=5.0)
        batched = run_campaign(
            open_loop_simulator, scenarios, batch="always", **kwargs
        )
        per_object = run_campaign(
            open_loop_simulator, scenarios, batch="never", **kwargs
        )
        assert batched.to_json() == per_object.to_json()

    def test_auto_engages_only_for_open_loop(self):
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as obs:
            run_campaign(
                open_loop_simulator, self._scenarios(), duration_s=300.0
            )
            assert obs.as_dict()["counters"]["campaign_batched_runs_total"] == 1
        with use_registry(MetricsRegistry()) as obs:
            run_campaign(
                supervised_simulator, self._scenarios(), duration_s=300.0
            )
            counters = obs.as_dict()["counters"]
            assert "campaign_batched_runs_total" not in counters

    def test_sensor_fault_scenarios_stay_per_object(self):
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as obs:
            run_campaign(
                open_loop_simulator, single_fault_scenarios(), duration_s=300.0
            )
            counters = obs.as_dict()["counters"]
        assert "campaign_batched_runs_total" not in counters

    def test_always_rejected_for_closed_loop(self):
        with pytest.raises(ValueError, match="not batchable"):
            run_campaign(
                supervised_simulator,
                self._scenarios(),
                duration_s=300.0,
                batch="always",
            )

    def test_bad_batch_value_rejected(self):
        with pytest.raises(ValueError, match="batch must be"):
            run_campaign(
                open_loop_simulator,
                self._scenarios(),
                duration_s=300.0,
                batch="sometimes",
            )


class TestCampaignHarness:
    """Campaigns through the fault-tolerant execution harness."""

    def test_harnessed_report_matches_plain(self, tmp_path):
        from repro.sweep import HarnessConfig

        scenarios = single_fault_scenarios()
        kwargs = dict(duration_s=400.0, dt_s=5.0, seed=7)
        plain = run_campaign(supervised_simulator, scenarios, **kwargs)
        harnessed = run_campaign(
            supervised_simulator,
            single_fault_scenarios(),
            harness=HarnessConfig(
                checkpoint=tmp_path / "campaign.json", checkpoint_every=2
            ),
            **kwargs,
        )
        assert harnessed.to_json() == plain.to_json()

    def test_campaign_resumes_from_checkpoint(self, tmp_path):
        from repro.sweep import HarnessConfig

        scenarios = single_fault_scenarios()
        kwargs = dict(duration_s=400.0, dt_s=5.0, seed=7)
        config = HarnessConfig(
            checkpoint=tmp_path / "campaign.json", checkpoint_every=2
        )
        first = run_campaign(
            supervised_simulator, scenarios, harness=config, **kwargs
        )
        resumed = run_campaign(
            supervised_simulator,
            single_fault_scenarios(),
            harness=HarnessConfig(
                checkpoint=tmp_path / "campaign.json",
                resume=True,
                checkpoint_every=2,
            ),
            **kwargs,
        )
        assert resumed.to_json() == first.to_json()


class TestMonteCarloBridge:
    def _campaign(self):
        return run_campaign(
            supervised_simulator, single_fault_scenarios(), duration_s=1500.0
        )

    def test_one_component_per_exercised_kind(self):
        mc = mc_model_from_campaign(self._campaign())
        assert sorted(c.component.name for c in mc.components) == sorted(KINDS)

    def test_safe_shutdown_kinds_carry_stoppage(self):
        report = self._campaign()
        mc = mc_model_from_campaign(report, shutdown_stoppage_hours=24.0)
        by_name = {c.component.name: c for c in mc.components}
        # Leaks always end in SAFE_SHUTDOWN -> full stoppage charge; a
        # ridden-through pump failover carries none.
        assert by_name["leak"].stoppage_hours == pytest.approx(24.0)
        assert by_name["pump_stop"].stoppage_hours == pytest.approx(0.0)

    def test_simulation_runs_and_is_seeded(self):
        mc = mc_model_from_campaign(self._campaign(), seed=3)
        a = mc.run(years=5.0)
        b = mc_model_from_campaign(self._campaign(), seed=3).run(years=5.0)
        assert a.availability == b.availability
        assert 0.9 < a.availability <= 1.0

    def test_rejects_negative_stoppage(self):
        with pytest.raises(ValueError):
            mc_model_from_campaign(self._campaign(), shutdown_stoppage_hours=-1.0)


class TestCampaignReportAggregates:
    def _report(self, flags):
        scenarios = tuple(
            ScenarioReport(
                name=f"s{i}",
                kinds=("pump_stop",),
                ok=True,
                error=None,
                survived=survived,
                safe_shutdown=shutdown,
                final_state="SAFE_SHUTDOWN" if shutdown else "NORMAL",
                peak_junction_c=60.0,
                peak_oil_c=30.0,
                time_to_alarm_s=None,
                time_to_mitigation_s=None,
                min_utilization=None,
                degraded_pflops=None,
            )
            for i, (survived, shutdown) in enumerate(flags)
        )
        return CampaignReport(
            scenarios=scenarios,
            seed=0,
            duration_s=100.0,
            dt_s=5.0,
            junction_limit_c=85.0,
        )

    def test_fractions(self):
        report = self._report([(True, False), (False, True), (False, False)])
        assert report.survived_fraction == pytest.approx(1.0 / 3.0)
        assert report.safe_shutdown_fraction == pytest.approx(1.0 / 3.0)
        assert report.bounded_fraction == pytest.approx(2.0 / 3.0)

    def test_per_kind_shutdown_fraction(self):
        report = self._report([(True, False), (False, True)])
        assert report.safe_shutdown_fraction_for("pump_stop") == pytest.approx(0.5)
        assert report.safe_shutdown_fraction_for("leak") == 0.0
