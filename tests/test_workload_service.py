"""Service parity for the GPU workload catalog.

The gateway must treat the new workload levels exactly like the classic
ones: a ``workload`` training-trace block normalizes onto the same event
grammar (and therefore the same digest) as its explicit ``power_step``
spelling, kW and W plant spellings coincide, responses are byte-identical
to the in-process serial oracle with cache hits on duplicates, and a
trace on a non-GPU level is a schema violation the ASGI adapter maps to
HTTP 400 with a stable message.
"""

import asyncio
import json

import pytest

from repro.devices import TrainingTraceSpec, training_power_events
from repro.obs import MetricsRegistry
from repro.service import SimulationGateway, create_app
from repro.service.requests import (
    ServiceRequestError,
    evaluate_request,
    normalize_request,
    request_digest,
)
from repro.verify.fuzz import canonical_json

GPU_FACILITY = {
    "level": "gpu_facility",
    "duration_s": 400.0,
    "dt_s": 20.0,
    "n_racks": 2,
    "n_modules": 2,
    "workload": {"seed": 3, "dip_fraction": 0.8},
}
HOT_WATER = {
    "level": "hot_water_facility",
    "n_racks": 2,
    "n_modules": 2,
    "workload": {"seed": 1},
}
GPU_MODULE = {"level": "gpu_module", "workload": {"seed": 5}}


def _call(app, payload):
    """One ASGI POST /simulate round-trip; returns (status, body dict)."""

    async def go():
        scope = {
            "type": "http",
            "method": "POST",
            "path": "/simulate",
            "headers": [],
            "query_string": b"",
        }
        body = json.dumps(payload).encode("utf-8")
        messages = []
        sent = {"given": False}

        async def receive():
            if sent["given"]:
                return {"type": "http.disconnect"}
            sent["given"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message):
            messages.append(message)

        await app(scope, receive, send)
        return messages

    messages = asyncio.run(go())
    return messages[0]["status"], json.loads(messages[1]["body"])


class TestDigestIdentities:
    def test_trace_block_and_explicit_events_share_a_digest(self):
        spec = TrainingTraceSpec(seed=3, dip_fraction=0.8)
        events = [
            {
                "kind": e.kind,
                "time_s": e.time_s,
                "target": e.target,
                "magnitude": e.magnitude,
            }
            for e in training_power_events(spec, 400.0, 20.0)
        ]
        explicit = {
            k: v for k, v in GPU_FACILITY.items() if k != "workload"
        } | {"events": events}
        a = normalize_request(GPU_FACILITY)
        b = normalize_request(explicit)
        assert "workload" not in a
        assert a == b
        assert request_digest(a) == request_digest(b)

    def test_kilowatt_and_watt_plant_spellings_share_a_digest(self):
        kw = dict(
            HOT_WATER,
            plant={"setpoint_c": 40.0, "primary_capacity_kw": 700},
        )
        w = dict(
            HOT_WATER,
            plant={"setpoint_c": 40.0, "primary_capacity_w": 700000},
        )
        assert request_digest(normalize_request(kw)) == request_digest(
            normalize_request(w)
        )

    def test_workload_defaults_fill_in(self):
        """Spelling only the seed equals spelling the full default spec."""
        defaults = TrainingTraceSpec()
        full = dict(
            HOT_WATER,
            workload={
                "seed": 1,
                "warmup_s": defaults.warmup_s,
                "warmup_fraction": defaults.warmup_fraction,
                "step_period_s": defaults.step_period_s,
                "allreduce_fraction": defaults.allreduce_fraction,
                "peak_fraction": defaults.peak_fraction,
                "dip_fraction": defaults.dip_fraction,
                "jitter": defaults.jitter,
            },
        )
        assert request_digest(normalize_request(HOT_WATER)) == request_digest(
            normalize_request(full)
        )


class TestLevelRejection:
    @pytest.mark.parametrize("level", ["module", "rack", "facility"])
    def test_workload_on_classic_levels_is_rejected(self, level):
        with pytest.raises(ServiceRequestError) as err:
            normalize_request({"level": level, "workload": {"seed": 0}})
        assert str(err.value) == (
            "'workload' training traces apply to GPU workload levels only "
            "(gpu_facility, gpu_module, hot_water_facility); "
            f"got level {level!r}"
        )

    def test_rejection_maps_to_http_400(self):
        gateway = SimulationGateway(
            registry=MetricsRegistry(), max_batch_size=1
        )
        app = create_app(gateway)
        try:
            status, body = _call(
                app, {"level": "module", "workload": {"seed": 0}}
            )
        finally:
            asyncio.run(gateway.close())
        assert status == 400
        assert "GPU workload levels only" in body["error"]

    def test_out_of_band_power_step_is_rejected(self):
        with pytest.raises(ServiceRequestError, match=r"within \[0, 1\]"):
            normalize_request(
                {
                    "level": "gpu_module",
                    "events": [
                        {
                            "time_s": 10.0,
                            "kind": "power_step",
                            "target": "compute",
                            "magnitude": 1.5,
                        }
                    ],
                }
            )

    def test_unknown_workload_key_is_rejected(self):
        with pytest.raises(ServiceRequestError, match="unknown keys"):
            normalize_request(dict(GPU_MODULE, workload={"epochs": 3}))


class TestGatewayParity:
    def test_workload_requests_match_serial_oracle_with_cache_hits(self):
        payloads = [
            GPU_MODULE,
            GPU_FACILITY,
            HOT_WATER,
            dict(
                HOT_WATER,
                plant={"setpoint_c": 40.0, "primary_capacity_kw": 700},
            ),
        ]

        async def go():
            gateway = SimulationGateway(
                registry=MetricsRegistry(), max_batch_size=1
            )
            solved = [await gateway.simulate(p) for p in payloads]
            cached = [await gateway.simulate(p) for p in payloads]
            await gateway.close()
            return solved, cached

        solved, cached = asyncio.run(go())
        for payload, miss, hit in zip(payloads, solved, cached):
            expected = canonical_json(
                evaluate_request(normalize_request(payload))
            )
            assert canonical_json(miss["result"]) == expected
            assert canonical_json(hit["result"]) == expected
            assert miss["cached"] is False and hit["cached"] is True
            assert miss["digest"] == hit["digest"]

    def test_facility_results_carry_the_energy_ledger(self):
        record = evaluate_request(normalize_request(HOT_WATER))
        summary = record["summary"]
        assert summary["ppue"] >= 1.0
        assert summary["recovered_heat_j"] >= 0.0
        assert record["violations"] == []

    def test_module_record_has_no_facility_ledger(self):
        record = evaluate_request(normalize_request(GPU_MODULE))
        assert "ppue" not in record["summary"]
