"""Tests for the oil ageing model."""

import math

import pytest

from repro.core.designrules import coolant_rules, review
from repro.fluids.ageing import (
    OilAgeing,
    aged_fluid,
    hours_until_rules_fail,
)
from repro.fluids.library import MINERAL_OIL_MD45


class TestDriftMechanics:
    def test_fresh_oil_unchanged(self):
        aged = aged_fluid(MINERAL_OIL_MD45, 0.0)
        assert aged.viscosity(30.0) == pytest.approx(MINERAL_OIL_MD45.viscosity(30.0))
        assert aged.dielectric_strength_kv_mm == MINERAL_OIL_MD45.dielectric_strength_kv_mm

    def test_viscosity_creeps_up(self):
        aged = aged_fluid(MINERAL_OIL_MD45, 20000.0)
        assert aged.viscosity(30.0) > MINERAL_OIL_MD45.viscosity(30.0)

    def test_dielectric_strength_decays(self):
        aged = aged_fluid(MINERAL_OIL_MD45, 20000.0)
        assert aged.dielectric_strength_kv_mm < MINERAL_OIL_MD45.dielectric_strength_kv_mm

    def test_dielectric_floor(self):
        aged = aged_fluid(MINERAL_OIL_MD45, 1.0e6)
        assert aged.dielectric_strength_kv_mm >= 0.3 * MINERAL_OIL_MD45.dielectric_strength_kv_mm

    def test_hotter_bath_ages_faster(self):
        cool = aged_fluid(MINERAL_OIL_MD45, 20000.0, bath_c=30.0)
        hot = aged_fluid(MINERAL_OIL_MD45, 20000.0, bath_c=40.0)
        assert hot.viscosity(30.0) > cool.viscosity(30.0)

    def test_acceleration_doubles_per_10k(self):
        ageing = OilAgeing()
        assert ageing.acceleration(40.0) == pytest.approx(2.0 * ageing.acceleration(30.0))

    def test_rejects_negative_service(self):
        with pytest.raises(ValueError):
            OilAgeing().effective_hours(-1.0, 30.0)


class TestFiltration:
    def test_filtration_arrests_degradation(self):
        ageing = OilAgeing()
        unfiltered = ageing.effective_hours(40000.0, 30.0)
        filtered = ageing.effective_hours(40000.0, 30.0, filtration_interval_h=4000.0)
        assert filtered < 0.3 * unfiltered

    def test_filtered_age_saturates(self):
        """With regular service the equivalent age plateaus: year 10 is
        barely older than year 5."""
        ageing = OilAgeing()
        five = ageing.effective_hours(5 * 8760.0, 30.0, filtration_interval_h=4000.0)
        ten = ageing.effective_hours(10 * 8760.0, 30.0, filtration_interval_h=4000.0)
        assert ten < 1.3 * five

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            OilAgeing().effective_hours(1000.0, 30.0, filtration_interval_h=0.0)


class TestRulesOverLife:
    def test_unfiltered_oil_eventually_fails(self):
        hours = hours_until_rules_fail(MINERAL_OIL_MD45)
        assert 8000.0 <= hours <= 60000.0

    def test_failure_mode_is_dielectric(self):
        hours = hours_until_rules_fail(MINERAL_OIL_MD45)
        failed = aged_fluid(MINERAL_OIL_MD45, hours)
        failing_rules = [c.rule for c in coolant_rules(failed) if not c.passed]
        assert any("dielectric" in rule for rule in failing_rules)

    def test_regular_filtration_keeps_oil_in_service(self):
        """The maintenance-policy payoff: the filtration the SKAT service
        plan includes keeps the oil passing the rules indefinitely."""
        hours = hours_until_rules_fail(
            MINERAL_OIL_MD45, filtration_interval_h=4000.0, horizon_h=1.0e5
        )
        assert math.isinf(hours)

    def test_fresh_oil_passes(self):
        assert review(coolant_rules(aged_fluid(MINERAL_OIL_MD45, 0.0)))
