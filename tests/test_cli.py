"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import COMMANDS, main


class TestDispatch:
    def test_no_args_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "Commands" in capsys.readouterr().out

    def test_help_flag_succeeds(self, capsys):
        assert main(["--help"]) == 0
        assert "summary" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "summary",
            "machines",
            "balance",
            "scorecard",
            "energy",
            "tco",
            "sensitivity",
            "commission",
            "experiments",
        }


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "max FPGA junction" in out
        assert "paper" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("Rigel-2", "Taygeta", "SKAT"):
            assert name in out

    def test_balance_with_argument(self, capsys):
        assert main(["balance", "3"]) == 0
        out = capsys.readouterr().out
        assert "reverse" in out
        assert out.count("max/min") == 2

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        assert "overhead ratio" in capsys.readouterr().out

    def test_tco(self, capsys):
        assert main(["tco"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        assert "base max FPGA" in capsys.readouterr().out

    def test_commission(self, capsys):
        assert main(["commission"]) == 0
        assert "CLEARED FOR SERVICE" in capsys.readouterr().out
