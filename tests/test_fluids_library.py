"""Tests for the concrete fluid library against handbook anchors and the
paper's Section 2 comparison claims."""

import pytest

from repro.fluids.library import (
    AIR,
    GLYCOL30,
    MINERAL_OIL_MD45,
    SYNTHETIC_ESTER,
    WATER,
    all_fluids,
    coolant_comparison_table,
    mouromtseff_number,
)


class TestHandbookAnchors:
    def test_air_density_at_25c(self):
        assert AIR.density(25.0) == pytest.approx(1.184, rel=0.01)

    def test_air_conductivity_at_25c(self):
        assert AIR.conductivity(25.0) == pytest.approx(0.026, rel=0.05)

    def test_air_prandtl_near_0_7(self):
        assert AIR.prandtl(25.0) == pytest.approx(0.71, rel=0.05)

    def test_water_density_at_25c(self):
        assert WATER.density(25.0) == pytest.approx(997.0, rel=0.005)

    def test_water_viscosity_at_25c(self):
        assert WATER.viscosity(25.0) == pytest.approx(8.9e-4, rel=0.05)

    def test_water_specific_heat_at_25c(self):
        assert WATER.specific_heat(25.0) == pytest.approx(4180.0, rel=0.01)

    def test_water_conductivity_at_25c(self):
        assert WATER.conductivity(25.0) == pytest.approx(0.607, rel=0.02)

    def test_oil_density_near_850(self):
        assert MINERAL_OIL_MD45.density(30.0) == pytest.approx(850.0, rel=0.01)

    def test_oil_much_more_viscous_than_water(self):
        assert MINERAL_OIL_MD45.viscosity(30.0) > 10.0 * WATER.viscosity(30.0)

    def test_oil_viscosity_falls_steeply_with_temperature(self):
        ratio = MINERAL_OIL_MD45.viscosity(20.0) / MINERAL_OIL_MD45.viscosity(60.0)
        assert 2.5 < ratio < 8.0


class TestPaperClaims:
    """Section 2's quantitative comparison of liquids vs air."""

    def test_liquid_heat_capacity_1500_to_4000x_air(self):
        air_vhc = AIR.volumetric_heat_capacity(30.0)
        for fluid in (WATER, GLYCOL30, MINERAL_OIL_MD45, SYNTHETIC_ESTER):
            ratio = fluid.volumetric_heat_capacity(30.0) / air_vhc
            assert 1200.0 < ratio < 4200.0, fluid.name

    def test_water_near_upper_bound_oil_near_lower(self):
        air_vhc = AIR.volumetric_heat_capacity(30.0)
        water_ratio = WATER.volumetric_heat_capacity(30.0) / air_vhc
        oil_ratio = MINERAL_OIL_MD45.volumetric_heat_capacity(30.0) / air_vhc
        assert water_ratio > 3000.0
        assert oil_ratio < 2000.0

    def test_one_fpga_needs_about_250ml_water_per_minute(self):
        # 91 W chip, ~5 K coolant rise (the paper's implied design point).
        flow = WATER.volume_flow_for_heat(91.0, 5.2, 25.0)
        ml_per_minute = flow * 60.0 * 1.0e6
        assert ml_per_minute == pytest.approx(250.0, rel=0.15)

    def test_one_fpga_needs_about_1m3_air_per_minute(self):
        flow = AIR.volume_flow_for_heat(91.0, 4.6, 25.0)
        m3_per_minute = flow * 60.0
        assert m3_per_minute == pytest.approx(1.0, rel=0.15)

    def test_air_to_water_flow_ratio_thousands(self):
        air = AIR.volume_flow_for_heat(91.0, 5.0, 25.0)
        water = WATER.volume_flow_for_heat(91.0, 5.0, 25.0)
        assert 3000.0 < air / water < 4200.0


class TestFigureOfMerit:
    def test_water_best_oil_mid_air_worst(self):
        mo = {f.name: mouromtseff_number(f, 30.0) for f in all_fluids()}
        assert mo["water"] > mo["mineral_oil_md45"] > mo["air"]

    def test_oil_beats_ester(self):
        # Lower viscosity wins at equal dielectric class.
        assert mouromtseff_number(MINERAL_OIL_MD45, 30.0) > mouromtseff_number(
            SYNTHETIC_ESTER, 30.0
        )

    def test_comparison_table_shape(self):
        rows = coolant_comparison_table(30.0)
        assert len(rows) == 5
        assert rows[0]["name"] == "air"
        assert rows[0]["heat_capacity_ratio_vs_air"] == pytest.approx(1.0)
        for row in rows:
            assert set(row) >= {
                "density",
                "cp",
                "conductivity",
                "viscosity",
                "prandtl",
                "volumetric_heat_capacity",
                "mouromtseff",
            }

    def test_only_dielectrics_may_be_immersion_agents(self):
        assert MINERAL_OIL_MD45.dielectric
        assert SYNTHETIC_ESTER.dielectric
        assert not WATER.dielectric
        assert not GLYCOL30.dielectric

    def test_oil_is_multi_vendor_cheap_ester_is_not(self):
        # The paper criticises the IMMERS coolant's single-vendor cost.
        assert MINERAL_OIL_MD45.cost_usd_per_litre < SYNTHETIC_ESTER.cost_usd_per_litre
