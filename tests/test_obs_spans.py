"""Span nesting, error paths and per-worker trace isolation."""

import pytest

from repro.obs import MetricsRegistry, format_trace, use_registry
from repro.obs.spans import SpanRecord, TraceStore
from repro.sweep import SweepCase, run_sweep


class TestNesting:
    def test_children_nest_under_parent(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with reg.span("child_a"):
                pass
            with reg.span("child_b"):
                with reg.span("grandchild"):
                    pass
        traces = reg.traces()
        assert len(traces) == 1
        (roots,) = traces.values()
        assert [r.name for r in roots] == ["parent"]
        parent = roots[0]
        assert [c.name for c in parent.children] == ["child_a", "child_b"]
        assert [g.name for g in parent.children[1].children] == ["grandchild"]
        assert [s.depth for s in parent.walk()] == [0, 1, 1, 2]

    def test_child_duration_within_parent(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with reg.span("child"):
                sum(range(1000))
        parent = next(iter(reg.traces().values()))[0]
        child = parent.children[0]
        assert 0.0 <= child.duration_s <= parent.duration_s
        assert parent.start_s <= child.start_s
        assert (
            child.start_s + child.duration_s
            <= parent.start_s + parent.duration_s
        )

    def test_current_span_tracks_stack(self):
        reg = MetricsRegistry()
        assert reg.current_span() is None
        with reg.span("outer"):
            assert reg.current_span().name == "outer"
            with reg.span("inner"):
                assert reg.current_span().name == "inner"
            assert reg.current_span().name == "outer"
        assert reg.current_span() is None

    def test_labels_and_annotate(self):
        reg = MetricsRegistry()
        with reg.span("s", case="a") as span:
            span.annotate(extra=1)
        record = next(iter(reg.traces().values()))[0]
        assert record.labels == (("case", "a"), ("extra", 1))


class TestErrorPaths:
    def test_span_closes_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("failing"):
                raise RuntimeError("boom")
        record = next(iter(reg.traces().values()))[0]
        assert record.status == "error"
        assert "boom" in record.error
        assert record.duration_s >= 0.0
        # The stack unwound: a new root opens cleanly.
        with reg.span("after"):
            assert reg.current_span().name == "after"

    def test_nested_error_marks_only_failing_spans(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with pytest.raises(ValueError):
                with reg.span("child"):
                    raise ValueError("inner")
        parent = next(iter(reg.traces().values()))[0]
        assert parent.status == "ok"
        assert parent.children[0].status == "error"

    def test_out_of_order_close_is_refused(self):
        store = TraceStore()
        a, b = SpanRecord(name="a"), SpanRecord(name="b")
        store.push(a)
        store.push(b)
        with pytest.raises(RuntimeError):
            store.pop(a)

    def test_empty_span_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.span("")


class TestWorkerIsolation:
    def test_sweep_workers_produce_non_interleaved_traces(self):
        """Each worker's trace group holds only its own, well-formed trees."""
        cases = [SweepCase(name=f"case_{i}", params={"i": i}) for i in range(16)]

        with use_registry() as obs:

            def evaluate(case):
                with obs.span("inner", case=case.name):
                    return case.params["i"]

            outcomes = run_sweep(evaluate, cases, max_workers=4, chunk_size=1)
            traces = obs.traces()

        assert [o.value for o in outcomes] == list(range(16))
        roots = [root for worker in traces.values() for root in worker]
        # One sweep.case root per case, each wrapping exactly its inner span.
        assert len(roots) == 16
        seen = set()
        for root in roots:
            assert root.name == "sweep.case"
            assert root.depth == 0
            assert [c.name for c in root.children] == ["inner"]
            assert root.labels == root.children[0].labels
            seen.add(dict(root.labels)["case"])
        assert seen == {case.name for case in cases}

    def test_format_trace_renders_tree(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            with reg.span("root", case="x"):
                with reg.span("leaf"):
                    raise KeyError("k")
        text = format_trace(next(iter(reg.traces().values()))[0])
        lines = text.splitlines()
        assert lines[0].startswith("root case=x")
        assert lines[1].startswith("  leaf")
        assert "[error]" in lines[1]
