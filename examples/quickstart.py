"""Quickstart: build the SKAT computational module and read its steady state.

Runs the paper's headline experiment (Section 3) in a few lines: the 3U
immersion-cooled CM with 12 boards of eight Kintex UltraScale FPGAs, a
self-contained oil loop, and a plate heat exchanger against chilled water.

Run with::

    python examples/quickstart.py
"""

from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat


def main() -> None:
    module = skat()
    report = module.solve_steady(
        water_in_c=SKAT_WATER_SUPPLY_C, water_flow_m3_s=SKAT_WATER_FLOW_M3_S
    )

    print(f"machine: {module.name} ({module.height_u:.0f}U, "
          f"{module.section.n_boards} CCBs x {module.section.ccb.n_fpgas} FPGAs)")
    print()
    print(f"oil loop flow            : {report.oil_flow_m3_s * 1000:.2f} L/s")
    print(f"oil cold / hot           : {report.oil_cold_c:.1f} / {report.oil_hot_c:.1f} C")
    print(f"bath temperature         : {report.bath_mean_c:.1f} C  "
          f"(paper: does not exceed 30 C -> {'OK' if report.oil_below_30c else 'EXCEEDED'})")
    print(f"max FPGA junction        : {report.max_fpga_c:.1f} C  (paper: <= 55 C)")
    chips = report.immersion.chips_per_board
    print(f"per-FPGA power           : {sum(c.power_w for c in chips) / len(chips):.1f} W  "
          f"(paper: 91 W)")
    print(f"FPGA field power (96)    : {96 * sum(c.power_w for c in chips) / 8:.0f} W  "
          f"(paper: 8736 W)")
    print(f"module electrical power  : {report.module_electrical_w / 1000:.2f} kW")
    print(f"heat rejected to water   : {report.total_heat_to_water_w / 1000:.2f} kW "
          f"(HX effectiveness {report.hx.effectiveness:.2f})")
    print()
    print("per-position junctions along one board's oil path:")
    for chip in chips:
        print(f"  position {chip.position}: oil {chip.local_oil_c:5.2f} C -> "
              f"junction {chip.junction_c:5.2f} C ({chip.power_w:.1f} W)")


if __name__ == "__main__":
    main()
