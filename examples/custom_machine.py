"""Designer workflow: build your own immersion-cooled CM with the public API.

Walks the full design path the paper's Section 2-3 criteria imply:

1. pick a heat-transfer agent and check it against the coolant rules;
2. size a pin-fin heatsink for the target chip and flow;
3. size the pump and plate heat exchanger;
4. assemble the module, run the design review, and solve the steady state;
5. stress-test with a pump failure under the supervisory controller.

Run with::

    python examples/custom_machine.py
"""

from repro.control.controller import CoolingController
from repro.core.designrules import (
    coolant_rules,
    format_report,
    heatsink_rules,
    module_rules,
    pump_rules,
    review,
)
from repro.core.heatsink import PinFinHeatSink
from repro.core.immersion import ImmersionSection
from repro.core.module import ComputationalModule
from repro.core.simulation import ModuleSimulator
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C
from repro.core.tim import SRC_OIL_STABLE_INTERFACE
from repro.devices.board import Ccb
from repro.devices.families import ULTRASCALE_PLUS_VU9P
from repro.devices.fpga import Fpga
from repro.devices.psu import ImmersionPsu
from repro.fluids.library import MINERAL_OIL_MD45
from repro.heatexchange.plate import PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump, PumpCurve
from repro.reliability.failures import pump_stop_event


def main() -> None:
    print("=== step 1: heat-transfer agent ===")
    oil = MINERAL_OIL_MD45
    checks = coolant_rules(oil)
    print(format_report(checks))
    assert review(checks), "coolant fails the Section 2 criteria"

    print()
    print("=== step 2: heatsink for a 100 W-class UltraScale+ part ===")
    sink = PinFinHeatSink(
        base_width_m=0.065,
        base_depth_m=0.065,
        pin_diameter_m=0.002,
        pin_height_m=0.010,
        pin_pitch_m=0.0038,
        source_area_m2=ULTRASCALE_PLUS_VU9P.die_area_m2,
    )
    board_velocity = 0.18
    print(format_report(heatsink_rules(sink, oil, board_velocity)))
    perf = sink.performance(board_velocity, oil, 29.0)
    print(f"sink-base-to-oil resistance at {board_velocity} m/s: "
          f"{perf.total_resistance_k_w:.3f} K/W "
          f"({sink.n_pins} pins, {sink.wetted_area_m2 * 1e4:.0f} cm^2 wetted)")

    print()
    print("=== step 3: pump and heat exchanger ===")
    pump = Pump(curve=PumpCurve(55.0e3, 6.0e-3), efficiency=0.5, immersed=True)
    print(format_report(pump_rules(pump, 2.8e-3, 30.0e3, oil)))
    hx = PlateHeatExchanger(n_plates=32, plate_width_m=0.10, plate_height_m=0.30)
    print(f"plate HX: {hx.n_plates} plates, {hx.transfer_area_m2:.2f} m^2")

    print()
    print("=== step 4: assemble and review the module ===")
    board = Ccb(Fpga(ULTRASCALE_PLUS_VU9P, utilization=0.9), separate_controller=False)
    board.require_fit()
    section = ImmersionSection(
        ccb=board,
        n_boards=14,  # the paper allows 12-16
        sink=sink,
        tim=SRC_OIL_STABLE_INTERFACE,
        psu=ImmersionPsu(rated_output_w=4500.0),
        n_psus=3,
    )
    machine = ComputationalModule(
        name="custom-14",
        section=section,
        pump=pump,
        hx=hx,
        loop_pipe=Pipe(length_m=2.0, diameter_m=0.045, minor_loss_k=5.0),
    )
    print(format_report(module_rules(machine)))
    report = machine.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    print(f"steady state: oil {report.bath_mean_c:.1f} C, "
          f"maxTj {report.max_fpga_c:.1f} C, "
          f"{report.module_electrical_w / 1000:.1f} kW electrical")

    print()
    print("=== step 5: pump-failure stress test under the controller ===")
    simulator = ModuleSimulator(machine, controller=CoolingController())
    result = simulator.run(
        duration_s=1200.0,
        events=[pump_stop_event(300.0, "oil_pump")],
        dt_s=10.0,
    )
    print(f"pump stops at t=300 s -> controller trips at "
          f"t={result.shutdown_time_s:.0f} s after {result.alarms_raised} alarms; "
          f"peak junction {result.max_junction_c:.0f} C, peak oil {result.max_oil_c:.1f} C")


if __name__ == "__main__":
    main()
