"""The paper's argument in one run: the air-cooling crisis and the fix.

Reproduces Section 1's trajectory — Rigel-2 (fine), Taygeta (over the
reliability ceiling), hypothetical UltraScale-in-air (hopeless) — then
shows the same UltraScale silicon held at ~55 C by the SKAT immersion
system, and the lifetime multiple the cooler junctions buy.

Run with::

    python examples/air_vs_immersion.py
"""

from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    rigel2,
    skat,
    taygeta,
    ultrascale_in_air,
)
from repro.reliability.arrhenius import mtbf_ratio

AMBIENT_C = 25.0


def main() -> None:
    print("=== the air-cooling trajectory (Section 1) ===")
    machines = [
        ("Rigel-2  (Virtex-6, air)", rigel2()),
        ("Taygeta  (Virtex-7, air)", taygeta()),
        ("UltraScale in air (hypothetical, upgraded sink)", ultrascale_in_air()),
    ]
    rows = []
    for name, machine in machines:
        report = machine.solve(AMBIENT_C)
        limit = machine.ccb.fpga.family.t_reliable_max_c
        verdict = "OK" if report.within_reliability_limit else f"OVER the {limit:.0f} C ceiling"
        rows.append((name, report))
        print(f"{name:48s} maxTj {report.max_junction_c:5.1f} C  "
              f"CM power {report.module_power_w:6.0f} W  -> {verdict}")

    print()
    print("=== the immersion fix (Section 3) ===")
    skat_report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    print(f"{'SKAT (UltraScale, immersion)':48s} maxTj {skat_report.max_fpga_c:5.1f} C  "
          f"CM power {skat_report.module_electrical_w:6.0f} W  -> OK, with reserve")
    print(f"oil bath held at {skat_report.bath_mean_c:.1f} C by the plate exchanger")

    print()
    print("=== what the cooler junctions buy (Arrhenius, 0.7 eV) ===")
    taygeta_junction = rows[1][1].max_junction_c
    advantage = mtbf_ratio(skat_report.max_fpga_c, taygeta_junction)
    print(f"FPGA MTBF multiple, SKAT vs Taygeta: {advantage:.1f}x")

    print()
    print("=== same chips, three cooling budgets ===")
    for water_c in (16.0, 20.0, 24.0):
        report = skat().solve_steady(water_c, SKAT_WATER_FLOW_M3_S)
        print(f"chilled water {water_c:4.1f} C -> oil {report.bath_mean_c:5.1f} C, "
              f"maxTj {report.max_fpga_c:5.1f} C")


if __name__ == "__main__":
    main()
