"""The FPGA roadmap on the SKAT cooling system: where the reserve runs out.

Sweeps every catalog family — Virtex-6 through the projected
"UltraScale 2" — through both cooling designs and prints the junction
temperatures, per-chip powers and performance, quantifying the
conclusions' claim that the immersion system's "power reserve ... ensures
an effective cooling not only for the existing but also for future FPGA
families".

Run with::

    python examples/family_roadmap.py
"""

from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    skat_plus,
)
from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_2_PROJECTED,
    ULTRASCALE_PLUS_VU9P,
    family_roadmap,
)
from repro.performance.flops import peak_gflops


def immersion_machine(family):
    """The best-fitting immersion CM for a family (board-width rules)."""
    if family is KINTEX_ULTRASCALE_KU095:
        return skat()
    return skat_plus(family=family, modified_cooling=True)


def main() -> None:
    print("=== the family roadmap (catalog) ===")
    header = (
        f"{'family':26s} {'year':>4s} {'node':>5s} {'logic':>10s} "
        f"{'clock':>6s} {'P_op':>5s} {'peak':>9s}"
    )
    print(header)
    for family in family_roadmap():
        print(
            f"{family.name:26s} {family.year:>4d} {family.process_nm:>4.0f}nm "
            f"{family.logic_cells:>10,d} {family.nominal_clock_mhz:>4.0f}MHz "
            f"{family.operating_power_w:>4.0f}W {peak_gflops(family):>7.0f}GF"
        )

    print()
    print("=== immersion-cooled junction temperatures per family ===")
    immersion_families = [
        KINTEX_ULTRASCALE_KU095,
        ULTRASCALE_PLUS_VU9P,
        ULTRASCALE_2_PROJECTED,
    ]
    for family in immersion_families:
        machine = immersion_machine(family)
        report = machine.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        margin = family.t_reliable_max_c - report.max_fpga_c
        print(
            f"{family.name:26s} on {machine.name:8s}: "
            f"maxTj {report.max_fpga_c:5.1f} C, oil {report.bath_mean_c:4.1f} C, "
            f"margin to {family.t_reliable_max_c:.0f} C ceiling: {margin:+5.1f} K"
        )

    print()
    print("=== rack-level performance per generation ===")
    from repro.core.rack import Rack

    for name, factory in [("SKAT", skat), ("SKAT+", skat_plus)]:
        report = Rack(module_factory=factory, n_modules=12).solve()
        print(
            f"12 x {name:6s} rack: {report.peak_pflops:5.2f} PFlops peak, "
            f"{report.it_power_w / 1000:5.1f} kW IT, PUE {report.pue:.3f}, "
            f"{report.gflops_per_watt:.1f} GFlops/W"
        )


if __name__ == "__main__":
    main()
