"""The Fig. 5 experiment: reverse-return balancing and loop failure.

Builds the six-loop rack heat-exchange system in both manifold layouts,
prints the per-loop flow series, then valves off one computational
module's loop for servicing and shows the surviving loops picking up flow
evenly — the paper's "no additional hydraulic balancing system is needed"
claim, live.

Run with::

    python examples/rack_balancing.py
"""

from repro.core.balancing import (
    ManifoldLayout,
    RackManifoldSystem,
    redistribution_evenness,
)


def print_flows(label: str, flows) -> None:
    cells = "  ".join(f"{q * 1000:6.3f}" for q in flows)
    print(f"{label:18s} [{cells}] L/s")


def main() -> None:
    print("=== six circulation loops, two manifold layouts ===")
    reports = {}
    for layout in ManifoldLayout:
        system = RackManifoldSystem(n_loops=6, layout=layout)
        report = system.solve()
        reports[layout] = report
        print_flows(layout.value + " return", report.loop_flows_m3_s)
        print(f"{'':18s} max/min = {report.imbalance_ratio:.3f},  "
              f"CoV = {report.coefficient_of_variation:.4f}")

    reverse = reports[ManifoldLayout.REVERSE_RETURN]
    direct = reports[ManifoldLayout.DIRECT_RETURN]
    print()
    print(f"reverse return cuts the flow spread by "
          f"{direct.coefficient_of_variation / reverse.coefficient_of_variation:.1f}x "
          f"with zero balancing hardware")

    print()
    print("=== servicing scenario: loop 2 valved off ===")
    system = RackManifoldSystem(n_loops=6, layout=ManifoldLayout.REVERSE_RETURN)
    result = system.failure_redistribution(2)
    print_flows("before", result["before"].loop_flows_m3_s)
    print_flows("after", result["after"].loop_flows_m3_s)
    gains = [
        (qa - qb) * 1000
        for i, (qb, qa) in enumerate(
            zip(result["before"].loop_flows_m3_s, result["after"].loop_flows_m3_s)
        )
        if i != 2
    ]
    print(f"survivor gains: {['%.3f' % g for g in gains]} L/s")
    print(f"redistribution evenness (CoV of gains): "
          f"{redistribution_evenness(result['before'], result['after']):.3f} "
          f"(0 = perfectly even)")

    print()
    print("=== optional finer trim with balancing valves (direct return) ===")
    trimmed = RackManifoldSystem(
        n_loops=6,
        layout=ManifoldLayout.DIRECT_RETURN,
        balancing_valves=[0.5, 0.7, 0.9, 1.0, 1.0, 1.0],
    ).solve()
    print_flows("trimmed direct", trimmed.loop_flows_m3_s)
    print(f"{'':18s} max/min = {trimmed.imbalance_ratio:.3f} "
          f"(untrimmed: {direct.imbalance_ratio:.3f})")


if __name__ == "__main__":
    main()
