"""Failure drills: the control subsystem earning its keep.

Runs the battery of failure scenarios the paper's control subsystem must
survive — pump stop, pump degradation, thermal-interface washout at the
module level; chiller trip and serviced loops at the rack level — and
prints a drill report for each.

Run with::

    python examples/failure_drills.py
"""

from repro.control.controller import CoolingController
from repro.core.rack import Rack
from repro.core.racksim import RackSimulator
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.reliability.failures import (
    loop_blockage_event,
    pump_stop_event,
    tim_washout_drift,
)


def module_drills() -> None:
    print("=== module-level drills (SKAT CM, supervisory controller on) ===")
    drills = [
        ("pump stops dead at t=300 s", [pump_stop_event(300.0, "oil_pump")]),
        ("pump degrades to 60 % at t=300 s", [pump_stop_event(300.0, "oil_pump", 0.6)]),
        ("thermal paste washed out 3x from start", [tim_washout_drift(0.0, "all", 3.0)]),
    ]
    for name, events in drills:
        simulator = ModuleSimulator(skat(), controller=CoolingController())
        result = simulator.run(duration_s=1800.0, events=events, dt_s=10.0)
        if result.shutdown_time_s is not None:
            outcome = (f"TRIPPED at t={result.shutdown_time_s:.0f} s "
                       f"({result.alarms_raised} alarms)")
        else:
            outcome = f"rode through ({result.alarms_raised} alarms)"
        print(f"  {name:42s}: peak Tj {result.max_junction_c:6.1f} C, "
              f"peak oil {result.max_oil_c:5.1f} C -> {outcome}")


def rack_drills() -> None:
    print()
    print("=== rack-level drills (4-CM rack on shared water) ===")
    drills = [
        ("nominal", []),
        ("chiller trips at t=600 s", [pump_stop_event(600.0, "chiller", 0.0)]),
        ("chiller loses 30 % capacity", [pump_stop_event(600.0, "chiller", 0.7)]),
        ("loop 2 valved off for servicing", [loop_blockage_event(300.0, "loop_2")]),
    ]
    for name, events in drills:
        simulator = RackSimulator(Rack(module_factory=skat, n_modules=4))
        result = simulator.run(duration_s=2400.0, events=events, dt_s=30.0)
        over = result.modules_over_limit
        verdict = "all CMs in envelope" if not over else f"CMs {over} over the ceiling"
        print(f"  {name:38s}: max Tj {result.max_fpga_c:6.1f} C, "
              f"max water {result.max_water_c:5.1f} C -> {verdict}")


def main() -> None:
    module_drills()
    rack_drills()
    print()
    print("takeaway: single-CM faults are caught by the module controller;")
    print("shared-services faults (the chiller) are the rack's common mode —")
    print("exactly why the paper's engineering-services design matters.")


if __name__ == "__main__":
    main()
