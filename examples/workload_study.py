"""Workload study: classic RCS applications on the SKAT FPGA field.

The paper's framing — "an RCS provides adaptation of its architecture to
the structure of any task" — made concrete: each kernel from the library
(FIR, FFT stage, matrix tile, molecular-dynamics forces, spin-glass
updates — the application families of the paper's own references) is
hardwired onto one SKAT board's 8-FPGA field, and the resulting
utilization is pushed through the thermal model to show the coupling
between what you compute and how hot the bath runs.

Run with::

    python examples/workload_study.py
"""

from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.performance.kernels import kernel_suite
from repro.performance.tasks import map_graph_to_field


def main() -> None:
    print("=== kernels mapped to one SKAT board (8 x XCKU095) ===")
    print(f"{'kernel':14s} {'ops':>5s} {'depth':>5s} {'replicas':>8s} "
          f"{'util':>6s} {'GFlops':>8s} {'lat us':>7s}")
    mappings = {}
    for name, graph in kernel_suite().items():
        mapping = map_graph_to_field(graph, KINTEX_ULTRASCALE_KU095, n_fpgas=8)
        mappings[name] = mapping
        print(f"{name:14s} {len(graph):>5d} {graph.depth():>5d} "
              f"{mapping.replicas:>8d} {mapping.utilization:>6.1%} "
              f"{mapping.throughput_gflops:>8.0f} {mapping.latency_us:>7.3f}")

    print()
    print("=== the compute-to-heat coupling ===")
    for name in ("fir16", "md_forces4"):
        utilization = mappings[name].utilization
        report = skat(utilization=utilization).solve_steady(
            SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
        )
        chips = report.immersion.chips_per_board
        print(f"{name:14s} at {utilization:.1%} field utilization: "
              f"{sum(c.power_w for c in chips) / len(chips):5.1f} W/chip, "
              f"maxTj {report.max_fpga_c:5.1f} C, bath {report.bath_mean_c:4.1f} C")

    print()
    print("=== an idle machine for contrast ===")
    idle = skat(utilization=0.2).solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    print(f"{'idle (20%)':14s}: maxTj {idle.max_fpga_c:5.1f} C, "
          f"bath {idle.bath_mean_c:4.1f} C — the cooling system tracks the task")


if __name__ == "__main__":
    main()
