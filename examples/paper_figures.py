"""Render the paper's implicit figures as text plots.

The paper's photographs and CAD renders can't be reproduced, but the
*data* figures its argument implies can: the family overheat trajectory,
the cooling viability frontier, the Fig. 5 flow profiles, the pump-failure
transient, and the SKAT chip thermal-budget stack. This script draws each
as an ASCII chart from the same models the benchmarks assert on.

Run with::

    python examples/paper_figures.py
"""

from repro.analysis.crossover import sweep_frontier
from repro.control.controller import CoolingController
from repro.core.balancing import ManifoldLayout, RackManifoldSystem
from repro.core.simulation import ModuleSimulator
from repro.core.skat import rigel2, skat, taygeta, ultrascale_in_air
from repro.reliability.failures import pump_stop_event
from repro.thermal.stackup import air_chip_stack, skat_chip_stack


def bar(value: float, scale: float, width: int = 46) -> str:
    n = int(min(max(value / scale, 0.0), 1.0) * width)
    return "#" * n


def figure_family_trajectory() -> None:
    print("Figure A — max FPGA temperature by family, 25 C room (air) / 20 C water (oil)")
    rows = [
        ("Virtex-6, air (Rigel-2)", rigel2().solve(25.0).max_junction_c),
        ("Virtex-7, air (Taygeta)", taygeta().solve(25.0).max_junction_c),
        ("UltraScale, air (never built)", ultrascale_in_air().solve(25.0).max_junction_c),
        ("UltraScale, immersion (SKAT)", skat().solve_steady(20.0, 1.2e-3).max_fpga_c),
    ]
    for name, temp in rows:
        marker = " <- over 67 C ceiling" if temp > 67.0 else ""
        print(f"  {name:32s} {temp:5.1f} C |{bar(temp, 100.0)}{marker}")
    print()


def figure_frontier() -> None:
    print("Figure B — junction vs per-chip power (air vs immersion)")
    points = sweep_frontier([20.0, 30.0, 40.0, 50.0, 70.0, 90.0, 110.0])
    print(f"  {'P [W]':>6s} {'air Tj [C]':>11s} {'immersion Tj [C]':>17s}")
    for p in points:
        air = "runaway" if p.air_junction_c is None else f"{p.air_junction_c:7.1f}"
        imm = (
            "runaway"
            if p.immersion_junction_c is None
            else f"{p.immersion_junction_c:7.1f}"
        )
        print(f"  {p.power_w:6.0f} {air:>11s} {imm:>17s}")
    print()


def figure_balancing() -> None:
    print("Figure C — Fig. 5 manifold: per-loop water flow (6 loops)")
    for layout in ManifoldLayout:
        report = RackManifoldSystem(n_loops=6, layout=layout).solve()
        print(f"  {layout.value} return:")
        for i, q in enumerate(report.loop_flows_m3_s):
            print(f"    loop {i}: {q * 1000:6.3f} L/s |{bar(q * 1000, 1.3, 40)}")
    print()


def figure_pump_failure() -> None:
    print("Figure D — pump failure at t=300 s, controller trip (SKAT CM)")
    simulator = ModuleSimulator(skat(), controller=CoolingController())
    result = simulator.run(
        duration_s=900.0, events=[pump_stop_event(300.0, "oil_pump")], dt_s=30.0
    )
    times, junctions = result.telemetry.series("junction_c")
    for t, j in zip(times, junctions):
        print(f"  t={t:5.0f} s  Tj {j:6.1f} C |{bar(j, 160.0, 40)}")
    print(f"  -> shutdown latched at t={result.shutdown_time_s:.0f} s")
    print()


def figure_thermal_budget() -> None:
    print("Figure E — where the kelvins go (chip thermal stacks)")
    print(skat_chip_stack().render(92.0, 29.0))
    print()
    print(air_chip_stack().render(44.0, 30.0))
    print()


def figure_heatmap() -> None:
    print("Figure F — junction heat map of the SKAT bath (full 96-chip network)")
    from repro.core.boardnetwork import solve_module_network
    from repro.core.heatmap import render_heatmap, render_profile

    module = skat()
    report = module.solve_steady(20.0, 1.2e-3)
    chips = report.immersion.chips_per_board
    power = sum(c.power_w for c in chips) / len(chips)
    solution = solve_module_network(
        module.section, report.oil_cold_c, report.oil_flow_m3_s, power
    )
    print(render_heatmap(module.section, solution))
    print()
    print(render_profile(module.section, solution))
    print()


def main() -> None:
    figure_family_trajectory()
    figure_frontier()
    figure_balancing()
    figure_pump_failure()
    figure_thermal_budget()
    figure_heatmap()


if __name__ == "__main__":
    main()
