"""Energy economics: what the immersion system saves at rack scale.

Closes Section 2's "much less electric energy is required to transfer
250 ml of water than to transfer 1 m^3 of air" argument with the full
accounting: fans+CRAC for the air rack vs pumps+chiller for the SKAT
rack, annual energy and cost, and the architecture scorecard including
the Monte Carlo availability of the two liquid options.

Run with::

    python examples/datacenter_energy.py
"""

from repro.analysis.compare import compare_architectures, render_scorecard
from repro.analysis.energy import annual_energy_report, render_energy_report
from repro.reliability.montecarlo import coldplate_cm_model, immersion_cm_model


def main() -> None:
    print("=== annual energy, per rack ===")
    report = annual_energy_report(price_usd_kwh=0.10)
    print(render_energy_report(report["air"]))
    print()
    print(render_energy_report(report["immersion"]))
    print()
    print(f"cooling-overhead ratio (air/immersion): {report['overhead_ratio']:.1f}x")
    print(f"saving at equal IT load: "
          f"${report['cost_saving_usd_per_rack_year_at_equal_it']:,.0f} per rack-year")

    print()
    print("=== architecture scorecard (same UltraScale silicon) ===")
    print(render_scorecard(compare_architectures()))

    print()
    print("=== 50-year Monte Carlo, one CM ===")
    for name, model in [("immersion", immersion_cm_model()), ("cold plates", coldplate_cm_model())]:
        result = model.run(years=50.0)
        print(f"{name:12s}: availability {result.availability:.5f}, "
              f"{result.failures} failures, "
              f"{result.downtime_hours_per_year:.1f} h downtime/yr")


if __name__ == "__main__":
    main()
