"""End-to-end smoke of the fault-tolerant sweep harness (CI gate).

The drill, in one self-driving invocation:

1. **Reference** — run a 96-case process-backend sweep through the
   harness uninterrupted; record the outcome sequence and the canonical
   metric export.
2. **Victim** — re-run the same sweep in a subprocess. One case SIGKILLs
   its own pool worker mid-shard the first time it runs (the harness
   must respawn the pool, bisect the shard and recover). The parent
   watches the checkpoint file and SIGKILLs the victim's whole process
   group at roughly half the waves — a hard mid-campaign crash.
3. **Resume** — resume from the checkpoint and let the sweep finish.
4. **Diff** — the resumed run's outcome sequence and metric export
   (harness-bookkeeping counters excluded: respawns/bisections happen a
   different number of times on the interrupted path) must be
   byte-identical to the uninterrupted reference.

Exit status 0 only if every step holds. Run with::

    python scripts/run_harness_smoke.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.obs.export import to_json
from repro.sweep import HarnessConfig, SweepCase, run_sweep_resilient

N_CASES = 96
WAVE_SIZE = 8
KILL_AT = 37  # the case whose worker dies mid-shard, once
WORKERS = 4
CASE_PACING_S = 0.05  # slows the victim enough to be killed mid-run


def evaluate_smoke_case(case):
    """Deterministic toy evaluation with a one-shot worker suicide.

    Module-level so the process backend pickles it by reference. The
    ``kill_sentinel`` file arms the SIGKILL exactly once across the
    victim run and its resume; the reference run pre-creates it, so the
    evaluated values are identical everywhere.
    """
    x = case.params["x"]
    if x == KILL_AT:
        sentinel = Path(case.params["kill_sentinel"])
        if not sentinel.exists():
            sentinel.write_text("worker killed once\n")
            os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(CASE_PACING_S)
    get_registry().inc("smoke_cases_evaluated_total")
    value = (x**2 + 3 * x + 1) / (x + 2.0)
    return round(value, 9)


def make_cases(kill_sentinel: Path):
    return [
        SweepCase(
            name=f"case_{i:03d}",
            params={"x": i, "kill_sentinel": str(kill_sentinel)},
        )
        for i in range(N_CASES)
    ]


def run_harnessed(cases, checkpoint: Path, resume: bool):
    """One harnessed process-backend sweep under a fresh registry."""
    with use_registry(MetricsRegistry()) as obs:
        result = run_sweep_resilient(
            evaluate_smoke_case,
            cases,
            backend="process",
            max_workers=WORKERS,
            config=HarnessConfig(
                checkpoint=checkpoint,
                resume=resume,
                checkpoint_every=WAVE_SIZE,
                timeout_s=30.0,
                retries=1,
            ),
        )
        metrics = to_json(obs, exclude=("harness_",))
    outcomes = json.dumps(
        [
            {"index": o.index, "name": o.case.name, "value": o.value}
            for o in result.outcomes
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return result, outcomes, metrics


def victim_main(workdir: Path) -> int:
    """Run the sweep destined to be SIGKILLed mid-campaign."""
    cases = make_cases(workdir / "kill-sentinel")
    run_harnessed(cases, workdir / "ckpt.json", resume=False)
    return 0


def waves_on_disk(checkpoint: Path) -> int:
    try:
        return len(json.loads(checkpoint.read_text())["waves"])
    except (OSError, ValueError, KeyError):
        return 0


def driver_main() -> int:
    total_waves = -(-N_CASES // WAVE_SIZE)
    kill_after_waves = total_waves // 2
    with tempfile.TemporaryDirectory(prefix="harness-smoke-") as tmp:
        workdir = Path(tmp)
        kill_sentinel = workdir / "kill-sentinel"

        # 1. Uninterrupted reference: pre-arm the sentinel so the killer
        # case evaluates normally — identical inputs, identical values.
        kill_sentinel.write_text("pre-armed for the reference run\n")
        cases = make_cases(kill_sentinel)
        ref_result, ref_outcomes, ref_metrics = run_harnessed(
            cases, workdir / "reference-ckpt.json", resume=False
        )
        if not ref_result.ok:
            print("FAIL: reference run had failures", file=sys.stderr)
            return 1
        kill_sentinel.unlink()

        # 2. Victim subprocess in its own process group (one SIGKILL
        # takes down the driver-facing process and its pool workers).
        victim = subprocess.Popen(
            [sys.executable, str(Path(__file__).resolve()), "--phase", "victim",
             "--workdir", str(workdir)],
            start_new_session=True,
        )
        checkpoint = workdir / "ckpt.json"
        deadline = time.monotonic() + 120.0
        killed = False
        while time.monotonic() < deadline:
            if waves_on_disk(checkpoint) >= kill_after_waves:
                os.killpg(victim.pid, signal.SIGKILL)
                killed = True
                break
            if victim.poll() is not None:
                break
            time.sleep(0.01)
        victim.wait(timeout=30.0)
        if not killed:
            print(
                "FAIL: victim finished before it could be killed mid-campaign",
                file=sys.stderr,
            )
            return 1
        waves_at_kill = waves_on_disk(checkpoint)
        if not 0 < waves_at_kill < total_waves:
            print(
                f"FAIL: kill landed at {waves_at_kill}/{total_waves} waves — "
                "not mid-campaign",
                file=sys.stderr,
            )
            return 1
        print(
            f"victim SIGKILLed at {waves_at_kill}/{total_waves} "
            f"checkpointed waves"
        )

        # 3. Resume from the checkpoint.
        resumed_result, resumed_outcomes, resumed_metrics = run_harnessed(
            cases, checkpoint, resume=True
        )
        if resumed_result.resumed_cases == 0:
            print("FAIL: resume re-ran everything", file=sys.stderr)
            return 1
        if not resumed_result.ok:
            print("FAIL: resumed run had failures", file=sys.stderr)
            return 1
        print(
            f"resume restored {resumed_result.resumed_cases}/{N_CASES} cases "
            "from the checkpoint"
        )

        # 4. Byte-for-byte diffs against the uninterrupted reference.
        if resumed_outcomes != ref_outcomes:
            print("FAIL: outcome sequences differ", file=sys.stderr)
            return 1
        if resumed_metrics != ref_metrics:
            print("FAIL: canonical metric exports differ", file=sys.stderr)
            print(f"reference: {ref_metrics}", file=sys.stderr)
            print(f"resumed:   {resumed_metrics}", file=sys.stderr)
            return 1
    print(
        "harness smoke OK: worker SIGKILL recovered, mid-campaign kill "
        "resumed byte-identically"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=["driver", "victim"], default="driver")
    parser.add_argument("--workdir", type=Path, default=None)
    args = parser.parse_args(argv)
    if args.phase == "victim":
        if args.workdir is None:
            parser.error("--phase victim requires --workdir")
        return victim_main(args.workdir)
    return driver_main()


if __name__ == "__main__":
    sys.exit(main())
