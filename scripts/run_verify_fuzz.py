"""Run the seeded scenario fuzzer under the full invariant-checker suite.

Generates a deterministic scenario stream, runs every scenario through
the conservation-law checkers on the chosen sweep backend, and prints a
canonical-JSON report (byte-identical for the same seed regardless of
backend). On violations the first failing scenario is greedily shrunk
and written to ``--artifact`` as a minimal replayable repro, and the
process exits non-zero.

Run with::

    python scripts/run_verify_fuzz.py --seed 1337 --scenarios 200 --backend process
"""

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.sweep import available_backends
from repro.verify import (
    generate_scenarios,
    run_fuzz,
    run_scenario,
    shrink_scenario,
    write_repro_artifact,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1337, help="stream seed")
    parser.add_argument(
        "--scenarios", type=int, default=200, help="scenarios to generate and run"
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="sweep execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="sweep workers (default: auto)"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any violation (the report is still written)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report JSON here too"
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path("fuzz_repro.json"),
        help="where to write the shrunk repro on failure",
    )
    args = parser.parse_args(argv)

    report = run_fuzz(
        args.seed,
        args.scenarios,
        backend=args.backend,
        max_workers=args.workers,
    )
    text = report.to_json()
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")

    if report.ok:
        print(
            f"# {report.n_scenarios} scenarios, {report.checks_run} checks, "
            f"0 violations (digest {report.scenario_digest[:12]})",
            file=sys.stderr,
        )
        return 0

    # Shrink the first violating scenario into a replayable artifact.
    failing_names = {v["scenario"] for v in report.violations}
    scenario = next(
        s
        for s in generate_scenarios(args.seed, args.scenarios)
        if s.name in failing_names
    )

    def reproduces(candidate) -> bool:
        return bool(run_scenario(candidate)["violations"])

    shrunk = shrink_scenario(scenario, reproduces)
    violations = run_scenario(shrunk)["violations"]
    write_repro_artifact(str(args.artifact), shrunk, violations)
    print(
        f"# {len(report.violations)} violation(s); minimized repro for "
        f"{scenario.name} written to {args.artifact}",
        file=sys.stderr,
    )
    return 1 if args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
