"""Run a seeded Monte Carlo uncertainty study and print its report.

Samples the calibration-knob tolerance distributions as a Saltelli
A/B/AB design, dispatches the evaluations through the batched sweep
backends (with optional checkpoint/resume via the fault-tolerant
harness), and reduces to quantile bands, overheat exceedance and Sobol
indices. The report JSON is canonical (sorted keys, fixed separators,
wall-clock and backend excluded), so two invocations with the same
``--level --samples --seed`` are byte-for-byte identical on any backend
— the property the CI ``mc-smoke`` job enforces with a plain diff.

Run with::

    python scripts/run_montecarlo.py --level facility --samples 10000 --seed 7
"""

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.montecarlo import LEVELS, make_spec, run_montecarlo
from repro.obs import MetricsRegistry, use_registry, write_json
from repro.sweep import HarnessConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--level",
        choices=sorted(LEVELS),
        default="facility",
        help="evaluation level (default: facility)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="total evaluation budget; Saltelli N = samples // (k + 2)",
    )
    parser.add_argument("--seed", type=int, default=7, help="sample-matrix seed")
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="process",
        help="sweep backend (default: process)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel workers (default: auto)"
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="samples per batched solve"
    )
    parser.add_argument(
        "--racks", type=int, default=None, help="facility level: racks"
    )
    parser.add_argument(
        "--modules", type=int, default=None, help="facility level: modules per rack"
    )
    parser.add_argument(
        "--duration", type=float, default=None, help="facility level: run horizon, s"
    )
    parser.add_argument(
        "--dt", type=float, default=None, help="facility level: time step, s"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report JSON here too"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the run's deterministic metrics (canonical JSON) here",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="run through the fault-tolerant harness, checkpointing here",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (refused on a digest mismatch)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="batches per checkpointed wave",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-batch deadline, s (enforced on the process backend)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="harness retries for a failed batch (0 disables)",
    )
    parser.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        help="write the replayable quarantine artifact here",
    )
    args = parser.parse_args(argv)

    config = {}
    if args.racks is not None:
        config["racks"] = args.racks
    if args.modules is not None:
        config["modules"] = args.modules
    if args.duration is not None:
        config["duration_s"] = args.duration
    if args.dt is not None:
        config["dt_s"] = args.dt
    spec = make_spec(
        args.level, samples=args.samples, seed=args.seed, config=config or None
    )

    harness = None
    if args.checkpoint or args.resume or args.timeout or args.quarantine:
        harness = HarnessConfig(
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            timeout_s=args.timeout,
            retries=args.retries,
            quarantine=args.quarantine,
        )

    with use_registry(MetricsRegistry()) as obs:
        report = run_montecarlo(
            spec,
            backend=args.backend,
            max_workers=args.workers,
            batch_size=args.batch_size,
            harness=harness,
        )
        if args.metrics_out is not None:
            write_json(obs, args.metrics_out)
    payload = report.to_json()
    print(payload)
    if args.out is not None:
        args.out.write_text(payload + "\n")

    if report.n_failed_rows > 0.01 * spec.n_base:
        print(
            f"{report.n_failed_rows} of {spec.n_base} sample rows failed",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
