"""Profile a named bench scenario and print its top-N hot-path table.

Installs a live :class:`repro.obs.MetricsRegistry` around one scenario,
prints the ranked hot paths (wall time + call counts) and, with
``--trace``, the nested span tree of the run. ``--metrics-out`` writes the
registry's *deterministic* metric state as canonical JSON (and
``--prom-out`` as Prometheus text): two same-seed invocations produce
byte-identical files — the property the CI metrics-smoke job diffs.

Run with::

    python scripts/run_profile.py --scenario module --top 10
"""

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import (
    MetricsRegistry,
    format_hot_paths,
    format_trace,
    use_registry,
    write_json,
    write_prometheus,
)


def _scenario_module(obs: MetricsRegistry, args) -> None:
    """A supervised CM transient riding through a pump stop."""
    from repro.control.supervisor import Supervisor
    from repro.core.simulation import ModuleSimulator
    from repro.core.skat import skat
    from repro.reliability.failures import pump_stop_event

    simulator = ModuleSimulator(module=skat(), supervisor=Supervisor())
    with obs.profile("scenario.module"):
        simulator.run(
            duration_s=args.duration,
            events=[pump_stop_event(args.duration / 3.0, "oil_pump", 0.0)],
            dt_s=args.dt,
        )


def _scenario_manifold(obs: MetricsRegistry, args) -> None:
    """F5-style warm-started manifold re-solves (fail/restore cycles)."""
    from repro.core.balancing import ManifoldLayout, RackManifoldSystem

    system = RackManifoldSystem(n_loops=6, layout=ManifoldLayout.REVERSE_RETURN)
    with obs.profile("scenario.manifold"):
        for _ in range(args.cycles):
            with obs.profile("manifold.solve"):
                system.solve()
            system.fail_loop(2)
            with obs.profile("manifold.solve"):
                system.solve()
            system.restore_loop(2)


def _scenario_campaign(obs: MetricsRegistry, args) -> None:
    """The canonical single-fault campaign on a supervised CM."""
    from repro.control.supervisor import Supervisor
    from repro.core.simulation import ModuleSimulator
    from repro.core.skat import skat
    from repro.resilience.campaign import run_campaign, single_fault_scenarios

    with obs.profile("scenario.campaign"):
        run_campaign(
            lambda: ModuleSimulator(module=skat(), supervisor=Supervisor()),
            single_fault_scenarios(),
            duration_s=args.duration,
            dt_s=args.dt,
            max_workers=args.workers,
        )


SCENARIOS = {
    "module": _scenario_module,
    "manifold": _scenario_manifold,
    "campaign": _scenario_campaign,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="module",
        help="named bench scenario to profile",
    )
    parser.add_argument("--top", type=int, default=10, help="hot paths to print")
    parser.add_argument("--duration", type=float, default=600.0, help="run horizon, s")
    parser.add_argument("--dt", type=float, default=5.0, help="time step, s")
    parser.add_argument(
        "--cycles", type=int, default=6, help="manifold fail/restore cycles"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="campaign workers (default: auto)"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the deterministic metrics as canonical JSON here",
    )
    parser.add_argument(
        "--prom-out",
        type=Path,
        default=None,
        help="write the deterministic metrics in Prometheus text format here",
    )
    parser.add_argument(
        "--trace", action="store_true", help="also print the span trees"
    )
    args = parser.parse_args(argv)

    with use_registry(MetricsRegistry()) as obs:
        SCENARIOS[args.scenario](obs, args)
        print(format_hot_paths(obs.hot_paths(args.top), title=f"hot paths — {args.scenario}"))
        if args.trace:
            for worker, roots in sorted(obs.traces().items()):
                print(f"\ntrace [{worker}]")
                for root in roots:
                    print(format_trace(root))
        if args.metrics_out is not None:
            write_json(obs, args.metrics_out)
        if args.prom_out is not None:
            write_prometheus(obs, args.prom_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
