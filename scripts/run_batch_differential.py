"""Run the batched sweeps on a chosen backend and diff them against serial.

The CI ``batch-smoke`` job's gate: evaluate the deterministic module-steady
and rack-manifold matrices through :func:`repro.sweep.run_sweep_batched`
on the requested backend, re-evaluate every case through the untouched
per-case serial oracle, and fail when any quantity drifts outside the
differential tolerances (1e-6 relative for the steady family, whose serial
root stops at ``brentq(xtol=1e-6)``; 1e-9 for the manifold family, whose
batched Newton replays the serial arithmetic). Prints the canonical JSON
payload; ``--out`` / ``--metrics-out`` write the byte-pinned goldens the
differential test suite compares against.

Run with::

    python scripts/run_batch_differential.py --cases 256 --backend process
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.batch.sweepfns import (
    MODULE_STEADY,
    RACK_MANIFOLD,
    manifold_smoke_cases,
    steady_smoke_cases,
)
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.sweep import available_backends, run_sweep, run_sweep_batched

STEADY_RTOL = 1.0e-6
MANIFOLD_RTOL = 1.0e-9


def _max_rel_diff(batched, serial) -> float:
    """Worst relative drift between two equal-shaped summary values."""
    worst = 0.0
    if isinstance(batched, dict):
        for key in batched:
            worst = max(worst, _max_rel_diff(batched[key], serial[key]))
        return worst
    if isinstance(batched, list):
        for b, s in zip(batched, serial):
            worst = max(worst, _max_rel_diff(b, s))
        if len(batched) != len(serial):
            return float("inf")
        return worst
    if batched == serial:
        return 0.0
    scale = max(abs(float(batched)), abs(float(serial)), 1.0e-300)
    return abs(float(batched) - float(serial)) / scale


def _diff_family(name, spec, cases, batch_size, backend, workers, rtol):
    batched = run_sweep_batched(
        spec, cases, batch_size=batch_size, backend=backend, max_workers=workers
    )
    # The serial oracle runs under its own registry so the ambient metric
    # export stays that of the batched sweeps alone (the bytes the golden
    # test pins, identical on every backend).
    with use_registry(MetricsRegistry()):
        serial = run_sweep(spec.serial, cases)
    worst = 0.0
    for b, s in zip(batched, serial):
        if not (b.ok and s.ok):
            raise SystemExit(f"{name}: case {b.case.name} failed to evaluate")
        worst = max(worst, _max_rel_diff(b.value, s.value))
    status = "ok" if worst <= rtol else "DRIFT"
    print(
        f"{name}: {len(cases)} cases, worst rel diff {worst:.3e} "
        f"(tol {rtol:g}) {status}",
        file=sys.stderr,
    )
    return batched, worst <= rtol


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cases", type=int, default=None, help="cases per family (overrides both)"
    )
    parser.add_argument("--steady", type=int, default=64, help="steady cases")
    parser.add_argument("--manifold", type=int, default=64, help="manifold cases")
    parser.add_argument(
        "--batch-size", type=int, default=64, help="scenarios per batched solve"
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="process",
        help="sweep execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="sweep workers (default: auto)"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the payload JSON here too"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the sweep's deterministic metrics (canonical JSON) here",
    )
    args = parser.parse_args(argv)
    n_steady = args.cases if args.cases is not None else args.steady
    n_manifold = args.cases if args.cases is not None else args.manifold

    with use_registry(MetricsRegistry()) as obs:
        steady, steady_ok = _diff_family(
            "module_steady",
            MODULE_STEADY,
            steady_smoke_cases(n_steady),
            args.batch_size,
            args.backend,
            args.workers,
            STEADY_RTOL,
        )
        manifold, manifold_ok = _diff_family(
            "manifold",
            RACK_MANIFOLD,
            manifold_smoke_cases(n_manifold),
            args.batch_size,
            args.backend,
            args.workers,
            MANIFOLD_RTOL,
        )
        metrics = to_json(obs, exclude=("sweep_backend_",))

    payload = json.dumps(
        {
            "module_steady": [outcome.value for outcome in steady],
            "manifold": [outcome.value for outcome in manifold],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    print(payload)
    if args.out is not None:
        args.out.write_text(payload + "\n")
    if args.metrics_out is not None:
        args.metrics_out.write_text(metrics + "\n")
    return 0 if steady_ok and manifold_ok else 1


if __name__ == "__main__":
    sys.exit(main())
