"""Run the AI-factory workload catalog end to end; print canonical JSON.

Two deterministic artifacts, byte-identical whichever backend executed
them — the property the CI ``workload-smoke`` job enforces with a plain
``cmp`` against the pinned goldens:

- the **workload sweep** payload: every catalog scenario
  (``gpu_training``, ``gpu_training_hot_water``) run through
  :func:`repro.facility.sweep.run_workload_sweep` with its training
  trace, pPUE/recovered-energy ledger and OCP verdict per case;
- the **workload fuzz** report: a seeded scenario stream over the GPU
  workload families (``gpu_module``, ``gpu_facility``,
  ``hot_water_facility``) through every conservation-law checker.

Run with::

    python scripts/run_workloads.py --backend process
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.facility.sweep import run_workload_sweep, workload_cases
from repro.sweep import available_backends
from repro.verify import WORKLOAD_LEVELS, run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--racks", type=int, default=2, help="GPU racks per case")
    parser.add_argument(
        "--modules", type=int, default=2, help="GPU modules per rack"
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="sweep execution backend",
    )
    parser.add_argument(
        "--duration", type=float, default=400.0, help="run horizon, s"
    )
    parser.add_argument("--dt", type=float, default=20.0, help="time step, s")
    parser.add_argument(
        "--workers", type=int, default=None, help="sweep workers (default: auto)"
    )
    parser.add_argument(
        "--fuzz-seed", type=int, default=11, help="workload fuzz stream seed"
    )
    parser.add_argument(
        "--fuzz-scenarios",
        type=int,
        default=6,
        help="scenarios in the workload fuzz stream",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the sweep payload here too"
    )
    parser.add_argument(
        "--fuzz-out",
        type=Path,
        default=None,
        help="write the workload fuzz report (canonical JSON) here",
    )
    args = parser.parse_args(argv)

    cases = workload_cases(
        racks=args.racks,
        modules=args.modules,
        duration_s=args.duration,
        dt_s=args.dt,
    )
    outcomes = run_workload_sweep(
        cases, backend=args.backend, max_workers=args.workers
    )
    payload = json.dumps(
        [outcome.value for outcome in outcomes],
        sort_keys=True,
        separators=(",", ":"),
    )
    print(payload)
    if args.out is not None:
        args.out.write_text(payload + "\n")

    report = run_fuzz(
        args.fuzz_seed,
        args.fuzz_scenarios,
        backend=args.backend,
        max_workers=args.workers,
        levels=WORKLOAD_LEVELS,
    )
    # Drop the backend label so the export is byte-identical whichever
    # backend executed the stream — that identity is the whole point.
    fuzz_payload = {
        key: value
        for key, value in json.loads(report.to_json()).items()
        if key != "backend"
    }
    if args.fuzz_out is not None:
        args.fuzz_out.write_text(
            json.dumps(fuzz_payload, sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        print(f"{len(failed)} workload case(s) failed", file=sys.stderr)
        return 1
    if not report.ok:
        print(
            f"workload fuzz stream raised {len(report.violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
