"""Serve the simulation gateway over HTTP, or run the smoke drill.

Default mode starts the stdlib HTTP bridge on ``--host``/``--port`` and
serves ``POST /simulate``, ``POST /sweep``, ``GET /healthz`` and
``GET /metrics`` until interrupted::

    python scripts/run_service.py --port 8080

``--smoke N`` instead runs the self-contained load drill the CI
``service-smoke`` job uses: start the gateway on an ephemeral port, fire
``N`` concurrent HTTP requests of a deterministic duplicate-heavy
workload (``--unique`` distinct scenarios, round-robin repeated), then

- verify every response's ``result`` is byte-identical canonical JSON to
  the in-process serial oracle (:func:`repro.service.requests.
  evaluate_request`),
- verify the expected exact counter identities (hits = N - unique,
  solves = unique) and a cache-hit rate above zero,
- write the **deterministic** metric subset to ``--metrics-out`` as
  canonical JSON — wall-clock histograms and batch-composition counters
  are excluded by prefix, so two identical drills produce byte-identical
  files (exactly what the CI job ``cmp``-s).
"""

import argparse
import concurrent.futures
import http.client
import json
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import MetricsRegistry, set_registry  # noqa: E402
from repro.obs.export import to_json, write_prometheus  # noqa: E402
from repro.service import SimulationGateway, create_app  # noqa: E402
from repro.service.http import run, serve  # noqa: E402
from repro.service.requests import (  # noqa: E402
    evaluate_request,
    normalize_request,
    request_digest,
)
from repro.verify.fuzz import canonical_json, generate_scenarios  # noqa: E402

#: Metric-name prefixes whose values depend on request arrival timing
#: (batch window composition, hit-vs-join split, wall-clock latency) or
#: on how many dispatch rounds the sweep layer happened to see. Excluded
#: from the deterministic smoke export; everything else must reproduce
#: byte-identically across identical drills.
NONDETERMINISTIC_PREFIXES = (
    "service_wall_",
    "service_coalesced",
    "service_batches_total",
    "service_batch_size",
    "sweep_",
)


def build_gateway(args) -> SimulationGateway:
    return SimulationGateway(
        cache_entries=args.cache_entries,
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1000.0,
        solve_batch_size=args.solve_batch_size,
    )


def smoke_workload(n_requests: int, n_unique: int, seed: int):
    """A deterministic duplicate-heavy request list (module level).

    Scenarios from the fuzzer stream can collide once their ``index`` is
    stripped, so keep drawing until ``n_unique`` *distinct digests* are
    collected — the drill's exact counter identities depend on it.
    """
    payloads, seen = [], set()
    draw = n_unique
    while len(payloads) < n_unique:
        draw *= 2
        payloads, seen = [], set()
        for scenario in generate_scenarios(seed, draw, levels=("module",)):
            payload = {
                k: v for k, v in scenario.to_dict().items() if k != "index"
            }
            digest = request_digest(normalize_request(payload))
            if digest not in seen:
                seen.add(digest)
                payloads.append(payload)
            if len(payloads) == n_unique:
                break
    return [payloads[i % n_unique] for i in range(n_requests)], payloads


def _post(port: int, path: str, payload) -> tuple:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _get(port: int, path: str) -> tuple:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def run_smoke(args) -> int:
    import asyncio

    registry = MetricsRegistry()
    set_registry(registry)
    gateway = build_gateway(args)
    app = create_app(gateway)

    loop = asyncio.new_event_loop()
    started = threading.Event()
    bound_port = {}
    stop_box = {}

    async def _serve():
        stop_box["event"] = asyncio.Event()
        server = await serve(app, host="127.0.0.1", port=0)
        bound_port["port"] = server.sockets[0].getsockname()[1]
        started.set()
        async with server:
            await stop_box["event"].wait()
        await gateway.close()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(_serve()), daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        print("smoke: server failed to start", file=sys.stderr)
        return 2
    port = bound_port["port"]

    requests, unique = smoke_workload(args.smoke, args.unique, args.seed)
    oracles = {
        canonical_json(normalize_request(p)): canonical_json(evaluate_request(normalize_request(p)))
        for p in unique
    }

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.workers) as pool:
        for payload, (status, body) in zip(
            requests, pool.map(lambda p: _post(port, "/simulate", p), requests)
        ):
            key = canonical_json(normalize_request(payload))
            if status != 200:
                print(f"smoke: HTTP {status}: {body!r}", file=sys.stderr)
                failures += 1
                continue
            envelope = json.loads(body)
            if canonical_json(envelope["result"]) != oracles[key]:
                print("smoke: response diverged from the serial oracle", file=sys.stderr)
                failures += 1

    status, health = _get(port, "/healthz")
    if status != 200:
        print(f"smoke: /healthz returned {status}", file=sys.stderr)
        failures += 1
    status, _prom = _get(port, "/metrics")
    if status != 200:
        print(f"smoke: /metrics returned {status}", file=sys.stderr)
        failures += 1

    counters = registry.as_dict()["counters"]
    hits = counters.get("service_cache_hits_total", 0)
    misses = counters.get("service_cache_misses_total", 0)
    solves = counters.get("service_solves_total", 0)
    expected_hits = float(args.smoke - len(unique))
    summary = {
        "requests": args.smoke,
        "unique_scenarios": len(unique),
        "cache_hits": hits,
        "cache_misses": misses,
        "solves": solves,
        "cache_hit_rate": round(hits / args.smoke, 6) if args.smoke else 0.0,
        "failures": failures,
    }
    if hits != expected_hits or misses != float(len(unique)) or solves != float(
        len(unique)
    ):
        print(
            f"smoke: counter identities broken (expected hits={expected_hits}, "
            f"misses=solves={len(unique)}; got {hits}/{misses}/{solves})",
            file=sys.stderr,
        )
        failures += 1
    if hits <= 0:
        print("smoke: expected a non-zero cache-hit rate", file=sys.stderr)
        failures += 1

    if args.metrics_out:
        Path(args.metrics_out).write_text(
            to_json(registry, exclude=NONDETERMINISTIC_PREFIXES) + "\n"
        )
    if args.prom_out:
        write_prometheus(registry, args.prom_out)

    loop.call_soon_threadsafe(stop_box["event"].set)
    thread.join(timeout=30)
    loop.close()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--cache-entries", type=int, default=1024)
    parser.add_argument("--max-batch-size", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--solve-batch-size", type=int, default=32)
    parser.add_argument(
        "--smoke",
        type=int,
        default=None,
        metavar="N",
        help="run the N-request smoke drill instead of serving",
    )
    parser.add_argument(
        "--unique", type=int, default=8, help="distinct scenarios in the drill"
    )
    parser.add_argument("--seed", type=int, default=2018, help="drill scenario seed")
    parser.add_argument("--workers", type=int, default=8, help="drill client threads")
    parser.add_argument(
        "--metrics-out", default=None, help="deterministic canonical-JSON export"
    )
    parser.add_argument(
        "--prom-out", default=None, help="full Prometheus text export"
    )
    args = parser.parse_args(argv)

    if args.smoke is not None:
        if args.smoke < args.unique:
            parser.error("--smoke must be >= --unique")
        return run_smoke(args)

    set_registry(MetricsRegistry())
    gateway = build_gateway(args)
    run(create_app(gateway), host=args.host, port=args.port)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
