"""Run the facility scenario sweep on a chosen backend; print canonical JSON.

The payload is the facility sweep's case summaries (sorted keys, fixed
separators, rounded floats), identical bytes whichever backend executed
it — the property the CI ``facility-smoke`` job enforces with a plain
diff against the pinned golden. ``--metrics-out`` writes the sweep's
deterministic metrics as canonical JSON with the backend-marker counters
(``sweep_backend_*``) excluded, so those bytes are backend-independent
too.

Run with::

    python scripts/run_facility.py --racks 4 --backend process
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.facility.sweep import run_facility_sweep, smoke_cases
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import to_json
from repro.sweep import HarnessConfig, available_backends


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--racks", type=int, default=4, help="racks on the loop")
    parser.add_argument(
        "--modules", type=int, default=2, help="CMs per rack (small = fast)"
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="process",
        help="sweep execution backend",
    )
    parser.add_argument("--duration", type=float, default=400.0, help="run horizon, s")
    parser.add_argument("--dt", type=float, default=20.0, help="time step, s")
    parser.add_argument(
        "--fault-time", type=float, default=120.0, help="scenario injection time, s"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="sweep workers (default: auto)"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the payload JSON here too"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the sweep's deterministic metrics (canonical JSON) here",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="run through the fault-tolerant harness, checkpointing here",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (refused on a digest mismatch)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        help="cases per checkpointed wave",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-case deadline, s (enforced on the process backend)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="harness retries for a failed case (0 disables)",
    )
    parser.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        help="write the replayable quarantine artifact here",
    )
    args = parser.parse_args(argv)

    harness = None
    if args.checkpoint or args.resume or args.timeout or args.quarantine:
        harness = HarnessConfig(
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            timeout_s=args.timeout,
            retries=args.retries,
            quarantine=args.quarantine,
        )

    cases = smoke_cases(
        racks=args.racks,
        modules=args.modules,
        duration_s=args.duration,
        dt_s=args.dt,
        fault_time_s=args.fault_time,
    )
    with use_registry(MetricsRegistry()) as obs:
        outcomes = run_facility_sweep(
            cases, backend=args.backend, max_workers=args.workers, harness=harness
        )
        metrics = to_json(obs, exclude=("sweep_backend_", "harness_"))

    payload = json.dumps(
        [outcome.value for outcome in outcomes],
        sort_keys=True,
        separators=(",", ":"),
    )
    print(payload)
    if args.out is not None:
        args.out.write_text(payload + "\n")
    if args.metrics_out is not None:
        args.metrics_out.write_text(metrics + "\n")

    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        print(f"{len(failed)} facility case(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
