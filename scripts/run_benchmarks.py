"""Run the timed benchmark suite and distill a ``BENCH_<label>.json``.

Wraps ``pytest benchmarks/ --benchmark-json`` in a subprocess, then
distills the raw pytest-benchmark payload into a small sorted record —
one entry per benchmark with min/median/mean seconds and round counts —
suitable for committing or uploading as a CI artifact. Timing numbers
are machine-dependent by nature, so the distilled file is for trend
tracking across runs of the *same* runner, not a pass/fail gate (the
claim-row assertions inside the benchmark modules are the gate, and they
run with ``--benchmark-disable`` in the tier-1 CI job).

Run with::

    python scripts/run_benchmarks.py --label local
    python scripts/run_benchmarks.py --label nightly --select solvers
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def distill(raw: dict) -> dict:
    """Reduce the pytest-benchmark payload to a stable, sorted record."""
    entries = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "name": bench["fullname"],
            "group": bench.get("group"),
            "min_s": stats["min"],
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "iterations": stats["iterations"],
        }
        # Benchmarks annotate derived rates (batch_size, scenarios_per_sec,
        # speedup_vs_serial, ...) via the fixture's extra_info; carry them
        # into the distilled record so BENCH_*.json shows throughput, not
        # just wall time.
        if bench.get("extra_info"):
            entry["extra_info"] = dict(sorted(bench["extra_info"].items()))
        entries.append(entry)
    entries.sort(key=lambda e: e["name"])
    machine = raw.get("machine_info", {})
    return {
        "benchmarks": entries,
        "machine": {
            "python": machine.get("python_version"),
            "cpu_count": machine.get("cpu", {}).get("count"),
        },
        "n_benchmarks": len(entries),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="local", help="suffix for the BENCH_<label>.json output"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="only run benchmark files whose name contains this substring",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=ROOT, help="directory for the distilled file"
    )
    args = parser.parse_args(argv)

    targets = sorted(ROOT.glob("benchmarks/test_bench_*.py"))
    if args.select:
        targets = [t for t in targets if args.select in t.name]
    if not targets:
        print(f"no benchmark files match --select {args.select!r}", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
            *[str(t) for t in targets],
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(ROOT / "src"), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(command, cwd=ROOT, env=env)
        if proc.returncode != 0:
            print("benchmark run failed", file=sys.stderr)
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    payload = distill(raw)
    out = args.out_dir / f"BENCH_{args.label}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({payload['n_benchmarks']} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
