"""Run a seeded fault-injection campaign and print its survivability report.

The report JSON is canonical (sorted keys, fixed separators, rounded
floats), so two invocations with the same arguments are byte-for-byte
identical — the property the CI smoke job enforces with a plain diff.

Run with::

    python scripts/run_fault_campaign.py --seed 42 --scenarios 8
"""

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.control.supervisor import Supervisor
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.obs import MetricsRegistry, use_registry, write_json
from repro.resilience.campaign import (
    draw_scenarios,
    run_campaign,
    single_fault_scenarios,
)
from repro.sweep import HarnessConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42, help="campaign draw seed")
    parser.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="number of drawn scenarios (0 = canonical single-fault set only)",
    )
    parser.add_argument("--duration", type=float, default=1500.0, help="run horizon, s")
    parser.add_argument("--dt", type=float, default=5.0, help="time step, s")
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel workers (default: auto)"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the report JSON here too"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the campaign's deterministic metrics (canonical JSON) here",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="run through the fault-tolerant harness, checkpointing here",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (refused on a digest mismatch)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="scenarios per checkpointed wave",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-scenario deadline, s (enforced on the process backend)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="harness retries for a failed scenario (0 disables)",
    )
    parser.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        help="write the replayable quarantine artifact here",
    )
    args = parser.parse_args(argv)

    scenarios = list(single_fault_scenarios())
    if args.scenarios > 0:
        scenarios += list(
            draw_scenarios(args.seed, args.scenarios, dt_s=args.dt)
        )

    harness = None
    if args.checkpoint or args.resume or args.timeout or args.quarantine:
        harness = HarnessConfig(
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            timeout_s=args.timeout,
            retries=args.retries,
            quarantine=args.quarantine,
        )

    with use_registry(MetricsRegistry()) as obs:
        report = run_campaign(
            lambda: ModuleSimulator(module=skat(), supervisor=Supervisor()),
            scenarios,
            duration_s=args.duration,
            dt_s=args.dt,
            max_workers=args.workers,
            seed=args.seed,
            harness=harness,
        )
        if args.metrics_out is not None:
            write_json(obs, args.metrics_out)
    payload = report.to_json()
    print(payload)
    if args.out is not None:
        args.out.write_text(payload + "\n")

    if report.failures:
        print(f"{len(report.failures)} scenario(s) crashed", file=sys.stderr)
        return 1
    if report.bounded_fraction < 1.0:
        print("unbounded excursion in campaign", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
