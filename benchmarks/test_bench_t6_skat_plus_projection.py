"""Experiment T6 — the SKAT+ projection (Section 4).

Paper rows:

- UltraScale+ (16FinFET Plus): ~3x compute performance in the same volume;
- the 45 x 45 mm packages no longer fit the old CCB with its separate
  controller FPGA — the controller folds into the field;
- dropped into the unmodified cooling system, junction temperatures
  approach critical values again;
- with the Section 4 modifications (more surface, stronger immersed
  pumps), the system regains margin — and the reserve also covers a
  projected "UltraScale 2".
"""

from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    skat_2,
    skat_plus,
)
from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095, ULTRASCALE_PLUS_VU9P
from repro.devices.fpga import Fpga
from repro.performance.flops import peak_gflops
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("T6: SKAT+ (UltraScale+) projection")

    ratio = peak_gflops(ULTRASCALE_PLUS_VU9P) / peak_gflops(KINTEX_ULTRASCALE_KU095)
    table.add("UltraScale+ per-chip performance vs UltraScale [x]", 3.0, round(ratio, 2), rel_tol=0.15)

    with_controller = Ccb(Fpga(ULTRASCALE_PLUS_VU9P), separate_controller=True)
    without_controller = Ccb(Fpga(ULTRASCALE_PLUS_VU9P), separate_controller=False)
    table.add_bool(
        "45 mm packages + separate controller do NOT fit the 19-inch width",
        "stated",
        not with_controller.fits_19_inch_rack(),
    )
    table.add_bool(
        "without the separate controller the CCB fits",
        "stated",
        without_controller.fits_19_inch_rack(),
    )

    unmodified = skat_plus(modified_cooling=False).solve_steady(
        SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
    )
    modified = skat_plus(modified_cooling=True).solve_steady(
        SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
    )
    skat_baseline = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    table.add_bool(
        "modified cooling runs UltraScale+ cooler than unmodified",
        "design goal",
        modified.max_fpga_c < unmodified.max_fpga_c,
    )
    table.add_bool(
        "UltraScale+ on modified cooling keeps the reliability margin",
        "design goal",
        modified.max_fpga_c <= ULTRASCALE_PLUS_VU9P.t_reliable_max_c,
    )
    table.add(
        "SKAT+ chip power class [W]",
        100.0,
        round(modified.immersion.chips_per_board[-1].power_w, 0),
        lo=85.0,
        hi=115.0,
    )
    table.add_bool(
        "existing SKAT cooling had reserve (its own chips well below limit)",
        "stated",
        skat_baseline.max_fpga_c < 65.0,
    )

    skat_2_report = skat_2().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    table.add_bool(
        "reserve also covers the projected 'UltraScale 2'",
        "conclusions",
        skat_2_report.max_fpga_c <= 67.0 and skat_2_report.oil_hot_c < 35.0,
    )
    return table


def test_bench_t6(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
