"""Experiment T8 — the air-cooling viability frontier (Section 1's arc).

The paper's historical argument is a crossover claim: the same air-cooled
card cage held Virtex-6 (~30 W class) with margin, held Virtex-7 (~40 W
class) only past the reliability ceiling, and cannot hold UltraScale
(~90-100 W class) at all. The bench locates the frontier — the largest
per-chip power each cooling system holds below the 67 C ceiling — and
checks it falls where the paper's history puts it.
"""

from repro.analysis.crossover import (
    air_junction_at_power,
    immersion_junction_at_power,
    sweep_frontier,
    viability_frontier_w,
)
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("T8: cooling viability frontier")

    air_frontier = viability_frontier_w(air_junction_at_power)
    immersion_frontier = viability_frontier_w(immersion_junction_at_power, hi_w=600.0)

    print()
    print("junction vs per-chip power [C] (None = thermal runaway):")
    for point in sweep_frontier([20.0, 30.0, 40.0, 60.0, 90.0, 120.0]):
        air = "runaway" if point.air_junction_c is None else f"{point.air_junction_c:6.1f}"
        imm = (
            "runaway"
            if point.immersion_junction_c is None
            else f"{point.immersion_junction_c:6.1f}"
        )
        print(f"  {point.power_w:5.0f} W: air {air:>8s}  immersion {imm:>8s}")

    table.add(
        "air frontier between Virtex-6 (30 W) and Virtex-7 (40 W) class [W]",
        35.0,
        round(air_frontier, 1),
        lo=30.0,
        hi=45.0,
    )
    table.add_bool(
        "air cannot hold the UltraScale class (~90-100 W)",
        "Section 1 projection",
        air_junction_at_power(95.0) is None or air_junction_at_power(95.0) > 67.0,
    )
    table.add(
        "immersion frontier covers the 100 W class [W]",
        100.0,
        round(immersion_frontier, 1),
        lo=85.0,
        hi=600.0,
    )
    table.add_bool(
        "immersion extends the viable power at least 2x over air",
        "implied",
        immersion_frontier > 2.0 * air_frontier,
    )
    return table


def test_bench_t8(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
