"""Experiment T4 — the SKAT thermal test (Section 3).

Paper rows:

- 12 CCBs x 8 Kintex UltraScale XCKU095 per CM, three 4 kW PSUs;
- 91 W per FPGA in operating mode, 8736 W for the whole FPGA field;
- heat-transfer agent temperature does not exceed 30 C;
- maximum FPGA temperature did not exceed 55 C;
- each CCB up to 800 W.
"""

from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("T4: SKAT CM steady state")
    module = skat()
    report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    chips = report.immersion.chips_per_board

    per_chip = sum(c.power_w for c in chips) / len(chips)
    field_power = 96 * per_chip

    table.add("per-FPGA power in operating mode [W]", 91.0, round(per_chip, 1), rel_tol=0.08)
    table.add("FPGA field power, 96 chips [W]", 8736.0, round(field_power, 0), rel_tol=0.08)
    table.add("board (CCB) heat load [W]", 800.0, round(report.immersion.electronics_heat_w / 12, 0), rel_tol=0.10)
    table.add("max FPGA temperature [C]", 55.0, round(report.max_fpga_c, 1), lo=45.0, hi=56.0)
    table.add("heat-transfer agent (bath) temperature [C]", 30.0, round(report.bath_mean_c, 1), lo=20.0, hi=30.5)
    table.add_bool("oil stays at/below 30 C in operating mode", "yes", report.oil_below_30c)
    table.add_bool(
        "FPGAs stay below the 65...70 C reliability ceiling (cooling reserve)",
        "yes",
        report.max_fpga_c < 65.0,
    )
    table.add_bool("module height is 3U", "3U", module.height_u == 3.0)

    # Error bars: propagate the calibration-knob tolerances and check the
    # paper's measured values sit inside the 90 % intervals.
    from repro.analysis.uncertainty import skat_uncertainty

    intervals = skat_uncertainty(n_samples=25, seed=7)
    table.add_bool(
        "paper's 55 C inside the propagated 90 % interval",
        "measured on the prototype",
        intervals["max_fpga_c"].contains(55.0),
    )
    table.add_bool(
        "paper's 91 W inside the propagated 90 % interval",
        "measured on the prototype",
        intervals["chip_power_w"].contains(91.0),
    )
    return table


def test_bench_t4(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
