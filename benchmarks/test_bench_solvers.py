"""Library performance benchmarks: the solvers themselves.

Not a paper experiment — these time the numerical cores a downstream user
will lean on hardest, so regressions in solver speed are caught the same
way physics regressions are:

- the sparse thermal steady solve at full-module scale (193 nodes);
- the hydraulic network solve of a 12-loop rack manifold;
- the coupled CM steady state (the everything-at-once fixed point);
- a 30-minute module transient.
"""

from repro.core.boardnetwork import build_module_network
from repro.core.balancing import RackManifoldSystem
from repro.core.simulation import ModuleSimulator
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.fluids.library import WATER
from repro.hydraulics.solver import solve_network
from repro.thermal.steady import solve_steady_state


def test_bench_thermal_steady_full_module(benchmark):
    module = skat()
    network = build_module_network(module.section, 28.5, 2.7e-3, 92.0)

    result = benchmark(solve_steady_state, network)
    assert max(result.values()) < 70.0


def test_bench_hydraulic_rack_manifold(benchmark):
    system = RackManifoldSystem(n_loops=12, manifold_diameter_m=0.065)

    def solve():
        return solve_network(system.network, WATER, 20.0)

    result = benchmark(solve)
    assert result.residual_m3_s < 1e-9


def test_bench_module_steady_state(benchmark):
    def solve():
        return skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)

    report = benchmark(solve)
    assert report.max_fpga_c < 60.0


def test_bench_module_transient_30min(benchmark):
    def run():
        return ModuleSimulator(skat()).run(duration_s=1800.0, dt_s=30.0)

    result = benchmark(run)
    assert result.max_junction_c < 60.0
