"""Experiment A1 — ablations of the paper's design choices.

The paper asserts, without numbers, that each of its engineering choices
matters. The ablations quantify them:

1. heatsink: SRC solder-pin sink vs plain machined pins vs bare package
   (the one-or-two-processor immersion products it criticises);
2. thermal interface: SRC oil-stable interface vs conventional paste over
   a year of bath service ("washed out during long-term maintenance");
3. architecture risk: immersion vs per-chip cold plates — connection
   count, leak sensors, availability;
4. reliability payoff: junction temperature -> MTBF multiple (SKAT vs
   Taygeta).
"""

from repro.core.coldplate import ColdPlateModule, PlateStyle
from repro.core.heatsink import BarePlate, PinFinHeatSink
from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    skat_heatsink,
    taygeta,
)
from repro.core.tim import CONVENTIONAL_PASTE, SRC_OIL_STABLE_INTERFACE
from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.devices.fpga import Fpga
from repro.fluids.library import MINERAL_OIL_MD45
from repro.reliability.arrhenius import mtbf_ratio
from repro.reliability.availability import Component, SystemReliability
from repro.reporting import ComparisonTable
from repro.sweep import SweepCase, run_sweep

BOARD_VELOCITY_M_S = 0.18
OIL_C = 29.0
YEAR_H = 8760.0


def build_table() -> ComparisonTable:
    table = ComparisonTable("A1: design-choice ablations")

    # 1. Heatsink ablation — the three sink variants evaluated as a
    # parallel sweep (results keyed by case name, order-independent).
    from dataclasses import replace

    sink_cases = [
        SweepCase(name="solder", params={"sink": skat_heatsink()}),
        SweepCase(
            name="plain",
            params={"sink": replace(skat_heatsink(), turbulence_factor=1.0)},
        ),
        SweepCase(name="bare", params={"sink": BarePlate()}),
    ]
    performances = {
        outcome.case.name: outcome.value
        for outcome in run_sweep(
            lambda case: case.params["sink"].performance(
                BOARD_VELOCITY_M_S, MINERAL_OIL_MD45, OIL_C
            ),
            sink_cases,
        )
    }
    solder = performances["solder"]
    plain = performances["plain"]
    bare = performances["bare"]
    table.add_bool(
        "solder-pin turbulators beat machined pins (lower R)",
        "stated",
        solder.total_resistance_k_w < plain.total_resistance_k_w,
    )
    table.add(
        "bare package vs SKAT sink resistance ratio [x]",
        5.0,
        round(bare.total_resistance_k_w / solder.total_resistance_k_w, 1),
        lo=3.0,
        hi=50.0,
    )
    chip = Fpga(KINTEX_ULTRASCALE_KU095)
    family = KINTEX_ULTRASCALE_KU095
    r_extra = family.theta_jc_k_w + SRC_OIL_STABLE_INTERFACE.resistance_k_w(family.die_area_m2)
    try:
        bare_junction = chip.operate(bare.total_resistance_k_w + r_extra, OIL_C).junction_c
        bare_overheats = bare_junction > family.t_reliable_max_c
    except Exception:
        bare_overheats = True  # thermal runaway: even more conclusive
    table.add_bool(
        "a bare 100 W-class FPGA in oil flow exceeds its limits (sink required)",
        "implied (products for 1-2 CPUs failed on FPGA fields)",
        bare_overheats,
    )

    # 2. TIM washout ablation.
    paste_fresh = CONVENTIONAL_PASTE.resistance_k_w(family.die_area_m2, 0.0)
    paste_year = CONVENTIONAL_PASTE.resistance_k_w(family.die_area_m2, YEAR_H)
    src_year = SRC_OIL_STABLE_INTERFACE.resistance_k_w(family.die_area_m2, YEAR_H)
    table.add(
        "conventional paste resistance growth over 1 year in oil [x]",
        3.0,
        round(paste_year / paste_fresh, 2),
        lo=2.0,
        hi=3.1,
    )
    table.add_bool(
        "SRC interface beats washed-out paste after a service year",
        "stated",
        src_year < paste_year,
    )

    # 3. Architecture risk ablation.
    coldplate = ColdPlateModule(
        ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095)), style=PlateStyle.PER_CHIP
    ).solve()
    immersion_rbd = SystemReliability("immersion CM")
    immersion_rbd.add(Component("pump", 2.0e-5, 8.0))
    immersion_rbd.add(Component("hose connection", 5.0e-7, 4.0, count=4))
    coldplate_rbd = SystemReliability("cold-plate CM")
    coldplate_rbd.add(Component("pump", 2.0e-5, 8.0))
    coldplate_rbd.add(
        Component("hose connection", 5.0e-7, 4.0, count=coldplate.n_pressure_tight_connections)
    )
    table.add(
        "cold-plate pressure-tight connections per CM",
        240.0,
        coldplate.n_pressure_tight_connections,
        lo=150.0,
        hi=400.0,
    )
    table.add_bool(
        "immersion CM availability exceeds cold-plate CM",
        "implied",
        immersion_rbd.availability() > coldplate_rbd.availability(),
    )

    # 3b. Coolant parameter stability over life (Section 2 criterion).
    from repro.fluids.ageing import hours_until_rules_fail
    import math

    unfiltered_life = hours_until_rules_fail(MINERAL_OIL_MD45)
    filtered_life = hours_until_rules_fail(
        MINERAL_OIL_MD45, filtration_interval_h=4000.0, horizon_h=1.0e5
    )
    table.add(
        "unfiltered oil life before the dielectric rule fails [kh]",
        20.0,
        round(unfiltered_life / 1000.0, 1),
        lo=8.0,
        hi=60.0,
    )
    table.add_bool(
        "regular filtration keeps the oil in service ('stability of the main parameters')",
        "Section 2 criterion",
        math.isinf(filtered_life),
    )

    # 4. Reliability payoff.
    skat_junction = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S).max_fpga_c
    taygeta_junction = taygeta().solve(25.0).max_junction_c
    advantage = mtbf_ratio(skat_junction, taygeta_junction)
    table.add(
        "FPGA MTBF multiple, SKAT (55 C) vs Taygeta (73 C) [x]",
        3.3,
        round(advantage, 2),
        lo=2.0,
        hi=5.0,
    )
    return table


def test_bench_a1(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
