"""Experiment R1 — supervised fault-injection campaign survivability.

The paper's operational story is graceful degradation: the open bath is
serviced without stopping the machine, a failed circulation loop leaves
"the rest of modules" computing, and the control subsystem's sensors
catch pump and interface failures before the silicon does. This bench
drills that story closed-loop:

- every fault kind in :mod:`repro.reliability.failures` is injected into
  a supervised CM and must draw a supervisory response — ride-through
  (failover, throttle, chiller fallback) or a latched SAFE_SHUTDOWN,
  never an unbounded excursion;
- the same pump-stop that runs away open-loop is survived supervised,
  with degraded-mode performance above the documented floor
  (``throttle_floor / nominal_utilization`` = 85/90 of nominal PFLOPS,
  see docs/RESILIENCE.md);
- a seeded campaign's survivability report is byte-for-byte reproducible
  (the CI smoke-job property);
- the Fig. 5 rack drill: a blocked loop's CM is individually isolated
  while every surviving CM stays under the junction limit;
- the campaign's observed mitigation behaviour feeds the Monte Carlo
  availability model without losing the machine-stopping leak penalty.
"""

from repro.control.supervisor import Supervisor
from repro.core.rack import Rack
from repro.core.racksim import RackSimulator
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat
from repro.performance.flops import sustained_gflops
from repro.reliability.failures import loop_blockage_event, pump_stop_event
from repro.reporting import ComparisonTable
from repro.resilience import (
    draw_scenarios,
    mc_model_from_campaign,
    run_campaign,
    single_fault_scenarios,
)

#: Campaign step and horizon: long enough for the slow bath pole to
#: answer every injected fault, short enough for a smoke-speed bench.
DT_S = 5.0
DURATION_S = 1500.0
#: Component-trip ceiling used as the campaign's survival limit.
JUNCTION_LIMIT_C = 85.0
#: The drawn-campaign seed; the CI job pins the same value.
SEED = 42


def _supervised_simulator() -> ModuleSimulator:
    return ModuleSimulator(module=skat(), supervisor=Supervisor())


def _nominal_pflops(simulator: ModuleSimulator, utilization: float) -> float:
    section = simulator.module.section
    chips = section.n_boards * section.ccb.n_fpgas
    return chips * sustained_gflops(section.ccb.fpga.family, utilization) / 1.0e6


def build_table() -> ComparisonTable:
    table = ComparisonTable("R1: supervised fault-injection campaign")

    # --- every fault kind answered, bounded ---------------------------
    singles = run_campaign(
        _supervised_simulator,
        single_fault_scenarios(),
        duration_s=DURATION_S,
        dt_s=DT_S,
        junction_limit_c=JUNCTION_LIMIT_C,
    )
    print()
    for s in singles.scenarios:
        print(
            f"  {s.name:13s} -> {s.final_state:13s} peak {s.peak_junction_c:6.1f} C  "
            f"actions {[kind for _, kind, _ in s.actions]}"
        )
    table.add_bool(
        "campaign ran every single-fault scenario without errors",
        "engine criterion",
        all(s.ok for s in singles.scenarios) and not singles.failures,
    )
    table.add_bool(
        "every fault kind drew at least one supervisory response",
        "stated (control subsystem)",
        all(len(s.actions) >= 1 for s in singles.scenarios),
    )
    table.add_bool(
        "every scenario bounded: under limit or latched SAFE_SHUTDOWN",
        "resilience criterion",
        singles.bounded_fraction == 1.0,
    )
    table.add_bool(
        "a leak is always answered by SAFE_SHUTDOWN (no auto-recovery)",
        "stated (closed-loop nightmare)",
        singles.safe_shutdown_fraction_for("leak") == 1.0,
    )

    # --- pump failover: open loop runs away, supervised survives ------
    pump_events = [pump_stop_event(240.0, "oil_pump", 0.0)]
    open_loop = ModuleSimulator(module=skat()).run(
        DURATION_S, events=list(pump_events), dt_s=DT_S
    )
    supervised = _supervised_simulator().run(
        DURATION_S, events=list(pump_events), dt_s=DT_S
    )
    table.add_bool(
        "open-loop pump stop exceeds 90 C (the unprotected baseline)",
        "baseline",
        open_loop.max_junction_c > 90.0,
    )
    table.add_bool(
        "supervised pump stop survives under the junction limit",
        "resilience criterion",
        supervised.max_junction_c <= JUNCTION_LIMIT_C
        and supervised.shutdown_time_s is None,
    )
    table.add_bool(
        "the mitigation was a pump failover to the standby",
        "resilience criterion",
        any(a.kind == "pump_failover" for a in supervised.recovery_actions),
    )
    nominal = _nominal_pflops(_supervised_simulator(), Supervisor().nominal_utilization)
    floor = nominal * (Supervisor().throttle_floor / Supervisor().nominal_utilization)
    print(
        f"  pump failover: degraded {supervised.degraded_pflops:.4f} PFlops, "
        f"floor {floor:.4f}, nominal {nominal:.4f}"
    )
    table.add(
        "degraded PFLOPS under pump failover / documented floor",
        1.0,
        round(supervised.degraded_pflops / floor, 4),
        lo=1.0,
        hi=1.2,
    )

    # --- seeded campaign reproducibility ------------------------------
    drawn = draw_scenarios(SEED, 8, dt_s=DT_S)
    report_a = run_campaign(
        _supervised_simulator,
        drawn,
        duration_s=DURATION_S,
        dt_s=DT_S,
        junction_limit_c=JUNCTION_LIMIT_C,
        seed=SEED,
    )
    report_b = run_campaign(
        _supervised_simulator,
        draw_scenarios(SEED, 8, dt_s=DT_S),
        duration_s=DURATION_S,
        dt_s=DT_S,
        junction_limit_c=JUNCTION_LIMIT_C,
        seed=SEED,
    )
    print(
        f"  drawn campaign: {report_a.n_scenarios} scenarios, "
        f"survived {report_a.survived_fraction:.2f}, "
        f"safe-shutdown {report_a.safe_shutdown_fraction:.2f}, "
        f"bounded {report_a.bounded_fraction:.2f}"
    )
    table.add_bool(
        "identical seeds yield byte-identical survivability reports",
        "determinism criterion",
        report_a.to_json() == report_b.to_json(),
    )
    table.add_bool(
        "drawn campaign bounded throughout (no unbounded excursions)",
        "resilience criterion",
        report_a.bounded_fraction == 1.0 and all(s.ok for s in report_a.scenarios),
    )

    # --- Fig. 5 at rack scale: isolate the blocked CM -----------------
    rack = Rack(module_factory=skat, n_modules=4)
    rack_sim = RackSimulator(rack=rack, supervisor=Supervisor())
    rack_result = rack_sim.run(
        1200.0, events=[loop_blockage_event(200.0, "loop_2", 0.0)], dt_s=20.0
    )
    survivor_peaks = [
        rack_result.telemetry.maximum(f"junction_{i}")
        for i in range(rack.n_modules)
        if i not in rack_result.modules_shutdown
    ]
    print(
        f"  rack blockage: blocked CM peak "
        f"{rack_result.telemetry.maximum('junction_2'):.1f} C, survivors "
        f"{[round(p, 1) for p in survivor_peaks]}, "
        f"shutdown {rack_result.modules_shutdown}, state {rack_result.final_state}"
    )
    table.add_bool(
        "blocked CM is individually isolated (no rack-wide shutdown)",
        "stated (Fig. 5 drill)",
        rack_result.modules_shutdown == (2,)
        and rack_result.final_state != "SAFE_SHUTDOWN",
    )
    table.add_bool(
        "every surviving CM stays under the 67 C junction limit",
        "stated (Fig. 5 drill)",
        all(p <= rack_sim.junction_limit_c for p in survivor_peaks),
    )
    table.add_bool(
        "the blocked CM's excursion is bounded well below runaway",
        "resilience criterion",
        rack_result.telemetry.maximum("junction_2") < 100.0,
    )

    # --- Monte Carlo bridge -------------------------------------------
    mc = mc_model_from_campaign(singles, seed=SEED)
    mc_result = mc.run(years=10.0)
    leak_component = next(
        c for c in mc.components if c.component.name == "leak"
    )
    print(
        f"  MC bridge: availability {mc_result.availability:.5f}, "
        f"leak stoppage {leak_component.stoppage_hours:.1f} h"
    )
    table.add_bool(
        "campaign-calibrated availability model stays above 99 %",
        "reliability criterion",
        mc_result.availability > 0.99,
    )
    table.add_bool(
        "leak failures carry the full machine-stopping downtime charge",
        "stated (closed-loop nightmare)",
        leak_component.stoppage_hours == 24.0,
    )
    return table


def test_bench_r1(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
