"""Experiment T1 — the Section 1 air-cooled CM measurements.

Paper rows (prose, functioning as the motivating table):

- Rigel-2 (Virtex-6 XC6VLX240T): CM power 1255 W, maximum FPGA overheat
  33.1 C over a 25 C room -> 58.1 C.
- Taygeta (Virtex-7 XC7VX485T): CM power 1661 W, overheat 47.9 C ->
  72.9 C, above the 65...70 C reliability ceiling.

The bench regenerates both rows from the forced-air CM model and times the
full module solve.
"""

import pytest

from repro.core.skat import rigel2, taygeta
from repro.reporting import ComparisonTable

AMBIENT_C = 25.0


def build_table() -> ComparisonTable:
    table = ComparisonTable("T1: air-cooled CMs (Rigel-2 / Taygeta)")
    r6 = rigel2().solve(AMBIENT_C)
    r7 = taygeta().solve(AMBIENT_C)

    table.add("Rigel-2 CM power [W]", 1255.0, round(r6.module_power_w, 0), rel_tol=0.10)
    table.add(
        "Rigel-2 max overheat over 25 C [K]", 33.1, round(r6.max_overheat_k, 1), rel_tol=0.15
    )
    table.add(
        "Rigel-2 max FPGA temperature [C]", 58.1, round(r6.max_junction_c, 1), rel_tol=0.10
    )
    table.add("Taygeta CM power [W]", 1661.0, round(r7.module_power_w, 0), rel_tol=0.10)
    table.add(
        "Taygeta max overheat over 25 C [K]", 47.9, round(r7.max_overheat_k, 1), rel_tol=0.15
    )
    table.add(
        "Taygeta max FPGA temperature [C]", 72.9, round(r7.max_junction_c, 1), rel_tol=0.10
    )
    table.add_bool(
        "Rigel-2 within the 65...70 C reliability ceiling",
        "yes (58.1 C)",
        r6.within_reliability_limit,
    )
    table.add_bool(
        "Taygeta exceeds the reliability ceiling (needs a colder room)",
        "yes (72.9 C)",
        not r7.within_reliability_limit,
    )
    return table


def test_bench_t1(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
