"""Experiment M1 — Monte Carlo sampling throughput on the batched core.

Not a paper experiment: these rate the rack-level Monte Carlo evaluator
(`repro.analysis.montecarlo`) — the one level that is vectorized end to
end through the structure-of-arrays engines — against the per-sample
serial path it mirrors. Every benchmark records the evaluated ``samples``
and the measured ``samples_per_sec`` in its ``extra_info`` (distilled
into ``BENCH_<label>.json`` by ``scripts/run_benchmarks.py``), and the
widest row asserts the batched evaluator clears >= 8x the serial sample
rate — the property that makes 10k-sample facility campaigns tractable.

The statistical suite (``tests/test_montecarlo_estimators.py``) and the
byte-pinned goldens (``tests/test_montecarlo_goldens.py``) pin the
*values* of this path; this module pins the *speed*.
"""

import time

import numpy as np
import pytest

from repro.analysis.montecarlo import make_spec, mc_batch, mc_case, run_montecarlo
from repro.sweep.batched import SERIAL_FALLBACK

#: Serial sample size used to estimate the per-sample serial cost.
SERIAL_SAMPLE = 6

#: Batched-vs-serial sample-rate floor asserted at the widest budget.
RACK_SPEEDUP_FLOOR = 8.0

#: Total evaluation budgets (Saltelli N * (k + 2) with k = 4 knobs).
SAMPLE_BUDGETS = [12, 96, 384]


def _time_once(fn) -> float:
    best = np.inf
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("samples", SAMPLE_BUDGETS)
def test_bench_m1_rack_sampling_batched(benchmark, samples):
    spec = make_spec("rack", samples=samples, seed=7)
    cases = spec.cases()

    def solve():
        return mc_batch(cases)

    elapsed = _time_once(solve)
    benchmark.extra_info["samples"] = len(cases)
    benchmark.extra_info["samples_per_sec"] = round(len(cases) / elapsed, 1)

    results = benchmark(solve)
    assert all(result is not SERIAL_FALLBACK for result in results)

    if samples == max(SAMPLE_BUDGETS):
        serial_start = time.perf_counter()
        for case in cases[:SERIAL_SAMPLE]:
            mc_case(case)
        serial_per_sample = (time.perf_counter() - serial_start) / SERIAL_SAMPLE
        speedup = (serial_per_sample * len(cases)) / elapsed
        benchmark.extra_info["serial_samples_per_sec"] = round(
            1.0 / serial_per_sample, 1
        )
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
        assert speedup >= RACK_SPEEDUP_FLOOR, (
            f"batched Monte Carlo at {len(cases)} samples reached only "
            f"{speedup:.1f}x the serial sample rate "
            f"(floor {RACK_SPEEDUP_FLOOR}x)"
        )


def test_bench_m1_rack_campaign_end_to_end(benchmark):
    """The full pipeline — design, dispatch, estimator reduction — at a
    small rack budget, so the distilled record also shows the overhead
    the sweep/reduction layers add on top of the raw evaluator."""
    spec = make_spec("rack", samples=96, seed=7)
    n_cases = len(spec.cases())

    def campaign():
        return run_montecarlo(spec, backend="serial", batch_size=32)

    elapsed = _time_once(campaign)
    benchmark.extra_info["samples"] = n_cases
    benchmark.extra_info["samples_per_sec"] = round(n_cases / elapsed, 1)

    report = benchmark(campaign)
    assert report.n_failed == 0
    assert set(report.sobol["worst_module_max_fpga_c"]) == {
        knob.name for knob in spec.knobs
    }
