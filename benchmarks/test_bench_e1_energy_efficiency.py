"""Experiment E1 — the energy-efficiency claims.

The paper's keyword list includes "energy efficiency", and Section 2
argues that moving liquid costs far less energy than moving air for the
same heat: "much less electric energy is required to transfer 250 ml of
water than to transfer 1 m^3 of air". This bench closes that argument at
rack scale: air (Taygeta rack + CRAC share) vs immersion (SKAT rack +
pumps + chiller), and the Monte Carlo availability comparison of the two
liquid architectures.
"""

from repro.analysis.energy import air_rack_report, annual_energy_report
from repro.reliability.montecarlo import coldplate_cm_model, immersion_cm_model
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("E1: energy efficiency and availability")

    energy = annual_energy_report()
    air = energy["air"]
    immersion = energy["immersion"]
    table.add(
        "air-rack cooling overhead [fraction of IT]",
        0.42,
        round(air.cooling_overhead_fraction, 3),
        lo=0.3,
        hi=0.6,
    )
    table.add(
        "immersion-rack cooling overhead [fraction of IT]",
        0.13,
        round(immersion.cooling_overhead_fraction, 3),
        lo=0.05,
        hi=0.2,
    )
    table.add(
        "cooling-overhead ratio air/immersion [x]",
        3.0,
        round(energy["overhead_ratio"], 2),
        lo=2.0,
        hi=6.0,
    )
    table.add_bool(
        "immersion PUE below air PUE",
        "implied by Section 2",
        immersion.pue < air.pue,
    )
    table.add_bool(
        "annual cooling saving positive at equal IT load",
        "implied",
        energy["cost_saving_usd_per_rack_year_at_equal_it"] > 0.0,
    )

    immersion_mc = immersion_cm_model().run(years=50.0)
    coldplate_mc = coldplate_cm_model().run(years=50.0)
    table.add_bool(
        "immersion CM availability beats cold-plate CM (Monte Carlo)",
        "Section 2 argument",
        immersion_mc.availability > coldplate_mc.availability,
    )
    table.add(
        "cold-plate downtime multiple vs immersion [x]",
        5.0,
        round(
            coldplate_mc.downtime_hours_per_year
            / max(immersion_mc.downtime_hours_per_year, 1e-9),
            1,
        ),
        lo=2.0,
        hi=200.0,
    )
    return table


def test_bench_e1(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
