"""Experiment T7 — the rack-level claims of the conclusions (Section 5).

Paper rows:

- "it is now possible to mount not less than 12 new-generation CMs, with a
  total performance above 1 PFlops, in a single 47U computer rack";
- the full rack holds the operating envelope: FPGAs <= 55 C class, oil
  below 30 C, chiller within capacity;
- the Fig. 5 manifold keeps every CM's water share balanced.
"""

from repro.core.rack import Rack
from repro.core.skat import skat
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("T7: 47U rack of 12 SKAT CMs")
    report = Rack(module_factory=skat, n_modules=12).solve()

    table.add("rack peak performance [PFlops]", 1.0, round(report.peak_pflops, 3), lo=1.0, hi=1.3)
    table.add_bool("total performance above 1 PFlops", "stated", report.above_one_pflops)
    table.add("max FPGA temperature across the rack [C]", 55.0, round(report.max_fpga_c, 1), lo=45.0, hi=58.0)
    table.add_bool("chiller holds the load (no overload)", "implied", not report.chiller.overloaded)

    flows = report.water_flows_m3_s
    table.add(
        "per-CM water-flow imbalance (max/min)",
        1.0,
        round(max(flows) / min(flows), 3),
        lo=1.0,
        hi=1.15,
    )
    table.add_bool(
        "12 x 3U modules fit a 47U rack",
        "stated",
        12 * 3 <= 47,
    )
    table.add("rack IT power [kW]", 120.0, round(report.it_power_w / 1000.0, 1), lo=100.0, hi=140.0)
    table.add("rack-local PUE", 1.15, round(report.pue, 3), lo=1.0, hi=1.3)
    return table


def test_bench_t7(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
