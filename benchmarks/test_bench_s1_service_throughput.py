"""Experiment S — simulation-service throughput on duplicate-heavy load.

Not a paper experiment: these time the :mod:`repro.service` gateway on
the workload it exists for — concurrent request streams where most
requests repeat a scenario someone already asked for (the ISSUE's
acceptance bar: >= 50% repeats; this stream is ~90%). Two gateways run
the identical stream in-process (transport excluded, so the numbers
isolate the gateway layers):

- **cached** — the production configuration: digest-keyed result cache,
  single-flight coalescing, micro-batched dispatch;
- **uncached baseline** — ``cache_entries=0, coalesce=False``: every
  request pays a full solve.

The claim row asserts the cached gateway clears
:data:`SERVICE_SPEEDUP_FLOOR` x the baseline's request throughput and
records the measured cache-hit rate; ``scripts/run_benchmarks.py
--label service --select s1`` distills both rows into
``BENCH_service.json``. The parity suite
(``tests/test_service_parity.py``) pins the *values* of every one of
these code paths to the serial oracle; this module pins the *speed*.
"""

import asyncio
import time

from repro.obs import MetricsRegistry
from repro.service import SimulationGateway
from repro.service.requests import normalize_request, request_digest
from repro.verify.fuzz import generate_scenarios

#: Cached-vs-uncached request-throughput floor on the duplicate stream.
SERVICE_SPEEDUP_FLOOR = 5.0

#: Workload shape: UNIQUE distinct scenarios, each repeated REPEATS
#: times -> duplicate fraction 1 - 1/REPEATS (~ 0.94).
UNIQUE = 6
REPEATS = 16
SEED = 2018


def duplicate_heavy_requests():
    """UNIQUE distinct module payloads (by digest), repeated REPEATS times."""
    payloads, seen = [], set()
    for scenario in generate_scenarios(SEED, 8 * UNIQUE, levels=("module",)):
        payload = {k: v for k, v in scenario.to_dict().items() if k != "index"}
        digest = request_digest(normalize_request(payload))
        if digest not in seen:
            seen.add(digest)
            payloads.append(payload)
        if len(payloads) == UNIQUE:
            break
    assert len(payloads) == UNIQUE
    return [payloads[i % UNIQUE] for i in range(UNIQUE * REPEATS)]


REQUESTS = duplicate_heavy_requests()


def drive(**gateway_kwargs):
    """Fire the whole stream concurrently at a fresh gateway."""
    registry = MetricsRegistry()

    async def go():
        gateway = SimulationGateway(registry=registry, **gateway_kwargs)
        await asyncio.gather(*(gateway.simulate(p) for p in REQUESTS))
        await gateway.close()

    asyncio.run(go())
    return registry.as_dict()["counters"]


def drive_cached():
    return drive()


def drive_uncached():
    return drive(cache_entries=0, coalesce=False)


def _time_once(fn) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_s1_service_cached_throughput(benchmark):
    n = len(REQUESTS)
    elapsed_cached = _time_once(drive_cached)
    elapsed_uncached = _time_once(drive_uncached)
    speedup = elapsed_uncached / elapsed_cached

    counters = drive_cached()
    hit_rate = counters["service_cache_hits_total"] / n

    benchmark.extra_info["requests"] = n
    benchmark.extra_info["unique_scenarios"] = UNIQUE
    benchmark.extra_info["duplicate_fraction"] = round(1.0 - UNIQUE / n, 3)
    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 3)
    benchmark.extra_info["solves"] = counters["service_solves_total"]
    benchmark.extra_info["requests_per_sec"] = round(n / elapsed_cached, 1)
    benchmark.extra_info["baseline_requests_per_sec"] = round(
        n / elapsed_uncached, 1
    )
    benchmark.extra_info["speedup_vs_uncached"] = round(speedup, 1)

    benchmark(drive_cached)

    assert counters["service_solves_total"] == float(UNIQUE)
    assert hit_rate >= 0.5, (
        f"duplicate-heavy stream should mostly hit the cache, got "
        f"{hit_rate:.2f}"
    )
    assert speedup >= SERVICE_SPEEDUP_FLOOR, (
        f"cached gateway reached only {speedup:.1f}x the uncached baseline "
        f"on a {1.0 - UNIQUE / n:.0%}-duplicate stream "
        f"(floor {SERVICE_SPEEDUP_FLOOR}x)"
    )


def test_bench_s1_service_uncached_baseline(benchmark):
    n = len(REQUESTS)
    elapsed = _time_once(drive_uncached)
    counters = drive_uncached()

    benchmark.extra_info["requests"] = n
    benchmark.extra_info["unique_scenarios"] = UNIQUE
    benchmark.extra_info["requests_per_sec"] = round(n / elapsed, 1)
    benchmark.extra_info["solves"] = counters["service_solves_total"]

    benchmark(drive_uncached)

    # Every request pays a solve: nothing is cached, nothing coalesces.
    assert counters["service_solves_total"] == float(n)
    assert counters.get("service_cache_hits_total", 0.0) == 0.0
