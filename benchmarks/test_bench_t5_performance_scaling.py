"""Experiment T5 — SKAT vs Taygeta performance scaling (Section 3).

Paper rows:

- "The performance of a next-generation SKAT CM is increased in 8.7 times
  in comparison with the Taygeta CM."
- "Original design solutions provide more than triple increasing of the
  system packing density."
- "All this provides such qualitative increasing of the system specific
  performance" (GFlops/W rises across the generation).
"""

from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat, taygeta
from repro.devices.families import KINTEX_ULTRASCALE_KU095, VIRTEX7_X485T
from repro.performance.flops import peak_gflops, performance_per_litre, performance_per_watt
from repro.reporting import ComparisonTable

#: Taygeta is a 6U air-cooled module; SKAT packs 3x the chips into 3U.
TAYGETA_HEIGHT_U = 6.0


def build_table() -> ComparisonTable:
    table = ComparisonTable("T5: SKAT vs Taygeta performance")

    skat_module = skat()
    skat_perf = 96 * peak_gflops(KINTEX_ULTRASCALE_KU095)
    taygeta_perf = 32 * peak_gflops(VIRTEX7_X485T)
    ratio = skat_perf / taygeta_perf
    table.add("SKAT / Taygeta performance ratio [x]", 8.7, round(ratio, 2), rel_tol=0.05)

    skat_density = performance_per_litre(skat_perf, skat_module.volume_litre())
    taygeta_volume = skat_module.volume_litre() * TAYGETA_HEIGHT_U / skat_module.height_u
    taygeta_density = performance_per_litre(taygeta_perf, taygeta_volume)
    density_ratio = skat_density / taygeta_density
    table.add("packing density increase [x]", 3.0, round(density_ratio, 1), lo=3.0, hi=30.0)

    skat_report = skat_module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    taygeta_report = taygeta().solve(25.0)
    skat_eff = performance_per_watt(skat_perf, skat_report.module_electrical_w)
    taygeta_eff = performance_per_watt(taygeta_perf, taygeta_report.module_power_w)
    table.add_bool(
        "specific performance (GFlops/W) improves qualitatively",
        "implied",
        skat_eff > 1.3 * taygeta_eff,
    )
    table.add_bool(
        "clock frequency and logic capacity both increased",
        "stated",
        KINTEX_ULTRASCALE_KU095.nominal_clock_mhz > VIRTEX7_X485T.nominal_clock_mhz
        and KINTEX_ULTRASCALE_KU095.logic_cells > VIRTEX7_X485T.logic_cells,
    )
    return table


def test_bench_t5(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
