"""Experiment A2 — sensitivity of the SKAT design point and commissioning.

Quantifies the SKAT+ design agenda of Section 4 ("1. Increase the
effective surface ... 2. Increase the performance of the ... pump ...
5. Experimentally improve the technology of thermal interface coating"):
which knob moves the 55 C junction number by how much, and whether the
machine clears the staged heat experiment the paper's prototypes went
through.
"""

from repro.analysis.sensitivity import skat_sensitivity
from repro.core.commissioning import run_heat_experiment
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.reporting import ComparisonTable


def build_table() -> ComparisonTable:
    table = ComparisonTable("A2: design-point sensitivity and commissioning")

    results = {r.parameter: r for r in skat_sensitivity()}

    table.add_bool(
        "interface coating is the dominant thermal knob (design item 5)",
        "implied by the SKAT+ agenda",
        abs(results["interface resistivity"].delta_k)
        > max(
            abs(r.delta_k) for p, r in results.items() if p != "interface resistivity"
        ),
    )
    table.add(
        "junction cost of a 2x-degraded interface [K]",
        10.0,
        round(results["interface resistivity"].delta_k, 1),
        lo=4.0,
        hi=15.0,
    )
    table.add_bool(
        "more heat-exchange surface lowers junctions (design item 1)",
        "stated",
        results["pin height"].delta_k < 0.0,
    )
    table.add_bool(
        "more pump performance lowers junctions (design item 2)",
        "stated",
        results["pump head"].delta_k < 0.0,
    )
    table.add_bool(
        "removing the solder-pin turbulators costs margin (design item 4)",
        "stated",
        results["solder-pin turbulence"].delta_k > 0.5,
    )
    table.add(
        "junction cost of +2 C chilled water [K]",
        2.0,
        round(results["chilled water"].delta_k, 1),
        lo=1.0,
        hi=3.0,
    )

    commissioning = run_heat_experiment(
        skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S
    )
    table.add_bool(
        "SKAT clears the staged heat experiment (fill + 25-95 % ramp)",
        "the paper's prototype tests",
        commissioning.passed,
    )
    table.add(
        "junction at the 95 % stage [C]",
        55.0,
        round(commissioning.stages[-1].max_fpga_c, 1),
        lo=45.0,
        hi=60.0,
    )
    return table


def test_bench_a2(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
