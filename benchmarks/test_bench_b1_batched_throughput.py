"""Experiment B — batched structure-of-arrays engine throughput.

Not a paper experiment: these time the :mod:`repro.batch` engines against
the per-object serial solvers they mirror, across batch widths N = 1, 32,
256 and 1024. Every benchmark records ``batch_size`` and the measured
``scenarios_per_sec`` in its ``extra_info`` (distilled into
``BENCH_<label>.json`` by ``scripts/run_benchmarks.py``), and the N = 256
rows assert the batched engines clear >= 10x the serial scenario rate on
the A1/T4-style module steady sweep and the F5-style manifold sweep —
the headline claim of the batched core.

The differential suite (``tests/test_batch_differential.py``) pins the
*values* of these fast paths to the serial oracle; this module pins the
*speed*.
"""

import time

import numpy as np
import pytest

from repro.batch.manifold import solve_manifold_batch
from repro.batch.steady import solve_module_steady_batch
from repro.batch.transient import run_module_transient_batch
from repro.core.balancing import RackManifoldSystem
from repro.core.simulation import ModuleSimulator
from repro.core.skat import skat

#: Serial sample size used to estimate the per-scenario serial cost.
SERIAL_SAMPLE = 6

#: Batched-vs-serial scenario-rate floor asserted at N = 256.
STEADY_SPEEDUP_FLOOR = 10.0
MANIFOLD_SPEEDUP_FLOOR = 10.0
TRANSIENT_SPEEDUP_FLOOR = 5.0

BATCH_SIZES = [1, 32, 256, 1024]

TRANSIENT_DT_S = 30.0
TRANSIENT_DURATION_S = 1800.0


def _steady_grid(n: int):
    water_in = np.linspace(14.0, 26.0, n) if n > 1 else np.array([20.0])
    water_flow = np.full(n, 8.0e-4)
    return water_in, water_flow


def _time_once(fn) -> float:
    best = np.inf
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n", BATCH_SIZES)
def test_bench_b1_module_steady_batched(benchmark, n):
    module = skat()
    water_in, water_flow = _steady_grid(n)

    def solve():
        return solve_module_steady_batch(module, water_in, water_flow)

    elapsed = _time_once(solve)
    benchmark.extra_info["batch_size"] = n
    benchmark.extra_info["scenarios_per_sec"] = round(n / elapsed, 1)

    batch = benchmark(solve)
    assert all(error is None for error in batch.errors)

    if n == 256:
        serial_start = time.perf_counter()
        for i in range(SERIAL_SAMPLE):
            module.solve_steady(float(water_in[i]), float(water_flow[i]))
        serial_per_case = (time.perf_counter() - serial_start) / SERIAL_SAMPLE
        speedup = (serial_per_case * n) / elapsed
        benchmark.extra_info["serial_scenarios_per_sec"] = round(
            1.0 / serial_per_case, 1
        )
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
        assert speedup >= STEADY_SPEEDUP_FLOOR, (
            f"batched steady solve at N={n} reached only {speedup:.1f}x "
            f"the serial scenario rate (floor {STEADY_SPEEDUP_FLOOR}x)"
        )


@pytest.mark.parametrize("n", BATCH_SIZES)
def test_bench_b2_rack_manifold_batched(benchmark, n):
    template = RackManifoldSystem()
    rng = np.random.default_rng(1905)
    openings = rng.uniform(0.3, 1.0, size=(n, template.n_loops))

    def solve():
        return solve_manifold_batch(template, openings)

    elapsed = _time_once(solve)
    benchmark.extra_info["batch_size"] = n
    benchmark.extra_info["scenarios_per_sec"] = round(n / elapsed, 1)

    batch = benchmark(solve)
    assert all(error is None for error in batch.errors)
    assert not np.any(batch.fallback_mask)

    if n == 256:
        serial_start = time.perf_counter()
        for i in range(SERIAL_SAMPLE):
            RackManifoldSystem(balancing_valves=list(openings[i])).solve()
        serial_per_case = (time.perf_counter() - serial_start) / SERIAL_SAMPLE
        speedup = (serial_per_case * n) / elapsed
        benchmark.extra_info["serial_scenarios_per_sec"] = round(
            1.0 / serial_per_case, 1
        )
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
        assert speedup >= MANIFOLD_SPEEDUP_FLOOR, (
            f"batched manifold solve at N={n} reached only {speedup:.1f}x "
            f"the serial scenario rate (floor {MANIFOLD_SPEEDUP_FLOOR}x)"
        )


@pytest.mark.parametrize("n", [1, 32, 256])
def test_bench_b3_module_transient_batched(benchmark, n):
    module = skat()
    water_in = np.linspace(18.0, 24.0, n) if n > 1 else np.array([20.0])
    scenarios = [[] for _ in range(n)]

    def run():
        return run_module_transient_batch(
            module,
            TRANSIENT_DURATION_S,
            scenarios,
            dt_s=TRANSIENT_DT_S,
            water_in_c=water_in,
        )

    elapsed = _time_once(run)
    benchmark.extra_info["batch_size"] = n
    benchmark.extra_info["scenarios_per_sec"] = round(n / elapsed, 1)

    batch = benchmark(run)
    assert all(error is None for error in batch.errors)

    if n == 256:
        serial_start = time.perf_counter()
        for i in range(SERIAL_SAMPLE):
            ModuleSimulator(module, water_in_c=float(water_in[i])).run(
                duration_s=TRANSIENT_DURATION_S, dt_s=TRANSIENT_DT_S
            )
        serial_per_case = (time.perf_counter() - serial_start) / SERIAL_SAMPLE
        speedup = (serial_per_case * n) / elapsed
        benchmark.extra_info["serial_scenarios_per_sec"] = round(
            1.0 / serial_per_case, 1
        )
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
        assert speedup >= TRANSIENT_SPEEDUP_FLOOR, (
            f"batched transient at N={n} reached only {speedup:.1f}x "
            f"the serial scenario rate (floor {TRANSIENT_SPEEDUP_FLOOR}x)"
        )
