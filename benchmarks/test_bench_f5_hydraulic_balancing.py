"""Experiment F5 — the Fig. 5 hydraulic-balancing layout.

Paper claims for the reverse-return manifold system:

- the path length from pump to every circulation loop and back is the
  same, so "it is possible to balance the hydraulic resistance in all the
  circulation loops ... No additional hydraulic balancing system is needed
  here";
- "if a circulation loop in any computational module fails, then the
  heat-transfer agent flow is evenly changed in the rest of modules";
- each loop "may be complemented with a balancing valve for finer
  balance-tuning".

The bench regenerates the per-loop flow series for both layouts (the
figure's six loops), runs the failure experiment, and checks the trim-valve
option.
"""

from repro.core.balancing import (
    ManifoldLayout,
    RackManifoldSystem,
    redistribution_evenness,
)
from repro.reporting import ComparisonTable

N_LOOPS = 6


def build_table() -> ComparisonTable:
    table = ComparisonTable("F5: rack manifold hydraulic balancing (6 loops)")

    reverse = RackManifoldSystem(n_loops=N_LOOPS, layout=ManifoldLayout.REVERSE_RETURN)
    direct = RackManifoldSystem(n_loops=N_LOOPS, layout=ManifoldLayout.DIRECT_RETURN)
    rev_report = reverse.solve()
    dir_report = direct.solve()

    print()
    print("per-loop flows [L/s]:")
    print("  reverse return:", [round(q * 1000, 3) for q in rev_report.loop_flows_m3_s])
    print("  direct return: ", [round(q * 1000, 3) for q in dir_report.loop_flows_m3_s])

    table.add(
        "reverse-return max/min loop-flow ratio",
        1.0,
        round(rev_report.imbalance_ratio, 3),
        lo=1.0,
        hi=1.12,
    )
    table.add_bool(
        "reverse return beats direct return (no balancing system needed)",
        "stated",
        rev_report.coefficient_of_variation < 0.5 * dir_report.coefficient_of_variation,
    )
    table.add_bool(
        "reverse-return flow profile symmetric (equal path lengths)",
        "stated",
        abs(rev_report.loop_flows_m3_s[0] - rev_report.loop_flows_m3_s[-1])
        < 1e-3 * rev_report.loop_flows_m3_s[0],
    )

    failure = reverse.failure_redistribution(2)
    evenness = redistribution_evenness(failure["before"], failure["after"])
    table.add(
        "failure redistribution evenness (CoV of survivor gains)",
        0.0,
        round(evenness, 3),
        lo=0.0,
        hi=0.25,
    )
    table.add_bool(
        "every surviving loop gains flow after a loop failure",
        "stated",
        all(
            qa > qb
            for i, (qb, qa) in enumerate(
                zip(failure["before"].loop_flows_m3_s, failure["after"].loop_flows_m3_s)
            )
            if i != 2
        ),
    )

    trimmed = RackManifoldSystem(
        n_loops=N_LOOPS,
        layout=ManifoldLayout.DIRECT_RETURN,
        balancing_valves=[0.5, 0.7, 0.9, 1.0, 1.0, 1.0],
    ).solve()
    table.add_bool(
        "balancing valves can trim the direct-return layout",
        "stated option",
        trimmed.imbalance_ratio < dir_report.imbalance_ratio,
    )
    return table


def test_bench_f5(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
