"""Experiment F5 — the Fig. 5 hydraulic-balancing layout.

Paper claims for the reverse-return manifold system:

- the path length from pump to every circulation loop and back is the
  same, so "it is possible to balance the hydraulic resistance in all the
  circulation loops ... No additional hydraulic balancing system is needed
  here";
- "if a circulation loop in any computational module fails, then the
  heat-transfer agent flow is evenly changed in the rest of modules";
- each loop "may be complemented with a balancing valve for finer
  balance-tuning".

The bench regenerates the per-loop flow series for both layouts (the
figure's six loops), runs the failure experiment, and checks the trim-valve
option. It also exercises the solver fast path: repeated re-solves with
warm starts and the solution cache must beat the cold path by >= 2x while
reproducing its flows within 1e-6 relative.
"""

import time
from typing import List

from repro.core.balancing import (
    ManifoldLayout,
    RackManifoldSystem,
    redistribution_evenness,
)
from repro.hydraulics import NetworkSolver
from repro.reporting import ComparisonTable
from repro.sweep import SweepCase, sweep_cases, sweep_values

N_LOOPS = 6

#: Fail/restore cycles for the warm-start + cache timing comparison (each
#: cycle is two solves: nominal and one-loop-out).
RESOLVE_CYCLES = 6


def _resolve_cycle(system: RackManifoldSystem, cycles: int) -> List[List[float]]:
    """Alternate nominal / loop-2-failed solves, returning every flow set."""
    flows: List[List[float]] = []
    for _ in range(cycles):
        flows.append(system.solve().loop_flows_m3_s)
        system.fail_loop(2)
        flows.append(system.solve().loop_flows_m3_s)
        system.restore_loop(2)
    return flows


def _max_rel_diff(a: List[List[float]], b: List[List[float]]) -> float:
    worst = 0.0
    for row_a, row_b in zip(a, b):
        for qa, qb in zip(row_a, row_b):
            worst = max(worst, abs(qa - qb) / max(abs(qb), 1e-9))
    return worst


def _sweep_imbalance(case: SweepCase) -> float:
    report = RackManifoldSystem(n_loops=case.params["n_loops"]).solve()
    return report.imbalance_ratio


def build_table() -> ComparisonTable:
    table = ComparisonTable("F5: rack manifold hydraulic balancing (6 loops)")

    reverse = RackManifoldSystem(n_loops=N_LOOPS, layout=ManifoldLayout.REVERSE_RETURN)
    direct = RackManifoldSystem(n_loops=N_LOOPS, layout=ManifoldLayout.DIRECT_RETURN)
    rev_report = reverse.solve()
    dir_report = direct.solve()

    print()
    print("per-loop flows [L/s]:")
    print("  reverse return:", [round(q * 1000, 3) for q in rev_report.loop_flows_m3_s])
    print("  direct return: ", [round(q * 1000, 3) for q in dir_report.loop_flows_m3_s])

    table.add(
        "reverse-return max/min loop-flow ratio",
        1.0,
        round(rev_report.imbalance_ratio, 3),
        lo=1.0,
        hi=1.12,
    )
    table.add_bool(
        "reverse return beats direct return (no balancing system needed)",
        "stated",
        rev_report.coefficient_of_variation < 0.5 * dir_report.coefficient_of_variation,
    )
    table.add_bool(
        "reverse-return flow profile symmetric (equal path lengths)",
        "stated",
        abs(rev_report.loop_flows_m3_s[0] - rev_report.loop_flows_m3_s[-1])
        < 1e-3 * rev_report.loop_flows_m3_s[0],
    )

    failure = reverse.failure_redistribution(2)
    evenness = redistribution_evenness(failure["before"], failure["after"])
    table.add(
        "failure redistribution evenness (CoV of survivor gains)",
        0.0,
        round(evenness, 3),
        lo=0.0,
        hi=0.25,
    )
    table.add_bool(
        "every surviving loop gains flow after a loop failure",
        "stated",
        all(
            qa > qb
            for i, (qb, qa) in enumerate(
                zip(failure["before"].loop_flows_m3_s, failure["after"].loop_flows_m3_s)
            )
            if i != 2
        ),
    )

    trimmed = RackManifoldSystem(
        n_loops=N_LOOPS,
        layout=ManifoldLayout.DIRECT_RETURN,
        balancing_valves=[0.5, 0.7, 0.9, 1.0, 1.0, 1.0],
    ).solve()
    table.add_bool(
        "balancing valves can trim the direct-return layout",
        "stated option",
        trimmed.imbalance_ratio < dir_report.imbalance_ratio,
    )

    # Solver fast path: repeated re-solves (service cycles on loop 2) with
    # warm starts + the solution cache against a stateless cold solver.
    fast_system = RackManifoldSystem(n_loops=N_LOOPS)
    cold_system = RackManifoldSystem(
        n_loops=N_LOOPS,
        solver=NetworkSolver(use_cache=False, warm_start=False),
    )
    start = time.perf_counter()
    fast_flows = _resolve_cycle(fast_system, RESOLVE_CYCLES)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    cold_flows = _resolve_cycle(cold_system, RESOLVE_CYCLES)
    cold_s = time.perf_counter() - start
    counters = fast_system.solver_counters
    print(
        f"re-solve timing: cold {cold_s * 1e3:.1f} ms, warm+cache "
        f"{fast_s * 1e3:.1f} ms ({cold_s / max(fast_s, 1e-9):.1f}x); "
        f"cache hits {counters.cache_hits}/{counters.solves}"
    )
    table.add_bool(
        "warm-start + cache >= 2x faster on repeated re-solves",
        "fast-path criterion",
        cold_s >= 2.0 * fast_s,
    )
    table.add_bool(
        "warm/cached flows match the cold path within 1e-6 relative",
        "fast-path criterion",
        _max_rel_diff(fast_flows, cold_flows) <= 1.0e-6,
    )
    table.add_bool(
        "solution cache replays repeated states (hits >= half the solves)",
        "fast-path criterion",
        counters.cache_hits >= counters.solves / 2,
    )

    # Parallel sweep across rack sizes: the reverse-return layout must stay
    # balanced however many CM loops the rack carries.
    sizes = [4, 5, 6, 7, 8]
    ratios = sweep_values(_sweep_imbalance, sweep_cases(n_loops=sizes))
    table.add(
        "worst reverse-return imbalance ratio, 4-8 loop racks (sweep)",
        1.0,
        round(max(ratios), 3),
        lo=1.0,
        hi=1.25,
    )
    return table


def test_bench_f5(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
