"""Experiment T3 — the Section 2 coolant comparison.

Paper rows:

- liquids' volumetric heat capacity is 1500-4000x that of air;
- the heat-transfer coefficient is "up to 100 times higher";
- heat flow through similar surfaces at conventional agent velocities is
  ~70x more intensive with liquid;
- one FPGA needs 1 m^3/min of air or 250 ml/min of water;
- "much less electric energy is required to transfer 250 ml of water than
  to transfer 1 m^3 of air".
"""

from repro.fluids.library import AIR, MINERAL_OIL_MD45, WATER
from repro.reporting import ComparisonTable
from repro.thermal.convection import flat_plate_film

T_REF_C = 25.0
#: Conventional heat-transfer-agent velocities for the "similar surfaces"
#: comparison: card-cage air vs liquid-loop water.
AIR_VELOCITY_M_S = 3.0
WATER_VELOCITY_M_S = 0.5
#: The implied per-chip design point: ~91 W at ~5 K coolant rise.
CHIP_POWER_W = 91.0
COOLANT_RISE_K = 5.0
SURFACE_LENGTH_M = 0.04


def build_table() -> ComparisonTable:
    table = ComparisonTable("T3: liquid vs air heat-transfer agents")

    air_vhc = AIR.volumetric_heat_capacity(T_REF_C)
    water_ratio = WATER.volumetric_heat_capacity(T_REF_C) / air_vhc
    oil_ratio = MINERAL_OIL_MD45.volumetric_heat_capacity(T_REF_C) / air_vhc
    table.add("water heat capacity vs air [x]", 3500.0, round(water_ratio, 0), lo=1500.0, hi=4000.0)
    table.add("mineral oil heat capacity vs air [x]", 1500.0, round(oil_ratio, 0), lo=1200.0, hi=4000.0)

    air_film = flat_plate_film(AIR_VELOCITY_M_S, SURFACE_LENGTH_M, AIR, T_REF_C)
    water_film = flat_plate_film(WATER_VELOCITY_M_S, SURFACE_LENGTH_M, WATER, T_REF_C)
    htc_ratio = water_film.h_w_m2k / air_film.h_w_m2k
    table.add("heat-transfer coefficient ratio water/air [x]", 100.0, round(htc_ratio, 0), lo=40.0, hi=120.0)
    table.add("same-surface heat-flow intensity ratio [x]", 70.0, round(htc_ratio, 0), lo=40.0, hi=120.0)

    air_flow = AIR.volume_flow_for_heat(CHIP_POWER_W, 4.6, T_REF_C) * 60.0
    water_flow = WATER.volume_flow_for_heat(CHIP_POWER_W, 5.2, T_REF_C) * 60.0e6
    table.add("air flow per FPGA [m^3/min]", 1.0, round(air_flow, 2), rel_tol=0.15)
    table.add("water flow per FPGA [ml/min]", 250.0, round(water_flow, 0), rel_tol=0.15)

    # Pumping energy: ideal fan/pump work = volume flow x pressure rise.
    # Same duty (91 W at ~5 K), typical system pressures: 150 Pa card-cage
    # air vs 30 kPa water loop.
    air_power = AIR.volume_flow_for_heat(CHIP_POWER_W, 5.0, T_REF_C) * 150.0 / 0.3
    water_power = WATER.volume_flow_for_heat(CHIP_POWER_W, 5.0, T_REF_C) * 30.0e3 / 0.5
    table.add_bool(
        "moving the water takes less energy than moving the air",
        "implied",
        water_power < air_power,
    )
    return table


def test_bench_t3(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
