"""Experiment T2 — the FPGA family overheat trajectory (Section 1).

Paper claims:

- Virtex-6 -> Virtex-7 under the same air cooling: maximum FPGA
  temperature rises by 11...15 C.
- Virtex-7 -> Virtex UltraScale (up to 100 W per chip): a further
  10...15 C, "which will shift the range of their operating temperature
  limit (80...85 C)" — past the reliability ceiling even assuming an
  upgraded air cooler.
- The effect bites "when the workload on the chips reaches up to 85-95 %
  of the available hardware resource": the utilization sweep shows the
  dependence.
"""

from repro.core.skat import rigel2, taygeta, ultrascale_in_air
from repro.reporting import ComparisonTable

AMBIENT_C = 25.0


def build_table() -> ComparisonTable:
    table = ComparisonTable("T2: family transitions under air cooling")
    t_v6 = rigel2().solve(AMBIENT_C).max_junction_c
    t_v7 = taygeta().solve(AMBIENT_C).max_junction_c
    t_us = ultrascale_in_air().solve(AMBIENT_C).max_junction_c

    table.add("Virtex-6 -> Virtex-7 temperature rise [K]", 13.0, round(t_v7 - t_v6, 1), lo=10.0, hi=16.0)
    table.add(
        "UltraScale max temperature under (upgraded) air cooling [C]",
        82.5,
        round(t_us, 1),
        lo=75.0,
        hi=90.0,
    )
    table.add_bool(
        "UltraScale in air exceeds the 65...70 C reliability ceiling",
        "yes (80...85 C range)",
        t_us > 70.0,
    )

    # Utilization sweep 85-95 % for the UltraScale machine.
    sweep = {}
    for utilization in (0.85, 0.90, 0.95):
        sweep[utilization] = ultrascale_in_air(utilization=utilization).solve(
            AMBIENT_C
        ).max_junction_c
    table.add_bool(
        "temperature rises monotonically over the 85-95 % workload range",
        "implied",
        sweep[0.85] < sweep[0.90] < sweep[0.95],
    )
    table.add_bool(
        "even the 85 % workload point is past the ceiling",
        "implied",
        sweep[0.85] > 70.0,
    )
    return table


def test_bench_t2(benchmark):
    table = benchmark(build_table)
    table.print()
    assert table.all_ok, f"unreproduced rows: {table.failures()}"
