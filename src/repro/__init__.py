"""repro — reproduction of "High-Performance Reconfigurable Computer
Systems with Immersion Cooling" (Levin, Dordopulo, Fedorov, Doronchenko,
PCT 2018).

A thermo-hydraulic simulation stack for FPGA-dense reconfigurable computer
systems: fluid properties, RC thermal networks, flow-network solving, heat
exchangers and chillers, FPGA device/power models, reliability and control
substrates — assembled into the paper's machines (Rigel-2, Taygeta, SKAT,
SKAT+) and its rack-level hydraulic-balancing solution.

Quick start::

    from repro.core import skat
    from repro.core.skat import SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S

    report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    print(report.max_fpga_c, report.bath_mean_c)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
