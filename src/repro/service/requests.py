"""Service request schema: normalization, scenario digests, evaluation.

The gateway accepts plain-JSON simulation requests whose fields mirror
the :class:`~repro.verify.fuzz.FuzzScenario` grammar (level, duration,
step, size, supervision flag, failure-event script) plus two service
extensions: an optional ``tolerances`` block for the invariant-checker
suite and, at facility level, an optional ``plant`` block overriding the
:class:`~repro.facility.simulator.ChillerPlant` sizing.

Identity contract — the heart of the digest-keyed result cache: two
requests describe the same physics **iff** their *normalized* payloads
are equal. :func:`normalize_request` therefore

- fills every defaulted field explicitly (a request that spells out the
  default digests identically to one that omits it),
- coerces numeric spellings onto one grid (``120`` and ``120.0`` are the
  same request),
- converts kilowatt-spelled plant capacities to watts via the verified
  :func:`~repro.verify.metamorphic.watts_from_kilowatts` helper
  (``primary_capacity_kw: 700`` == ``primary_capacity_w: 700000``),
- sorts the event script on the same key the fuzzer uses, and
- rejects unknown keys outright, so a typo can never silently fork the
  cache key space.

:func:`request_digest` is then the SHA-256 of the canonical JSON
(sorted keys, compact separators — the one encoding used everywhere,
:func:`repro.verify.fuzz.canonical_json`) of that normalized payload.
Key order in the incoming JSON cannot matter by construction.

:func:`evaluate_request` is the **serial oracle**: the per-request
evaluation every other code path (batched, coalesced, cached) is pinned
byte-identical to by the parity suite. Without a plant override it is
exactly :func:`repro.verify.fuzz.run_scenario` on the request's
scenario; with one it mirrors that function's facility branch under the
custom plant.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, fields
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.devices.gpu import TrainingTraceSpec, training_power_events
from repro.facility.network import FacilityLoopSystem
from repro.facility.recovery import HeatRecovery
from repro.facility.simulator import ChillerPlant, FacilitySimulator
from repro.facility.sweep import (
    GPU_JUNCTION_LIMIT_C,
    HOT_WATER_SETPOINT_C,
    facility_rack,
    gpu_facility_rack,
    hot_water_gpu_rack,
)
from repro.sweep.batched import SERIAL_FALLBACK
from repro.sweep.cases import SweepCase
from repro.verify.checkers import CheckSuite, Tolerances
from repro.verify.fuzz import (
    FuzzScenario,
    canonical_json,
    fuzz_module_batch,
    run_scenario,
)
from repro.verify.metamorphic import watts_from_kilowatts

__all__ = [
    "LEVEL_DEFAULTS",
    "ServiceRequestError",
    "evaluate_request",
    "evaluate_service_case",
    "normalize_request",
    "request_digest",
    "request_scenario",
    "service_batch",
]


class ServiceRequestError(ValueError):
    """An incoming payload that does not describe a valid request."""


#: Per-level defaults for omitted fields, matching the smallest scenario
#: sizes the fuzzer generates (so defaulted requests are cheap).
LEVEL_DEFAULTS: Dict[str, Dict[str, float]] = {
    "module": {"duration_s": 240.0, "dt_s": 5.0, "n_modules": 1, "n_racks": 0},
    "rack": {"duration_s": 200.0, "dt_s": 20.0, "n_modules": 2, "n_racks": 0},
    "facility": {"duration_s": 200.0, "dt_s": 20.0, "n_modules": 2, "n_racks": 2},
    "gpu_module": {
        "duration_s": 240.0,
        "dt_s": 5.0,
        "n_modules": 1,
        "n_racks": 0,
    },
    "gpu_facility": {
        "duration_s": 200.0,
        "dt_s": 20.0,
        "n_modules": 2,
        "n_racks": 2,
    },
    "hot_water_facility": {
        "duration_s": 200.0,
        "dt_s": 20.0,
        "n_modules": 2,
        "n_racks": 2,
    },
}

#: Levels whose requests may carry a ``workload`` training-trace block
#: (and whose scenarios run GPU device models).
_WORKLOAD_LEVELS = frozenset(
    {"gpu_module", "gpu_facility", "hot_water_facility"}
)

#: Levels that accept a ``plant`` override (anything with a chiller
#: plant of its own).
_PLANT_LEVELS = frozenset({"facility", "gpu_facility", "hot_water_facility"})

#: Module-shaped levels (one CM, no racks).
_MODULE_LEVELS = frozenset({"module", "gpu_module"})

#: Facility-shaped levels (racks on a shared loop).
_FACILITY_LEVELS = frozenset({"facility", "gpu_facility", "hot_water_facility"})

_REQUEST_KEYS = frozenset(
    {
        "level",
        "duration_s",
        "dt_s",
        "n_modules",
        "n_racks",
        "supervised",
        "events",
        "tolerances",
        "plant",
        "workload",
    }
)

_EVENT_KEYS = frozenset({"kind", "time_s", "target", "magnitude"})

#: Workload-block keys, mirroring :class:`TrainingTraceSpec` fields.
_WORKLOAD_KEYS = frozenset(
    {
        "warmup_s",
        "warmup_fraction",
        "step_period_s",
        "allreduce_fraction",
        "peak_fraction",
        "dip_fraction",
        "jitter",
        "seed",
    }
)

#: Plant keys in watts; each also accepts a ``_kw``-suffixed spelling.
_PLANT_W_KEYS = ("primary_capacity_w", "standby_capacity_w")
_PLANT_KEYS = frozenset(
    _PLANT_W_KEYS + ("standby_start_delay_s", "setpoint_c", "cop")
)

#: Request size ceilings — a public surface needs hard bounds.
_MAX_MODULES = 8
_MAX_RACKS = 8
_MAX_EVENTS = 32
_MAX_DURATION_S = 24.0 * 3600.0

_TOLERANCE_KEYS = frozenset(f.name for f in fields(Tolerances))


def _fail(message: str) -> None:
    raise ServiceRequestError(message)


def _float(payload: Mapping[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{key!r} must be a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        _fail(f"{key!r} must be finite, got {value!r}")
    return value


def _int(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(f"{key!r} must be an integer, got {value!r}")
    return int(value)


def _normalize_events(raw: Any, duration_s: float) -> List[Dict[str, Any]]:
    if not isinstance(raw, (list, tuple)):
        _fail(f"'events' must be a list, got {raw!r}")
    if len(raw) > _MAX_EVENTS:
        _fail(f"at most {_MAX_EVENTS} events per request, got {len(raw)}")
    events: List[Dict[str, Any]] = []
    for i, item in enumerate(raw):
        if not isinstance(item, Mapping):
            _fail(f"events[{i}] must be an object, got {item!r}")
        unknown = set(item) - _EVENT_KEYS
        if unknown:
            _fail(f"events[{i}] has unknown keys {sorted(unknown)}")
        for key in ("kind", "target"):
            if not isinstance(item.get(key), str) or not item.get(key):
                _fail(f"events[{i}].{key} must be a non-empty string")
        time_s = _float(item, "time_s", None) if "time_s" in item else _fail(
            f"events[{i}] missing 'time_s'"
        )
        magnitude = (
            _float(item, "magnitude", None)
            if "magnitude" in item
            else _fail(f"events[{i}] missing 'magnitude'")
        )
        if time_s < 0.0 or time_s > duration_s:
            _fail(
                f"events[{i}].time_s {time_s} outside the run [0, {duration_s}]"
            )
        if item["kind"] == "power_step" and not 0.0 <= magnitude <= 1.0:
            _fail(
                f"events[{i}].magnitude {magnitude} invalid for 'power_step': "
                "workload fraction must be within [0, 1]"
            )
        events.append(
            {
                "kind": str(item["kind"]),
                "time_s": time_s,
                "target": str(item["target"]),
                "magnitude": magnitude,
            }
        )
    # The fuzzer's canonical event order — digests cannot depend on the
    # order a client happened to list its events in.
    events.sort(key=lambda e: (e["time_s"], e["kind"], e["target"]))
    return events


def _normalize_workload(
    raw: Any, level: str, duration_s: float, dt_s: float
) -> List[Dict[str, Any]]:
    """Expand a ``workload`` training-trace block into power-step events.

    The block is consumed here — the normalized payload carries only the
    expanded events — so a request spelling its trace as a block digests
    identically to one spelling the same trace as explicit
    ``power_step`` events, and every downstream path (cache, batcher,
    fuzzer replay) sees one grammar.
    """
    if raw is None:
        return []
    if level not in _WORKLOAD_LEVELS:
        _fail(
            "'workload' training traces apply to GPU workload levels only "
            f"({', '.join(sorted(_WORKLOAD_LEVELS))}); got level {level!r}"
        )
    if not isinstance(raw, Mapping):
        _fail(f"'workload' must be an object, got {raw!r}")
    unknown = set(raw) - _WORKLOAD_KEYS
    if unknown:
        _fail(f"'workload' has unknown keys {sorted(unknown)}")
    defaults = TrainingTraceSpec()
    kwargs: Dict[str, Any] = {}
    for key in sorted(_WORKLOAD_KEYS):
        if key == "seed":
            kwargs[key] = _int(raw, key, defaults.seed)
        else:
            kwargs[key] = _float(raw, key, getattr(defaults, key))
    try:
        spec = TrainingTraceSpec(**kwargs)
    except ValueError as exc:
        _fail(f"'workload' invalid: {exc}")
    events = training_power_events(
        spec, duration_s=duration_s, dt_s=dt_s, target="compute"
    )
    return [
        {
            "kind": e.kind,
            "time_s": e.time_s,
            "target": e.target,
            "magnitude": e.magnitude,
        }
        for e in events
    ]


def _normalize_tolerances(raw: Any) -> Optional[Dict[str, float]]:
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        _fail(f"'tolerances' must be an object, got {raw!r}")
    unknown = set(raw) - _TOLERANCE_KEYS
    if unknown:
        _fail(f"'tolerances' has unknown keys {sorted(unknown)}")
    full = asdict(Tolerances())
    for key in raw:
        full[key] = _float(raw, key, None)
    return {key: full[key] for key in sorted(full)}


def _normalize_plant(raw: Any, level: str) -> Optional[Dict[str, float]]:
    if raw is None:
        return None
    if level not in _PLANT_LEVELS:
        _fail(
            "'plant' overrides apply to facility-shaped requests only "
            f"({', '.join(sorted(_PLANT_LEVELS))}); got level {level!r}"
        )
    if not isinstance(raw, Mapping):
        _fail(f"'plant' must be an object, got {raw!r}")
    merged: Dict[str, Any] = dict(raw)
    # kW spellings normalize onto the watt grid before anything else —
    # a request in kilowatts must digest identically to its watt twin.
    for w_key in _PLANT_W_KEYS:
        kw_key = w_key[: -len("_w")] + "_kw"
        if kw_key in merged:
            if w_key in merged:
                _fail(f"'plant' gives both {w_key!r} and {kw_key!r}")
            merged[w_key] = watts_from_kilowatts(_float(merged, kw_key, None))
            del merged[kw_key]
    unknown = set(merged) - _PLANT_KEYS
    if unknown:
        _fail(f"'plant' has unknown keys {sorted(unknown)}")
    defaults = ChillerPlant()
    plant = {
        key: _float(merged, key, getattr(defaults, key))
        for key in sorted(_PLANT_KEYS)
    }
    if plant["primary_capacity_w"] <= 0.0:
        _fail("'plant.primary_capacity_w' must be positive")
    if plant["standby_capacity_w"] < 0.0:
        _fail("'plant.standby_capacity_w' cannot be negative")
    if plant["standby_start_delay_s"] < 0.0:
        _fail("'plant.standby_start_delay_s' cannot be negative")
    if plant["cop"] <= 0.0:
        _fail("'plant.cop' must be positive")
    return plant


def normalize_request(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a raw payload and return its canonical normalized form.

    The returned dict always carries the full key set with defaults
    filled, floats coerced, events sorted and plant capacities in watts —
    see the module docstring for why. Raises
    :class:`ServiceRequestError` on anything malformed.
    """
    if not isinstance(payload, Mapping):
        _fail(f"request payload must be an object, got {payload!r}")
    unknown = set(payload) - _REQUEST_KEYS
    if unknown:
        _fail(f"request has unknown keys {sorted(unknown)}")
    level = payload.get("level")
    if level not in LEVEL_DEFAULTS:
        _fail(
            f"'level' must be one of {sorted(LEVEL_DEFAULTS)}, got {level!r}"
        )
    defaults = LEVEL_DEFAULTS[level]
    duration_s = _float(payload, "duration_s", defaults["duration_s"])
    dt_s = _float(payload, "dt_s", defaults["dt_s"])
    if duration_s <= 0.0 or dt_s <= 0.0:
        _fail("'duration_s' and 'dt_s' must be positive")
    if duration_s > _MAX_DURATION_S:
        _fail(f"'duration_s' capped at {_MAX_DURATION_S} seconds per request")
    if duration_s / dt_s > 100_000:
        _fail("request exceeds 100000 time steps; raise dt_s")
    n_modules = _int(payload, "n_modules", int(defaults["n_modules"]))
    n_racks = _int(payload, "n_racks", int(defaults["n_racks"]))
    if level in _MODULE_LEVELS and (n_modules != 1 or n_racks != 0):
        _fail("module-level requests are a single module (n_modules=1, n_racks=0)")
    if level == "rack":
        if n_racks != 0:
            _fail("rack-level requests take n_racks=0")
        if not 1 <= n_modules <= _MAX_MODULES:
            _fail(f"'n_modules' must be in [1, {_MAX_MODULES}]")
    if level in _FACILITY_LEVELS:
        if not 2 <= n_racks <= _MAX_RACKS:
            _fail(f"'n_racks' must be in [2, {_MAX_RACKS}]")
        if not 1 <= n_modules <= _MAX_MODULES:
            _fail(f"'n_modules' must be in [1, {_MAX_MODULES}]")
    supervised = payload.get("supervised", False)
    if not isinstance(supervised, bool):
        _fail(f"'supervised' must be a boolean, got {supervised!r}")
    events = _normalize_events(payload.get("events", []), duration_s)
    events += _normalize_workload(
        payload.get("workload"), level, duration_s, dt_s
    )
    # Re-sort after the trace expansion: a trace spelled as a 'workload'
    # block must digest identically to the same trace spelled as
    # explicit events, whatever order the client listed them in.
    events.sort(key=lambda e: (e["time_s"], e["kind"], e["target"]))
    return {
        "level": level,
        "duration_s": duration_s,
        "dt_s": dt_s,
        "n_modules": n_modules,
        "n_racks": n_racks,
        "supervised": supervised,
        "events": events,
        "tolerances": _normalize_tolerances(payload.get("tolerances")),
        "plant": _normalize_plant(payload.get("plant"), level),
    }


def request_digest(normalized: Mapping[str, Any]) -> str:
    """SHA-256 scenario digest of a *normalized* request payload."""
    return hashlib.sha256(
        canonical_json(dict(normalized)).encode("utf-8")
    ).hexdigest()


def request_scenario(normalized: Mapping[str, Any]) -> FuzzScenario:
    """The :class:`FuzzScenario` a normalized request describes.

    Service scenarios all carry index 0 — their identity is the request
    digest, not a position in a fuzz stream.
    """
    return FuzzScenario.from_dict({**dict(normalized), "index": 0})


def _tolerances(normalized: Mapping[str, Any]) -> Optional[Tolerances]:
    tol = normalized.get("tolerances")
    return None if tol is None else Tolerances(**tol)


def evaluate_request(normalized: Mapping[str, Any]) -> Dict[str, Any]:
    """Serial oracle: evaluate one normalized request to its result record.

    Identical to :func:`repro.verify.fuzz.run_scenario` unless the
    request carries a plant override, in which case the facility branch
    is mirrored under the custom :class:`ChillerPlant`.
    """
    scenario = request_scenario(normalized)
    plant = normalized.get("plant")
    if plant is None:
        return run_scenario(scenario, tolerances=_tolerances(normalized))
    suite = CheckSuite(
        strict=False,
        tolerances=_tolerances(normalized) or Tolerances(),
    )
    if scenario.level in ("gpu_facility", "hot_water_facility"):
        # Mirror run_scenario's workload-facility branch, but let the
        # plant override's setpoint drive the secondary loop so the
        # override actually changes the supply water the racks see.
        hot = scenario.level == "hot_water_facility"
        custom_plant = ChillerPlant(**plant)
        facility = FacilitySimulator(
            n_racks=scenario.n_racks,
            rack_factory=partial(
                hot_water_gpu_rack if hot else gpu_facility_rack,
                scenario.n_modules,
            ),
            plant=custom_plant,
            loop=FacilityLoopSystem(
                n_racks=scenario.n_racks,
                temperature_c=custom_plant.setpoint_c,
            ),
            supervised=scenario.supervised,
            junction_limit_c=GPU_JUNCTION_LIMIT_C,
            heat_recovery=(
                HeatRecovery(
                    effectiveness=0.6, minimum_return_c=HOT_WATER_SETPOINT_C
                )
                if hot
                else None
            ),
            checks=suite,
        )
    else:
        facility = FacilitySimulator(
            n_racks=scenario.n_racks,
            rack_factory=partial(facility_rack, scenario.n_modules),
            plant=ChillerPlant(**plant),
            supervised=scenario.supervised,
            checks=suite,
        )
    result = facility.run(
        scenario.duration_s, events=list(scenario.events), dt_s=scenario.dt_s
    )

    def r(x: float) -> float:
        return round(float(x), 9)

    summary = {
        "max_fpga_c": r(result.max_fpga_c),
        "max_water_c": r(result.max_water_c),
        "heat_rejected_j": r(result.heat_rejected_j),
        "final_state": result.final_state,
    }
    if scenario.level in ("gpu_facility", "hot_water_facility"):
        summary["ppue"] = r(result.ppue)
        summary["recovered_heat_j"] = r(result.recovered_heat_j)
    return {
        "scenario": scenario.name,
        "level": scenario.level,
        "violations": [v.to_dict() for v in suite.violations],
        "checks_run": suite.checks_run,
        "summary": summary,
    }


def evaluate_service_case(case: SweepCase) -> Dict[str, Any]:
    """Sweep adapter around :func:`evaluate_request` (module-level so the
    process backend can pickle it by reference)."""
    return evaluate_request(case.params["request"])


def service_batch(cases: List[SweepCase]) -> List[Any]:
    """Batched evaluation of service cases via the fuzzer's batch path.

    Plant-override requests always fall back to the serial oracle; the
    rest are translated to fuzz cases and handed to
    :func:`repro.verify.fuzz.fuzz_module_batch`, which batches the
    open-loop module lanes through ``ModuleSimulator.run_many`` and marks
    everything else :data:`~repro.sweep.batched.SERIAL_FALLBACK`. The
    differential suite pins the batched records byte-identical to
    :func:`evaluate_request`.
    """
    translated: List[Tuple[int, SweepCase]] = []
    results: List[Any] = [SERIAL_FALLBACK] * len(cases)
    for i, case in enumerate(cases):
        normalized = case.params["request"]
        if normalized.get("plant") is not None:
            continue
        translated.append(
            (
                i,
                SweepCase(
                    name=case.name,
                    params={
                        "scenario": request_scenario(normalized).to_dict(),
                        "tolerances": normalized.get("tolerances"),
                    },
                ),
            )
        )
    if translated:
        batched = fuzz_module_batch([case for _, case in translated])
        for (i, _), value in zip(translated, batched):
            results[i] = value
    return results
