"""Minimal stdlib asyncio HTTP/1.1 bridge for the ASGI application.

The container and CI images carry no ASGI server, so this module serves
the adapter with nothing but ``asyncio.start_server``: one request per
connection (``Connection: close``), ``Content-Length`` bodies, no
chunked transfer — exactly enough protocol for the gateway's JSON API
and the smoke drills. Production deployments should mount
:func:`repro.service.asgi.create_app` on a real ASGI server instead;
this bridge exists so the service is runnable and load-testable from
the bare repository.

``serve(app, host, port)`` starts and returns an
:class:`asyncio.AbstractServer` (``port=0`` binds an ephemeral port —
read it back from ``server.sockets[0]``); :func:`run` is the blocking
serve-forever entry the CLI uses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Tuple
from urllib.parse import unquote, urlsplit

__all__ = ["run", "serve"]

#: Request-body ceiling, bytes (the JSON payloads are tiny).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes, List[Tuple[bytes, bytes]], bytes]:
    """Parse one request: (method, path, query, headers, body)."""
    request_line = await reader.readline()
    if not request_line.strip():
        raise ConnectionError("empty request")
    try:
        method, target, _version = request_line.decode("latin-1").split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {request_line!r}") from None
    headers: List[Tuple[bytes, bytes]] = []
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.partition(b":")
        name = name.strip().lower()
        value = value.strip()
        headers.append((name, value))
        if name == b"content-length":
            try:
                content_length = int(value)
            except ValueError:
                raise ValueError(f"bad Content-Length {value!r}") from None
    if content_length > MAX_BODY_BYTES:
        raise BufferError(f"body of {content_length} bytes exceeds the cap")
    body = await reader.readexactly(content_length) if content_length else b""
    split = urlsplit(target)
    return (
        method.upper(),
        unquote(split.path),
        split.query.encode("latin-1"),
        headers,
        body,
    )


def _plain_response(status: int, text: str) -> bytes:
    body = (text + "\n").encode("utf-8")
    return (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"content-type: text/plain; charset=utf-8\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    ).encode("latin-1") + body


async def _handle_connection(
    app: Callable,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            method, path, query, headers, body = await _read_request(reader)
        except ConnectionError:
            return
        except BufferError as exc:
            writer.write(_plain_response(413, str(exc)))
            await writer.drain()
            return
        except (ValueError, asyncio.IncompleteReadError) as exc:
            writer.write(_plain_response(400, f"bad request: {exc}"))
            await writer.drain()
            return

        scope: Dict[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": query,
            "headers": headers,
            "client": writer.get_extra_info("peername"),
            "server": writer.get_extra_info("sockname"),
        }
        received = False

        async def receive() -> Dict[str, Any]:
            nonlocal received
            if received:  # pragma: no cover - adapter reads the body once
                return {"type": "http.disconnect"}
            received = True
            return {"type": "http.request", "body": body, "more_body": False}

        started = False

        async def send(message: Dict[str, Any]) -> None:
            nonlocal started
            if message["type"] == "http.response.start":
                started = True
                status = message["status"]
                lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}"]
                for name, value in message.get("headers", []):
                    lines.append(
                        f"{name.decode('latin-1')}: {value.decode('latin-1')}"
                    )
                lines.append("connection: close")
                writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        try:
            await app(scope, receive, send)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            if not started:
                writer.write(_plain_response(500, f"internal error: {exc!r}"))
                await writer.drain()
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass


async def serve(
    app: Callable, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start serving ``app``; returns the running server (``port=0`` = any)."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        await _handle_connection(app, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


def run(app: Callable, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Blocking serve-forever entry point (Ctrl-C to stop)."""

    async def main() -> None:
        server = await serve(app, host=host, port=port)
        sock = server.sockets[0].getsockname()
        print(f"repro.service listening on http://{sock[0]}:{sock[1]}")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
