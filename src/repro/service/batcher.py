"""Micro-batching queue: coalesce concurrent requests into batched solves.

Requests submitted to a :class:`MicroBatcher` are held in a collection
window and dispatched together: the window closes — and one batched
dispatch fires — as soon as ``max_batch_size`` requests are pending *or*
``max_wait_s`` has elapsed since the window opened, whichever comes
first. Under heavy concurrent load batches fill instantly and the
structure-of-arrays engines see wide lanes; a lone request pays at most
``max_wait_s`` of extra latency.

Determinism seam — how the tests pin max-wait coalescing
--------------------------------------------------------
Real time makes batch composition racy: whether two requests share a
batch depends on scheduler jitter. The batcher therefore never calls
``asyncio.sleep`` directly; it awaits an injected **timer**::

    batcher = MicroBatcher(dispatch, max_wait_s=0.002, timer=asyncio.sleep)

The ``timer`` is any ``async callable(delay_s)`` that returns when the
collection window should close. Production uses the default
``asyncio.sleep``; tests inject a :class:`ManualTimer`, whose windows
only ever close when the test calls :meth:`ManualTimer.fire` — so "K
submits, then the window expires" is a reproducible, clock-free
statement, and every batch-composition assertion in
``tests/test_service_batcher.py`` is exact rather than timing-dependent.
Wall-clock queue latency is still measured (via an injectable ``clock``,
default ``time.monotonic``) but flows only into the
``service_wall_queue_s`` histogram, which the deterministic metric
exports exclude by prefix.

Cancellation contract: a waiter that is cancelled (or times out) while
its request is pending simply has its slot dropped when the window
closes — the batch dispatches for the remaining waiters, their results
are unaffected, and no slot leaks. If *every* waiter of a window is
cancelled the dispatch is skipped entirely. A dispatch failure rejects
exactly the waiters of that batch; the next window starts clean.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, List, Optional, Sequence, Tuple

from repro.obs import get_registry

__all__ = ["ManualTimer", "MicroBatcher"]

#: Bucket edges for the batch-size histogram (lanes per dispatch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Bucket edges for wall-clock queue latency, seconds.
QUEUE_WAIT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0,
)


class ManualTimer:
    """A timer whose windows close only when the test says so.

    Each batcher window awaits ``timer(delay_s)``; a :class:`ManualTimer`
    parks that await on a future and releases it on :meth:`fire`. The
    :attr:`pending` count says how many windows are currently open.
    """

    def __init__(self) -> None:
        self._waiters: List["asyncio.Future[None]"] = []

    @property
    def pending(self) -> int:
        """Open collection windows currently awaiting :meth:`fire`."""
        return len(self._waiters)

    async def __call__(self, delay_s: float) -> None:
        future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            await future
        finally:
            if future in self._waiters:
                self._waiters.remove(future)

    def fire(self) -> bool:
        """Close the oldest open window; False when none is open."""
        while self._waiters:
            future = self._waiters.pop(0)
            if not future.done():
                future.set_result(None)
                return True
        return False


class _Slot:
    """One queued request: its item, its waiter and its enqueue time."""

    __slots__ = ("item", "future", "enqueued_at")

    def __init__(self, item: Any, future: "asyncio.Future[Any]", enqueued_at: float):
        self.item = item
        self.future = future
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Coalesce submitted items into batched dispatches (see module doc).

    ``dispatch`` is an ``async callable(items) -> results`` returning one
    result per item, in item order. It runs in its own task, so a slow
    solve never blocks the next collection window from filling.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Any]], Awaitable[Sequence[Any]]],
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        timer: Callable[[float], Awaitable[None]] = asyncio.sleep,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[Any] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0.0:
            raise ValueError("max_wait_s cannot be negative")
        self._dispatch = dispatch
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._timer = timer
        self._clock = clock
        self._registry = registry
        self._pending: List[_Slot] = []
        self._window_task: Optional["asyncio.Task[None]"] = None
        self._dispatch_tasks: "set[asyncio.Task[None]]" = set()

    def _obs(self) -> Any:
        return self._registry if self._registry is not None else get_registry()

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the current collection window."""
        return len(self._pending)

    @property
    def dispatches_in_flight(self) -> int:
        """Batched solves currently running."""
        return len(self._dispatch_tasks)

    async def submit(self, item: Any) -> Any:
        """Queue one item and await its result from a batched dispatch."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._pending.append(_Slot(item, future, self._clock()))
        if len(self._pending) >= self.max_batch_size:
            self._close_window()
        elif self._window_task is None:
            self._window_task = loop.create_task(self._window())
        return await future

    async def _window(self) -> None:
        try:
            await self._timer(self.max_wait_s)
        except asyncio.CancelledError:
            return
        self._window_task = None
        self._close_window()

    def _close_window(self) -> None:
        if self._window_task is not None:
            self._window_task.cancel()
            self._window_task = None
        slots = [s for s in self._pending if not s.future.cancelled()]
        self._pending = []
        if not slots:
            return
        obs = self._obs()
        obs.inc("service_batches_total")
        obs.observe("service_batch_size", float(len(slots)), BATCH_SIZE_BUCKETS)
        now = self._clock()
        for slot in slots:
            obs.observe(
                "service_wall_queue_s", now - slot.enqueued_at, QUEUE_WAIT_BUCKETS
            )
        task = asyncio.get_running_loop().create_task(self._run(slots))
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    async def _run(self, slots: List[_Slot]) -> None:
        try:
            values = list(await self._dispatch([s.item for s in slots]))
            if len(values) != len(slots):
                raise RuntimeError(
                    f"dispatch returned {len(values)} results for "
                    f"{len(slots)} items"
                )
        except Exception as exc:  # noqa: BLE001 - rejected per waiter
            for slot in slots:
                if not slot.future.done():
                    slot.future.set_exception(exc)
            return
        for slot, value in zip(slots, values):
            if not slot.future.done():
                slot.future.set_result(value)

    async def flush(self) -> None:
        """Dispatch whatever is pending now and wait for in-flight solves."""
        self._close_window()
        while self._dispatch_tasks:
            await asyncio.gather(*list(self._dispatch_tasks), return_exceptions=True)
