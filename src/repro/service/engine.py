"""The transport-agnostic async simulation gateway.

:class:`SimulationGateway` is the core of ``repro.service``: a pure
asyncio engine (no web framework anywhere near it) that turns simulation
request payloads into result records through three cost-collapsing
layers, in order:

1. **Result cache** — requests are normalized and digested
   (:mod:`repro.service.requests`); a digest already resolved is served
   straight from the :class:`~repro.service.cache.ResultCache`.
2. **Single-flight coalescing** — a digest currently being solved is
   *joined*, not re-solved: the request awaits the in-flight solve's
   future. K concurrent identical requests therefore cost exactly one
   solve; the joiners count as cache hits (the in-flight entry is a
   cache entry that has not resolved yet) and additionally as
   ``service_coalesced_total``.
3. **Micro-batching** — cache misses enter the
   :class:`~repro.service.batcher.MicroBatcher`; each closed window is
   dispatched as **one** :func:`~repro.sweep.batched.run_sweep_batched`
   call in a worker thread, which routes open-loop module lanes through
   the structure-of-arrays ``ModuleSimulator.run_many`` engine and
   everything else through the serial oracle. The parity suite pins all
   of these paths byte-identical.

Awaiting is cancellation-safe by construction: every solve runs in its
own task resolving a shared per-digest future, and callers await
``asyncio.shield`` of that future. A caller that is cancelled or times
out abandons only its own wait — the solve completes, the result lands
in the cache, and later identical requests hit it without a second
solve.

Deterministic counters (exported byte-stably by the smoke drill):
``service_requests_total`` (+ per-level), ``service_cache_hits_total``,
``service_cache_misses_total``, ``service_solves_total``,
``service_errors_total``, ``service_cache_evictions_total`` and the
``service_cache_size`` gauge. Timing-dependent ones (excluded by the
drill): ``service_coalesced_total`` (hit-vs-join split depends on
arrival timing), ``service_batches_total`` / ``service_batch_size``
(window composition) and every ``service_wall_*`` histogram.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import get_registry
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.requests import (
    ServiceRequestError,
    evaluate_service_case,
    normalize_request,
    request_digest,
    service_batch,
)
from repro.sweep.batched import BatchedSweepFn, run_sweep_batched
from repro.sweep.cases import SweepCase
from repro.verify.fuzz import generate_scenarios

__all__ = ["ServiceEvaluationError", "SimulationGateway"]

#: Ceiling on scenarios per sweep request (a public surface needs one).
MAX_SWEEP_SCENARIOS = 512


class ServiceEvaluationError(RuntimeError):
    """A request that was valid but whose simulation failed."""

    def __init__(self, error: str, traceback: Optional[str] = None):
        super().__init__(error)
        self.error = error
        self.traceback = traceback


class _Failure:
    """Per-lane failure marker travelling through the batcher."""

    __slots__ = ("error", "traceback")

    def __init__(self, error: str, traceback: Optional[str]):
        self.error = error
        self.traceback = traceback


def _retrieve(future: "asyncio.Future[Any]") -> None:
    """Mark a future's exception retrieved (waiters may all be gone)."""
    if not future.cancelled():
        future.exception()


class SimulationGateway:
    """Async batching gateway over the simulator stack (see module doc).

    Parameters
    ----------
    cache_entries:
        LRU bound of the result cache; 0 disables caching.
    coalesce:
        Whether identical in-flight requests join one solve. Disabled
        (together with ``cache_entries=0``) this is the "every request
        pays a full solve" baseline the throughput benchmark compares
        against.
    max_batch_size, max_wait_s, timer, clock:
        Micro-batching knobs, passed to
        :class:`~repro.service.batcher.MicroBatcher` (``timer`` is the
        determinism seam — see that module's docstring).
    solve_batch_size:
        Lanes per :func:`run_sweep_batched` chunk inside one dispatch.
    backend:
        Sweep backend for the in-dispatch sweep (default serial — the
        dispatch already runs off the event loop in a worker thread).
    registry:
        Metrics registry; None uses the process-wide
        :func:`repro.obs.get_registry` at call time.
    """

    def __init__(
        self,
        *,
        cache_entries: int = 1024,
        coalesce: bool = True,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        solve_batch_size: int = 32,
        backend: str = "serial",
        timer: Any = asyncio.sleep,
        clock: Any = None,
        registry: Optional[Any] = None,
    ) -> None:
        self._registry = registry
        self.cache = ResultCache(cache_entries, registry=registry)
        self.coalesce = bool(coalesce)
        self.backend = backend
        self.solve_batch_size = int(solve_batch_size)
        kwargs: Dict[str, Any] = {}
        if clock is not None:
            kwargs["clock"] = clock
        self.batcher = MicroBatcher(
            self._dispatch,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            timer=timer,
            registry=registry,
            **kwargs,
        )
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._tasks: "set[asyncio.Task[None]]" = set()

    def _obs(self) -> Any:
        return self._registry if self._registry is not None else get_registry()

    # -- solving ------------------------------------------------------

    def _solve_batch(self, requests: List[Tuple[str, Mapping[str, Any]]]) -> List[Any]:
        """Worker-thread evaluation of one dispatched batch.

        Lanes are deduplicated by digest (defense in depth — coalescing
        normally keeps duplicates out of the queue; with coalescing off
        every lane is solved, which is what the baseline measures), then
        run as one batched sweep. Failures come back as :class:`_Failure`
        lane markers, never exceptions, so one bad lane cannot reject its
        batch neighbours.
        """
        obs = self._obs()
        if self.coalesce:
            order: List[str] = []
            unique: Dict[str, Mapping[str, Any]] = {}
            for digest, normalized in requests:
                if digest not in unique:
                    unique[digest] = normalized
                    order.append(digest)
            lanes = [(digest, unique[digest]) for digest in order]
        else:
            lanes = list(requests)
        cases = [
            SweepCase(name=f"req_{i:04d}_{digest[:12]}", params={"request": normalized})
            for i, (digest, normalized) in enumerate(lanes)
        ]
        obs.inc("service_solves_total", len(cases))
        outcomes = run_sweep_batched(
            BatchedSweepFn(serial=evaluate_service_case, batch=service_batch),
            cases,
            batch_size=self.solve_batch_size,
            backend=self.backend,
            on_error="capture",
        )
        by_digest: Dict[str, Any] = {}
        results: List[Any] = []
        for (digest, _), outcome in zip(lanes, outcomes):
            if outcome.error is None:
                value: Any = outcome.value
            else:
                obs.inc("service_errors_total")
                value = _Failure(outcome.error, outcome.error_traceback)
            by_digest[digest] = value
            results.append(value)
        if self.coalesce:
            return [by_digest[digest] for digest, _ in requests]
        return results

    async def _dispatch(self, items: List[Tuple[str, Mapping[str, Any]]]) -> List[Any]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._solve_batch, list(items))

    async def _resolve(
        self,
        digest: str,
        normalized: Mapping[str, Any],
        future: "asyncio.Future[Any]",
    ) -> None:
        """Own one digest's solve: submit, cache, resolve the shared future."""
        try:
            value = await self.batcher.submit((digest, normalized))
        except Exception as exc:  # noqa: BLE001 - surfaced to every waiter
            self._obs().inc("service_errors_total")
            if not future.done():
                future.set_exception(
                    ServiceEvaluationError(f"dispatch failed: {exc!r}")
                )
            return
        finally:
            if self._inflight.get(digest) is future:
                del self._inflight[digest]
        if isinstance(value, _Failure):
            if not future.done():
                future.set_exception(
                    ServiceEvaluationError(value.error, value.traceback)
                )
            return
        self.cache.put(digest, value)
        if not future.done():
            future.set_result(value)

    # -- public API ---------------------------------------------------

    async def simulate(
        self, payload: Mapping[str, Any], timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Serve one simulation request.

        Returns the response envelope ``{"digest", "cached", "result"}``
        where ``result`` is the serial-oracle record — byte-identical
        canonical JSON whichever path (cache, coalesced join, batched or
        serial solve) produced it. Raises
        :class:`~repro.service.requests.ServiceRequestError` on a
        malformed payload, :class:`ServiceEvaluationError` when the
        simulation itself fails, and :class:`asyncio.TimeoutError` past
        ``timeout_s`` (the solve keeps running and lands in the cache).
        """
        normalized = normalize_request(payload)
        digest = request_digest(normalized)
        obs = self._obs()
        obs.inc("service_requests_total")
        obs.inc(f"service_requests_{normalized['level']}_total")
        cached = self.cache.get(digest)
        if cached is not None:
            obs.inc("service_cache_hits_total")
            return {"digest": digest, "cached": True, "result": cached}
        future = self._inflight.get(digest) if self.coalesce else None
        if future is None:
            obs.inc("service_cache_misses_total")
            future = asyncio.get_running_loop().create_future()
            future.add_done_callback(_retrieve)
            if self.coalesce:
                self._inflight[digest] = future
            task = asyncio.get_running_loop().create_task(
                self._resolve(digest, normalized, future)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            was_cached = False
        else:
            obs.inc("service_cache_hits_total")
            obs.inc("service_coalesced_total")
            was_cached = True
        wait = asyncio.shield(future)
        if timeout_s is not None:
            result = await asyncio.wait_for(wait, timeout_s)
        else:
            result = await wait
        return {"digest": digest, "cached": was_cached, "result": result}

    async def sweep(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Serve a sweep request: many scenarios through the same machinery.

        Two payload forms: ``{"scenarios": [request, ...]}`` runs an
        explicit list; ``{"seed": int, "n_scenarios": int, "levels":
        [...]?}`` generates the deterministic fuzz stream of
        :func:`repro.verify.fuzz.generate_scenarios` and runs that.
        Scenarios are served concurrently, so duplicates inside one sweep
        collapse through the cache and coalescing layers like any other
        traffic. Per-scenario failures are reported in-place as
        ``{"digest", "error"}`` entries; the sweep itself still succeeds.
        """
        if not isinstance(payload, Mapping):
            raise ServiceRequestError("sweep payload must be an object")
        self._obs().inc("service_sweeps_total")
        if "scenarios" in payload:
            unknown = set(payload) - {"scenarios"}
            if unknown:
                raise ServiceRequestError(
                    f"sweep has unknown keys {sorted(unknown)}"
                )
            raw = payload["scenarios"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise ServiceRequestError("'scenarios' must be a list")
            requests = list(raw)
        else:
            unknown = set(payload) - {"seed", "n_scenarios", "levels"}
            if unknown:
                raise ServiceRequestError(
                    f"sweep has unknown keys {sorted(unknown)}"
                )
            try:
                seed = int(payload["seed"])
                n_scenarios = int(payload["n_scenarios"])
            except (KeyError, TypeError, ValueError):
                raise ServiceRequestError(
                    "generator sweeps need integer 'seed' and 'n_scenarios'"
                ) from None
            if n_scenarios < 0:
                raise ServiceRequestError("'n_scenarios' cannot be negative")
            levels = payload.get("levels", ("module", "rack", "facility"))
            try:
                scenarios = generate_scenarios(seed, n_scenarios, tuple(levels))
            except ValueError as exc:
                raise ServiceRequestError(str(exc)) from None
            requests = [
                {k: v for k, v in s.to_dict().items() if k != "index"}
                for s in scenarios
            ]
        if len(requests) > MAX_SWEEP_SCENARIOS:
            raise ServiceRequestError(
                f"at most {MAX_SWEEP_SCENARIOS} scenarios per sweep, "
                f"got {len(requests)}"
            )
        # Validate everything up front: a malformed scenario fails the
        # whole sweep before any solve starts.
        digests = [request_digest(normalize_request(r)) for r in requests]
        outcomes = await asyncio.gather(
            *(self.simulate(r) for r in requests), return_exceptions=True
        )
        results: List[Dict[str, Any]] = []
        for digest, outcome in zip(digests, outcomes):
            if isinstance(outcome, BaseException):
                if not isinstance(outcome, ServiceEvaluationError):
                    raise outcome
                results.append({"digest": digest, "error": outcome.error})
            else:
                results.append(outcome)
        return {"count": len(results), "results": results}

    # -- lifecycle / introspection ------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Queue, in-flight and cache occupancy, for health endpoints."""
        return {
            "queue_depth": self.batcher.queue_depth,
            "dispatches_in_flight": self.batcher.dispatches_in_flight,
            "inflight_digests": len(self._inflight),
            "cache": self.cache.stats(),
        }

    async def close(self) -> None:
        """Flush pending windows and wait for every solve to finish."""
        await self.batcher.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
