"""Digest-keyed LRU result cache for the simulation gateway.

Entries are keyed by the canonical-JSON SHA-256 request digest
(:func:`repro.service.requests.request_digest`), so two requests hit the
same entry exactly when they describe the same physics. Values are the
serial-oracle result records — plain dicts the gateway returns verbatim,
which is what makes a cached response byte-identical to a solved one.

The cache is a bounded LRU: ``max_entries`` caps the resident set, a
read refreshes recency, and inserting past the bound evicts the least
recently used entry. ``max_entries=0`` disables caching entirely (every
lookup misses, nothing is stored) — the configuration the throughput
benchmark uses as its baseline. Only *successful* results are ever
stored; the gateway never caches errors, so a transient failure cannot
poison the key for later callers.

A :class:`threading.Lock` guards the map: the gateway's event loop reads
it, but results are inserted from solver threads and operators may
inspect :meth:`stats` from anywhere. Metrics: evictions count into
``service_cache_evictions_total`` and the resident size is mirrored to
the ``service_cache_size`` gauge; hit/miss accounting lives in the
gateway, which also credits coalesced joins (see
:mod:`repro.service.engine`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.obs import get_registry

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded, thread-safe, digest-keyed LRU cache."""

    def __init__(self, max_entries: int = 1024, registry: Optional[Any] = None):
        if max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._registry = registry

    def _obs(self) -> Any:
        return self._registry if self._registry is not None else get_registry()

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[Any]:
        """The cached value for ``digest``, refreshing recency; else None."""
        if not self.enabled:
            return None
        with self._lock:
            value = self._entries.get(digest)
            if value is not None:
                self._entries.move_to_end(digest)
            return value

    def put(self, digest: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        if not self.enabled or value is None:
            return
        evicted = 0
        with self._lock:
            self._entries[digest] = value
            self._entries.move_to_end(digest)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            size = len(self._entries)
        obs = self._obs()
        if evicted:
            obs.inc("service_cache_evictions_total", evicted)
        obs.set_gauge("service_cache_size", size)

    def clear(self) -> None:
        """Drop every entry (the size gauge tracks)."""
        with self._lock:
            self._entries.clear()
        self._obs().set_gauge("service_cache_size", 0)

    def stats(self) -> Dict[str, int]:
        """Resident size and bound, for health endpoints."""
        with self._lock:
            return {"entries": len(self._entries), "max_entries": self.max_entries}
