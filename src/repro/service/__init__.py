"""Simulation-as-a-service: the async batching gateway.

The codebase's serving surface (ROADMAP item 2): module/rack/facility
runs and sweeps behind an async API, with

- a **result cache** keyed by the canonical-JSON SHA-256 scenario digest
  (:mod:`repro.service.requests` / :mod:`repro.service.cache`) so
  identical scenarios cost one solve,
- **single-flight coalescing** and a **micro-batching queue**
  (:mod:`repro.service.batcher`) feeding concurrent misses into the
  structure-of-arrays engines via
  :func:`~repro.sweep.batched.run_sweep_batched`,
- a transport-agnostic asyncio core
  (:class:`~repro.service.engine.SimulationGateway`), a thin ASGI
  adapter (:func:`~repro.service.asgi.create_app`) and a stdlib HTTP
  bridge (:mod:`repro.service.http`).

See ``docs/SERVICE.md`` for the API schema, batching/caching semantics
and the ops runbook; ``scripts/run_service.py`` serves and smoke-tests
the gateway from the command line.
"""

from repro.service.batcher import ManualTimer, MicroBatcher
from repro.service.cache import ResultCache
from repro.service.engine import ServiceEvaluationError, SimulationGateway
from repro.service.asgi import create_app
from repro.service.requests import (
    ServiceRequestError,
    evaluate_request,
    normalize_request,
    request_digest,
    request_scenario,
)

__all__ = [
    "ManualTimer",
    "MicroBatcher",
    "ResultCache",
    "ServiceEvaluationError",
    "ServiceRequestError",
    "SimulationGateway",
    "create_app",
    "evaluate_request",
    "normalize_request",
    "request_digest",
    "request_scenario",
]
