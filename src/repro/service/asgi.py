"""Thin ASGI adapter over the simulation gateway.

:func:`create_app` wraps a
:class:`~repro.service.engine.SimulationGateway` in a framework-free
ASGI 3 application — any ASGI server (uvicorn, hypercorn, the bundled
:mod:`repro.service.http` stdlib bridge) can serve it. Routes:

- ``POST /simulate`` — one request payload, returns the response
  envelope ``{"digest", "cached", "result"}``.
- ``POST /sweep`` — a scenario list or seeded generator spec, returns
  ``{"count", "results"}``.
- ``GET /healthz`` — liveness plus queue/cache occupancy.
- ``GET /metrics`` — Prometheus text exposition of the current metrics
  registry (:func:`repro.obs.export.to_prometheus`).

Every JSON body the adapter emits is canonical (sorted keys, compact
separators, trailing newline), so a simulation response is byte-stable
end to end: the ``result`` object inside the envelope is exactly the
serial oracle's canonical JSON whichever internal path produced it.

Status mapping: malformed payloads (schema violations, invalid JSON)
are 400 with ``{"error": ...}``; a valid request whose simulation fails
is 500; unknown paths 404; wrong methods 405.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple

from repro.obs import get_registry
from repro.obs.export import to_prometheus
from repro.service.engine import ServiceEvaluationError, SimulationGateway
from repro.service.requests import ServiceRequestError
from repro.verify.fuzz import canonical_json

__all__ = ["create_app"]

_JSON = [(b"content-type", b"application/json; charset=utf-8")]
_TEXT = [(b"content-type", b"text/plain; version=0.0.4; charset=utf-8")]


async def _read_body(receive: Callable) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover - disconnect
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


async def _respond(send: Callable, status: int, body: bytes, headers) -> None:
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": list(headers)
            + [(b"content-length", str(len(body)).encode("ascii"))],
        }
    )
    await send({"type": "http.response.body", "body": body})


async def _respond_json(send: Callable, status: int, payload: Any) -> None:
    await _respond(
        send, status, (canonical_json(payload) + "\n").encode("utf-8"), _JSON
    )


def create_app(gateway: SimulationGateway) -> Callable:
    """Build the ASGI application serving ``gateway``."""

    async def handle(
        method: str, path: str, body: bytes, send: Callable
    ) -> None:
        if path == "/healthz":
            if method != "GET":
                await _respond_json(send, 405, {"error": "method not allowed"})
                return
            await _respond_json(
                send, 200, {"status": "ok", **gateway.stats()}
            )
            return
        if path == "/metrics":
            if method != "GET":
                await _respond_json(send, 405, {"error": "method not allowed"})
                return
            registry = (
                gateway._registry
                if gateway._registry is not None
                else get_registry()
            )
            await _respond(
                send, 200, to_prometheus(registry).encode("utf-8"), _TEXT
            )
            return
        if path in ("/simulate", "/sweep"):
            if method != "POST":
                await _respond_json(send, 405, {"error": "method not allowed"})
                return
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                await _respond_json(
                    send, 400, {"error": f"invalid JSON body: {exc}"}
                )
                return
            try:
                if path == "/simulate":
                    envelope = await gateway.simulate(payload)
                else:
                    envelope = await gateway.sweep(payload)
            except ServiceRequestError as exc:
                await _respond_json(send, 400, {"error": str(exc)})
                return
            except ServiceEvaluationError as exc:
                await _respond_json(send, 500, {"error": exc.error})
                return
            await _respond_json(send, 200, envelope)
            return
        await _respond_json(send, 404, {"error": f"no route for {path}"})

    async def app(scope: Dict[str, Any], receive: Callable, send: Callable) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await gateway.close()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        body = await _read_body(receive)
        await handle(scope["method"], scope["path"], body, send)

    return app
