"""Paper-vs-measured comparison tables.

Every benchmark regenerates the rows the paper reports and prints them in
a fixed format::

    claim                                   paper        measured     ok
    ------------------------------------------------------------------
    Taygeta overheat over 25 C room [K]     47.9         43.1         yes

The same tables are written into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

Number = Union[int, float]


@dataclass(frozen=True)
class Row:
    """One claim: the paper's value, the measured value, the verdict."""

    claim: str
    paper: str
    measured: str
    ok: bool


@dataclass
class ComparisonTable:
    """A named collection of paper-vs-measured rows."""

    title: str
    rows: List[Row] = field(default_factory=list)

    def add(
        self,
        claim: str,
        paper_value: Number,
        measured_value: Number,
        rel_tol: Optional[float] = None,
        lo: Optional[Number] = None,
        hi: Optional[Number] = None,
        unit: str = "",
    ) -> None:
        """Add a numeric row.

        Pass either ``rel_tol`` (measured within a relative tolerance of
        the paper value) or ``lo``/``hi`` (measured within a band the paper
        states, e.g. "+11...15 C").
        """
        if rel_tol is not None:
            ok = abs(measured_value - paper_value) <= rel_tol * abs(paper_value)
            paper_text = f"{paper_value:g}{unit} ±{rel_tol:.0%}"
        elif lo is not None or hi is not None:
            lo_v = -float("inf") if lo is None else lo
            hi_v = float("inf") if hi is None else hi
            ok = lo_v <= measured_value <= hi_v
            paper_text = f"[{lo if lo is not None else ''}..{hi if hi is not None else ''}]{unit}"
        else:
            raise ValueError("pass rel_tol or lo/hi")
        self.rows.append(
            Row(claim=claim, paper=paper_text, measured=f"{measured_value:g}{unit}", ok=ok)
        )

    def add_bool(self, claim: str, paper_value: str, ok: bool) -> None:
        """Add a qualitative row (holds / does not hold)."""
        self.rows.append(
            Row(claim=claim, paper=paper_value, measured="holds" if ok else "FAILS", ok=ok)
        )

    @property
    def all_ok(self) -> bool:
        """Whether every row reproduced."""
        if not self.rows:
            raise ValueError(f"{self.title}: empty table")
        return all(r.ok for r in self.rows)

    def failures(self) -> List[Row]:
        """Rows that did not reproduce."""
        return [r for r in self.rows if not r.ok]

    def render(self) -> str:
        """Fixed-width text rendering."""
        claim_w = max([len(r.claim) for r in self.rows] + [len("claim")])
        paper_w = max([len(r.paper) for r in self.rows] + [len("paper")])
        meas_w = max([len(r.measured) for r in self.rows] + [len("measured")])
        lines = [self.title, "=" * len(self.title)]
        header = f"{'claim':<{claim_w}}  {'paper':<{paper_w}}  {'measured':<{meas_w}}  ok"
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            lines.append(
                f"{r.claim:<{claim_w}}  {r.paper:<{paper_w}}  {r.measured:<{meas_w}}  "
                + ("yes" if r.ok else "NO")
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmark output)."""
        print()
        print(self.render())


__all__ = ["ComparisonTable", "Row"]
