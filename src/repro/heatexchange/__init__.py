"""Heat-exchanger and chiller substrate.

The SKAT CM's heat-exchange section couples the oil loop to the rack's
chilled-water loop through a plate heat exchanger ("the most suitable design
of the heat exchanger is a plate-type one designed for cooling mineral oil
in hydraulic systems of industrial equipment", Section 2); the rack loop is
closed by an industrial chiller. This package models both.

- :mod:`repro.heatexchange.entu` — effectiveness-NTU relations.
- :mod:`repro.heatexchange.plate` — chevron plate heat exchanger.
- :mod:`repro.heatexchange.chiller` — vapor-compression chiller.
"""

from repro.heatexchange.entu import (
    FlowArrangement,
    effectiveness,
    ntu_counterflow_from_effectiveness,
)
from repro.heatexchange.plate import HxOperatingPoint, PlateHeatExchanger
from repro.heatexchange.chiller import Chiller, ChillerState
from repro.heatexchange.fouling import FoulingModel, fouled_exchanger_effect

__all__ = [
    "Chiller",
    "ChillerState",
    "FlowArrangement",
    "FoulingModel",
    "HxOperatingPoint",
    "PlateHeatExchanger",
    "effectiveness",
    "fouled_exchanger_effect",
    "ntu_counterflow_from_effectiveness",
]
