"""Industrial chiller model.

The rack's primary heat-transfer agent (chilled water) is cooled by "an
industrial chiller [which] can be placed outside the server room and can be
connected to the reconfigurable computational modules by means of a
stationary system of engineering services" (Section 3). The model is a
vapor-compression machine characterised by a supply setpoint, a rated
capacity and a Carnot-fraction efficiency — enough to close the rack energy
balance and account PUE-style overheads in the efficiency benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fluids.properties import CELSIUS_TO_KELVIN


@dataclass(frozen=True)
class ChillerState:
    """A resolved chiller operating point."""

    load_w: float
    supply_temperature_c: float
    cop: float
    electrical_power_w: float
    overloaded: bool


@dataclass(frozen=True)
class Chiller:
    """A setpoint-controlled water chiller.

    Parameters
    ----------
    setpoint_c:
        Chilled-water supply temperature the controller holds.
    capacity_w:
        Rated cooling capacity at the setpoint.
    condenser_temperature_c:
        Heat-rejection temperature (outdoor ambient plus condenser
        approach).
    carnot_fraction:
        Fraction of the Carnot COP the real machine achieves (0.3-0.5
        typical for industrial chillers).
    water_capacity_rate_w_k:
        Capacity rate of the chilled-water loop, used to compute how far
        the supply temperature rises when the load exceeds capacity.
    """

    setpoint_c: float = 20.0
    capacity_w: float = 50.0e3
    condenser_temperature_c: float = 35.0
    carnot_fraction: float = 0.45
    water_capacity_rate_w_k: float = 4000.0

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.carnot_fraction <= 1.0:
            raise ValueError("Carnot fraction must be in (0, 1]")
        if self.condenser_temperature_c <= self.setpoint_c:
            raise ValueError("condenser must be hotter than the setpoint")
        if self.water_capacity_rate_w_k <= 0:
            raise ValueError("water capacity rate must be positive")

    def cop(self, supply_temperature_c: float) -> float:
        """Coefficient of performance at the given supply temperature."""
        t_cold_k = supply_temperature_c + CELSIUS_TO_KELVIN
        t_hot_k = self.condenser_temperature_c + CELSIUS_TO_KELVIN
        carnot = t_cold_k / (t_hot_k - t_cold_k)
        return self.carnot_fraction * carnot

    def operate(self, load_w: float) -> ChillerState:
        """Resolve the chiller against a cooling load.

        Below capacity the supply holds the setpoint; above capacity the
        excess heat rides through and the supply temperature floats up by
        ``excess / C_water`` — the overload regime the SKAT cooling-reserve
        analysis must show is never entered.
        """
        if load_w < 0:
            raise ValueError("load must be non-negative")
        overloaded = load_w > self.capacity_w
        if overloaded:
            excess = load_w - self.capacity_w
            supply = self.setpoint_c + excess / self.water_capacity_rate_w_k
            removed = self.capacity_w
        else:
            supply = self.setpoint_c
            removed = load_w
        cop = self.cop(supply)
        return ChillerState(
            load_w=load_w,
            supply_temperature_c=supply,
            cop=cop,
            electrical_power_w=removed / cop,
            overloaded=overloaded,
        )


__all__ = ["Chiller", "ChillerState"]
