"""Heat-exchanger fouling over service time.

Mineral-oil loops foul their exchangers slowly — varnish and particulate
build a resistive film on the plate surfaces. The paper's design margin
("the designed immersion liquid cooling system has a reserve") is exactly
what absorbs this drift between services; this model quantifies how much
reserve a fouling allowance consumes and when a clean-in-place service is
due.

Standard asymptotic fouling model: the fouling resistance grows as
``R_f(t) = R_f_inf (1 - exp(-t / tau))`` (Kern-Seaton).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.heatexchange.plate import PlateHeatExchanger


@dataclass(frozen=True)
class FoulingModel:
    """Kern-Seaton asymptotic fouling on one exchanger side.

    Parameters
    ----------
    asymptotic_resistance_m2k_w:
        Fully fouled film resistance (oil side of a plate HX: 2-5e-4
        m^2 K/W typical).
    timescale_h:
        E-folding service time.
    """

    asymptotic_resistance_m2k_w: float = 3.0e-4
    timescale_h: float = 15000.0

    def __post_init__(self) -> None:
        if self.asymptotic_resistance_m2k_w < 0:
            raise ValueError("fouling resistance must be non-negative")
        if self.timescale_h <= 0:
            raise ValueError("timescale must be positive")

    def resistance_m2k_w(self, hours: float) -> float:
        """Fouling film resistance after a service time."""
        if hours < 0:
            raise ValueError("service time must be non-negative")
        return self.asymptotic_resistance_m2k_w * (
            1.0 - math.exp(-hours / self.timescale_h)
        )

    def fouled_u(self, clean_u_w_m2k: float, hours: float) -> float:
        """Overall coefficient with the fouling film added in series."""
        if clean_u_w_m2k <= 0:
            raise ValueError("clean U must be positive")
        return 1.0 / (1.0 / clean_u_w_m2k + self.resistance_m2k_w(hours))

    def ua_degradation_fraction(self, clean_u_w_m2k: float, hours: float) -> float:
        """Fractional UA loss after a service time (0 = clean)."""
        return 1.0 - self.fouled_u(clean_u_w_m2k, hours) / clean_u_w_m2k

    def hours_to_degradation(self, clean_u_w_m2k: float, fraction: float) -> float:
        """Service time at which the UA loss reaches ``fraction``.

        This is the clean-in-place interval for a maintenance plan.
        Returns ``math.inf`` when the asymptotic fouling never costs that
        much (the exchanger is oversized against it).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        # UA loss at full fouling:
        worst = 1.0 - 1.0 / (1.0 + clean_u_w_m2k * self.asymptotic_resistance_m2k_w)
        if fraction >= worst:
            return math.inf
        # Invert: fraction = 1 - 1/(1 + U * R_f(t)).
        target_rf = (1.0 / (1.0 - fraction) - 1.0) / clean_u_w_m2k
        ratio = target_rf / self.asymptotic_resistance_m2k_w
        return -self.timescale_h * math.log(1.0 - ratio)


def fouled_exchanger_effect(
    hx: PlateHeatExchanger,
    fouling: FoulingModel,
    hours: float,
    clean_u_w_m2k: float,
) -> dict:
    """Summary of a fouled exchanger's state for reports.

    Returns keys ``clean_u``, ``fouled_u``, ``ua_loss_fraction``,
    ``equivalent_extra_plates`` — the last being how many extra plates the
    clean design would need to match the fouled duty (a sizing-margin
    translation).
    """
    fouled_u = fouling.fouled_u(clean_u_w_m2k, hours)
    loss = fouling.ua_degradation_fraction(clean_u_w_m2k, hours)
    extra_plates = int(math.ceil(hx.n_plates * loss / max(1.0 - loss, 1e-9)))
    return {
        "clean_u": clean_u_w_m2k,
        "fouled_u": fouled_u,
        "ua_loss_fraction": loss,
        "equivalent_extra_plates": extra_plates,
    }


__all__ = ["FoulingModel", "fouled_exchanger_effect"]
