"""Effectiveness-NTU relations for two-stream heat exchangers.

The standard Kays & London closed forms. Effectiveness is the ratio of
actual heat transfer to the thermodynamic maximum
``q_max = C_min (T_hot,in - T_cold,in)``; NTU is ``UA / C_min``; ``c_r`` is
the capacity-rate ratio ``C_min / C_max``.
"""

from __future__ import annotations

import math
from enum import Enum


class FlowArrangement(Enum):
    """Supported two-stream flow arrangements."""

    COUNTERFLOW = "counterflow"
    PARALLEL = "parallel"
    CROSSFLOW_BOTH_UNMIXED = "crossflow_both_unmixed"


def _check(ntu: float, c_r: float) -> None:
    if ntu < 0:
        raise ValueError("NTU must be non-negative")
    if not 0.0 <= c_r <= 1.0:
        raise ValueError("capacity ratio must be within [0, 1]")


def effectiveness_counterflow(ntu: float, c_r: float) -> float:
    """Counterflow effectiveness (the plate-HX arrangement in the CMs)."""
    _check(ntu, c_r)
    if ntu == 0.0:
        return 0.0
    if c_r == 0.0:
        return 1.0 - math.exp(-ntu)
    if abs(c_r - 1.0) < 1e-12:
        return ntu / (1.0 + ntu)
    # Stable form near c_r -> 1: with m = expm1(-ntu (1 - c_r)),
    # (1 - e)/(1 - c_r e) = (-m) / ((1 - c_r) - c_r m), avoiding the
    # catastrophic cancellation of 1 - exp(-small).
    m = math.expm1(-ntu * (1.0 - c_r))
    return -m / ((1.0 - c_r) - c_r * m)


def effectiveness_parallel(ntu: float, c_r: float) -> float:
    """Parallel-flow effectiveness."""
    _check(ntu, c_r)
    if ntu == 0.0:
        return 0.0
    return (1.0 - math.exp(-ntu * (1.0 + c_r))) / (1.0 + c_r)


def effectiveness_crossflow_both_unmixed(ntu: float, c_r: float) -> float:
    """Crossflow with both streams unmixed (approximate closed form)."""
    _check(ntu, c_r)
    if ntu == 0.0:
        return 0.0
    if c_r < 1e-12:
        # The c_r -> 0 limit of the closed form is 1 - exp(-ntu); taking it
        # explicitly also avoids inf * 0 for subnormal capacity ratios.
        return 1.0 - math.exp(-ntu)
    return 1.0 - math.exp(
        (ntu ** 0.22 / c_r) * math.expm1(-c_r * ntu ** 0.78)
    )


def effectiveness(ntu: float, c_r: float, arrangement: FlowArrangement) -> float:
    """Dispatch to the effectiveness relation for the given arrangement."""
    if arrangement is FlowArrangement.COUNTERFLOW:
        return effectiveness_counterflow(ntu, c_r)
    if arrangement is FlowArrangement.PARALLEL:
        return effectiveness_parallel(ntu, c_r)
    if arrangement is FlowArrangement.CROSSFLOW_BOTH_UNMIXED:
        return effectiveness_crossflow_both_unmixed(ntu, c_r)
    raise ValueError(f"unsupported arrangement {arrangement!r}")


def ntu_counterflow_from_effectiveness(eps: float, c_r: float) -> float:
    """Invert the counterflow relation: the NTU needed for effectiveness ``eps``.

    Used when sizing the CM plate exchanger to hold the oil at the paper's
    30-degree operating point.
    """
    if not 0.0 <= eps < 1.0:
        raise ValueError("effectiveness must be within [0, 1)")
    if not 0.0 <= c_r <= 1.0:
        raise ValueError("capacity ratio must be within [0, 1]")
    if eps == 0.0:
        return 0.0
    if c_r == 0.0:
        return -math.log(1.0 - eps)
    if abs(c_r - 1.0) < 1e-12:
        return eps / (1.0 - eps)
    return math.log((1.0 - c_r * eps) / (1.0 - eps)) / (1.0 - c_r)


__all__ = [
    "FlowArrangement",
    "effectiveness",
    "effectiveness_counterflow",
    "effectiveness_crossflow_both_unmixed",
    "effectiveness_parallel",
    "ntu_counterflow_from_effectiveness",
]
