"""Chevron plate heat exchanger.

The paper selects "a plate-type [heat exchanger] designed for cooling
mineral oil in hydraulic systems of industrial equipment" for the CM's
heat-exchange section. This model resolves both film coefficients from the
channel flow conditions, forms UA, and applies the counterflow
effectiveness-NTU solution; it also exports lumped pressure-drop
coefficients so the same exchanger can be inserted into a hydraulic
network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fluids.properties import Fluid
from repro.heatexchange.entu import effectiveness_counterflow
from repro.hydraulics.elements import HeatExchangerPassage
from repro.hydraulics.friction import friction_factor


@dataclass(frozen=True)
class HxOperatingPoint:
    """A resolved heat-exchanger operating point."""

    q_w: float
    hot_out_c: float
    cold_out_c: float
    effectiveness: float
    ntu: float
    ua_w_k: float
    u_w_m2k: float
    c_min_w_k: float
    c_max_w_k: float


@dataclass(frozen=True)
class PlateHeatExchanger:
    """A gasketed chevron-plate heat exchanger.

    Geometry is the usual industrial-plate stack: ``n_plates`` thermal
    plates create ``n_plates + 1`` channels, alternating hot and cold.

    Parameters
    ----------
    n_plates:
        Number of thermal plates.
    plate_width_m, plate_height_m:
        Effective (gasket-bounded) plate dimensions.
    channel_gap_m:
        Plate-to-plate gap forming each flow channel.
    plate_thickness_m:
        Metal thickness.
    plate_conductivity_w_mk:
        Plate metal conductivity (stainless steel by default).
    chevron_enhancement:
        Multiplier on the smooth-duct Nusselt number from the chevron
        corrugation (1.5-3 typical; also multiplies friction).
    port_loss_k:
        Minor-loss coefficient charged on the port velocity per pass.
    port_diameter_m:
        Port diameter for the port-loss term.
    """

    n_plates: int
    plate_width_m: float
    plate_height_m: float
    channel_gap_m: float = 3.0e-3
    plate_thickness_m: float = 0.5e-3
    plate_conductivity_w_mk: float = 16.0
    chevron_enhancement: float = 2.5
    port_loss_k: float = 1.5
    port_diameter_m: float = 0.03

    def __post_init__(self) -> None:
        if self.n_plates < 3:
            raise ValueError("a plate exchanger needs at least 3 thermal plates")
        if min(self.plate_width_m, self.plate_height_m, self.channel_gap_m) <= 0:
            raise ValueError("plate dimensions must be positive")
        if self.chevron_enhancement < 1.0:
            raise ValueError("chevron enhancement cannot be below a smooth duct")

    @property
    def channels_per_side(self) -> int:
        """Channels carrying each stream (alternating stack)."""
        return (self.n_plates + 1) // 2

    @property
    def transfer_area_m2(self) -> float:
        """Total heat-transfer area (every thermal plate works once)."""
        return self.n_plates * self.plate_width_m * self.plate_height_m

    @property
    def hydraulic_diameter_m(self) -> float:
        """Channel hydraulic diameter, ``2 * gap`` for wide channels."""
        return 2.0 * self.channel_gap_m

    def channel_velocity_m_s(self, flow_m3_s: float) -> float:
        """Mean channel velocity for one stream's total flow."""
        area = self.channels_per_side * self.channel_gap_m * self.plate_width_m
        return flow_m3_s / area

    def film_coefficient(
        self, flow_m3_s: float, fluid: Fluid, temperature_c: float
    ) -> float:
        """Stream-side film coefficient, W/(m^2 K).

        Chevron-plate channels are never smooth ducts: the corrugations
        trip the flow at Reynolds numbers of a few hundred, so the standard
        plate correlation ``Nu = C Re^0.7 Pr^(1/3)`` (Muley-Manglik class,
        C ~ 0.28 x enhancement/2.5 for a 60-degree chevron) applies from
        Re ~ 10 upward; below that the fully developed laminar floor of
        3.66 takes over.
        """
        if flow_m3_s <= 0:
            raise ValueError("flow must be positive")
        velocity = self.channel_velocity_m_s(flow_m3_s)
        dh = self.hydraulic_diameter_m
        re = velocity * dh / fluid.kinematic_viscosity(temperature_c)
        pr = fluid.prandtl(temperature_c)
        c = 0.28 * self.chevron_enhancement / 2.5
        nu = max(c * re ** 0.7 * pr ** (1.0 / 3.0), 3.66)
        return nu * fluid.conductivity(temperature_c) / dh

    def overall_u(
        self,
        hot_flow_m3_s: float,
        hot_fluid: Fluid,
        hot_temperature_c: float,
        cold_flow_m3_s: float,
        cold_fluid: Fluid,
        cold_temperature_c: float,
    ) -> float:
        """Overall heat-transfer coefficient, W/(m^2 K)."""
        h_hot = self.film_coefficient(hot_flow_m3_s, hot_fluid, hot_temperature_c)
        h_cold = self.film_coefficient(cold_flow_m3_s, cold_fluid, cold_temperature_c)
        wall = self.plate_thickness_m / self.plate_conductivity_w_mk
        return 1.0 / (1.0 / h_hot + wall + 1.0 / h_cold)

    def solve(
        self,
        hot_fluid: Fluid,
        hot_in_c: float,
        hot_flow_m3_s: float,
        cold_fluid: Fluid,
        cold_in_c: float,
        cold_flow_m3_s: float,
    ) -> HxOperatingPoint:
        """Counterflow effectiveness-NTU solution for the operating point.

        Film properties are evaluated at the inlet temperatures (adequate
        for the narrow temperature spans of the CM loops).
        """
        if hot_in_c < cold_in_c:
            raise ValueError("hot inlet must not be colder than cold inlet")
        c_hot = hot_fluid.heat_capacity_rate(hot_flow_m3_s, hot_in_c)
        c_cold = cold_fluid.heat_capacity_rate(cold_flow_m3_s, cold_in_c)
        c_min, c_max = min(c_hot, c_cold), max(c_hot, c_cold)
        u = self.overall_u(
            hot_flow_m3_s, hot_fluid, hot_in_c, cold_flow_m3_s, cold_fluid, cold_in_c
        )
        ua = u * self.transfer_area_m2
        ntu = ua / c_min
        eps = effectiveness_counterflow(ntu, c_min / c_max)
        q = eps * c_min * (hot_in_c - cold_in_c)
        return HxOperatingPoint(
            q_w=q,
            hot_out_c=hot_in_c - q / c_hot,
            cold_out_c=cold_in_c + q / c_cold,
            effectiveness=eps,
            ntu=ntu,
            ua_w_k=ua,
            u_w_m2k=u,
            c_min_w_k=c_min,
            c_max_w_k=c_max,
        )

    def pressure_drop_pa(
        self, flow_m3_s: float, fluid: Fluid, temperature_c: float
    ) -> float:
        """Stream-side pressure drop at the given flow, Pa."""
        if flow_m3_s < 0:
            raise ValueError("flow must be non-negative")
        if flow_m3_s == 0:
            return 0.0
        velocity = self.channel_velocity_m_s(flow_m3_s)
        dh = self.hydraulic_diameter_m
        re = velocity * dh / fluid.kinematic_viscosity(temperature_c)
        rho = fluid.density(temperature_c)
        f = self.chevron_enhancement * friction_factor(re)
        channel = f * (self.plate_height_m / dh) * rho * velocity ** 2 / 2.0
        port_area = math.pi * self.port_diameter_m ** 2 / 4.0
        port_velocity = flow_m3_s / port_area
        port = self.port_loss_k * rho * port_velocity ** 2 / 2.0
        return channel + port

    def as_passage(
        self, fluid: Fluid, temperature_c: float, design_flow_m3_s: float
    ) -> HeatExchangerPassage:
        """Fit a lumped linear+quadratic passage around the design flow.

        Two-point fit at 50 % and 100 % of the design flow, so the passage
        reproduces the true pressure drop well over the operating range the
        balancing experiments sweep.
        """
        if design_flow_m3_s <= 0:
            raise ValueError("design flow must be positive")
        q1, q2 = 0.5 * design_flow_m3_s, design_flow_m3_s
        dp1 = self.pressure_drop_pa(q1, fluid, temperature_c)
        dp2 = self.pressure_drop_pa(q2, fluid, temperature_c)
        # Solve dp = a q + b q^2 through the two points.
        b = (dp2 / q2 - dp1 / q1) / (q2 - q1)
        a = dp1 / q1 - b * q1
        return HeatExchangerPassage(
            r_linear_pa_per_m3_s=max(a, 0.0), r_quadratic_pa_per_m3_s2=max(b, 0.0)
        )


__all__ = ["HxOperatingPoint", "PlateHeatExchanger"]
