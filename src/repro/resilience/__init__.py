"""Resilience substrate: graceful degradation under injected faults.

The paper's operational claims are resilience claims — the open bath
tolerates servicing without shutdown, the Fig. 5 manifold passively keeps
CMs cooled when a loop is shut, and SKAT stays under the 65-70 C
reliability ceiling. This package supplies the machinery that *tests*
those claims closed-loop:

- :mod:`repro.resilience.voting` — median-of-N redundant-sensor voting
  with plausibility and NaN guards;
- :mod:`repro.resilience.retry` — bounded deterministic retry-with-backoff
  for solver convergence failures;
- :mod:`repro.resilience.campaign` — the seeded fault-injection campaign
  engine and its survivability report.

The supervisory state machine that consumes these lives with the rest of
the control subsystem in :mod:`repro.control.supervisor`.
"""

from repro.resilience.campaign import (
    KINDS,
    CampaignReport,
    FaultScenario,
    ScenarioReport,
    draw_scenarios,
    mc_model_from_campaign,
    run_campaign,
    single_fault_scenarios,
)
from repro.resilience.retry import RetryOutcome, retry_with_backoff
from repro.resilience.voting import VoteResult, median_vote

__all__ = [
    "CampaignReport",
    "FaultScenario",
    "KINDS",
    "RetryOutcome",
    "ScenarioReport",
    "VoteResult",
    "draw_scenarios",
    "mc_model_from_campaign",
    "median_vote",
    "retry_with_backoff",
    "run_campaign",
    "single_fault_scenarios",
]
