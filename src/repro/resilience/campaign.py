"""Seeded fault-injection campaigns and their survivability report.

A resilience claim is only as good as the fault space it was tested
against. This module turns the one-off failure drills of
:mod:`repro.reliability.failures` into *campaigns*: seeded, deterministic
batches of single- and compound-fault scenarios run in parallel over
:func:`repro.sweep.run_sweep`, each scored into a
:class:`ScenarioReport` (did the supervisor hold the junction, how fast
did it alarm and mitigate, how much performance did degraded mode cost)
and aggregated into a :class:`CampaignReport` whose JSON serialization is
byte-for-byte reproducible for a given seed — the property the CI smoke
job pins.

The campaign also closes the loop back to the reliability models:
:func:`mc_model_from_campaign` converts the observed mitigation behaviour
(what fraction of each fault class ended in a machine-stopping
SAFE_SHUTDOWN rather than a ride-through) into repair/stoppage charges
for :class:`repro.reliability.montecarlo.AvailabilitySimulator`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.reliability.availability import Component
from repro.reliability.failures import (
    FailureEvent,
    leak_event,
    loop_blockage_event,
    pump_stop_event,
    sensor_fault_event,
    tim_washout_drift,
)
from repro.obs import get_registry
from repro.reliability.montecarlo import AvailabilitySimulator, McComponent
from repro.sweep import (
    SERIAL_FALLBACK,
    BatchedSweepFn,
    SweepCase,
    run_sweep,
    run_sweep_batched,
    summarize_failures,
)

#: Every fault class the simulators understand; a campaign drawn with
#: default weights exercises all of them.
KINDS: Tuple[str, ...] = (
    "pump_stop",
    "loop_blockage",
    "leak",
    "tim_washout",
    "sensor_fault",
)

#: Default per-kind hazard rates for the Monte Carlo bridge, per hour
#: (order-of-magnitude engineering priors: pumps are the wear item,
#: sensors drift, leaks and washout are rare maintenance-induced events).
_DEFAULT_RATES_PER_HOUR: Dict[str, float] = {
    "pump_stop": 2.0e-5,
    "loop_blockage": 8.0e-6,
    "leak": 4.0e-6,
    "tim_washout": 2.0e-6,
    "sensor_fault": 1.5e-5,
}

#: Base mean-time-to-repair per kind, hours, assuming the fault was ridden
#: through (hot-swap the pump, re-open the valve, recalibrate the sensor).
_DEFAULT_REPAIR_HOURS: Dict[str, float] = {
    "pump_stop": 4.0,
    "loop_blockage": 2.0,
    "leak": 8.0,
    "tim_washout": 12.0,
    "sensor_fault": 1.0,
}


@dataclass(frozen=True)
class FaultScenario:
    """A named bundle of failure events injected into one run."""

    name: str
    events: Tuple[FailureEvent, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.events:
            raise ValueError("scenario must carry at least one event")

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds involved, sorted."""
        return tuple(sorted({event.kind for event in self.events}))

    @property
    def first_fault_time_s(self) -> float:
        """Injection time of the earliest event."""
        return min(event.time_s for event in self.events)


def single_fault_scenarios(fault_time_s: float = 240.0) -> List[FaultScenario]:
    """The canonical one-scenario-per-kind set (deterministic, no RNG).

    Every fault class in :data:`KINDS` appears exactly once with a
    representative severe magnitude, so a campaign over this set proves
    the acceptance property "every failure kind has a supervisor
    response".
    """
    return [
        FaultScenario(
            name="pump_stop",
            events=(pump_stop_event(fault_time_s, "oil_pump", 0.0),),
        ),
        FaultScenario(
            name="loop_blockage",
            events=(loop_blockage_event(fault_time_s, "oil_loop", 0.3),),
        ),
        FaultScenario(
            name="leak",
            events=(leak_event(fault_time_s, "bath", 2.0e-5),),
        ),
        FaultScenario(
            name="tim_washout",
            events=(tim_washout_drift(fault_time_s, "fpga_hot", 4.0),),
        ),
        FaultScenario(
            name="sensor_fault",
            events=(sensor_fault_event(fault_time_s, "oil_temp_0", 25.0),),
        ),
    ]


def _draw_event(rng: np.random.Generator, kind: str, time_s: float) -> FailureEvent:
    if kind == "pump_stop":
        return pump_stop_event(time_s, "oil_pump", float(rng.uniform(0.0, 0.5)))
    if kind == "loop_blockage":
        return loop_blockage_event(time_s, "oil_loop", float(rng.uniform(0.0, 0.5)))
    if kind == "leak":
        return leak_event(time_s, "bath", float(rng.uniform(1.0e-6, 5.0e-5)))
    if kind == "tim_washout":
        return tim_washout_drift(time_s, "fpga_hot", float(rng.uniform(2.0, 6.0)))
    if kind == "sensor_fault":
        offset = float(rng.uniform(5.0, 30.0)) * (1.0 if rng.random() < 0.5 else -1.0)
        sensor = f"oil_temp_{int(rng.integers(0, 3))}"
        return sensor_fault_event(time_s, sensor, offset)
    raise ValueError(f"unknown fault kind {kind!r}")


def draw_scenarios(
    seed: int,
    n: int,
    compound_fraction: float = 0.25,
    dt_s: float = 5.0,
    min_time_s: float = 120.0,
    max_time_s: float = 600.0,
) -> List[FaultScenario]:
    """Draw ``n`` random scenarios from a seeded generator.

    All magnitudes stay inside the ranges the
    :mod:`repro.reliability.failures` factories validate; injection times
    land on the ``dt_s`` grid so a drawn scenario replays identically at
    the campaign's step size. A ``compound_fraction`` of the scenarios
    carry two faults of *different* kinds (the double-fault drills).
    """
    if n < 1:
        raise ValueError("need at least one scenario")
    if not 0.0 <= compound_fraction <= 1.0:
        raise ValueError("compound fraction must be within [0, 1]")
    if dt_s <= 0 or min_time_s < 0 or max_time_s <= min_time_s:
        raise ValueError("bad time parameters")
    rng = np.random.default_rng(seed)
    scenarios = []
    for i in range(n):
        compound = bool(rng.random() < compound_fraction)
        n_faults = 2 if compound else 1
        kinds = [str(k) for k in rng.choice(KINDS, size=n_faults, replace=False)]
        events = []
        for kind in kinds:
            raw = float(rng.uniform(min_time_s, max_time_s))
            time_s = round(raw / dt_s) * dt_s
            events.append(_draw_event(rng, kind, time_s))
        label = "+".join(kinds)
        scenarios.append(
            FaultScenario(name=f"s{i:03d}_{label}", events=tuple(events))
        )
    return scenarios


@dataclass(frozen=True)
class ScenarioReport:
    """Survivability score of one scenario run.

    ``survived`` means the junction never crossed the campaign limit;
    ``safe_shutdown`` that the supervisor latched SAFE_SHUTDOWN (the
    controlled way to lose). Acceptance: never both False with a bounded
    result — an unsupervised runaway fails both.
    """

    name: str
    kinds: Tuple[str, ...]
    ok: bool
    error: Optional[str]
    survived: bool
    safe_shutdown: bool
    final_state: Optional[str]
    peak_junction_c: float
    peak_oil_c: float
    time_to_alarm_s: Optional[float]
    time_to_mitigation_s: Optional[float]
    min_utilization: Optional[float]
    degraded_pflops: Optional[float]
    actions: Tuple[Tuple[float, str, str], ...] = ()

    @property
    def bounded(self) -> bool:
        """Survived outright, or lost in the controlled way."""
        return self.survived or self.safe_shutdown

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (floats rounded for stability)."""
        return {
            "name": self.name,
            "kinds": list(self.kinds),
            "ok": self.ok,
            "error": self.error,
            "survived": self.survived,
            "safe_shutdown": self.safe_shutdown,
            "final_state": self.final_state,
            "peak_junction_c": _round(self.peak_junction_c),
            "peak_oil_c": _round(self.peak_oil_c),
            "time_to_alarm_s": _round(self.time_to_alarm_s),
            "time_to_mitigation_s": _round(self.time_to_mitigation_s),
            "min_utilization": _round(self.min_utilization),
            "degraded_pflops": _round(self.degraded_pflops),
            "actions": [
                [_round(t), kind, detail] for t, kind, detail in self.actions
            ],
        }


def _round(value: Optional[float], digits: int = 6) -> Optional[float]:
    if value is None:
        return None
    return round(float(value), digits)


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate of one campaign; serializes byte-for-byte reproducibly."""

    scenarios: Tuple[ScenarioReport, ...]
    seed: Optional[int]
    duration_s: float
    dt_s: float
    junction_limit_c: float
    failures: Tuple[Dict[str, Any], ...] = ()

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def survived_fraction(self) -> float:
        """Fraction of scenarios that rode the fault through under limit."""
        if not self.scenarios:
            return 0.0
        return sum(1 for s in self.scenarios if s.survived) / len(self.scenarios)

    @property
    def safe_shutdown_fraction(self) -> float:
        """Fraction that ended in a supervisor-latched SAFE_SHUTDOWN."""
        if not self.scenarios:
            return 0.0
        return sum(1 for s in self.scenarios if s.safe_shutdown) / len(self.scenarios)

    @property
    def bounded_fraction(self) -> float:
        """Fraction that either survived or shut down safely."""
        if not self.scenarios:
            return 0.0
        return sum(1 for s in self.scenarios if s.bounded) / len(self.scenarios)

    @property
    def worst_peak_junction_c(self) -> float:
        """Hottest junction seen across the whole campaign."""
        peaks = [s.peak_junction_c for s in self.scenarios if s.ok]
        return max(peaks) if peaks else float("nan")

    def safe_shutdown_fraction_for(self, kind: str) -> float:
        """SAFE_SHUTDOWN fraction among scenarios involving ``kind``."""
        hits = [s for s in self.scenarios if kind in s.kinds]
        if not hits:
            return 0.0
        return sum(1 for s in hits if s.safe_shutdown) / len(hits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration_s": _round(self.duration_s),
            "dt_s": _round(self.dt_s),
            "junction_limit_c": _round(self.junction_limit_c),
            "n_scenarios": self.n_scenarios,
            "survived_fraction": _round(self.survived_fraction),
            "safe_shutdown_fraction": _round(self.safe_shutdown_fraction),
            "bounded_fraction": _round(self.bounded_fraction),
            "worst_peak_junction_c": _round(self.worst_peak_junction_c),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "failures": [dict(f) for f in self.failures],
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, fixed separators, rounded
        floats — identical seeds yield identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _first_alarm_time(result: Any) -> Optional[float]:
    log = getattr(result, "alarm_log", None)
    if log is None or not log.history:
        return None
    return float(log.history[0].time_s)


def _score(
    scenario: FaultScenario, result: Any, junction_limit_c: float
) -> ScenarioReport:
    """Fold one simulation result into a scenario report."""
    fault_t = scenario.first_fault_time_s
    peak_junction = float(
        getattr(result, "max_junction_c", getattr(result, "max_fpga_c", float("nan")))
    )
    peak_oil = float(
        getattr(result, "max_oil_c", getattr(result, "max_water_c", float("nan")))
    )
    final_state = getattr(result, "final_state", None)
    actions = tuple(
        (float(a.time_s), str(a.kind), str(a.detail))
        for a in getattr(result, "recovery_actions", ())
    )
    mitigations = [t for t, kind, _ in actions if kind != "safe_shutdown" and t >= fault_t]
    alarm_t = _first_alarm_time(result)
    telemetry = getattr(result, "telemetry", None)
    min_util: Optional[float] = None
    if telemetry is not None and "utilization" in telemetry.channels:
        min_util = float(telemetry.minimum("utilization"))
    degraded_pflops = getattr(result, "degraded_pflops", None)
    return ScenarioReport(
        name=scenario.name,
        kinds=scenario.kinds,
        ok=True,
        error=None,
        survived=peak_junction <= junction_limit_c,
        safe_shutdown=final_state == "SAFE_SHUTDOWN",
        final_state=final_state,
        peak_junction_c=peak_junction,
        peak_oil_c=peak_oil,
        time_to_alarm_s=(alarm_t - fault_t) if alarm_t is not None else None,
        time_to_mitigation_s=(min(mitigations) - fault_t) if mitigations else None,
        min_utilization=min_util,
        degraded_pflops=degraded_pflops,
        actions=actions,
    )


def _failed_report(scenario: FaultScenario, error: str) -> ScenarioReport:
    return ScenarioReport(
        name=scenario.name,
        kinds=scenario.kinds,
        ok=False,
        error=error,
        survived=False,
        safe_shutdown=False,
        final_state=None,
        peak_junction_c=float("nan"),
        peak_oil_c=float("nan"),
        time_to_alarm_s=None,
        time_to_mitigation_s=None,
        min_utilization=None,
        degraded_pflops=None,
    )


def _batch_eligible(
    simulator_factory: Callable[[], Any],
    scenarios: Sequence[FaultScenario],
    backend: Optional[str],
) -> bool:
    """Whether this campaign's hot loop can ride the vectorized core.

    The batched transient engine (:meth:`repro.core.simulation.
    ModuleSimulator.run_many`) covers **open-loop** module scenarios:
    no controller / supervisor / PID on the simulator and no
    ``sensor_fault`` events (sensor faults act on the control path).
    The batch functions are closures over the factory, so the process
    backend (which must pickle them) stays on the per-case path.
    """
    if backend not in (None, "serial", "thread"):
        return False
    for scenario in scenarios:
        if any(event.kind == "sensor_fault" for event in scenario.events):
            return False
    from repro.core.simulation import ModuleSimulator

    try:
        probe = simulator_factory()
    except Exception:  # noqa: BLE001 - the sweep will surface it per case
        return False
    return (
        isinstance(probe, ModuleSimulator)
        and probe.controller is None
        and probe.supervisor is None
        and probe.pid is None
    )


def _campaign_batch_fns(
    simulator_factory: Callable[[], Any], duration_s: float, dt_s: float
) -> BatchedSweepFn:
    """The per-case / batched evaluation pair for open-loop campaigns."""

    def serial(case: SweepCase) -> Any:
        scenario: FaultScenario = case.params["scenario"]
        simulator = simulator_factory()
        return simulator.run(
            duration_s=duration_s, events=list(scenario.events), dt_s=dt_s
        )

    def batch(cases: List[SweepCase]) -> List[Any]:
        simulator = simulator_factory()
        event_lists = [
            list(case.params["scenario"].events) for case in cases
        ]
        stacked = simulator.run_many(
            duration_s=duration_s, scenarios=event_lists, dt_s=dt_s
        )
        values: List[Any] = []
        for lane in range(len(cases)):
            try:
                values.append(stacked.result(lane))
            except Exception:  # noqa: BLE001 - lane re-runs serially
                values.append(SERIAL_FALLBACK)
        return values

    return BatchedSweepFn(serial=serial, batch=batch)


def run_campaign(
    simulator_factory: Callable[[], Any],
    scenarios: Sequence[FaultScenario],
    duration_s: float = 1500.0,
    dt_s: float = 5.0,
    junction_limit_c: float = 85.0,
    max_workers: Optional[int] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    batch: str = "auto",
    batch_size: int = 64,
    harness: Optional[Any] = None,
) -> CampaignReport:
    """Run every scenario on a fresh simulator; never raises per-case.

    A **fresh simulator** comes from the factory for every scenario (the
    supervisor and controller are stateful latches), cases run in
    parallel with deterministic ordering, and a scenario whose simulation
    itself blows up is captured — its traceback lands in
    ``report.failures`` via :func:`repro.sweep.summarize_failures`
    instead of killing the campaign.

    ``batch`` ports the hot loop onto the vectorized core where the
    scenarios allow it: ``"auto"`` (default) uses
    :func:`repro.sweep.run_sweep_batched` over
    :meth:`~repro.core.simulation.ModuleSimulator.run_many` whenever the
    factory yields an open-loop module simulator and no scenario carries
    a ``sensor_fault`` (see :func:`_batch_eligible`); ``"never"`` forces
    the per-object loop; ``"always"`` raises if the campaign is not
    batchable. ``backend`` selects the sweep backend (campaign closures
    are not picklable, so the batched path is serial/thread only).
    ``harness`` is an optional :class:`repro.sweep.HarnessConfig`: the
    campaign then runs checkpointed/resumable with retry, quarantine and
    backend demotion (see ``docs/RESILIENCE.md``).
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("campaign needs at least one scenario")
    if batch not in ("auto", "always", "never"):
        raise ValueError("batch must be 'auto', 'always' or 'never'")
    by_name = {s.name: s for s in scenarios}
    if len(by_name) != len(scenarios):
        raise ValueError("scenario names must be unique")
    cases = [SweepCase(name=s.name, params={"scenario": s}) for s in scenarios]

    def evaluate(case: SweepCase) -> Any:
        scenario: FaultScenario = case.params["scenario"]
        simulator = simulator_factory()
        return simulator.run(
            duration_s=duration_s, events=list(scenario.events), dt_s=dt_s
        )

    use_batch = batch != "never" and _batch_eligible(
        simulator_factory, scenarios, backend
    )
    if batch == "always" and not use_batch:
        raise ValueError(
            "batch='always' but the campaign is not batchable: the factory "
            "must yield an open-loop ModuleSimulator (no controller/"
            "supervisor/pid), no scenario may carry a sensor_fault, and "
            "the backend must be serial or thread"
        )
    obs = get_registry()
    with obs.span("campaign.run", scenarios=len(scenarios)), obs.profile(
        "campaign.run"
    ):
        if use_batch:
            obs.inc("campaign_batched_runs_total")
            outcomes = run_sweep_batched(
                _campaign_batch_fns(simulator_factory, duration_s, dt_s),
                cases,
                batch_size=batch_size,
                max_workers=max_workers,
                on_error="capture",
                backend=backend,
                harness=harness,
            )
        else:
            outcomes = run_sweep(
                evaluate,
                cases,
                max_workers=max_workers,
                on_error="capture",
                backend=backend,
                harness=harness,
            )
    reports = []
    for outcome in outcomes:
        scenario = by_name[outcome.case.name]
        if outcome.ok:
            reports.append(_score(scenario, outcome.value, junction_limit_c))
        else:
            reports.append(_failed_report(scenario, outcome.error or "error"))
    failures = tuple(
        {k: v for k, v in record.items() if k != "params"}
        for record in summarize_failures(outcomes)
    )
    obs.merge_counters(
        {
            "campaign_runs_total": 1,
            "campaign_scenarios_total": len(scenarios),
            "campaign_scenario_failures_total": len(failures),
            "campaign_survived_total": sum(1 for r in reports if r.survived),
            "campaign_safe_shutdown_total": sum(
                1 for r in reports if r.safe_shutdown
            ),
        }
    )
    return CampaignReport(
        scenarios=tuple(reports),
        seed=seed,
        duration_s=duration_s,
        dt_s=dt_s,
        junction_limit_c=junction_limit_c,
        failures=failures,
    )


def mc_model_from_campaign(
    report: CampaignReport,
    rates_per_hour: Optional[Dict[str, float]] = None,
    repair_hours: Optional[Dict[str, float]] = None,
    shutdown_stoppage_hours: float = 24.0,
    seed: int = 0,
) -> AvailabilitySimulator:
    """Bridge the campaign's observed mitigation behaviour into the Monte
    Carlo availability model.

    Each fault kind the campaign exercised becomes one
    :class:`~repro.reliability.montecarlo.McComponent`. Its repair time is
    the kind's base MTTR; its *stoppage* charge — the extra whole-system
    downtime of a machine-stopping failure — is ``shutdown_stoppage_hours``
    weighted by the fraction of that kind's scenarios the supervisor could
    only answer with SAFE_SHUTDOWN. A kind the supervisor always rides
    through contributes no stoppage at all; a kind that always stops the
    machine (leaks) carries the full charge.
    """
    if shutdown_stoppage_hours < 0:
        raise ValueError("stoppage hours must be non-negative")
    rates = dict(_DEFAULT_RATES_PER_HOUR)
    rates.update(rates_per_hour or {})
    repairs = dict(_DEFAULT_REPAIR_HOURS)
    repairs.update(repair_hours or {})
    kinds = sorted({kind for s in report.scenarios for kind in s.kinds})
    if not kinds:
        raise ValueError("campaign exercised no fault kinds")
    components = []
    for kind in kinds:
        shutdown_fraction = report.safe_shutdown_fraction_for(kind)
        components.append(
            McComponent(
                component=Component(
                    name=kind,
                    failure_rate_per_hour=rates.get(kind, 1.0e-5),
                    repair_hours=max(0.1, repairs.get(kind, 4.0)),
                ),
                stoppage_hours=shutdown_stoppage_hours * shutdown_fraction,
            )
        )
    return AvailabilitySimulator(components=components, seed=seed)


__all__ = [
    "CampaignReport",
    "FaultScenario",
    "KINDS",
    "ScenarioReport",
    "draw_scenarios",
    "mc_model_from_campaign",
    "run_campaign",
    "single_fault_scenarios",
]
