"""Redundant-sensor voting: median-of-N with plausibility and NaN guards.

The control subsystem must not trip — or, worse, fail to trip — on one
lying transmitter. The supervisor therefore reads the bath temperature
through a small redundant bank and votes: readings that are missing
(the sensor raised :class:`~repro.control.sensors.SensorError`), non-finite,
or outside the physically plausible band are *rejected* before the median;
readings that survive the guards but sit far from the voted value are
flagged as *suspects* (a drifting sensor the operator should replace) while
still being outvoted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class VoteResult:
    """Outcome of one median vote over a redundant sensor bank.

    Attributes
    ----------
    value:
        The voted reading, or None when no reading survived the guards.
    valid_count:
        How many readings entered the median.
    rejected:
        Indices of readings discarded before the vote (missing, non-finite
        or implausible).
    suspects:
        Indices of readings that voted but deviate from the median by more
        than the deviation limit — outvoted, probably faulted.
    """

    value: Optional[float]
    valid_count: int
    rejected: Tuple[int, ...] = ()
    suspects: Tuple[int, ...] = ()

    @property
    def failed(self) -> bool:
        """True when no reading survived — the bank is blind."""
        return self.value is None

    @property
    def degraded(self) -> bool:
        """True when the vote succeeded but some reading misbehaved."""
        return self.value is not None and bool(self.rejected or self.suspects)

    @property
    def healthy(self) -> bool:
        """True when every reading voted and agreed."""
        return self.value is not None and not self.rejected and not self.suspects


def median_vote(
    readings: Sequence[Optional[float]],
    lo: float = -math.inf,
    hi: float = math.inf,
    deviation_limit: Optional[float] = None,
) -> VoteResult:
    """Vote a redundant sensor bank down to one trusted value.

    Parameters
    ----------
    readings:
        One entry per bank member; ``None`` marks a sensor that failed to
        produce a reading at all.
    lo, hi:
        Plausibility band; readings outside it are rejected before the
        median (a bath thermometer reporting -40 C is broken, not cold).
    deviation_limit:
        When given, surviving readings farther than this from the median
        are flagged as suspects (but still counted in the vote — the
        median has already outvoted them).
    """
    if not len(readings):
        raise ValueError("vote requires at least one reading")
    if hi < lo:
        raise ValueError("plausibility band high must not be below low")

    rejected = []
    valid = []  # (index, value)
    for i, reading in enumerate(readings):
        if reading is None or not math.isfinite(reading) or not lo <= reading <= hi:
            rejected.append(i)
        else:
            valid.append((i, float(reading)))

    if not valid:
        return VoteResult(value=None, valid_count=0, rejected=tuple(rejected))

    voted = float(median(value for _, value in valid))
    suspects = ()
    if deviation_limit is not None:
        if deviation_limit < 0:
            raise ValueError("deviation limit must be non-negative")
        suspects = tuple(
            i for i, value in valid if abs(value - voted) > deviation_limit
        )
    return VoteResult(
        value=voted,
        valid_count=len(valid),
        rejected=tuple(rejected),
        suspects=suspects,
    )


__all__ = ["VoteResult", "median_vote"]
