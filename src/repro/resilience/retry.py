"""Bounded deterministic retry-with-backoff for solver failures.

The hydraulic fast path already falls back to the bracketed robust
formulation per solve; this module covers the layer above it — a solve
that fails *outright* (e.g. a valve-slam manifold state no formulation
converges on at the requested tolerance). Callers retry a bounded number
of times, backing off along a *relaxation schedule* (each attempt index
typically maps to a 10x looser convergence tolerance) rather than a
wall-clock delay: simulation time is not wall time, and a deterministic
schedule keeps seeded campaigns byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple, Type


@dataclass(frozen=True)
class RetryOutcome:
    """Result of a bounded retry loop.

    Attributes
    ----------
    ok:
        Whether any attempt succeeded.
    value:
        The successful attempt's return value (None when every attempt
        failed — distinguish via ``ok``, not the value).
    attempts:
        Attempts actually made (1 for a first-try success).
    errors:
        Repr of each failed attempt's exception, in attempt order.
    error_types:
        Qualified class name (``module.QualName``) of each failed
        attempt's exception, parallel to ``errors``. Lets downstream
        failure taxonomies classify on the type instead of parsing the
        repr. Defaults to empty, so pre-existing constructions stay
        valid (backward-compatible).
    """

    ok: bool
    value: Any
    attempts: int
    errors: Tuple[str, ...] = ()
    error_types: Tuple[str, ...] = ()

    @property
    def retried(self) -> bool:
        """Whether success required more than one attempt."""
        return self.ok and self.attempts > 1


def retry_with_backoff(
    fn: Callable[[int], Any],
    attempts: int = 3,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
) -> RetryOutcome:
    """Call ``fn(attempt_index)`` until it succeeds or attempts run out.

    Parameters
    ----------
    fn:
        The operation; receives the 0-based attempt index so it can relax
        its own tolerance / perturb its own start along a backoff
        schedule (``tolerance * 10 ** attempt`` is the convention used by
        the rack simulator's manifold re-solve).
    attempts:
        Maximum attempts (>= 1).
    retry_on:
        Exception classes that trigger a retry; anything else propagates
        immediately.

    Never raises for exhausted retries — the caller inspects ``ok`` and
    decides whether a degraded continuation (last known good state) or an
    abort is appropriate.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    errors = []
    error_types = []
    for index in range(attempts):
        try:
            return RetryOutcome(
                ok=True,
                value=fn(index),
                attempts=index + 1,
                errors=tuple(errors),
                error_types=tuple(error_types),
            )
        except retry_on as exc:
            errors.append(repr(exc))
            cls = type(exc)
            error_types.append(f"{cls.__module__}.{cls.__qualname__}")
    return RetryOutcome(
        ok=False,
        value=None,
        attempts=attempts,
        errors=tuple(errors),
        error_types=tuple(error_types),
    )


__all__ = ["RetryOutcome", "retry_with_backoff"]
