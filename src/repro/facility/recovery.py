"""Heat recovery on the facility secondary loop (iDataCool-style reuse).

The hot-water scenario family raises the plant setpoint until the loop
return is hot enough to feed an adsorption chiller or a district-heating
header, then harvests part of the rejected heat *before* it reaches the
chiller plant. The recovered fraction offsets the plant's compressor
load, so the facility's power-usage effectiveness improves with coolant
temperature — the economic argument of the iDataCool line of work.

The model is deliberately steady and conservative: a recovery heat
exchanger with a fixed effectiveness harvests at most ``effectiveness``
of the mean rejected load, capped by the sink's own capacity. Energy
accounting stays exact: recovered heat can never exceed rejected heat,
and the chiller only carries the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HeatRecovery:
    """A heat-recovery sink tapping the facility loop return header.

    Parameters
    ----------
    effectiveness:
        Fraction of the loop's rejected heat the recovery exchanger can
        transfer to the reuse sink, in ``[0, 1]``.
    sink_capacity_w:
        The reuse sink's absorption limit (district-heating header,
        adsorption chiller, ...), W. ``inf`` means the sink always
        absorbs its effectiveness share.
    minimum_return_c:
        Loop return temperature below which the sink cannot accept heat
        (a district-heating header needs a minimum feed temperature).
        Recovery is all-or-nothing on this threshold.
    """

    effectiveness: float = 0.6
    sink_capacity_w: float = float("inf")
    minimum_return_c: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.effectiveness <= 1.0:
            raise ValueError("recovery effectiveness must be within [0, 1]")
        if self.sink_capacity_w < 0.0:
            raise ValueError("sink capacity cannot be negative")

    def recovered_w(self, rejected_w: float, return_water_c: float) -> float:
        """Heat harvested from a mean rejected load at a return temperature.

        Bounded by the effectiveness share, the sink capacity, and the
        rejected load itself; zero when the return is too cold for the
        sink or the load is non-positive.
        """
        if rejected_w <= 0.0 or return_water_c < self.minimum_return_c:
            return 0.0
        return min(self.effectiveness * rejected_w, self.sink_capacity_w, rejected_w)


__all__ = ["HeatRecovery"]
