"""Facility-scope fault campaigns: rack-level failures at machine-room scale.

The resilience campaign harness (:mod:`repro.resilience.campaign`) only
asks a simulator for ``run(duration_s, events, dt_s)`` and scores the
result by duck-typing, so a :class:`~repro.facility.simulator.
FacilitySimulator` drops straight in. What changes at facility scope is
the *scenario vocabulary*: instead of one module's pump or loop, a
campaign here trips the chiller plant, valves a whole rack off the
secondary loop, or forwards a fault into one rack while its neighbours
keep computing.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.facility.simulator import FacilitySimulator
from repro.reliability.failures import FailureEvent
from repro.resilience.campaign import CampaignReport, FaultScenario, run_campaign

#: Facility-scope fault vocabulary (scenario kinds use the underlying
#: event kinds; the targets carry the facility semantics).
FACILITY_TARGETS = ("plant", "rack_branch", "rack_internal")


def _plant_event(time_s: float, magnitude: float) -> FailureEvent:
    return FailureEvent(
        kind="pump_stop",
        time_s=time_s,
        target="plant",
        magnitude=magnitude,
        description=f"chiller plant derated to {magnitude:.0%}",
    )


def _branch_event(time_s: float, rack: int) -> FailureEvent:
    return FailureEvent(
        kind="loop_blockage",
        time_s=time_s,
        target=f"rack_{rack}",
        magnitude=0.0,
        description=f"rack_{rack} facility branch valved off",
    )


def _internal_event(time_s: float, rack: int, loop: int) -> FailureEvent:
    return FailureEvent(
        kind="loop_blockage",
        time_s=time_s,
        target=f"rack_{rack}/loop_{loop}",
        magnitude=0.0,
        description=f"CM {loop} valved off inside rack_{rack}",
    )


def facility_fault_scenarios(
    n_racks: int = 4, fault_time_s: float = 240.0
) -> List[FaultScenario]:
    """The canonical facility drill set (deterministic, no RNG).

    One scenario per facility failure mode plus one compound drill, so a
    campaign over this set proves "every facility-scope failure has a
    bounded, supervised outcome".
    """
    return [
        FaultScenario(
            name="plant_trip", events=(_plant_event(fault_time_s, 0.0),)
        ),
        FaultScenario(
            name="plant_brownout", events=(_plant_event(fault_time_s, 0.5),)
        ),
        FaultScenario(
            name="rack_branch_closed",
            events=(_branch_event(fault_time_s, n_racks - 1),),
        ),
        FaultScenario(
            name="rack_internal_blockage",
            events=(_internal_event(fault_time_s, 0, 1),),
        ),
        FaultScenario(
            name="plant_brownout+rack_branch",
            events=(
                _plant_event(fault_time_s, 0.5),
                _branch_event(fault_time_s + 60.0, 0),
            ),
        ),
    ]


def draw_facility_scenarios(
    seed: int,
    n: int,
    n_racks: int = 4,
    modules_per_rack: int = 2,
    compound_fraction: float = 0.25,
    dt_s: float = 20.0,
    min_time_s: float = 60.0,
    max_time_s: float = 300.0,
) -> List[FaultScenario]:
    """Draw ``n`` random facility scenarios from a seeded generator.

    Injection times land on the ``dt_s`` grid so a drawn scenario replays
    identically at the campaign's step size; a ``compound_fraction`` of
    scenarios carry two faults of different facility targets.
    """
    if n < 1:
        raise ValueError("need at least one scenario")
    if not 0.0 <= compound_fraction <= 1.0:
        raise ValueError("compound fraction must be within [0, 1]")
    if dt_s <= 0 or min_time_s < 0 or max_time_s <= min_time_s:
        raise ValueError("bad time parameters")
    rng = np.random.default_rng(seed)
    scenarios: List[FaultScenario] = []
    for i in range(n):
        compound = bool(rng.random() < compound_fraction)
        n_faults = 2 if compound else 1
        targets = [
            str(t)
            for t in rng.choice(FACILITY_TARGETS, size=n_faults, replace=False)
        ]
        events: List[FailureEvent] = []
        for target in targets:
            raw = float(rng.uniform(min_time_s, max_time_s))
            time_s = round(raw / dt_s) * dt_s
            if target == "plant":
                magnitude = float(rng.uniform(0.0, 0.6))
                events.append(_plant_event(time_s, magnitude))
            elif target == "rack_branch":
                rack = int(rng.integers(0, n_racks))
                events.append(_branch_event(time_s, rack))
            else:
                rack = int(rng.integers(0, n_racks))
                loop = int(rng.integers(0, modules_per_rack))
                events.append(_internal_event(time_s, rack, loop))
        label = "+".join(targets)
        scenarios.append(
            FaultScenario(name=f"f{i:03d}_{label}", events=tuple(events))
        )
    return scenarios


def run_facility_campaign(
    facility_factory: Callable[[], FacilitySimulator],
    scenarios: Optional[Sequence[FaultScenario]] = None,
    duration_s: float = 900.0,
    dt_s: float = 20.0,
    junction_limit_c: float = 85.0,
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
    harness: Optional[Any] = None,
) -> CampaignReport:
    """Run facility scenarios through the resilience campaign harness.

    A fresh facility (fresh loop solver, fresh per-rack supervisors)
    evaluates every scenario; scoring, ordering and the canonical report
    come from :func:`repro.resilience.campaign.run_campaign` unchanged.
    ``harness`` (a :class:`repro.sweep.HarnessConfig`) makes the campaign
    checkpointed/resumable with retry, quarantine and backend demotion;
    facility simulators are always closed-loop, so the batched campaign
    path never engages here.
    """
    if scenarios is None:
        scenarios = facility_fault_scenarios()
    return run_campaign(
        facility_factory,
        scenarios,
        duration_s=duration_s,
        dt_s=dt_s,
        junction_limit_c=junction_limit_c,
        max_workers=max_workers,
        backend=backend,
        batch="never",
        harness=harness,
    )


__all__ = [
    "FACILITY_TARGETS",
    "draw_facility_scenarios",
    "facility_fault_scenarios",
    "run_facility_campaign",
]
