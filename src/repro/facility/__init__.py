"""Facility-scale simulation: a machine room of racks on shared services.

One rack's story (:mod:`repro.core.racksim`) scaled to the paper's
computer hall: N racks on a reverse-return secondary loop
(:class:`~repro.facility.network.FacilityLoopSystem`), a chiller plant
with a standby skid (:class:`~repro.facility.simulator.ChillerPlant`),
facility-scope fault campaigns (:mod:`repro.facility.campaign`) and
picklable sweep cases that shard across processes
(:mod:`repro.facility.sweep`). See ``docs/FACILITY.md``.
"""

from repro.facility.campaign import (
    draw_facility_scenarios,
    facility_fault_scenarios,
    run_facility_campaign,
)
from repro.facility.network import FacilityLoopSystem
from repro.facility.recovery import HeatRecovery
from repro.facility.simulator import (
    ChillerPlant,
    FacilityResult,
    FacilitySimulator,
    PlantDispatch,
)
from repro.facility.sweep import (
    GPU_JUNCTION_LIMIT_C,
    HOT_WATER_SETPOINT_C,
    SCENARIOS,
    WORKLOAD_SCENARIOS,
    WorkloadScenario,
    evaluate_facility_case,
    evaluate_workload_case,
    run_facility_sweep,
    run_workload_sweep,
    smoke_cases,
    workload_cases,
)

__all__ = [
    "GPU_JUNCTION_LIMIT_C",
    "HOT_WATER_SETPOINT_C",
    "SCENARIOS",
    "WORKLOAD_SCENARIOS",
    "ChillerPlant",
    "FacilityLoopSystem",
    "FacilityResult",
    "FacilitySimulator",
    "HeatRecovery",
    "PlantDispatch",
    "WorkloadScenario",
    "draw_facility_scenarios",
    "evaluate_facility_case",
    "evaluate_workload_case",
    "facility_fault_scenarios",
    "run_facility_campaign",
    "run_facility_sweep",
    "run_workload_sweep",
    "smoke_cases",
    "workload_cases",
]
