"""Facility-scale simulation: a machine room of racks on shared services.

One rack's story (:mod:`repro.core.racksim`) scaled to the paper's
computer hall: N racks on a reverse-return secondary loop
(:class:`~repro.facility.network.FacilityLoopSystem`), a chiller plant
with a standby skid (:class:`~repro.facility.simulator.ChillerPlant`),
facility-scope fault campaigns (:mod:`repro.facility.campaign`) and
picklable sweep cases that shard across processes
(:mod:`repro.facility.sweep`). See ``docs/FACILITY.md``.
"""

from repro.facility.campaign import (
    draw_facility_scenarios,
    facility_fault_scenarios,
    run_facility_campaign,
)
from repro.facility.network import FacilityLoopSystem
from repro.facility.simulator import (
    ChillerPlant,
    FacilityResult,
    FacilitySimulator,
    PlantDispatch,
)
from repro.facility.sweep import (
    SCENARIOS,
    evaluate_facility_case,
    run_facility_sweep,
    smoke_cases,
)

__all__ = [
    "SCENARIOS",
    "ChillerPlant",
    "FacilityLoopSystem",
    "FacilityResult",
    "FacilitySimulator",
    "PlantDispatch",
    "draw_facility_scenarios",
    "evaluate_facility_case",
    "facility_fault_scenarios",
    "run_facility_campaign",
    "run_facility_sweep",
    "smoke_cases",
]
