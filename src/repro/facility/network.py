"""The facility-level chilled-water secondary loop.

Scaling the paper's Fig. 5 answer one level up: a machine room of N racks
shares one secondary chilled-water loop the way one rack's CMs share its
manifold. The facility loop uses the same reverse-return (Tichelmann)
discipline — supply header down the rack row, per-rack branch (isolation
valve + rack heat-exchange passage), return header exiting at the far end
— so every rack sees the same hydraulic path length and the branch flows
self-balance without trim valves. iDataCool-style facility questions
(chiller sizing, heat reuse, how unevenly a rack row starves when the
header is undersized) start from exactly this flow distribution.

The network is built by the shared manifold builder
(:mod:`repro.hydraulics.manifold`) and solved by the same fast-path
solver the rack manifold uses, warm starts and solution cache included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.balancing import BalanceReport, ManifoldLayout
from repro.fluids.library import WATER
from repro.fluids.properties import Fluid
from repro.hydraulics.cache import SolverCounters
from repro.hydraulics.elements import (
    HeatExchangerPassage,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)
from repro.hydraulics.manifold import build_return_manifold_network
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError
from repro.hydraulics.solver import (
    NetworkSolver,
    SolveResult,
    junction_residuals,
    solve_network,
)

#: Isolation-valve geometry of one rack branch (DN80 butterfly valve).
_BRANCH_VALVE_K_OPEN = 3.0
_BRANCH_VALVE_DIAMETER_M = 0.08


@dataclass
class FacilityLoopSystem:
    """The machine-room secondary loop: plant pump, headers, rack branches.

    Parameters
    ----------
    n_racks:
        Rack branches on the loop (at least 2).
    layout:
        Reverse return (the balanced default) or direct return.
    pump:
        The secondary-loop circulation pump in the plant room.
    segment_pipe_length_m, header_diameter_m:
        Geometry of each header segment between adjacent rack taps (one
        rack pitch of horizontal run per segment).
    branch_passage:
        Hydraulic resistance of one rack's heat-exchange circuit (the
        rack CDU / water-side of its manifold loop plus hoses).
    riser_pipe_length_m, riser_diameter_m:
        Return run to the plant room through the chiller plant.
    balancing_valves:
        Optional per-rack trim-valve openings; None leaves the branches
        fully open but still closable for servicing.
    fluid, temperature_c:
        Secondary-loop heat-transfer agent and its temperature.
    """

    n_racks: int = 4
    layout: ManifoldLayout = ManifoldLayout.REVERSE_RETURN
    pump: Pump = field(
        default_factory=lambda: Pump(
            curve=PumpCurve(shutoff_pressure_pa=320.0e3, max_flow_m3_s=0.12),
            efficiency=0.72,
        )
    )
    segment_pipe_length_m: float = 1.2
    header_diameter_m: float = 0.15
    branch_passage: HeatExchangerPassage = field(
        default_factory=lambda: HeatExchangerPassage(
            r_linear_pa_per_m3_s=1.5e6, r_quadratic_pa_per_m3_s2=1.0e8
        )
    )
    riser_pipe_length_m: float = 30.0
    riser_diameter_m: float = 0.2
    balancing_valves: Optional[List[float]] = None
    fluid: Fluid = WATER
    temperature_c: float = 16.0
    solver: NetworkSolver = field(default_factory=NetworkSolver, repr=False)
    _network: HydraulicNetwork = field(init=False, repr=False)
    _valve_names: List[str] = field(init=False, repr=False)
    _last_result: Optional[SolveResult] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_racks < 2:
            raise ValueError("a facility loop needs at least 2 rack branches")
        if self.balancing_valves is not None and len(self.balancing_valves) != self.n_racks:
            raise ValueError("one balancing-valve opening per rack required")
        self._build()

    def _segment(self) -> Pipe:
        return Pipe(
            length_m=self.segment_pipe_length_m,
            diameter_m=self.header_diameter_m,
            minor_loss_k=0.4,
        )

    def _branch_valve(self, opening: float) -> Valve:
        return Valve(
            k_open=_BRANCH_VALVE_K_OPEN,
            diameter_m=_BRANCH_VALVE_DIAMETER_M,
            opening=opening,
        )

    def _build(self) -> None:
        n = self.n_racks
        openings = (
            [1.0] * n if self.balancing_valves is None else self.balancing_valves
        )
        riser = Pipe(
            length_m=self.riser_pipe_length_m,
            diameter_m=self.riser_diameter_m,
            minor_loss_k=18.0,  # chiller plant, strainers and plant-room bends
        )
        plan = build_return_manifold_network(
            n_loops=n,
            reverse_return=self.layout is ManifoldLayout.REVERSE_RETURN,
            pump=self.pump,
            segment_factory=self._segment,
            valves=[self._branch_valve(opening) for opening in openings],
            passages=[self.branch_passage] * n,
            riser=riser,
        )
        self._network = plan.network
        self._valve_names = plan.valve_names

    @property
    def network(self) -> HydraulicNetwork:
        """The underlying hydraulic network (for inspection)."""
        return self._network

    @property
    def solver_counters(self) -> SolverCounters:
        """The owned solver's counters (cache hits, fallbacks, ...)."""
        return self.solver.counters

    def reset_solver(self) -> None:
        """Drop cached solutions, warm-start state and counters."""
        self.solver.reset()

    def fail_rack(self, index: int) -> None:
        """Valve a rack branch off the loop (rack isolated for service)."""
        self._check_index(index)
        self._network.replace_element(
            self._valve_names[index], self._branch_valve(0.0)
        )

    def restore_rack(self, index: int, opening: float = 1.0) -> None:
        """Return an isolated rack branch to service."""
        self._check_index(index)
        self._network.replace_element(
            self._valve_names[index], self._branch_valve(opening)
        )

    def solve(self, tolerance_m3_s: float = 1.0e-9) -> BalanceReport:
        """Per-rack branch flows of the facility loop.

        Same semantics as the rack manifold's
        :meth:`~repro.core.balancing.RackManifoldSystem.solve`: warm
        starts and the solution cache make re-solves after a valve change
        nearly free, and failed (valved-off) branches report zero flow.
        """
        result: SolveResult = solve_network(
            self._network,
            self.fluid,
            self.temperature_c,
            tolerance_m3_s=tolerance_m3_s,
            solver=self.solver,
        )
        self._last_result = result
        failed = [
            i
            for i, name in enumerate(self._valve_names)
            if self._network.branch(name).element.is_closed
        ]
        flows = [
            0.0 if i in failed else result.flow(f"loop_{i}")
            for i in range(self.n_racks)
        ]
        return BalanceReport(
            layout=self.layout, loop_flows_m3_s=flows, failed_loops=failed
        )

    def junction_residuals_m3_s(self) -> Dict[str, float]:
        """Per-junction continuity residuals of the last :meth:`solve`.

        Raises when no solve has run yet; see
        :meth:`repro.core.balancing.RackManifoldSystem.junction_residuals_m3_s`.
        """
        if self._last_result is None:
            raise HydraulicsError("no solution yet — call solve() first")
        return junction_residuals(self._network, self._last_result)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_racks:
            raise ValueError(f"rack index {index} outside [0, {self.n_racks})")


__all__ = ["FacilityLoopSystem"]
