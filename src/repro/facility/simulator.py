"""Facility transient simulation: N racks on one chiller plant.

The paper's endgame is not one rack but a machine room: Section 5's racks
"mounted in a standard computer hall" sharing "a stationary system of
engineering services". This module composes :class:`~repro.core.racksim.
RackSimulator` instances into that machine room. The shared pieces are

- the **secondary loop** (:class:`~repro.facility.network.
  FacilityLoopSystem`): per-rack branch flows from the reverse-return
  header hydraulics decide each rack's *share* of the plant;
- the **chiller plant** (:class:`ChillerPlant`): a primary machine plus a
  standby skid that starts a dispatch delay after the primary degrades.

Coupling model: each rack receives a chilled-water cooling capacity
``alloc_j = min(rack_capacity_j, plant_capacity * share_j)`` — the branch
flow caps how much of the plant a rack can draw, and the rack's own heat
exchanger caps what it can absorb. Facility-scope events change the
allocation piecewise in time, and the changes reach each rack as
multiplicative chiller-capacity events on its own simulation. When the
plant is unconstrained (every allocation equals the rack's own capacity
and no facility events fire) each rack's run is **bit-identical** to an
isolated :class:`RackSimulator` run — the differential suite pins this.

Facility event grammar (on top of the rack grammar):

- ``target="plant"``, kind ``pump_stop`` — the primary chiller degrades
  to ``magnitude`` of its capacity; the standby skid starts
  ``standby_start_delay_s`` later.
- ``target="rack_<j>"`` — rack *j*'s branch is valved to ``magnitude``
  opening on the facility loop (0 isolates the rack; flows rebalance).
- ``target="rack_<j>/<inner>"`` — forwarded to rack *j*'s own simulation
  with target ``<inner>`` (e.g. ``rack_1/loop_2`` valves CM 2 off inside
  rack 1, ``rack_0/chiller`` trips rack 0's local chiller).
- ``target="compute"``, kind ``power_step`` — a facility-wide workload
  step (an AI-training trace), broadcast verbatim to **every** rack;
  ``rack_<j>/compute`` steps a single rack's workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.control.monitor import AlarmLog
from repro.control.supervisor import RecoveryAction, Supervisor, SupervisorState
from repro.core.rack import Rack
from repro.core.racksim import RackSimResult, RackSimulator
from repro.core.skat import skat
from repro.facility.network import FacilityLoopSystem
from repro.facility.recovery import HeatRecovery
from repro.obs import get_registry
from repro.reliability.failures import FailureEvent
from repro.sweep import SweepCase, run_sweep

if TYPE_CHECKING:  # pragma: no cover - verify imports this module
    from repro.verify.checkers import CheckSuite

#: Floor on a rack's allocated-capacity fraction. Multiplicative capacity
#: events cannot recover from an exact zero (0 times anything is 0), so a
#: fully starved rack is held at this thermally-negligible fraction
#: instead — recovery events then stay finite.
MIN_CAPACITY_FRACTION = 1.0e-9
#: Ratio band treated as "no change" when emitting capacity events.
_RATIO_EPS = 1.0e-12


@dataclass(frozen=True)
class PlantDispatch:
    """Steady dispatch of the chiller plant against a heat load."""

    load_w: float
    capacity_w: float
    standby_started: bool

    @property
    def utilization(self) -> float:
        """Load fraction of the dispatched capacity."""
        return self.load_w / self.capacity_w if self.capacity_w > 0.0 else math.inf

    @property
    def headroom_w(self) -> float:
        """Capacity margin above the load (negative when overloaded)."""
        return self.capacity_w - self.load_w


@dataclass(frozen=True)
class ChillerPlant:
    """The machine-room chiller plant: primary machine plus standby skid.

    Parameters
    ----------
    primary_capacity_w:
        Nominal cooling capacity of the duty chiller.
    standby_capacity_w:
        Capacity of the standby skid (a smaller packaged unit).
    standby_start_delay_s:
        Dispatch delay between the primary degrading and the skid
        carrying load (start-up plus loop mixing).
    setpoint_c:
        Secondary-loop supply temperature.
    cop:
        Plant coefficient of performance, for electrical-power estimates.
    """

    primary_capacity_w: float = 700.0e3
    standby_capacity_w: float = 350.0e3
    standby_start_delay_s: float = 120.0
    setpoint_c: float = 16.0
    cop: float = 4.5

    def __post_init__(self) -> None:
        if self.primary_capacity_w <= 0.0:
            raise ValueError("primary capacity must be positive")
        if self.standby_capacity_w < 0.0:
            raise ValueError("standby capacity cannot be negative")
        if self.standby_start_delay_s < 0.0:
            raise ValueError("standby start delay cannot be negative")
        if self.cop <= 0.0:
            raise ValueError("plant COP must be positive")

    def dispatch(self, load_w: float) -> PlantDispatch:
        """Steady dispatch: the skid starts only when the primary is short."""
        standby = load_w > self.primary_capacity_w and self.standby_capacity_w > 0.0
        capacity = self.primary_capacity_w + (
            self.standby_capacity_w if standby else 0.0
        )
        return PlantDispatch(
            load_w=load_w, capacity_w=capacity, standby_started=standby
        )

    def electrical_power_w(self, load_w: float) -> float:
        """Compressor/pump electrical draw carrying ``load_w`` of heat."""
        return load_w / self.cop

    def capacity_profile(
        self, plant_events: Sequence[FailureEvent], duration_s: float
    ) -> List[Tuple[float, float]]:
        """Piecewise-constant plant capacity over a run, ``[(t, W), ...]``.

        Each ``pump_stop`` event multiplies the primary's capacity by its
        magnitude from its time onward. The standby skid comes online
        ``standby_start_delay_s`` after the **first** degrading event and
        stays online. The profile starts at ``(0.0, primary)`` and is
        sorted, deduplicated and clipped to the run.
        """
        fraction = 1.0
        first_trip: Optional[float] = None
        steps: List[Tuple[float, float]] = [(0.0, self.primary_capacity_w)]
        for event in sorted(plant_events, key=lambda e: e.time_s):
            if event.kind != "pump_stop" or event.time_s > duration_s:
                continue
            fraction *= max(event.magnitude, 0.0)
            if first_trip is None and event.magnitude < 1.0:
                first_trip = event.time_s
            steps.append((event.time_s, fraction * self.primary_capacity_w))
        if first_trip is not None and self.standby_capacity_w > 0.0:
            start = first_trip + self.standby_start_delay_s
            if start <= duration_s:
                # Capacity at the skid's start time: primary fraction then
                # in force, plus the skid; later primary steps carry it too.
                in_force = [capacity for t, capacity in steps if t <= start][-1]
                steps = [
                    (t, c + (self.standby_capacity_w if t > start else 0.0))
                    for t, c in steps
                ]
                steps.append((start, in_force + self.standby_capacity_w))
        merged: Dict[float, float] = {}
        for t, capacity in sorted(steps):
            merged[t] = capacity
        return sorted(merged.items())


def _capacity_at(profile: Sequence[Tuple[float, float]], time_s: float) -> float:
    value = profile[0][1]
    for t, capacity in profile:
        if t <= time_s:
            value = capacity
        else:
            break
    return value


@dataclass(frozen=True)
class FacilityResult:
    """Outcome of a facility transient run."""

    n_racks: int
    duration_s: float
    dt_s: float
    #: Facility-loop branch flows at t=0, one per rack, m^3/s.
    branch_flows_m3_s: Tuple[float, ...]
    #: Each rack's flow share of the facility loop at t=0.
    flow_shares: Tuple[float, ...]
    #: Chilled-water capacity allocated to each rack at t=0, W.
    allocated_capacity_w: Tuple[float, ...]
    rack_results: Tuple[RackSimResult, ...]
    max_fpga_c: float
    max_water_c: float
    #: Total heat pushed into the facility loop over the run, J.
    heat_rejected_j: float
    #: Plant dispatch against the run-average heat load.
    plant: PlantDispatch
    #: Estimated loop return-water temperature at the average load — the
    #: iDataCool heat-reuse number (what a reuse installation harvests).
    reuse_return_water_c: float
    #: Worst rack's supervisor ladder state; None when unsupervised.
    final_state: Optional[str] = None
    #: Every rack's supervisory interventions, merged in time order, each
    #: detail prefixed with its rack (``rack_2: ...``).
    recovery_actions: Tuple[RecoveryAction, ...] = ()
    #: IT energy over the run — the heat the compute pushed into the
    #: facility loop, J (electrical in == heat out at steady state).
    it_energy_j: float = 0.0
    #: Secondary-loop circulation pump electrical energy, J.
    pump_energy_j: float = 0.0
    #: Chiller-plant compressor electrical energy carrying the load the
    #: recovery sink did not absorb, J.
    chiller_energy_j: float = 0.0
    #: Heat harvested by the recovery sink over the run, J (0 without a
    #: :class:`~repro.facility.recovery.HeatRecovery` attached).
    recovered_heat_j: float = 0.0
    #: Partial PUE of the cooling chain: (IT + pump + chiller) / IT.
    #: Structurally >= 1; exactly 1.0 for a zero-IT (degenerate) run.
    ppue: float = 1.0

    @property
    def mean_rejected_w(self) -> float:
        """Run-average facility heat load, W."""
        return self.heat_rejected_j / self.duration_s if self.duration_s else 0.0

    @property
    def degraded_pflops(self) -> Optional[float]:
        """Facility sustained performance after shutdowns/throttling."""
        values = [r.degraded_pflops for r in self.rack_results]
        if any(v is None for v in values):
            return None
        return sum(values)

    @property
    def modules_shutdown(self) -> int:
        """CMs individually isolated across the whole facility."""
        return sum(len(r.modules_shutdown) for r in self.rack_results)

    @property
    def alarm_episodes(self) -> int:
        """Alarm episodes across every rack."""
        return sum(r.alarm_log.episodes for r in self.rack_results)

    @property
    def alarm_log(self) -> AlarmLog:
        """The rack alarm log with the earliest first episode.

        Duck-typing hook for :func:`repro.resilience.campaign.run_campaign`
        (time-to-alarm scoring reads ``alarm_log.history[0]``).
        """
        candidates = [r.alarm_log for r in self.rack_results if r.alarm_log.history]
        if not candidates:
            return AlarmLog()
        return min(candidates, key=lambda log: log.history[0].time_s)

    def survived(self, junction_limit_c: float) -> bool:
        """Whether every CM in every rack stayed under the limit."""
        return self.max_fpga_c <= junction_limit_c

    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-data summary (stable across sweep backends).

        Floats are rounded to 9 significant decimal places like the
        metric exporters, so the dict — and any JSON dump of it — is
        byte-identical however the containing sweep was executed, and
        picklable for the process backend.
        """

        def r(x: float) -> float:
            return round(float(x), 9)

        return {
            "n_racks": self.n_racks,
            "duration_s": r(self.duration_s),
            "dt_s": r(self.dt_s),
            "branch_flows_m3_s": [r(f) for f in self.branch_flows_m3_s],
            "flow_shares": [r(s) for s in self.flow_shares],
            "allocated_capacity_w": [r(a) for a in self.allocated_capacity_w],
            "max_fpga_c": r(self.max_fpga_c),
            "max_water_c": r(self.max_water_c),
            "heat_rejected_j": r(self.heat_rejected_j),
            "mean_rejected_w": r(self.mean_rejected_w),
            "plant_load_w": r(self.plant.load_w),
            "plant_capacity_w": r(self.plant.capacity_w),
            "plant_standby_started": self.plant.standby_started,
            "reuse_return_water_c": r(self.reuse_return_water_c),
            "it_energy_j": r(self.it_energy_j),
            "pump_energy_j": r(self.pump_energy_j),
            "chiller_energy_j": r(self.chiller_energy_j),
            "recovered_heat_j": r(self.recovered_heat_j),
            "ppue": r(self.ppue),
            "final_state": self.final_state,
            "degraded_pflops": (
                None if self.degraded_pflops is None else r(self.degraded_pflops)
            ),
            "modules_shutdown": self.modules_shutdown,
            "alarm_episodes": self.alarm_episodes,
            "recovery_actions": len(self.recovery_actions),
            "racks": [
                {
                    "max_fpga_c": r(res.max_fpga_c),
                    "max_water_c": r(res.max_water_c),
                    "heat_rejected_j": r(res.heat_rejected_j),
                    "final_state": res.final_state,
                    "modules_over_limit": list(res.modules_over_limit),
                    "modules_shutdown": list(res.modules_shutdown),
                }
                for res in self.rack_results
            ],
        }


def _default_rack() -> Rack:
    return Rack(module_factory=skat, n_modules=12)


@dataclass
class FacilitySimulator:
    """N racks on a shared secondary loop and chiller plant.

    Parameters
    ----------
    n_racks:
        Racks on the facility loop.
    rack_factory:
        Zero-argument callable producing one rack definition. Called once
        per rack, so racks never share mutable state. Must be a
        module-level function for process-backend facility sweeps.
    plant:
        The chiller plant shared by all racks.
    loop:
        The facility secondary loop; default is a
        :class:`FacilityLoopSystem` sized for ``n_racks``.
    supervised:
        Give every rack its own :class:`~repro.control.supervisor.
        Supervisor` (fresh per run).
    water_thermal_mass_j_k, oil_thermal_mass_j_k, junction_limit_c:
        Passed through to each :class:`RackSimulator`.
    """

    n_racks: int = 4
    rack_factory: Callable[[], Rack] = _default_rack
    plant: ChillerPlant = field(default_factory=ChillerPlant)
    loop: Optional[FacilityLoopSystem] = None
    supervised: bool = True
    water_thermal_mass_j_k: float = 8.0e5
    oil_thermal_mass_j_k: float = 1.0e5
    junction_limit_c: float = 67.0
    #: Optional invariant-checker suite (:class:`repro.verify.checkers.
    #: CheckSuite`). Forwarded to every rack simulator of the run (they
    #: execute serially, so one shared suite is safe) and applied to the
    #: facility loop solve and the aggregate result; None skips all hooks.
    checks: Optional["CheckSuite"] = None
    #: Optional heat-recovery sink on the loop return header
    #: (:class:`~repro.facility.recovery.HeatRecovery`). When set, the
    #: harvested heat offsets the chiller load in the energy accounting.
    heat_recovery: Optional[HeatRecovery] = None

    def __post_init__(self) -> None:
        if self.n_racks < 2:
            raise ValueError("a facility needs at least 2 racks")
        if self.loop is None:
            self.loop = FacilityLoopSystem(n_racks=self.n_racks)
        if self.loop.n_racks != self.n_racks:
            raise ValueError(
                f"facility loop has {self.loop.n_racks} branches for "
                f"{self.n_racks} racks"
            )

    # -- event partitioning -------------------------------------------------

    def _partition_events(
        self, events: Optional[Sequence[FailureEvent]]
    ) -> Tuple[List[FailureEvent], List[FailureEvent], Dict[int, List[FailureEvent]]]:
        """Split into (plant, branch, per-rack forwarded) event lists."""
        plant: List[FailureEvent] = []
        branch: List[FailureEvent] = []
        forwarded: Dict[int, List[FailureEvent]] = {
            j: [] for j in range(self.n_racks)
        }
        for event in sorted(events or [], key=lambda e: e.time_s):
            if event.target == "plant":
                plant.append(event)
                continue
            if event.target == "compute":
                # Facility-wide workload step: every rack sees it.
                for j in range(self.n_racks):
                    forwarded[j].append(event)
                continue
            if event.target.startswith("rack_"):
                head, _, inner = event.target.partition("/")
                try:
                    index = int(head[len("rack_") :])
                except ValueError:
                    raise ValueError(f"malformed facility target {event.target!r}")
                if not 0 <= index < self.n_racks:
                    raise ValueError(
                        f"event targets rack {index}; facility has {self.n_racks}"
                    )
                if inner:
                    forwarded[index].append(replace(event, target=inner))
                else:
                    branch.append(event)
                continue
            raise ValueError(
                f"facility event target {event.target!r} is not 'plant', "
                "'compute', 'rack_<j>' or 'rack_<j>/<inner>'"
            )
        return plant, branch, forwarded

    # -- allocation timeline ------------------------------------------------

    def _shares_for(self, openings: Tuple[float, ...]) -> Tuple[float, ...]:
        """Flow shares of the facility loop with the given branch openings."""
        assert self.loop is not None
        for j, opening in enumerate(openings):
            if opening <= 0.0:
                self.loop.fail_rack(j)
            else:
                self.loop.restore_rack(j, opening)
        report = self.loop.solve()
        total = report.total_flow_m3_s
        if total <= 0.0:
            return tuple(0.0 for _ in range(self.n_racks))
        return tuple(f / total for f in report.loop_flows_m3_s)

    def _allocation_timeline(
        self,
        plant_events: List[FailureEvent],
        branch_events: List[FailureEvent],
        duration_s: float,
    ) -> Tuple[List[Tuple[float, Tuple[float, ...]]], List[Tuple[float, float]], Tuple[float, ...]]:
        """Allocated capacity per rack, piecewise over the run.

        Returns ``(timeline, capacity_profile, shares0)`` where timeline
        is ``[(t, (alloc_0, ..., alloc_{n-1})), ...]`` sorted by time.
        """
        rack_caps = [self.rack_factory().chiller.capacity_w for _ in range(self.n_racks)]
        profile = self.plant.capacity_profile(plant_events, duration_s)

        openings = [1.0] * self.n_racks
        opening_steps: List[Tuple[float, Tuple[float, ...]]] = [
            (0.0, tuple(openings))
        ]
        for event in branch_events:
            if event.time_s > duration_s:
                continue
            index = int(event.target[len("rack_") :])
            openings[index] = max(0.0, min(1.0, event.magnitude))
            opening_steps.append((event.time_s, tuple(openings)))

        share_cache: Dict[Tuple[float, ...], Tuple[float, ...]] = {}

        def shares_at(opening: Tuple[float, ...]) -> Tuple[float, ...]:
            if opening not in share_cache:
                share_cache[opening] = self._shares_for(opening)
            return share_cache[opening]

        times = sorted(
            {0.0}
            | {t for t, _ in profile}
            | {t for t, _ in opening_steps}
        )
        timeline: List[Tuple[float, Tuple[float, ...]]] = []
        for t in times:
            if t > duration_s:
                continue
            opening = [o for ts, o in opening_steps if ts <= t][-1]
            shares = shares_at(opening)
            plant_cap = _capacity_at(profile, t)
            alloc = tuple(
                min(rack_caps[j], plant_cap * shares[j])
                for j in range(self.n_racks)
            )
            timeline.append((t, alloc))
        shares0 = shares_at(opening_steps[0][1])
        return timeline, profile, shares0

    @staticmethod
    def _capacity_events(
        timeline: List[Tuple[float, Tuple[float, ...]]], rack_index: int
    ) -> List[FailureEvent]:
        """Per-rack multiplicative chiller events realizing the timeline.

        The rack simulator multiplies the magnitudes of every active
        ``pump_stop``/``chiller`` event, so a piecewise fraction profile
        ``f_k`` becomes ratio events ``m_k = f_k / f_{k-1}`` (fractions
        floored at :data:`MIN_CAPACITY_FRACTION` to keep recovery finite).
        """
        base = timeline[0][1][rack_index]
        if base <= 0.0:
            # Fully starved from t=0: the rack's chiller is built at the
            # floor capacity already; no events needed.
            return []
        events: List[FailureEvent] = []
        previous = 1.0
        for t, alloc in timeline[1:]:
            fraction = max(alloc[rack_index] / base, MIN_CAPACITY_FRACTION)
            ratio = fraction / previous
            if abs(ratio - 1.0) <= _RATIO_EPS:
                continue
            events.append(
                FailureEvent(
                    kind="pump_stop",
                    time_s=t,
                    target="chiller",
                    magnitude=ratio,
                    description=(
                        f"facility allocation for rack_{rack_index} now "
                        f"{fraction:.3g} of its t=0 share"
                    ),
                )
            )
            previous = fraction
        return events

    # -- the run ------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        events: Optional[Sequence[FailureEvent]] = None,
        dt_s: float = 20.0,
    ) -> FacilityResult:
        """Integrate every rack over ``duration_s`` under the shared plant.

        The racks are evaluated through the serial sweep backend (facility
        *sweeps* shard whole facility cases across processes; nesting a
        pool per facility would oversubscribe the host).
        """
        obs = get_registry()
        with obs.span("facility.run", racks=str(self.n_racks)), obs.profile(
            "facility.run"
        ):
            result = self._run(duration_s, events, dt_s)
        obs.inc("facility_runs_total")
        obs.inc("facility_rack_runs_total", self.n_racks)
        return result

    def _run(
        self,
        duration_s: float,
        events: Optional[Sequence[FailureEvent]],
        dt_s: float,
    ) -> FacilityResult:
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        assert self.loop is not None
        self.loop.reset_solver()
        plant_events, branch_events, forwarded = self._partition_events(events)
        timeline, profile, shares0 = self._allocation_timeline(
            plant_events, branch_events, duration_s
        )
        alloc0 = timeline[0][1]
        branch_flows0 = self._initial_flows()
        if self.checks is not None:
            self.checks.check_manifold(self.loop, level="facility", where="t=0")

        racks: List[Rack] = []
        rack_events: List[List[FailureEvent]] = []
        for j in range(self.n_racks):
            rack = self.rack_factory()
            allocated = min(rack.chiller.capacity_w, alloc0[j])
            floor = rack.chiller.capacity_w * MIN_CAPACITY_FRACTION
            capacity = max(allocated, floor)
            if capacity != rack.chiller.capacity_w:
                rack = replace(
                    rack, chiller=replace(rack.chiller, capacity_w=capacity)
                )
            racks.append(rack)
            rack_events.append(
                sorted(
                    self._capacity_events(timeline, j) + forwarded[j],
                    key=lambda e: e.time_s,
                )
            )

        def evaluate(case: SweepCase) -> RackSimResult:
            index = case.params["rack"]
            simulator = RackSimulator(
                rack=racks[index],
                water_thermal_mass_j_k=self.water_thermal_mass_j_k,
                oil_thermal_mass_j_k=self.oil_thermal_mass_j_k,
                junction_limit_c=self.junction_limit_c,
                supervisor=Supervisor() if self.supervised else None,
                checks=self.checks,
            )
            return simulator.run(
                duration_s=duration_s, events=rack_events[index], dt_s=dt_s
            )

        cases = [
            SweepCase(name=f"rack_{j}", params={"rack": j})
            for j in range(self.n_racks)
        ]
        outcomes = run_sweep(evaluate, cases, backend="serial")
        results = tuple(outcome.value for outcome in outcomes)

        heat_total = sum(r.heat_rejected_j for r in results)
        mean_load = heat_total / duration_s
        final_state: Optional[str] = None
        actions: Tuple[RecoveryAction, ...] = ()
        if self.supervised:
            final_state = max(
                (r.final_state for r in results if r.final_state is not None),
                key=lambda name: SupervisorState[name].value,
                default=None,
            )
            merged = [
                (action.time_s, j, action)
                for j, r in enumerate(results)
                for action in r.recovery_actions
            ]
            merged.sort(key=lambda item: (item[0], item[1]))
            actions = tuple(
                RecoveryAction(
                    time_s=action.time_s,
                    kind=action.kind,
                    detail=f"rack_{j}: {action.detail}",
                )
                for _, j, action in merged
            )

        total_flow = sum(branch_flows0)
        if total_flow > 0.0 and mean_load > 0.0:
            rate = self.loop.fluid.heat_capacity_rate(
                total_flow, self.plant.setpoint_c
            )
            reuse_c = self.plant.setpoint_c + mean_load / rate
        else:
            reuse_c = self.plant.setpoint_c

        # Facility energy accounting (pPUE). IT energy is the heat the
        # compute pushed into the loop; the cooling overhead is the loop
        # pump plus the chiller compressors carrying whatever load the
        # recovery sink did not absorb.
        it_energy_j = heat_total
        pump_energy_j = self.loop.pump.electrical_power_w(total_flow) * duration_s
        recovered_w = (
            self.heat_recovery.recovered_w(mean_load, reuse_c)
            if self.heat_recovery is not None
            else 0.0
        )
        recovered_heat_j = recovered_w * duration_s
        chiller_energy_j = (
            self.plant.electrical_power_w(max(0.0, mean_load - recovered_w))
            * duration_s
        )
        ppue = (
            1.0
            if it_energy_j <= 0.0
            else (it_energy_j + pump_energy_j + chiller_energy_j) / it_energy_j
        )

        result = FacilityResult(
            n_racks=self.n_racks,
            duration_s=duration_s,
            dt_s=dt_s,
            branch_flows_m3_s=branch_flows0,
            flow_shares=shares0,
            allocated_capacity_w=alloc0,
            rack_results=results,
            max_fpga_c=max(r.max_fpga_c for r in results),
            max_water_c=max(r.max_water_c for r in results),
            heat_rejected_j=heat_total,
            plant=self.plant.dispatch(mean_load),
            reuse_return_water_c=reuse_c,
            final_state=final_state,
            recovery_actions=actions,
            it_energy_j=it_energy_j,
            pump_energy_j=pump_energy_j,
            chiller_energy_j=chiller_energy_j,
            recovered_heat_j=recovered_heat_j,
            ppue=ppue,
        )
        if self.checks is not None:
            self.checks.check_facility_run(self, result)
        return result

    def _initial_flows(self) -> Tuple[float, ...]:
        """Branch flows with every valve open (fresh solve)."""
        assert self.loop is not None
        for j in range(self.n_racks):
            self.loop.restore_rack(j)
        return tuple(self.loop.solve().loop_flows_m3_s)


__all__ = [
    "ChillerPlant",
    "FacilityResult",
    "FacilitySimulator",
    "MIN_CAPACITY_FRACTION",
    "PlantDispatch",
]
