"""Facility sweep cases: picklable evaluation for every backend.

The process backend ships cases to worker processes, so everything here
is module-level and plain-data: the evaluation function is importable,
case params are strings and numbers, and the returned value is the
canonical :meth:`~repro.facility.simulator.FacilityResult.to_dict`
summary. The same case builders feed the CLI
(``scripts/run_facility.py``), the golden regression
(``tests/goldens/facility_sweep.json``) and the CI smoke job, so all
three pin the same bytes.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.rack import Rack
from repro.core.skat import skat
from repro.facility.simulator import FacilitySimulator
from repro.reliability.failures import FailureEvent
from repro.sweep import SweepCase, SweepOutcome, run_sweep


def facility_rack(n_modules: int) -> Rack:
    """One rack of SKAT modules (module-level, hence picklable)."""
    return Rack(module_factory=skat, n_modules=n_modules)


def _nominal(n_racks: int, t: float) -> List[FailureEvent]:
    return []


def _plant_trip(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="pump_stop",
            time_s=t,
            target="plant",
            magnitude=0.0,
            description="primary chiller trips; standby skid dispatches",
        )
    ]


def _plant_brownout(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="pump_stop",
            time_s=t,
            target="plant",
            magnitude=0.5,
            description="primary chiller derated to half capacity",
        )
    ]


def _rack_isolated(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="loop_blockage",
            time_s=t,
            target=f"rack_{n_racks - 1}",
            magnitude=0.0,
            description="last rack's facility branch valved off",
        )
    ]


def _cm_blockage(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="loop_blockage",
            time_s=t,
            target="rack_0/loop_1",
            magnitude=0.0,
            description="CM 1 valved off inside rack 0",
        )
    ]


#: Scenario name -> events builder ``(n_racks, fault_time_s) -> events``.
SCENARIOS: Dict[str, Callable[[int, float], List[FailureEvent]]] = {
    "nominal": _nominal,
    "plant_trip": _plant_trip,
    "plant_brownout": _plant_brownout,
    "rack_isolated": _rack_isolated,
    "cm_blockage": _cm_blockage,
}


def scenario_events(name: str, n_racks: int, fault_time_s: float) -> List[FailureEvent]:
    """The named scenario's event list for an ``n_racks`` facility."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown facility scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return builder(n_racks, fault_time_s)


def build_facility(params: Mapping[str, Any]) -> FacilitySimulator:
    """A :class:`FacilitySimulator` from plain-data case params."""
    return FacilitySimulator(
        n_racks=int(params["racks"]),
        rack_factory=partial(facility_rack, int(params["modules"])),
        supervised=bool(params.get("supervised", True)),
    )


def evaluate_facility_case(case: SweepCase) -> Dict[str, Any]:
    """Run one facility scenario; return its canonical plain-data summary.

    Module-level on purpose: the process backend pickles this function by
    reference. A fresh simulator is built per case, so no solver or
    supervisor state crosses cases on any backend.
    """
    params = case.params
    simulator = build_facility(params)
    events = scenario_events(
        str(params["scenario"]), int(params["racks"]), float(params["fault_time_s"])
    )
    result = simulator.run(
        duration_s=float(params["duration_s"]),
        events=events,
        dt_s=float(params["dt_s"]),
    )
    return {"case": case.name, **result.to_dict()}


def smoke_cases(
    racks: int = 4,
    modules: int = 2,
    duration_s: float = 400.0,
    dt_s: float = 20.0,
    fault_time_s: float = 120.0,
    scenarios: Optional[Sequence[str]] = None,
) -> List[SweepCase]:
    """The pinned facility scenario matrix (every named scenario once).

    Small on purpose — 2-module racks, a 400 s window — so the full
    matrix runs in seconds on any backend while still exercising the
    plant trip, the standby dispatch, a branch isolation and a forwarded
    in-rack fault.
    """
    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    return [
        SweepCase(
            name=name,
            params={
                "scenario": name,
                "racks": racks,
                "modules": modules,
                "duration_s": duration_s,
                "dt_s": dt_s,
                "fault_time_s": fault_time_s,
            },
        )
        for name in names
    ]


def run_facility_sweep(
    cases: Sequence[SweepCase],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    harness: Optional[Any] = None,
) -> List[SweepOutcome]:
    """Sweep facility cases on the chosen backend (errors re-raised).

    With a ``harness`` (:class:`repro.sweep.HarnessConfig`) the sweep
    runs fault-tolerantly — checkpointed, deadline-supervised on the
    process backend, retried and quarantined — and failures surface as
    a :class:`repro.sweep.HarnessError` after the surviving cases
    complete, instead of aborting mid-sweep.
    """
    return run_sweep(
        evaluate_facility_case,
        cases,
        backend=backend,
        max_workers=max_workers,
        harness=harness,
    )


__all__ = [
    "SCENARIOS",
    "build_facility",
    "evaluate_facility_case",
    "facility_rack",
    "run_facility_sweep",
    "scenario_events",
    "smoke_cases",
]
