"""Facility sweep cases: picklable evaluation for every backend.

The process backend ships cases to worker processes, so everything here
is module-level and plain-data: the evaluation function is importable,
case params are strings and numbers, and the returned value is the
canonical :meth:`~repro.facility.simulator.FacilityResult.to_dict`
summary. The same case builders feed the CLI
(``scripts/run_facility.py``), the golden regression
(``tests/goldens/facility_sweep.json``) and the CI smoke job, so all
three pin the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.gpumodule import gpu_rack
from repro.core.rack import Rack
from repro.core.skat import skat
from repro.devices.gpu import TrainingTraceSpec, training_power_events
from repro.facility.network import FacilityLoopSystem
from repro.facility.recovery import HeatRecovery
from repro.facility.simulator import ChillerPlant, FacilitySimulator
from repro.reliability.failures import FailureEvent
from repro.sweep import SweepCase, SweepOutcome, run_sweep


def facility_rack(n_modules: int) -> Rack:
    """One rack of SKAT modules (module-level, hence picklable)."""
    return Rack(module_factory=skat, n_modules=n_modules)


def _nominal(n_racks: int, t: float) -> List[FailureEvent]:
    return []


def _plant_trip(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="pump_stop",
            time_s=t,
            target="plant",
            magnitude=0.0,
            description="primary chiller trips; standby skid dispatches",
        )
    ]


def _plant_brownout(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="pump_stop",
            time_s=t,
            target="plant",
            magnitude=0.5,
            description="primary chiller derated to half capacity",
        )
    ]


def _rack_isolated(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="loop_blockage",
            time_s=t,
            target=f"rack_{n_racks - 1}",
            magnitude=0.0,
            description="last rack's facility branch valved off",
        )
    ]


def _cm_blockage(n_racks: int, t: float) -> List[FailureEvent]:
    return [
        FailureEvent(
            kind="loop_blockage",
            time_s=t,
            target="rack_0/loop_1",
            magnitude=0.0,
            description="CM 1 valved off inside rack 0",
        )
    ]


#: Scenario name -> events builder ``(n_racks, fault_time_s) -> events``.
SCENARIOS: Dict[str, Callable[[int, float], List[FailureEvent]]] = {
    "nominal": _nominal,
    "plant_trip": _plant_trip,
    "plant_brownout": _plant_brownout,
    "rack_isolated": _rack_isolated,
    "cm_blockage": _cm_blockage,
}


def scenario_events(name: str, n_racks: int, fault_time_s: float) -> List[FailureEvent]:
    """The named scenario's event list for an ``n_racks`` facility."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown facility scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return builder(n_racks, fault_time_s)


def build_facility(params: Mapping[str, Any]) -> FacilitySimulator:
    """A :class:`FacilitySimulator` from plain-data case params."""
    return FacilitySimulator(
        n_racks=int(params["racks"]),
        rack_factory=partial(facility_rack, int(params["modules"])),
        supervised=bool(params.get("supervised", True)),
    )


def evaluate_facility_case(case: SweepCase) -> Dict[str, Any]:
    """Run one facility scenario; return its canonical plain-data summary.

    Module-level on purpose: the process backend pickles this function by
    reference. A fresh simulator is built per case, so no solver or
    supervisor state crosses cases on any backend.
    """
    params = case.params
    simulator = build_facility(params)
    events = scenario_events(
        str(params["scenario"]), int(params["racks"]), float(params["fault_time_s"])
    )
    result = simulator.run(
        duration_s=float(params["duration_s"]),
        events=events,
        dt_s=float(params["dt_s"]),
    )
    return {"case": case.name, **result.to_dict()}


def smoke_cases(
    racks: int = 4,
    modules: int = 2,
    duration_s: float = 400.0,
    dt_s: float = 20.0,
    fault_time_s: float = 120.0,
    scenarios: Optional[Sequence[str]] = None,
) -> List[SweepCase]:
    """The pinned facility scenario matrix (every named scenario once).

    Small on purpose — 2-module racks, a 400 s window — so the full
    matrix runs in seconds on any backend while still exercising the
    plant trip, the standby dispatch, a branch isolation and a forwarded
    in-rack fault.
    """
    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    return [
        SweepCase(
            name=name,
            params={
                "scenario": name,
                "racks": racks,
                "modules": modules,
                "duration_s": duration_s,
                "dt_s": dt_s,
                "fault_time_s": fault_time_s,
            },
        )
        for name in names
    ]


# -- the AI-factory workload scenario family ---------------------------------
#
# GPU racks under training traces, at the classic 20 degC chilled-water
# setpoint and at the iDataCool-style hot-water setpoint with a recovery
# sink on the loop return. Kept in a SEPARATE dict from ``SCENARIOS``:
# ``smoke_cases`` feeds byte-pinned goldens from ``sorted(SCENARIOS)``,
# so the legacy matrix must not grow.

#: OCP-style junction ceiling for the GPU racks (the SKAT default of
#: 67 degC is an FPGA reliability band, not a GPU one).
GPU_JUNCTION_LIMIT_C = 88.0
#: Hot-water secondary-loop supply temperature. 45 degC leaves under
#: 1 K of junction margin on a B200-class die; 40 degC keeps ~7 K.
HOT_WATER_SETPOINT_C = 40.0


def gpu_facility_rack(n_modules: int) -> Rack:
    """One rack of GPU modules (module-level, hence picklable)."""
    return gpu_rack(n_modules)


def hot_water_gpu_rack(n_modules: int) -> Rack:
    """A GPU rack re-pointed at the hot-water supply temperature.

    The condenser rises with the setpoint (a warm supply needs a warmer
    rejection side); the smaller lift raises the chiller COP — part of
    the hot-water economics.
    """
    rack = gpu_rack(n_modules)
    return replace(
        rack,
        chiller=replace(
            rack.chiller,
            setpoint_c=HOT_WATER_SETPOINT_C,
            condenser_temperature_c=HOT_WATER_SETPOINT_C + 10.0,
        ),
    )


@dataclass(frozen=True)
class WorkloadScenario:
    """One AI-factory scenario: rack family, plant setpoint, recovery."""

    rack_factory: Callable[[int], Rack]
    plant_setpoint_c: float
    #: Recovery-sink effectiveness; None runs without a recovery sink.
    recovery_effectiveness: Optional[float] = None
    trace_seed: int = 0

    def heat_recovery(self) -> Optional[HeatRecovery]:
        if self.recovery_effectiveness is None:
            return None
        return HeatRecovery(
            effectiveness=self.recovery_effectiveness,
            minimum_return_c=HOT_WATER_SETPOINT_C,
        )


#: Workload scenario name -> configuration. Separate from ``SCENARIOS``
#: on purpose (see the section comment above).
WORKLOAD_SCENARIOS: Dict[str, WorkloadScenario] = {
    "gpu_training": WorkloadScenario(
        rack_factory=gpu_facility_rack, plant_setpoint_c=20.0
    ),
    "gpu_training_hot_water": WorkloadScenario(
        rack_factory=hot_water_gpu_rack,
        plant_setpoint_c=HOT_WATER_SETPOINT_C,
        recovery_effectiveness=0.6,
    ),
}


def workload_events(
    name: str, duration_s: float, dt_s: float
) -> List[FailureEvent]:
    """The named workload scenario's training trace as facility events.

    The trace expands to ``power_step`` events on the bare ``compute``
    target, which the facility broadcasts to every rack — the same
    expansion the fuzzer and the service gateway perform, so all three
    paths hash and replay identically.
    """
    try:
        scenario = WORKLOAD_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload scenario {name!r}; available: "
            f"{sorted(WORKLOAD_SCENARIOS)}"
        ) from None
    spec = TrainingTraceSpec(seed=scenario.trace_seed)
    return training_power_events(
        spec, duration_s=duration_s, dt_s=dt_s, target="compute"
    )


def build_workload_facility(params: Mapping[str, Any]) -> FacilitySimulator:
    """A GPU-era :class:`FacilitySimulator` from plain-data case params."""
    scenario = WORKLOAD_SCENARIOS[str(params["scenario"])]
    n_racks = int(params["racks"])
    return FacilitySimulator(
        n_racks=n_racks,
        rack_factory=partial(scenario.rack_factory, int(params["modules"])),
        plant=ChillerPlant(setpoint_c=scenario.plant_setpoint_c),
        loop=FacilityLoopSystem(
            n_racks=n_racks, temperature_c=scenario.plant_setpoint_c
        ),
        supervised=bool(params.get("supervised", False)),
        junction_limit_c=GPU_JUNCTION_LIMIT_C,
        heat_recovery=scenario.heat_recovery(),
    )


def evaluate_workload_case(case: SweepCase) -> Dict[str, Any]:
    """Run one AI-factory workload scenario; return its canonical summary.

    Module-level like :func:`evaluate_facility_case`, and for the same
    reason: the process backend pickles this function by reference.
    """
    params = case.params
    duration_s = float(params["duration_s"])
    dt_s = float(params["dt_s"])
    simulator = build_workload_facility(params)
    events = workload_events(str(params["scenario"]), duration_s, dt_s)
    result = simulator.run(duration_s=duration_s, events=events, dt_s=dt_s)
    return {"case": case.name, **result.to_dict()}


def workload_cases(
    racks: int = 2,
    modules: int = 2,
    duration_s: float = 400.0,
    dt_s: float = 20.0,
    scenarios: Optional[Sequence[str]] = None,
) -> List[SweepCase]:
    """The pinned AI-factory workload matrix (every workload scenario once)."""
    names = (
        list(scenarios) if scenarios is not None else sorted(WORKLOAD_SCENARIOS)
    )
    return [
        SweepCase(
            name=name,
            params={
                "scenario": name,
                "racks": racks,
                "modules": modules,
                "duration_s": duration_s,
                "dt_s": dt_s,
            },
        )
        for name in names
    ]


def run_workload_sweep(
    cases: Sequence[SweepCase],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    harness: Optional[Any] = None,
) -> List[SweepOutcome]:
    """Sweep workload cases on the chosen backend (errors re-raised)."""
    return run_sweep(
        evaluate_workload_case,
        cases,
        backend=backend,
        max_workers=max_workers,
        harness=harness,
    )


def run_facility_sweep(
    cases: Sequence[SweepCase],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    harness: Optional[Any] = None,
) -> List[SweepOutcome]:
    """Sweep facility cases on the chosen backend (errors re-raised).

    With a ``harness`` (:class:`repro.sweep.HarnessConfig`) the sweep
    runs fault-tolerantly — checkpointed, deadline-supervised on the
    process backend, retried and quarantined — and failures surface as
    a :class:`repro.sweep.HarnessError` after the surviving cases
    complete, instead of aborting mid-sweep.
    """
    return run_sweep(
        evaluate_facility_case,
        cases,
        backend=backend,
        max_workers=max_workers,
        harness=harness,
    )


__all__ = [
    "GPU_JUNCTION_LIMIT_C",
    "HOT_WATER_SETPOINT_C",
    "SCENARIOS",
    "WORKLOAD_SCENARIOS",
    "WorkloadScenario",
    "build_facility",
    "build_workload_facility",
    "evaluate_facility_case",
    "evaluate_workload_case",
    "facility_rack",
    "gpu_facility_rack",
    "hot_water_gpu_rack",
    "run_facility_sweep",
    "run_workload_sweep",
    "scenario_events",
    "smoke_cases",
    "workload_cases",
    "workload_events",
]
