"""Deterministic scenario fuzzer for the simulator stack.

Random testing for physics code only pays off when three things hold:
the scenario stream is **reproducible** (same seed, same bytes, any
machine, any backend), every run is **self-checking** (the
conservation-law suite of :mod:`repro.verify.checkers` is the oracle —
no hand-written expectations per scenario), and a failure **shrinks**
to a minimal artifact a human can replay. This module provides all
three on top of the PR 4 failure-event grammar.

Determinism contract: scenarios are drawn from
``numpy.random.default_rng(seed)`` in a fixed order, event times are
snapped to the scenario's time grid and magnitudes rounded to a fixed
number of decimals, and every serialization is canonical JSON
(``sort_keys=True``, compact separators). The stream digest in a
:class:`FuzzReport` is therefore byte-stable across serial, thread and
process sweep backends — the CI smoke job pins exactly this.

Usage::

    report = run_fuzz(seed=7, n_scenarios=200, backend="process")
    assert report.ok, report.violations

    # On failure: shrink the first offending scenario to its essence.
    small = shrink_scenario(bad, lambda s: bool(run_scenario(s)["violations"]))
    write_repro_artifact("repro.json", small)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.supervisor import Supervisor
from repro.core.gpumodule import GPU_WATER_FLOW_M3_S, gpu_module
from repro.core.simulation import ModuleSimulator
from repro.core.racksim import RackSimulator
from repro.core.skat import skat
from repro.devices.gpu import TrainingTraceSpec, training_power_events
from repro.facility.network import FacilityLoopSystem
from repro.facility.recovery import HeatRecovery
from repro.facility.simulator import ChillerPlant, FacilitySimulator
from repro.facility.sweep import (
    GPU_JUNCTION_LIMIT_C,
    HOT_WATER_SETPOINT_C,
    facility_rack,
    gpu_facility_rack,
    hot_water_gpu_rack,
)
from repro.reliability.failures import FailureEvent
from repro.sweep import SweepCase, run_sweep
from repro.verify.checkers import (
    CheckSuite,
    InvariantViolationError,
    Tolerances,
    Violation,
)

#: Scenario levels the fuzzer cycles through, in generation order.
#: Frozen: the default stream digest is pinned byte-for-byte, so new
#: families extend :data:`WORKLOAD_LEVELS` instead of this tuple.
LEVELS: Tuple[str, ...] = ("module", "rack", "facility")

#: The AI-factory workload scenario levels (GPU devices, training-trace
#: ``power_step`` scripts, hot-water plants). Opt-in via the ``levels``
#: argument — default streams, and therefore their digests, are
#: prefix-stable against the pre-workload fuzzer.
WORKLOAD_LEVELS: Tuple[str, ...] = (
    "gpu_module",
    "gpu_facility",
    "hot_water_facility",
)

#: Decimal places magnitudes are rounded to, per event kind (leaks are
#: m^3/s-scale, everything else is O(1)).
_MAGNITUDE_DECIMALS = {"leak": 6}
_DEFAULT_DECIMALS = 3


def canonical_json(payload: Any) -> str:
    """The one JSON encoding used everywhere (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FuzzScenario:
    """One generated scenario: a simulator config plus an event script."""

    index: int
    level: str
    duration_s: float
    dt_s: float
    n_modules: int
    n_racks: int
    supervised: bool
    events: Tuple[FailureEvent, ...] = ()

    @property
    def name(self) -> str:
        return f"fuzz_{self.level}_{self.index:04d}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "level": self.level,
            "duration_s": self.duration_s,
            "dt_s": self.dt_s,
            "n_modules": self.n_modules,
            "n_racks": self.n_racks,
            "supervised": self.supervised,
            "events": [
                {
                    "kind": e.kind,
                    "time_s": e.time_s,
                    "target": e.target,
                    "magnitude": e.magnitude,
                }
                for e in self.events
            ],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "FuzzScenario":
        return FuzzScenario(
            index=int(payload["index"]),
            level=str(payload["level"]),
            duration_s=float(payload["duration_s"]),
            dt_s=float(payload["dt_s"]),
            n_modules=int(payload["n_modules"]),
            n_racks=int(payload["n_racks"]),
            supervised=bool(payload["supervised"]),
            events=tuple(
                FailureEvent(
                    kind=str(e["kind"]),
                    time_s=float(e["time_s"]),
                    target=str(e["target"]),
                    magnitude=float(e["magnitude"]),
                )
                for e in payload["events"]
            ),
        )


# -- generation --------------------------------------------------------------


def _snap(rng: np.random.Generator, duration_s: float, dt_s: float) -> float:
    """A grid-aligned event time in [dt, 0.6 * duration]."""
    raw = float(rng.uniform(dt_s, 0.6 * duration_s))
    return max(dt_s, round(raw / dt_s) * dt_s)


def _magnitude(rng: np.random.Generator, kind: str, lo: float, hi: float) -> float:
    decimals = _MAGNITUDE_DECIMALS.get(kind, _DEFAULT_DECIMALS)
    return round(float(rng.uniform(lo, hi)), decimals)


def _module_events(
    rng: np.random.Generator, duration_s: float, dt_s: float, n_events: int
) -> List[FailureEvent]:
    events: List[FailureEvent] = []
    for _ in range(n_events):
        kind = ("pump_stop", "loop_blockage", "leak", "tim_washout", "sensor_fault")[
            int(rng.integers(0, 5))
        ]
        t = _snap(rng, duration_s, dt_s)
        if kind == "pump_stop":
            events.append(
                FailureEvent(kind, t, "oil_pump", _magnitude(rng, kind, 0.0, 0.9))
            )
        elif kind == "loop_blockage":
            events.append(
                FailureEvent(kind, t, "oil_loop", _magnitude(rng, kind, 0.0, 0.9))
            )
        elif kind == "leak":
            events.append(
                FailureEvent(kind, t, "bath", _magnitude(rng, kind, 1.0e-5, 5.0e-3))
            )
        elif kind == "tim_washout":
            events.append(
                FailureEvent(kind, t, "fpga_0", _magnitude(rng, kind, 1.5, 8.0))
            )
        else:
            bank = int(rng.integers(0, 3))
            events.append(
                FailureEvent(
                    kind, t, f"oil_temp_{bank}", _magnitude(rng, kind, -20.0, 20.0)
                )
            )
    return events


def _rack_events(
    rng: np.random.Generator,
    duration_s: float,
    dt_s: float,
    n_modules: int,
    n_events: int,
) -> List[FailureEvent]:
    events: List[FailureEvent] = []
    for _ in range(n_events):
        kind = ("loop_blockage", "chiller")[int(rng.integers(0, 2))]
        t = _snap(rng, duration_s, dt_s)
        if kind == "loop_blockage":
            loop = int(rng.integers(0, n_modules))
            events.append(
                FailureEvent(kind, t, f"loop_{loop}", _magnitude(rng, kind, 0.0, 0.9))
            )
        else:
            events.append(
                FailureEvent(
                    "pump_stop", t, "chiller", _magnitude(rng, "pump_stop", 0.0, 0.9)
                )
            )
    return events


def _facility_events(
    rng: np.random.Generator,
    duration_s: float,
    dt_s: float,
    n_racks: int,
    n_modules: int,
    n_events: int,
) -> List[FailureEvent]:
    events: List[FailureEvent] = []
    for _ in range(n_events):
        choice = int(rng.integers(0, 4))
        t = _snap(rng, duration_s, dt_s)
        rack = int(rng.integers(0, n_racks))
        if choice == 0:
            events.append(
                FailureEvent(
                    "pump_stop", t, "plant", _magnitude(rng, "pump_stop", 0.0, 0.9)
                )
            )
        elif choice == 1:
            events.append(
                FailureEvent(
                    "loop_blockage",
                    t,
                    f"rack_{rack}",
                    _magnitude(rng, "loop_blockage", 0.0, 0.9),
                )
            )
        elif choice == 2:
            loop = int(rng.integers(0, n_modules))
            events.append(
                FailureEvent(
                    "loop_blockage",
                    t,
                    f"rack_{rack}/loop_{loop}",
                    _magnitude(rng, "loop_blockage", 0.0, 0.9),
                )
            )
        else:
            events.append(
                FailureEvent(
                    "pump_stop",
                    t,
                    f"rack_{rack}/chiller",
                    _magnitude(rng, "pump_stop", 0.0, 0.9),
                )
            )
    return events


def _trace_events(
    rng: np.random.Generator, duration_s: float, dt_s: float
) -> List[FailureEvent]:
    """A seeded training trace expanded to grid-snapped power steps.

    The same expansion the service gateway performs at normalization
    time: the trace exists only at generation; downstream sees events.
    """
    spec = TrainingTraceSpec(
        warmup_s=float((30.0, 60.0)[int(rng.integers(0, 2))]),
        step_period_s=float((40.0, 60.0, 80.0)[int(rng.integers(0, 3))]),
        dip_fraction=round(float(rng.uniform(0.6, 0.9)), 3),
        seed=int(rng.integers(0, 2**16)),
    )
    return training_power_events(
        spec, duration_s=duration_s, dt_s=dt_s, target="compute"
    )


def generate_scenarios(
    seed: int,
    n_scenarios: int,
    levels: Sequence[str] = LEVELS,
) -> List[FuzzScenario]:
    """``n_scenarios`` seeded scenarios, round-robin over ``levels``.

    One :class:`numpy.random.Generator` drives everything in a fixed
    draw order, so the stream — and its canonical-JSON digest — depends
    on nothing but ``(seed, n_scenarios, levels)``. The default
    ``levels`` draws exactly the pre-workload stream (digest-pinned);
    the :data:`WORKLOAD_LEVELS` families are opt-in.
    """
    known = LEVELS + WORKLOAD_LEVELS
    for level in levels:
        if level not in known:
            raise ValueError(f"unknown fuzz level {level!r}; choose from {known}")
    rng = np.random.default_rng(seed)
    scenarios: List[FuzzScenario] = []
    for index in range(n_scenarios):
        level = levels[index % len(levels)]
        supervised = bool(rng.integers(0, 2))
        n_events = int(rng.integers(0, 4))
        if level == "module":
            duration = float((120.0, 240.0)[int(rng.integers(0, 2))])
            dt = 5.0
            events = _module_events(rng, duration, dt, n_events)
            n_modules, n_racks = 1, 0
        elif level == "rack":
            duration = float((200.0, 400.0)[int(rng.integers(0, 2))])
            dt = 20.0
            n_modules = int(rng.integers(2, 5))
            n_racks = 0
            events = _rack_events(rng, duration, dt, n_modules, n_events)
        elif level == "gpu_module":
            duration = float((240.0, 480.0)[int(rng.integers(0, 2))])
            dt = 5.0
            events = _trace_events(rng, duration, dt)
            events += _module_events(rng, duration, dt, min(n_events, 2))
            n_modules, n_racks = 1, 0
        elif level in ("gpu_facility", "hot_water_facility"):
            duration = float((200.0, 400.0)[int(rng.integers(0, 2))])
            dt = 20.0
            n_modules = 2
            n_racks = int(rng.integers(2, 4))
            events = _trace_events(rng, duration, dt)
            events += _facility_events(
                rng, duration, dt, n_racks, n_modules, min(n_events, 2)
            )
        else:
            duration = float((200.0, 400.0)[int(rng.integers(0, 2))])
            dt = 20.0
            n_modules = 2
            n_racks = int(rng.integers(2, 4))
            events = _facility_events(rng, duration, dt, n_racks, n_modules, n_events)
        scenarios.append(
            FuzzScenario(
                index=index,
                level=level,
                duration_s=duration,
                dt_s=dt,
                n_modules=n_modules,
                n_racks=n_racks,
                supervised=supervised,
                events=tuple(sorted(events, key=lambda e: (e.time_s, e.kind, e.target))),
            )
        )
    return scenarios


def scenario_stream_digest(scenarios: Sequence[FuzzScenario]) -> str:
    """SHA-256 of the canonical-JSON scenario stream (byte-stability pin)."""
    stream = "\n".join(s.to_json() for s in scenarios)
    return hashlib.sha256(stream.encode("utf-8")).hexdigest()


# -- evaluation --------------------------------------------------------------


def _round9(x: float) -> float:
    return round(float(x), 9)


def _module_record(
    scenario: FuzzScenario, suite: CheckSuite, result: Any
) -> Dict[str, Any]:
    """The module-level result record (shared by the per-object and
    batched paths, so both emit identical bytes)."""
    return {
        "scenario": scenario.name,
        "level": scenario.level,
        "violations": [v.to_dict() for v in suite.violations],
        "checks_run": suite.checks_run,
        "summary": {
            "max_junction_c": _round9(result.max_junction_c),
            "max_oil_c": _round9(result.max_oil_c),
            "final_state": result.final_state,
            "shutdown": result.shutdown_time_s is not None,
        },
    }


def run_scenario(
    scenario: FuzzScenario, tolerances: Optional[Tolerances] = None
) -> Dict[str, Any]:
    """Run one scenario under the full checker suite (metrics-only mode).

    Returns a plain-data record — picklable and canonical-JSON friendly,
    identical on every sweep backend::

        {"scenario": <name>, "level": ..., "violations": [...],
         "checks_run": <int>, "summary": {...}}
    """
    suite = CheckSuite(
        strict=False,
        tolerances=tolerances if tolerances is not None else Tolerances(),
    )
    events = list(scenario.events)

    def r(x: float) -> float:
        return round(float(x), 9)

    if scenario.level in ("module", "gpu_module"):
        if scenario.level == "gpu_module":
            simulator = ModuleSimulator(
                module=gpu_module(),
                water_flow_m3_s=GPU_WATER_FLOW_M3_S,
                supervisor=Supervisor() if scenario.supervised else None,
                checks=suite,
            )
        else:
            simulator = ModuleSimulator(
                module=skat(),
                supervisor=Supervisor() if scenario.supervised else None,
                checks=suite,
            )
        result = simulator.run(
            scenario.duration_s, events=events, dt_s=scenario.dt_s
        )
        return _module_record(scenario, suite, result)
    elif scenario.level == "rack":
        rack_simulator = RackSimulator(
            rack=facility_rack(scenario.n_modules),
            supervisor=Supervisor() if scenario.supervised else None,
            checks=suite,
        )
        rack_result = rack_simulator.run(
            scenario.duration_s, events=events, dt_s=scenario.dt_s
        )
        summary = {
            "max_fpga_c": r(rack_result.max_fpga_c),
            "max_water_c": r(rack_result.max_water_c),
            "heat_rejected_j": r(rack_result.heat_rejected_j),
            "final_state": rack_result.final_state,
        }
    elif scenario.level == "facility":
        facility = FacilitySimulator(
            n_racks=scenario.n_racks,
            rack_factory=partial(facility_rack, scenario.n_modules),
            supervised=scenario.supervised,
            checks=suite,
        )
        facility_result = facility.run(
            scenario.duration_s, events=events, dt_s=scenario.dt_s
        )
        summary = {
            "max_fpga_c": r(facility_result.max_fpga_c),
            "max_water_c": r(facility_result.max_water_c),
            "heat_rejected_j": r(facility_result.heat_rejected_j),
            "final_state": facility_result.final_state,
        }
    elif scenario.level in ("gpu_facility", "hot_water_facility"):
        hot = scenario.level == "hot_water_facility"
        setpoint = HOT_WATER_SETPOINT_C if hot else 20.0
        facility = FacilitySimulator(
            n_racks=scenario.n_racks,
            rack_factory=partial(
                hot_water_gpu_rack if hot else gpu_facility_rack,
                scenario.n_modules,
            ),
            plant=ChillerPlant(setpoint_c=setpoint),
            loop=FacilityLoopSystem(
                n_racks=scenario.n_racks, temperature_c=setpoint
            ),
            supervised=scenario.supervised,
            junction_limit_c=GPU_JUNCTION_LIMIT_C,
            heat_recovery=(
                HeatRecovery(
                    effectiveness=0.6, minimum_return_c=HOT_WATER_SETPOINT_C
                )
                if hot
                else None
            ),
            checks=suite,
        )
        facility_result = facility.run(
            scenario.duration_s, events=events, dt_s=scenario.dt_s
        )
        summary = {
            "max_fpga_c": r(facility_result.max_fpga_c),
            "max_water_c": r(facility_result.max_water_c),
            "heat_rejected_j": r(facility_result.heat_rejected_j),
            "final_state": facility_result.final_state,
            "ppue": r(facility_result.ppue),
            "recovered_heat_j": r(facility_result.recovered_heat_j),
        }
    else:
        raise ValueError(f"unknown fuzz level {scenario.level!r}")

    return {
        "scenario": scenario.name,
        "level": scenario.level,
        "violations": [v.to_dict() for v in suite.violations],
        "checks_run": suite.checks_run,
        "summary": summary,
    }


def evaluate_fuzz_case(case: SweepCase) -> Dict[str, Any]:
    """Sweep adapter around :func:`run_scenario`.

    Module-level on purpose — the process backend pickles it by
    reference; the scenario and tolerances travel as plain dicts.
    """
    scenario = FuzzScenario.from_dict(case.params["scenario"])
    tolerances = case.params.get("tolerances")
    return run_scenario(
        scenario,
        tolerances=None if tolerances is None else Tolerances(**tolerances),
    )


def _batchable(scenario: FuzzScenario) -> bool:
    """Whether the batched transient engine can evaluate this scenario.

    Mirrors the fault campaign's eligibility rule: open-loop module runs
    only (``run_many`` refuses closed-loop simulators) and no
    ``sensor_fault`` events (sensor voting is a closed-loop concern the
    structure-of-arrays engine does not model). GPU module scenarios
    batch under the same rule — training-trace ``power_step`` scripts
    are fully supported by the structure-of-arrays engine.
    """
    return (
        scenario.level in ("module", "gpu_module")
        and not scenario.supervised
        and not any(e.kind == "sensor_fault" for e in scenario.events)
    )


def fuzz_module_batch(cases: List[SweepCase]) -> List[Any]:
    """Batched evaluation of open-loop module scenarios via ``run_many``.

    Lanes are grouped by (duration, dt, tolerances); each group becomes
    one structure-of-arrays transient solve whose per-lane rebuilt
    :class:`~repro.core.simulation.SimulationResult` is audited by a
    fresh per-scenario :class:`CheckSuite` exactly like a serial run —
    the differential suite pins the rebuilt results element-identical,
    so the records (and therefore the fuzz report) are byte-identical to
    the per-object path. Ineligible or failed lanes come back as
    :data:`~repro.sweep.batched.SERIAL_FALLBACK`.
    """
    from repro.sweep.batched import SERIAL_FALLBACK

    parsed = [
        (
            FuzzScenario.from_dict(case.params["scenario"]),
            case.params.get("tolerances"),
        )
        for case in cases
    ]
    results: List[Any] = [SERIAL_FALLBACK] * len(cases)
    groups: Dict[Tuple[str, float, float, str], List[int]] = {}
    for i, (scenario, tol) in enumerate(parsed):
        if not _batchable(scenario):
            continue
        key = (
            scenario.level,
            scenario.duration_s,
            scenario.dt_s,
            canonical_json(tol),
        )
        groups.setdefault(key, []).append(i)
    for (level, duration_s, dt_s, _), lanes in groups.items():
        if level == "gpu_module":
            simulator = ModuleSimulator(
                module=gpu_module(), water_flow_m3_s=GPU_WATER_FLOW_M3_S
            )
        else:
            simulator = ModuleSimulator(module=skat())
        try:
            batch = simulator.run_many(
                duration_s,
                [list(parsed[i][0].events) for i in lanes],
                dt_s=dt_s,
            )
        except Exception:  # noqa: BLE001 - whole group re-runs serially
            continue
        for j, i in enumerate(lanes):
            if batch.errors[j] is not None:
                continue
            scenario, tol = parsed[i]
            suite = CheckSuite(
                strict=False,
                tolerances=Tolerances(**tol) if tol is not None else Tolerances(),
            )
            result = batch.result(j)
            suite.check_module_run(
                simulator,
                result,
                dt_s=dt_s,
                initial_oil_c=simulator.water_in_c + 8.0,
            )
            results[i] = _module_record(scenario, suite, result)
    return results


@dataclass(frozen=True)
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    seed: int
    n_scenarios: int
    backend: str
    scenario_digest: str
    results: Tuple[Dict[str, Any], ...]
    violations: Tuple[Dict[str, Any], ...]
    checks_run: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "n_scenarios": self.n_scenarios,
            "backend": self.backend,
            "scenario_digest": self.scenario_digest,
            "checks_run": self.checks_run,
            "violations": list(self.violations),
            "results": list(self.results),
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())


def run_fuzz(
    seed: int,
    n_scenarios: int,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    levels: Sequence[str] = LEVELS,
    tolerances: Optional[Tolerances] = None,
    strict: bool = False,
    batch: str = "auto",
    batch_size: int = 32,
) -> FuzzReport:
    """Generate, run and aggregate a seeded fuzz campaign.

    Every scenario runs under the full checker suite in metrics-only
    mode, so one bad scenario never hides the others; the aggregated
    report carries every violation, each tagged with its scenario name.
    With ``strict=True`` the campaign raises
    :class:`~repro.verify.checkers.InvariantViolationError` after the
    whole sweep has been aggregated.

    ``batch`` routes the open-loop module scenarios (see
    :func:`_batchable`) through :meth:`ModuleSimulator.run_many` via
    :func:`~repro.sweep.run_sweep_batched` in groups of ``batch_size``:
    ``"auto"`` batches whatever is eligible, ``"never"`` forces the
    per-object path everywhere, ``"always"`` additionally raises if no
    scenario is batchable. The report is byte-identical across the three
    modes — the parity test pins this.
    """
    if batch not in ("auto", "always", "never"):
        raise ValueError("batch must be 'auto', 'always' or 'never'")
    scenarios = generate_scenarios(seed, n_scenarios, levels)
    digest = scenario_stream_digest(scenarios)
    params_tol = None if tolerances is None else asdict(tolerances)
    cases = [
        SweepCase(
            name=s.name,
            params={"scenario": s.to_dict(), "tolerances": params_tol},
        )
        for s in scenarios
    ]
    batched_idx = (
        [i for i, s in enumerate(scenarios) if _batchable(s)]
        if batch != "never"
        else []
    )
    if batch == "always" and not batched_idx:
        raise ValueError(
            "batch='always' but no scenario is batchable: only open-loop "
            "module scenarios without sensor faults run through run_many"
        )
    serial_idx = sorted(set(range(len(cases))) - set(batched_idx))
    merged: List[Optional[Dict[str, Any]]] = [None] * len(cases)
    if batched_idx:
        from repro.obs import get_registry
        from repro.sweep.batched import BatchedSweepFn, run_sweep_batched

        get_registry().inc("fuzz_batched_runs_total")
        batched_outcomes = run_sweep_batched(
            BatchedSweepFn(serial=evaluate_fuzz_case, batch=fuzz_module_batch),
            [cases[i] for i in batched_idx],
            batch_size=batch_size,
            backend=backend,
            max_workers=max_workers,
        )
        for i, outcome in zip(batched_idx, batched_outcomes):
            merged[i] = outcome.value
    if serial_idx:
        serial_outcomes = run_sweep(
            evaluate_fuzz_case,
            [cases[i] for i in serial_idx],
            backend=backend,
            max_workers=max_workers,
        )
        for i, outcome in zip(serial_idx, serial_outcomes):
            merged[i] = outcome.value
    results = tuple(merged)
    violations = tuple(
        {"scenario": record["scenario"], **violation}
        for record in results
        for violation in record["violations"]
    )
    report = FuzzReport(
        seed=seed,
        n_scenarios=n_scenarios,
        backend=backend,
        scenario_digest=digest,
        results=results,
        violations=violations,
        checks_run=sum(record["checks_run"] for record in results),
    )
    if strict and violations:
        raise InvariantViolationError(
            [
                Violation(
                    invariant=v["invariant"],
                    level=v["level"],
                    where=f"{v['scenario']}: {v['where']}",
                    detail=v["detail"],
                    magnitude=v["magnitude"],
                    tolerance=v["tolerance"],
                )
                for v in violations
            ]
        )
    return report


# -- shrinking ---------------------------------------------------------------


def _events_valid(scenario: FuzzScenario) -> bool:
    """Whether every event target still exists at the scenario's size."""
    for event in scenario.events:
        target = event.target
        if scenario.level.endswith("facility") and target.startswith("rack_"):
            head, _, inner = target.partition("/")
            if int(head[len("rack_") :]) >= scenario.n_racks:
                return False
            target = inner
        if target.startswith("loop_") and int(target[len("loop_") :]) >= (
            scenario.n_modules
        ):
            return False
    return True


def _simpler_magnitude(event: FailureEvent) -> Optional[float]:
    """The canonical magnitude for the kind, or None if already there."""
    canonical = {
        "pump_stop": 0.0,
        "loop_blockage": 0.0,
        "leak": 1.0e-4,
        "tim_washout": 2.0,
        "sensor_fault": 10.0,
        "power_step": 1.0,  # full power == the event is a no-op
    }.get(event.kind)
    if canonical is None or event.magnitude == canonical:
        return None
    return canonical


def shrink_scenario(
    scenario: FuzzScenario,
    reproduces: Callable[[FuzzScenario], bool],
    max_rounds: int = 32,
) -> FuzzScenario:
    """Greedy deterministic shrink: the smallest scenario still failing.

    ``reproduces`` must return True when a candidate still exhibits the
    original failure (it is called on ``scenario`` first; shrinking a
    non-failing scenario is a caller bug). Each round tries, in order:
    dropping one event, halving the duration (grid-snapped, at least two
    steps), removing a rack, removing a module, and simplifying one
    event magnitude to its canonical value. The first accepted candidate
    restarts the round; rounds repeat until a fixpoint (or
    ``max_rounds``). Deterministic by construction — no randomness, a
    fixed candidate order — so the same failure always shrinks to the
    same artifact.
    """
    if not reproduces(scenario):
        raise ValueError("shrink_scenario called with a non-reproducing scenario")

    def candidates(current: FuzzScenario) -> List[FuzzScenario]:
        out: List[FuzzScenario] = []
        for i in range(len(current.events)):
            out.append(
                replace(
                    current,
                    events=current.events[:i] + current.events[i + 1 :],
                )
            )
        half = round(current.duration_s / 2.0 / current.dt_s) * current.dt_s
        if half >= 2.0 * current.dt_s and half < current.duration_s:
            shorter = replace(current, duration_s=half)
            if all(e.time_s <= half for e in shorter.events):
                out.append(shorter)
        if current.level.endswith("facility") and current.n_racks > 2:
            out.append(replace(current, n_racks=current.n_racks - 1))
        if current.level in ("rack", "facility") and current.n_modules > 2:
            out.append(replace(current, n_modules=current.n_modules - 1))
        for i, event in enumerate(current.events):
            simpler = _simpler_magnitude(event)
            if simpler is not None:
                out.append(
                    replace(
                        current,
                        events=current.events[:i]
                        + (replace(event, magnitude=simpler),)
                        + current.events[i + 1 :],
                    )
                )
        return [c for c in out if _events_valid(c)]

    current = scenario
    for _ in range(max_rounds):
        for candidate in candidates(current):
            if reproduces(candidate):
                current = candidate
                break
        else:
            break
    return current


def write_repro_artifact(
    path: str,
    scenario: FuzzScenario,
    violations: Optional[Sequence[Dict[str, Any]]] = None,
) -> str:
    """Write a minimized scenario (plus its violations) as canonical JSON.

    The artifact replays with::

        scenario = FuzzScenario.from_dict(json.load(open(path))["scenario"])
        run_scenario(scenario)
    """
    payload = {
        "scenario": scenario.to_dict(),
        "violations": list(violations or []),
    }
    text = canonical_json(payload)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text


__all__ = [
    "FuzzReport",
    "FuzzScenario",
    "LEVELS",
    "WORKLOAD_LEVELS",
    "canonical_json",
    "evaluate_fuzz_case",
    "fuzz_module_batch",
    "generate_scenarios",
    "run_fuzz",
    "run_scenario",
    "scenario_stream_digest",
    "shrink_scenario",
    "write_repro_artifact",
]
