"""OCP-style golden-spec compliance checks for the workload catalog.

The Open Compute cold-plate/immersion specifications bound a deployment
by a handful of hard numbers: a junction ceiling the silicon must never
cross, a *sustained* junction band it must mostly stay inside, a
facility-water supply-temperature class (W32, W45, ...) and a service
life over which the thermal stack may not degrade past a small margin.
This module expresses those numbers as an :class:`OcpSpec` and audits
finished simulator results against them through the same
:class:`~repro.verify.checkers.CheckSuite` machinery as the conservation
laws — violations collect on the suite, count in the metrics registry
and raise in strict mode.

The two presets mirror the workload catalog (``docs/WORKLOADS.md``):

- :data:`OCP_W32` — the classic chilled-water hall (supply <= 32 degC);
- :data:`OCP_W45` — the iDataCool-style hot-water hall (supply <=
  45 degC). The hard junction ceiling is the same 88 degC — the silicon
  does not care where the water came from — but W45-qualified parts
  carry a higher *sustained*-band rating (85 degC): a hot-water hall
  runs the die warm on purpose and the qualification accounts for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, TYPE_CHECKING

from repro.core.tim import ThermalInterface
from repro.verify.checkers import CheckSuite, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.racksim import RackSimResult
    from repro.core.simulation import SimulationResult
    from repro.facility.simulator import FacilityResult


@dataclass(frozen=True)
class OcpSpec:
    """One OCP-style golden-spec envelope.

    Parameters
    ----------
    name:
        Spec label, quoted in every violation (e.g. ``"OCP W45"``).
    junction_max_c:
        Hard junction ceiling: no sample may reach it.
    junction_sustained_c:
        Sustained junction band: time above it counts as exceedance.
    max_exceedance_fraction:
        Largest tolerable fraction of telemetry samples above the
        sustained band (transients during all-reduce spikes are fine;
        living there is not).
    coolant_supply_min_c, coolant_supply_max_c:
        Facility-water supply class, e.g. 2-32 degC for W32. The run's
        worst water temperature must stay inside the band (a supply
        below the dew-point floor condenses; above the class ceiling
        voids the spec).
    service_life_h:
        Service life the thermal stack is qualified for, hours.
    max_interface_degradation:
        Largest tolerable thermal-interface resistance multiplier at
        end of life — washout-prone pastes fail this, oil-stable and
        liquid-metal interfaces pass it at exactly 1.0.
    """

    name: str
    junction_max_c: float = 88.0
    junction_sustained_c: float = 83.0
    max_exceedance_fraction: float = 0.1
    coolant_supply_min_c: float = 2.0
    coolant_supply_max_c: float = 32.0
    service_life_h: float = 43_800.0  # five years
    max_interface_degradation: float = 1.05

    def __post_init__(self) -> None:
        if self.junction_sustained_c > self.junction_max_c:
            raise ValueError("sustained band cannot exceed the junction ceiling")
        if not 0.0 <= self.max_exceedance_fraction <= 1.0:
            raise ValueError("exceedance fraction must be within [0, 1]")
        if self.coolant_supply_min_c >= self.coolant_supply_max_c:
            raise ValueError("coolant band must have min < max")
        if self.service_life_h <= 0.0:
            raise ValueError("service life must be positive")
        if self.max_interface_degradation < 1.0:
            raise ValueError("degradation bound cannot be below 1")


#: The classic chilled-water hall: facility water at or below 32 degC.
OCP_W32 = OcpSpec(name="OCP W32")

#: The hot-water hall (heat-recovery economics): supply up to 45 degC,
#: sustained junction band re-qualified at 85 degC (ceiling unchanged).
OCP_W45 = OcpSpec(
    name="OCP W45", coolant_supply_max_c=45.0, junction_sustained_c=85.0
)


def _junction_violations(
    spec: OcpSpec,
    *,
    level: str,
    where: str,
    max_junction_c: float,
    samples: Sequence[float],
) -> List[Violation]:
    """Ceiling + exceedance violations for one junction history."""
    found: List[Violation] = []
    if not max_junction_c < spec.junction_max_c:
        found.append(
            Violation(
                invariant="ocp_junction",
                level=level,
                where=where,
                detail=(
                    f"worst junction {max_junction_c:.3f} C reaches the "
                    f"{spec.name} ceiling {spec.junction_max_c:g} C"
                ),
                magnitude=max_junction_c - spec.junction_max_c,
                tolerance=0.0,
            )
        )
    if len(samples):
        over = sum(1 for v in samples if v > spec.junction_sustained_c)
        fraction = over / len(samples)
        if fraction > spec.max_exceedance_fraction:
            found.append(
                Violation(
                    invariant="ocp_exceedance",
                    level=level,
                    where=where,
                    detail=(
                        f"{fraction:.1%} of samples above the sustained band "
                        f"{spec.junction_sustained_c:g} C (spec allows "
                        f"{spec.max_exceedance_fraction:.1%})"
                    ),
                    magnitude=fraction - spec.max_exceedance_fraction,
                    tolerance=spec.max_exceedance_fraction,
                )
            )
    return found


def _coolant_violations(
    spec: OcpSpec, *, level: str, where: str, supply_c: float, worst_water_c: float
) -> List[Violation]:
    """Supply-class violations for one water loop."""
    found: List[Violation] = []
    if not spec.coolant_supply_min_c <= supply_c <= spec.coolant_supply_max_c:
        found.append(
            Violation(
                invariant="ocp_coolant_band",
                level=level,
                where=where,
                detail=(
                    f"water supply {supply_c:.3f} C outside the {spec.name} "
                    f"class [{spec.coolant_supply_min_c:g}, "
                    f"{spec.coolant_supply_max_c:g}] C"
                ),
                magnitude=max(
                    spec.coolant_supply_min_c - supply_c,
                    supply_c - spec.coolant_supply_max_c,
                ),
                tolerance=0.0,
            )
        )
    # The loop may warm above the supply class under overload; the spec
    # bounds the *excursion* by the same ceiling the class defines.
    if worst_water_c > spec.coolant_supply_max_c:
        found.append(
            Violation(
                invariant="ocp_coolant_band",
                level=level,
                where=where,
                detail=(
                    f"loop water reached {worst_water_c:.3f} C, above the "
                    f"{spec.name} class ceiling {spec.coolant_supply_max_c:g} C"
                ),
                magnitude=worst_water_c - spec.coolant_supply_max_c,
                tolerance=0.0,
            )
        )
    return found


def check_ocp_interface(
    suite: CheckSuite, spec: OcpSpec, tim: ThermalInterface, *, where: str = "tim"
) -> List[Violation]:
    """Service-life check: the interface must survive the qualified life.

    Washout-prone pastes blow through the degradation bound within a few
    thousand hours in the bath; the oil-stable and liquid-metal
    interfaces hold a multiplier of exactly 1 forever.
    """
    multiplier = tim.degradation_multiplier(spec.service_life_h)
    found: List[Violation] = []
    if multiplier > spec.max_interface_degradation:
        found.append(
            Violation(
                invariant="ocp_service_life",
                level="device",
                where=where,
                detail=(
                    f"{tim.name}: interface resistance x{multiplier:.3f} after "
                    f"{spec.service_life_h:g} h exceeds the {spec.name} bound "
                    f"x{spec.max_interface_degradation:g}"
                ),
                magnitude=multiplier - spec.max_interface_degradation,
                tolerance=spec.max_interface_degradation - 1.0,
            )
        )
    return suite._report(found)


def check_ocp_module(
    suite: CheckSuite,
    spec: OcpSpec,
    result: "SimulationResult",
    *,
    where: str = "module",
) -> List[Violation]:
    """OCP envelope on one finished module run."""
    _, junction = result.telemetry.series("junction_c")
    found = _junction_violations(
        spec,
        level="module",
        where=where,
        max_junction_c=result.max_junction_c,
        samples=[float(v) for v in junction],
    )
    return suite._report(found)


def check_ocp_rack(
    suite: CheckSuite,
    spec: OcpSpec,
    result: "RackSimResult",
    *,
    supply_c: float,
    where: str = "rack",
) -> List[Violation]:
    """OCP envelope on one finished rack run.

    Junction exceedance uses the per-module telemetry channels when the
    run recorded them (checks enabled); otherwise only the hard ceiling
    is audited from the result maxima.
    """
    telemetry = result.telemetry
    samples: List[float] = []
    for channel in telemetry.channels:
        if channel.startswith("junction_"):
            _, series = telemetry.series(channel)
            samples.extend(float(v) for v in series)
    found = _junction_violations(
        spec,
        level="rack",
        where=where,
        max_junction_c=result.max_fpga_c,
        samples=samples,
    )
    found.extend(
        _coolant_violations(
            spec,
            level="rack",
            where=where,
            supply_c=supply_c,
            worst_water_c=result.max_water_c,
        )
    )
    return suite._report(found)


def check_ocp_facility(
    suite: CheckSuite,
    spec: OcpSpec,
    result: "FacilityResult",
    *,
    supply_c: float,
) -> List[Violation]:
    """OCP envelope on one finished facility run, rack by rack.

    ``supply_c`` is the plant's secondary-loop supply setpoint (the
    supply class is audited per rack against it); every rack's junction
    history and loop excursion is checked individually, so a violation
    names the offending rack.
    """
    found: List[Violation] = []
    for j, rack_result in enumerate(result.rack_results):
        telemetry = rack_result.telemetry
        samples: List[float] = []
        for channel in telemetry.channels:
            if channel.startswith("junction_"):
                _, series = telemetry.series(channel)
                samples.extend(float(v) for v in series)
        found.extend(
            _junction_violations(
                spec,
                level="facility",
                where=f"rack_{j}",
                max_junction_c=rack_result.max_fpga_c,
                samples=samples,
            )
        )
        found.extend(
            _coolant_violations(
                spec,
                level="facility",
                where=f"rack_{j}",
                supply_c=supply_c,
                worst_water_c=rack_result.max_water_c,
            )
        )
    return suite._report(found)


__all__ = [
    "OCP_W32",
    "OCP_W45",
    "OcpSpec",
    "check_ocp_facility",
    "check_ocp_interface",
    "check_ocp_module",
    "check_ocp_rack",
]
