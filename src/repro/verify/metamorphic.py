"""Metamorphic relations over the facility simulator.

Where the invariant checkers audit *one* run against conservation laws,
the relations here audit *pairs* of runs against transformations with a
known answer: relabeling hydraulically identical racks permutes the
per-rack results and changes nothing else; replicating the whole rack
row under a proportionally larger plant scales the heat and preserves
every temperature; unit conversions round-trip on their grid. These
catch the bugs single-run checks cannot — an indexing slip that swaps
two racks' event streams conserves energy perfectly.

Each relation returns a list of
:class:`~repro.verify.checkers.Violation` records (empty when the
relation holds) so the reports compose with the checker suite's.

Floating-point contract: per-rack summaries are compared **exactly** —
an unconstrained facility run evaluates each rack independently, so a
relabeled or replicated rack must reproduce bit-for-bit (the
differential suite already pins facility-vs-isolated equality).
Aggregates that sum over racks are compared to 1e-9 relative, because
summation order changes under the transformation and float addition is
not associative.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.facility.simulator import ChillerPlant, FacilitySimulator
from repro.facility.sweep import facility_rack
from repro.reliability.failures import FailureEvent
from repro.verify.checkers import Violation

from functools import partial

#: Relative slack on rack-summed aggregates (summation reordering).
AGGREGATE_RTOL = 1.0e-9


def watts_from_kilowatts(value_kw: float) -> float:
    """Kilowatts to watts."""
    return value_kw * 1000.0


def kilowatts_from_watts(value_w: float) -> float:
    """Watts to kilowatts."""
    return value_w / 1000.0


def relation_unit_round_trip(values_w: Sequence[float]) -> List[Violation]:
    """W -> kW -> W must be the identity on the kilowatt grid.

    Exact for every ``n * 1000.0`` with integer ``n`` below 2**53 (the
    product is exact, and the correctly rounded quotient of an exact
    multiple is exact), which covers every capacity and load the
    configuration layer writes. A conversion helper that multiplies by a
    rounded reciprocal breaks this immediately.
    """
    violations: List[Violation] = []
    for value in values_w:
        round_trip = watts_from_kilowatts(kilowatts_from_watts(value))
        if round_trip != value:
            violations.append(
                Violation(
                    invariant="unit_round_trip",
                    level="units",
                    where=f"{value!r} W",
                    detail=(
                        f"W -> kW -> W returned {round_trip!r} for {value!r}"
                    ),
                    magnitude=abs(round_trip - value),
                    tolerance=0.0,
                )
            )
    return violations


def _rel_close(a: float, b: float) -> bool:
    return abs(a - b) <= AGGREGATE_RTOL * max(abs(a), abs(b), 1.0)


def _forwarded_only(events: Sequence[FailureEvent]) -> None:
    """The facility relations need hydraulically symmetric runs.

    Bare ``rack_<j>`` branch events and ``plant`` events couple the racks
    through the (not exactly symmetric) loop solution and the shared
    capacity timeline, so only forwarded ``rack_<j>/<inner>`` targets
    keep the transformed run bit-comparable.
    """
    for event in events:
        if not (event.target.startswith("rack_") and "/" in event.target):
            raise ValueError(
                f"metamorphic facility relations accept only forwarded "
                f"'rack_<j>/<inner>' events, got target {event.target!r}"
            )


def _retarget(event: FailureEvent, new_rack: int) -> FailureEvent:
    _, _, inner = event.target.partition("/")
    return replace(event, target=f"rack_{new_rack}/{inner}")


def _rack_index(event: FailureEvent) -> int:
    head, _, _ = event.target.partition("/")
    return int(head[len("rack_") :])


def _build(
    n_racks: int, n_modules: int, plant: Optional[ChillerPlant], supervised: bool
) -> FacilitySimulator:
    return FacilitySimulator(
        n_racks=n_racks,
        rack_factory=partial(facility_rack, n_modules),
        plant=plant if plant is not None else ChillerPlant(),
        supervised=supervised,
    )


def _require_unconstrained(
    result, rack_capacity_w: float, label: str
) -> None:
    for j, alloc in enumerate(result.allocated_capacity_w):
        if alloc != rack_capacity_w:
            raise ValueError(
                f"{label}: rack_{j} allocation {alloc:g} W != its chiller "
                f"capacity {rack_capacity_w:g} W — the plant constrains the "
                "racks, so the relation's preconditions do not hold"
            )


def relation_rack_permutation(
    permutation: Sequence[int],
    *,
    n_modules: int = 2,
    duration_s: float = 200.0,
    dt_s: float = 20.0,
    events: Optional[Sequence[FailureEvent]] = None,
    supervised: bool = True,
) -> List[Violation]:
    """Relabeling the racks permutes the per-rack results, nothing more.

    Run A applies ``events`` as given; run B retargets every event from
    rack ``j`` to rack ``permutation[j]``. Then B's rack
    ``permutation[j]`` summary must equal A's rack ``j`` summary
    **exactly**, and the facility aggregates must agree to
    :data:`AGGREGATE_RTOL`.
    """
    n_racks = len(permutation)
    if sorted(permutation) != list(range(n_racks)):
        raise ValueError(f"{permutation!r} is not a permutation of 0..{n_racks - 1}")
    events = list(events or [])
    _forwarded_only(events)
    permuted = [_retarget(e, permutation[_rack_index(e)]) for e in events]

    a = _build(n_racks, n_modules, None, supervised).run(
        duration_s, events, dt_s=dt_s
    )
    b = _build(n_racks, n_modules, None, supervised).run(
        duration_s, permuted, dt_s=dt_s
    )
    capacity = facility_rack(n_modules).chiller.capacity_w
    _require_unconstrained(a, capacity, "rack permutation")
    _require_unconstrained(b, capacity, "rack permutation")

    violations: List[Violation] = []
    racks_a = a.to_dict()["racks"]
    racks_b = b.to_dict()["racks"]
    for j in range(n_racks):
        if racks_a[j] != racks_b[permutation[j]]:
            violations.append(
                Violation(
                    invariant="rack_permutation",
                    level="facility",
                    where=f"rack_{j} -> rack_{permutation[j]}",
                    detail=(
                        f"permuted run's rack_{permutation[j]} summary differs "
                        f"from the original rack_{j}: "
                        f"{racks_b[permutation[j]]!r} vs {racks_a[j]!r}"
                    ),
                    magnitude=0.0,
                    tolerance=0.0,
                )
            )
    for name, va, vb in (
        ("heat_rejected_j", a.heat_rejected_j, b.heat_rejected_j),
        ("max_fpga_c", a.max_fpga_c, b.max_fpga_c),
        ("max_water_c", a.max_water_c, b.max_water_c),
        ("modules_shutdown", float(a.modules_shutdown), float(b.modules_shutdown)),
    ):
        if not _rel_close(va, vb):
            violations.append(
                Violation(
                    invariant="rack_permutation",
                    level="facility",
                    where=name,
                    detail=(
                        f"aggregate {name} changed under a rack relabeling: "
                        f"{va!r} -> {vb!r}"
                    ),
                    magnitude=abs(va - vb),
                    tolerance=AGGREGATE_RTOL * max(abs(va), abs(vb), 1.0),
                )
            )
    if a.final_state != b.final_state:
        violations.append(
            Violation(
                invariant="rack_permutation",
                level="facility",
                where="final_state",
                detail=(
                    f"final state changed under a rack relabeling: "
                    f"{a.final_state!r} -> {b.final_state!r}"
                ),
                magnitude=0.0,
                tolerance=0.0,
            )
        )
    return violations


def relation_load_scaling(
    scale: int,
    *,
    n_racks: int = 2,
    n_modules: int = 2,
    duration_s: float = 200.0,
    dt_s: float = 20.0,
    events: Optional[Sequence[FailureEvent]] = None,
    supervised: bool = True,
) -> List[Violation]:
    """``scale`` x the racks under ``scale`` x the plant changes no temperature.

    Run A is an ``n_racks`` facility on the stock plant; run B replicates
    the rack row ``scale`` times (rack ``g*n_racks + j`` receives rack
    ``j``'s events) under a plant with every capacity scaled by the same
    factor. Normalized quantities must be preserved: every replicated
    rack's summary equals its original **exactly**, the facility maxima
    are unchanged, and the total heat scales by ``scale`` to
    :data:`AGGREGATE_RTOL`.
    """
    if scale < 2:
        raise ValueError("scale must be at least 2 to transform the run")
    events = list(events or [])
    _forwarded_only(events)
    base_plant = ChillerPlant()
    scaled_plant = replace(
        base_plant,
        primary_capacity_w=base_plant.primary_capacity_w * scale,
        standby_capacity_w=base_plant.standby_capacity_w * scale,
    )
    replicated = [
        _retarget(e, g * n_racks + _rack_index(e))
        for g in range(scale)
        for e in events
    ]

    a = _build(n_racks, n_modules, base_plant, supervised).run(
        duration_s, events, dt_s=dt_s
    )
    b = _build(n_racks * scale, n_modules, scaled_plant, supervised).run(
        duration_s, replicated, dt_s=dt_s
    )
    capacity = facility_rack(n_modules).chiller.capacity_w
    _require_unconstrained(a, capacity, "load scaling")
    _require_unconstrained(b, capacity, "load scaling")

    violations: List[Violation] = []
    racks_a = a.to_dict()["racks"]
    racks_b = b.to_dict()["racks"]
    for g in range(scale):
        for j in range(n_racks):
            if racks_a[j] != racks_b[g * n_racks + j]:
                violations.append(
                    Violation(
                        invariant="load_scaling",
                        level="facility",
                        where=f"rack_{j} replica {g}",
                        detail=(
                            f"replica rack_{g * n_racks + j} summary differs "
                            f"from the original rack_{j}: "
                            f"{racks_b[g * n_racks + j]!r} vs {racks_a[j]!r}"
                        ),
                        magnitude=0.0,
                        tolerance=0.0,
                    )
                )
    for name, va, vb in (
        ("max_fpga_c", a.max_fpga_c, b.max_fpga_c),
        ("max_water_c", a.max_water_c, b.max_water_c),
    ):
        if va != vb:
            violations.append(
                Violation(
                    invariant="load_scaling",
                    level="facility",
                    where=name,
                    detail=(
                        f"normalized temperature {name} changed under load "
                        f"scaling: {va!r} -> {vb!r}"
                    ),
                    magnitude=abs(va - vb),
                    tolerance=0.0,
                )
            )
    if not _rel_close(b.heat_rejected_j, scale * a.heat_rejected_j):
        violations.append(
            Violation(
                invariant="load_scaling",
                level="facility",
                where="heat_rejected_j",
                detail=(
                    f"total heat {b.heat_rejected_j!r} J is not {scale} x the "
                    f"base run's {a.heat_rejected_j!r} J"
                ),
                magnitude=abs(b.heat_rejected_j - scale * a.heat_rejected_j),
                tolerance=AGGREGATE_RTOL
                * max(abs(b.heat_rejected_j), scale * abs(a.heat_rejected_j), 1.0),
            )
        )
    if b.modules_shutdown != scale * a.modules_shutdown:
        violations.append(
            Violation(
                invariant="load_scaling",
                level="facility",
                where="modules_shutdown",
                detail=(
                    f"{b.modules_shutdown} modules shut down; expected "
                    f"{scale} x {a.modules_shutdown}"
                ),
                magnitude=float(abs(b.modules_shutdown - scale * a.modules_shutdown)),
                tolerance=0.0,
            )
        )
    return violations


__all__ = [
    "AGGREGATE_RTOL",
    "kilowatts_from_watts",
    "relation_load_scaling",
    "relation_rack_permutation",
    "relation_unit_round_trip",
    "watts_from_kilowatts",
]
