"""Physics-invariant verification layer.

Three complementary oracles over the simulator stack, none of which
needs a hand-written expected value:

- :mod:`repro.verify.checkers` — conservation-law and state-machine
  invariants audited on every run (attach a :class:`CheckSuite` via a
  simulator's ``checks=`` field);
- :mod:`repro.verify.metamorphic` — relations between *pairs* of runs
  (rack relabeling, load scaling, unit round-trips);
- :mod:`repro.verify.fuzz` — a seeded scenario fuzzer that runs random
  configs and event scripts under all checkers on any sweep backend and
  shrinks failures to minimal replayable artifacts;
- :mod:`repro.verify.ocp` — OCP-style golden-spec envelopes (junction
  ceiling, sustained-band exceedance, coolant supply class, interface
  service life) audited on finished results via the same suite.

See ``docs/VERIFICATION.md`` for the invariant catalog, the tolerances
and their physical justification, and the fuzzer workflow.
"""

from repro.verify.checkers import (
    CheckSuite,
    InvariantViolationError,
    Tolerances,
    Violation,
)
from repro.verify.fuzz import (
    FuzzReport,
    FuzzScenario,
    WORKLOAD_LEVELS,
    generate_scenarios,
    run_fuzz,
    run_scenario,
    scenario_stream_digest,
    shrink_scenario,
    write_repro_artifact,
)
from repro.verify.ocp import (
    OCP_W32,
    OCP_W45,
    OcpSpec,
    check_ocp_facility,
    check_ocp_interface,
    check_ocp_module,
    check_ocp_rack,
)
from repro.verify.metamorphic import (
    kilowatts_from_watts,
    relation_load_scaling,
    relation_rack_permutation,
    relation_unit_round_trip,
    watts_from_kilowatts,
)

__all__ = [
    "CheckSuite",
    "FuzzReport",
    "FuzzScenario",
    "InvariantViolationError",
    "OCP_W32",
    "OCP_W45",
    "OcpSpec",
    "Tolerances",
    "Violation",
    "WORKLOAD_LEVELS",
    "check_ocp_facility",
    "check_ocp_interface",
    "check_ocp_module",
    "check_ocp_rack",
    "generate_scenarios",
    "kilowatts_from_watts",
    "relation_load_scaling",
    "relation_rack_permutation",
    "relation_unit_round_trip",
    "run_fuzz",
    "run_scenario",
    "scenario_stream_digest",
    "shrink_scenario",
    "watts_from_kilowatts",
    "write_repro_artifact",
]
