"""Physics-invariant verification layer.

Three complementary oracles over the simulator stack, none of which
needs a hand-written expected value:

- :mod:`repro.verify.checkers` — conservation-law and state-machine
  invariants audited on every run (attach a :class:`CheckSuite` via a
  simulator's ``checks=`` field);
- :mod:`repro.verify.metamorphic` — relations between *pairs* of runs
  (rack relabeling, load scaling, unit round-trips);
- :mod:`repro.verify.fuzz` — a seeded scenario fuzzer that runs random
  configs and event scripts under all checkers on any sweep backend and
  shrinks failures to minimal replayable artifacts.

See ``docs/VERIFICATION.md`` for the invariant catalog, the tolerances
and their physical justification, and the fuzzer workflow.
"""

from repro.verify.checkers import (
    CheckSuite,
    InvariantViolationError,
    Tolerances,
    Violation,
)
from repro.verify.fuzz import (
    FuzzReport,
    FuzzScenario,
    generate_scenarios,
    run_fuzz,
    run_scenario,
    scenario_stream_digest,
    shrink_scenario,
    write_repro_artifact,
)
from repro.verify.metamorphic import (
    kilowatts_from_watts,
    relation_load_scaling,
    relation_rack_permutation,
    relation_unit_round_trip,
    watts_from_kilowatts,
)

__all__ = [
    "CheckSuite",
    "FuzzReport",
    "FuzzScenario",
    "InvariantViolationError",
    "Tolerances",
    "Violation",
    "generate_scenarios",
    "kilowatts_from_watts",
    "relation_load_scaling",
    "relation_rack_permutation",
    "relation_unit_round_trip",
    "run_fuzz",
    "run_scenario",
    "scenario_stream_digest",
    "shrink_scenario",
    "watts_from_kilowatts",
    "write_repro_artifact",
]
